/**
 * @file
 * The 2-entry hardware event queue of §4.1.
 *
 * Software exposes the next events through enqueue/dequeue intrinsics;
 * each entry holds the handler's starting address, the argument-object
 * address, an execution-underway (EU) bit, and the §4.5
 * incorrect-prediction bit that vetoes stale list state when the
 * runtime mispredicted the dispatch order.
 */

#ifndef ESPSIM_ESP_EVENT_QUEUE_HH
#define ESPSIM_ESP_EVENT_QUEUE_HH

#include <array>
#include <cstddef>

#include "common/types.hh"
#include "trace/workload.hh"

namespace espsim
{

/** One hardware event-queue register entry. */
struct EventQueueEntry
{
    Addr handlerPc = 0;
    Addr argObjectAddr = 0;
    std::size_t eventIdx = 0;        //!< simulator-side identity
    bool executionUnderway = false;  //!< EU bit
    bool incorrectPrediction = false;
    bool valid = false;
};

/** The register-like 2-deep queue exposed to the ESP hardware. */
class HardwareEventQueue
{
  public:
    static constexpr std::size_t depth = 2;

    /**
     * Software's enqueue intrinsic: refresh the queue to show the two
     * events that follow @p current_idx in the workload.
     */
    void refill(const Workload &workload, std::size_t current_idx);

    /** Entry @p slot (0 = next event, 1 = the one after). */
    EventQueueEntry &entry(std::size_t slot);
    const EventQueueEntry &entry(std::size_t slot) const;

    /** Dequeue intrinsic: slide entries down one slot. */
    void pop();

  private:
    std::array<EventQueueEntry, depth> entries_{};
};

} // namespace espsim

#endif // ESPSIM_ESP_EVENT_QUEUE_HH
