#include "esp/controller.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.hh"

namespace espsim
{

namespace
{

/** Penalties charged during pre-execution (match CoreConfig defaults). */
constexpr Cycle specMispredictPenalty = 15;
constexpr Cycle specBtbMissPenalty = 6;

EspDepth
depthEnum(unsigned d)
{
    return d == 0 ? EspDepth::Esp1 : EspDepth::Esp2;
}

/** Tally one AddressList append outcome into the list counters. */
void
countOutcome(AppendOutcome out, std::uint64_t &blocks,
             std::uint64_t &runs, std::uint64_t &retouches,
             std::uint64_t &escapes)
{
    switch (out) {
      case AppendOutcome::NewRecord:
        ++blocks;
        break;
      case AppendOutcome::NewRecordEscaped:
        ++blocks;
        ++escapes;
        break;
      case AppendOutcome::RunExtended:
        ++blocks;
        ++runs;
        break;
      case AppendOutcome::Retouch:
        ++retouches;
        break;
      case AppendOutcome::Rejected:
        break;
    }
}

} // namespace

EspController::EspController(const EspConfig &config,
                             MemoryHierarchy &mem, PentiumMPredictor &bp,
                             const Workload &workload,
                             unsigned core_width)
    : config_(config), mem_(mem), bp_(bp), workload_(workload),
      width_(core_width), icachelet_(config.icachelet),
      dcachelet_(config.dcachelet), slots_(config.maxDepth),
      instrWorkingSets_(config.maxDepth),
      dataWorkingSets_(config.maxDepth)
{
    if (config_.maxDepth == 0)
        fatal("EspConfig.maxDepth must be at least 1");
    for (unsigned d = 0; d < config_.maxDepth; ++d) {
        slots_[d].ilist = AddressList(
            config_.listBytes(config_.iListBytes, d));
        slots_[d].dlist = AddressList(
            config_.listBytes(config_.dListBytes, d));
        slots_[d].blist = BranchList(
            config_.listBytes(config_.bListDirBytes, d),
            config_.listBytes(config_.bListTgtBytes, d));
    }
    queue_.refill(workload_, 0);
}

void
EspController::activate(SpecContext &sc, std::size_t event_idx)
{
    const unsigned d = static_cast<unsigned>(&sc - slots_.data());
    sc.eventIdx = event_idx;
    sc.opIdx = 0;
    sc.active = true;
    sc.exhausted = false;
    sc.curFetchBlock = ~Addr{0};
    sc.bpCtx.clear();
    // Reset-in-place: the lists and tracking sets retain their storage
    // across activations, so re-arming a context never allocates.
    sc.ilist.resetCapacity(config_.listBytes(config_.iListBytes, d));
    sc.dlist.resetCapacity(config_.listBytes(config_.dListBytes, d));
    sc.blist.resetCapacity(config_.listBytes(config_.bListDirBytes, d),
                           config_.listBytes(config_.bListTgtBytes, d));
    sc.instrBlocks.clear();
    sc.dataBlocks.clear();
    sc.replica.reset();
    if (config_.branchPolicy == BranchPolicy::SeparatePirAndTables &&
        !config_.naiveMode) {
        sc.replica = std::make_unique<PentiumMPredictor>(bp_.clone());
        sc.replica->swapContext(BpContext{});
    }
    if (d < HardwareEventQueue::depth) {
        EventQueueEntry &entry = queue_.entry(d);
        if (entry.valid && entry.eventIdx == event_idx)
            entry.executionUnderway = true;
    }

    ++stats_.eventsPreExecuted;
    const EventTrace &ev = workload_.event(event_idx);
    if (!ev.independent())
        ++stats_.divergedEventsPreExecuted;
    stats_.specMatchSum += ev.speculativeMatchFraction();
}

void
EspController::finishSpec(SpecContext &sc, bool reached_end)
{
    sc.exhausted = true;
    if (reached_end)
        ++stats_.eventsPreExecutedToEnd;
}

AccessResult
EspController::speculativeFetch(unsigned d, SpecContext &sc, Addr pc)
{
    const Addr blk = blockAlign(pc);
    if (config_.trackWorkingSets && !(config_.ideal || d >= 2))
        sc.instrBlocks.insert(blk);

    const Cycle l1_lat = config_.icachelet.hitLatency;
    bool hit;
    if (config_.ideal || d >= 2) {
        // Unbounded cachelet model: the tracking set is the tag store.
        hit = !sc.instrBlocks.insert(blk);
    } else {
        hit = icachelet_.lookupFor(depthEnum(d), pc);
    }
    if (hit)
        return {l1_lat, HitLevel::L1};

    const AccessResult res = mem_.probeInstr(pc);
    if (!config_.ideal && d < 2)
        icachelet_.insertFor(depthEnum(d), pc);
    if (config_.useIList) {
        AppendOutcome out;
        if (!sc.ilist.append(pc, sc.opIdx, &out))
            ++stats_.iListOverflows;
        countOutcome(out, stats_.iListBlocksRecorded,
                     stats_.iListRunExtensions, stats_.iListRetouches,
                     stats_.iListEscapes);
    }
    return res;
}

AccessResult
EspController::speculativeData(unsigned d, SpecContext &sc,
                               const MicroOp &op)
{
    const Addr blk = blockAlign(op.memAddr);
    if (config_.trackWorkingSets && !(config_.ideal || d >= 2))
        sc.dataBlocks.insert(blk);

    const Cycle l1_lat = config_.dcachelet.hitLatency;
    bool hit;
    if (config_.ideal || d >= 2) {
        hit = !sc.dataBlocks.insert(blk);
    } else {
        hit = dcachelet_.lookupFor(depthEnum(d), op.memAddr);
    }
    (void)blk;
    if (hit) {
        if (op.isStore() && !config_.ideal && d < 2) {
            // Speculative stores stay in the cachelet, never written
            // back (§3.4/§4.4).
            dcachelet_.insertFor(depthEnum(d), op.memAddr, true);
        }
        return {l1_lat, HitLevel::L1};
    }

    const AccessResult res = mem_.probeData(op.memAddr);
    if (!config_.ideal && d < 2)
        dcachelet_.insertFor(depthEnum(d), op.memAddr, op.isStore());
    if (config_.useDList) {
        AppendOutcome out;
        if (!sc.dlist.append(op.memAddr, sc.opIdx, &out))
            ++stats_.dListOverflows;
        countOutcome(out, stats_.dListBlocksRecorded,
                     stats_.dListRunExtensions, stats_.dListRetouches,
                     stats_.dListEscapes);
    }
    return res;
}

std::uint64_t
EspController::runSpec(unsigned d, std::uint64_t budget_q,
                       bool &want_deeper)
{
    want_deeper = false;
    SpecContext &sc = slots_[d];
    // The runtime predicts which event runs d+1 dispatches from now
    // (§4.5); for single-queue loopers this is simply current + d + 1.
    const std::size_t target =
        workload_.predictedNext(curEventIdx_, d + 1);
    if (target >= workload_.numEvents() || target == curEventIdx_)
        return 0;

    if (!sc.active || sc.eventIdx != target)
        activate(sc, target);
    if (!config_.reentrant && sc.active && sc.opIdx > 0 &&
        !sc.exhausted) {
        // Non-re-entrant ablation: restart from the event beginning on
        // every visit (the design §3.4 argues against).
        sc.opIdx = 0;
        sc.curFetchBlock = ~Addr{0};
    }
    if (sc.exhausted) {
        want_deeper = true;
        return 0;
    }

    const EventTrace &ev = workload_.event(target);
    const std::size_t spec_size = ev.speculativeSize();

    // Select the predictor/context for this mode per the policy.
    PentiumMPredictor *pred = &bp_;
    bool swapped = false;
    BpContext saved;
    if (config_.naiveMode ||
        config_.branchPolicy == BranchPolicy::NoExtraHardware) {
        // Shared context: pre-execution pollutes the normal PIR/RAS.
    } else if (config_.branchPolicy ==
                   BranchPolicy::SeparatePirAndTables &&
               sc.replica) {
        pred = sc.replica.get();
    } else {
        saved = bp_.swapContext(std::move(sc.bpCtx));
        swapped = true;
    }

    std::uint64_t spent = 0;
    const bool record_blist = !config_.naiveMode && config_.useBList;

    while (spent < budget_q) {
        if (sc.opIdx >= spec_size) {
            finishSpec(sc, true);
            want_deeper = true;
            break;
        }
        // Bound how deep one event is pre-executed: past roughly the
        // lists' reach, further pre-execution only perturbs shared
        // predictor state for hints that cannot be stored.
        if (!config_.naiveMode && !config_.ideal &&
            sc.opIdx >= config_.maxPreExecPerEvent) {
            finishSpec(sc, false);
            want_deeper = true;
            break;
        }
        const MicroOp &op = ev.speculativeOp(sc.opIdx);
        spent += 1; // one issue slot (1/width cycle)

        // --- speculative instruction fetch --------------------------
        const Addr iblk = blockAlign(op.pc);
        if (iblk != sc.curFetchBlock) {
            sc.curFetchBlock = iblk;
            AccessResult res;
            if (config_.naiveMode) {
                res = mem_.accessInstr(op.pc, 0);
            } else {
                res = speculativeFetch(d, sc, op.pc);
            }
            const Cycle l1_lat = config_.icachelet.hitLatency;
            if (res.latency > l1_lat) {
                // The ESP-mode core is itself out of order; most of a
                // fill's latency overlaps with useful pre-execution.
                spent += (res.latency - l1_lat) * width_ / 8;
            }
            if (res.llcMiss() && d + 1 < config_.maxDepth &&
                workload_.predictedNext(curEventIdx_, d + 2) <
                    workload_.numEvents()) {
                // Jump ahead one more event; the fill completes in the
                // background (already inserted into the cachelet).
                spent += config_.contextSwitchCycles * width_;
                want_deeper = true;
                break;
            }
        }

        // --- branches ------------------------------------------------
        if (op.isBranchOp()) {
            const BranchResult res = pred->executeBranch(op, false);
            if (res == BranchResult::Mispredict)
                spent += specMispredictPenalty * width_;
            else if (res == BranchResult::BtbMiss)
                spent += specBtbMissPenalty * width_;
            if (record_blist) {
                BranchRecord rec;
                rec.pc = op.pc;
                rec.instCount = sc.opIdx;
                rec.target = op.branchTarget();
                rec.type = op.type();
                rec.taken = op.taken();
                rec.indirect = op.type() == OpType::BranchIndirect;
                if (!sc.blist.append(rec))
                    ++stats_.bListOverflows;
            }
        }

        // --- memory ---------------------------------------------------
        bool jumped_on_data = false;
        if (op.isMemoryOp()) {
            AccessResult res;
            if (config_.naiveMode) {
                res = mem_.accessData(op.memAddr, op.isStore(), 0);
            } else {
                res = speculativeData(d, sc, op);
            }
            const Cycle l1_lat = config_.dcachelet.hitLatency;
            if (op.isLoad() && res.latency > l1_lat) {
                // Loads overlap in the OoO window; charge a fraction
                // of the exposed latency.
                spent += (res.latency - l1_lat) * width_ / 8;
            }
            if (res.llcMiss() && op.isLoad() &&
                d + 1 < config_.maxDepth &&
                workload_.predictedNext(curEventIdx_, d + 2) <
                    workload_.numEvents()) {
                spent += config_.contextSwitchCycles * width_;
                jumped_on_data = true;
            }
        }

        ++sc.opIdx;
        ++stats_.preExecutedInstrs;
        if (d >= 1)
            ++stats_.preExecutedInstrsDeep;
        if (jumped_on_data) {
            want_deeper = true;
            break;
        }
    }

    if (swapped)
        sc.bpCtx = bp_.swapContext(std::move(saved));
    return spent;
}

Cycle
EspController::onStall(const StallContext &ctx)
{
    if (curEventIdx_ + 1 >= workload_.numEvents())
        return 0;
    ++stats_.jumps;

    std::uint64_t budget_q =
        static_cast<std::uint64_t>(ctx.idleCycles) * width_;
    if (config_.naiveMode)
        mem_.setStatCounting(false);

    unsigned d = 0;
    std::uint64_t consumed_q = 0;
    while (budget_q > 0 && d < config_.maxDepth) {
        bool deeper = false;
        const std::uint64_t spent = runSpec(d, budget_q, deeper);
        if (timeline_ && spent > 0) {
            // One pre-execution window: depth d+1 (ESP-1, ESP-2),
            // positioned inside the stall shadow after any budget the
            // shallower contexts already consumed.
            timeline_->recordEspWindow(
                d + 1, slots_[d].eventIdx, ctx.now + consumed_q / width_,
                std::max<Cycle>(1, spent / width_));
        }
        consumed_q += spent;
        budget_q -= std::min(spent, budget_q);
        if (!deeper)
            break;
        ++d;
        if (d < config_.maxDepth && budget_q > 0)
            ++stats_.deepJumps;
    }

    if (config_.naiveMode)
        mem_.setStatCounting(true);
    // Report how much of the idle shadow pre-execution actually used;
    // the core's cycle attributor moves that portion of the stall into
    // the esp_pre_exec bucket.
    return std::min<Cycle>(consumed_q / width_, ctx.idleCycles);
}

void
EspController::rebuildWithCapacity(AddressList &dst,
                                   const AddressList &src,
                                   std::size_t cap_bytes)
{
    dst.resetCapacity(cap_bytes);
    for (const AddressRecord &rec : src.records()) {
        for (unsigned k = 0; k <= rec.runLength; ++k) {
            if (!dst.append(rec.blockAddr + k * blockBytes,
                            rec.instCount)) {
                return;
            }
        }
    }
}

void
EspController::promoteContexts(std::size_t finished_idx)
{
    curEventIdx_ = finished_idx + 1;

    // Hand slot 0's recordings to the next normal execution — unless
    // the runtime's dispatch prediction was wrong, in which case the
    // queue entry's incorrect-prediction bit vetoes the stale hints
    // (§4.5).
    arena_.reset();
    consume_.valid = false;
    consume_.irecs = {};
    consume_.drecs = {};
    consume_.brecs = {};
    consume_.icur = consume_.dcur = consume_.bcur = 0;
    consume_.branchesExecuted = 0;
    consume_.nextDrainOp = 0;
    consume_.trainCtx.clear();
    SpecContext &s0 = slots_[0];
    if (s0.active && s0.eventIdx != finished_idx + 1)
        ++stats_.mispredictedDispatches;
    if (s0.active && s0.eventIdx == finished_idx + 1 &&
        !config_.naiveMode) {
        consume_.valid = true;
        const auto &ir = s0.ilist.records();
        const auto &dr = s0.dlist.records();
        const auto &br = s0.blist.records();
        consume_.irecs = {arena_.copy(ir.data(), ir.size()), ir.size()};
        consume_.drecs = {arena_.copy(dr.data(), dr.size()), dr.size()};
        consume_.brecs = {arena_.copy(br.data(), br.size()), br.size()};
        if (config_.branchPolicy == BranchPolicy::SeparatePirAndTables &&
            s0.replica) {
            // Adopt the replica trained during pre-execution.
            bp_.copyTablesFrom(*s0.replica);
        }
    }

    // Figure 13 sampling: what each still-active context accumulated
    // at its current depth.
    if (config_.trackWorkingSets) {
        for (unsigned d = 0; d < config_.maxDepth; ++d) {
            SpecContext &sc = slots_[d];
            if (sc.active && !sc.instrBlocks.empty())
                instrWorkingSets_[d].record(
                    static_cast<double>(sc.instrBlocks.size()));
            if (sc.active && !sc.dataBlocks.empty())
                dataWorkingSets_[d].record(
                    static_cast<double>(sc.dataBlocks.size()));
        }
    }

    // Shift contexts down one depth (ESP-2 becomes ESP-1, ...), fixing
    // up list capacities: the promoted event's ESP-2 entries are
    // copied ahead of the ESP-1 head (§4.2).
    // Swapping (not moving) rotates the retired slot's storage down to
    // the deepest slot, where the in-place reset below recycles it.
    for (unsigned d = 0; d + 1 < config_.maxDepth; ++d) {
        std::swap(slots_[d], slots_[d + 1]);
        if (slots_[d].active && !config_.ideal) {
            rebuildWithCapacity(
                scratchList_, slots_[d].ilist,
                config_.listBytes(config_.iListBytes, d));
            std::swap(slots_[d].ilist, scratchList_);
            rebuildWithCapacity(
                scratchList_, slots_[d].dlist,
                config_.listBytes(config_.dListBytes, d));
            std::swap(slots_[d].dlist, scratchList_);
        }
    }
    SpecContext &last = slots_[config_.maxDepth - 1];
    const unsigned last_d = config_.maxDepth - 1;
    last.eventIdx = SIZE_MAX;
    last.opIdx = 0;
    last.active = false;
    last.exhausted = false;
    last.curFetchBlock = ~Addr{0};
    last.bpCtx.clear();
    last.ilist.resetCapacity(
        config_.listBytes(config_.iListBytes, last_d));
    last.dlist.resetCapacity(
        config_.listBytes(config_.dListBytes, last_d));
    last.blist.resetCapacity(
        config_.listBytes(config_.bListDirBytes, last_d),
        config_.listBytes(config_.bListTgtBytes, last_d));
    last.instrBlocks.clear();
    last.dataBlocks.clear();
    last.replica.reset();

    icachelet_.rotateReservedWay();
    dcachelet_.rotateReservedWay();
    queue_.refill(workload_, curEventIdx_);
}

void
EspController::drainPrefetches(std::size_t op_idx, Cycle now)
{
    const InstCount lead = config_.ideal
        ? std::numeric_limits<InstCount>::max() / 2
        : config_.prefetchLeadInstructions;
    const InstCount horizon = op_idx + lead;

    if (config_.useIList) {
        while (consume_.icur < consume_.irecs.size() &&
               consume_.irecs[consume_.icur].instCount <= horizon) {
            const AddressRecord &rec = consume_.irecs[consume_.icur++];
            for (unsigned k = 0; k <= rec.runLength; ++k) {
                const Addr addr = rec.blockAddr + k * blockBytes;
                if (config_.ideal) {
                    mem_.l2().insert(addr);
                    mem_.l1i().insert(addr);
                } else {
                    mem_.prefetchInstr(addr, now,
                                       PrefetchSource::EspIList);
                }
                ++stats_.listPrefetchesInstr;
            }
        }
    }
    if (config_.useDList) {
        while (consume_.dcur < consume_.drecs.size() &&
               consume_.drecs[consume_.dcur].instCount <= horizon) {
            const AddressRecord &rec = consume_.drecs[consume_.dcur++];
            for (unsigned k = 0; k <= rec.runLength; ++k) {
                const Addr addr = rec.blockAddr + k * blockBytes;
                if (config_.ideal) {
                    mem_.l2().insert(addr);
                    mem_.l1d().insert(addr);
                } else {
                    mem_.prefetchData(addr, now,
                                      PrefetchSource::EspDList);
                }
                ++stats_.listPrefetchesData;
            }
        }
    }

    // Everything with instCount <= op_idx + lead has drained, so the
    // earliest op index that can release another record is bounded
    // below by (next instCount - lead); beforeOp skips the call until
    // then.
    std::size_t next = std::numeric_limits<std::size_t>::max();
    if (config_.useIList && consume_.icur < consume_.irecs.size()) {
        const InstCount c = consume_.irecs[consume_.icur].instCount;
        next = std::min(next,
                        static_cast<std::size_t>(c <= lead ? 0
                                                           : c - lead));
    }
    if (config_.useDList && consume_.dcur < consume_.drecs.size()) {
        const InstCount c = consume_.drecs[consume_.dcur].instCount;
        next = std::min(next,
                        static_cast<std::size_t>(c <= lead ? 0
                                                           : c - lead));
    }
    consume_.nextDrainOp = next;
}

void
EspController::trainAhead(Cycle now)
{
    (void)now;
    if (!config_.useBList ||
        config_.branchPolicy != BranchPolicy::SeparatePirPlusBList) {
        return;
    }
    const std::size_t horizon =
        consume_.branchesExecuted + config_.branchTrainLookahead;
    while (consume_.bcur < consume_.brecs.size() &&
           consume_.bcur < horizon) {
        const BranchRecord &rec = consume_.brecs[consume_.bcur++];
        bp_.train(consume_.trainCtx, rec.pc, rec.type, rec.taken,
                  rec.target);
        ++stats_.branchesPreTrained;
    }
}

void
EspController::onEventStart(std::size_t event_idx, Cycle now)
{
    if (event_idx != curEventIdx_) {
        // First event of the run (or a harness driving events out of
        // band): resynchronise.
        curEventIdx_ = event_idx;
        queue_.refill(workload_, event_idx);
    }
    if (!consume_.valid)
        return;
    // Pre-event window: the looper's queue-management instructions run
    // between onEventStart and the first event op, so list prefetches
    // for the event head go out before the event begins (§3.6).
    drainPrefetches(0, now);
    consume_.trainCtx.clear();
    trainAhead(now);
}

void
EspController::onEventEnd(std::size_t event_idx, Cycle now)
{
    (void)now;
    promoteContexts(event_idx);
}

void
EspController::beforeOp(std::size_t op_idx, const MicroOp &op, Cycle now)
{
    if (!consume_.valid)
        return;
    if (op_idx >= consume_.nextDrainOp)
        drainPrefetches(op_idx, now);
    if (op.isBranchOp()) {
        trainAhead(now);
        ++consume_.branchesExecuted;
    }
}

void
EspController::registerStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    reg.registerScalar(prefix + "jumps", &stats_.jumps);
    reg.registerScalar(prefix + "deep_jumps", &stats_.deepJumps);
    reg.registerScalar(prefix + "pre_executed_instrs",
                       &stats_.preExecutedInstrs);
    reg.registerScalar(prefix + "pre_executed_instrs_deep",
                       &stats_.preExecutedInstrsDeep);
    reg.registerScalar(prefix + "events_pre_executed",
                       &stats_.eventsPreExecuted);
    reg.registerScalar(prefix + "events_pre_executed_to_end",
                       &stats_.eventsPreExecutedToEnd);
    reg.registerScalar(prefix + "list_prefetches_instr",
                       &stats_.listPrefetchesInstr);
    reg.registerScalar(prefix + "list_prefetches_data",
                       &stats_.listPrefetchesData);
    reg.registerScalar(prefix + "branches_pre_trained",
                       &stats_.branchesPreTrained);
    reg.registerScalar(prefix + "ilist_overflows",
                       &stats_.iListOverflows);
    reg.registerScalar(prefix + "dlist_overflows",
                       &stats_.dListOverflows);
    reg.registerScalar(prefix + "blist_overflows",
                       &stats_.bListOverflows);
    reg.registerScalar(prefix + "ilist.blocks_recorded",
                       &stats_.iListBlocksRecorded);
    reg.registerScalar(prefix + "ilist.run_extensions",
                       &stats_.iListRunExtensions);
    reg.registerScalar(prefix + "ilist.retouches",
                       &stats_.iListRetouches);
    reg.registerScalar(prefix + "ilist.escapes", &stats_.iListEscapes);
    reg.registerScalar(prefix + "dlist.blocks_recorded",
                       &stats_.dListBlocksRecorded);
    reg.registerScalar(prefix + "dlist.run_extensions",
                       &stats_.dListRunExtensions);
    reg.registerScalar(prefix + "dlist.retouches",
                       &stats_.dListRetouches);
    reg.registerScalar(prefix + "dlist.escapes", &stats_.dListEscapes);
    // Coverage: fraction of distinct speculative blocks the bounded
    // list actually captured. Compression: blocks folded per encoded
    // record (run-length win), and how often delta encoding failed.
    reg.registerDerived(prefix + "ilist.coverage", [this] {
        const std::uint64_t total =
            stats_.iListBlocksRecorded + stats_.iListOverflows;
        return total == 0 ? 0.0
                          : static_cast<double>(
                                stats_.iListBlocksRecorded) /
                static_cast<double>(total);
    });
    reg.registerDerived(prefix + "ilist.blocks_per_record", [this] {
        const std::uint64_t recs =
            stats_.iListBlocksRecorded - stats_.iListRunExtensions;
        return recs == 0 ? 0.0
                         : static_cast<double>(
                               stats_.iListBlocksRecorded) /
                static_cast<double>(recs);
    });
    reg.registerDerived(prefix + "ilist.escape_fraction", [this] {
        const std::uint64_t recs =
            stats_.iListBlocksRecorded - stats_.iListRunExtensions;
        return recs == 0 ? 0.0
                         : static_cast<double>(stats_.iListEscapes) /
                static_cast<double>(recs);
    });
    reg.registerDerived(prefix + "dlist.coverage", [this] {
        const std::uint64_t total =
            stats_.dListBlocksRecorded + stats_.dListOverflows;
        return total == 0 ? 0.0
                          : static_cast<double>(
                                stats_.dListBlocksRecorded) /
                static_cast<double>(total);
    });
    reg.registerDerived(prefix + "dlist.blocks_per_record", [this] {
        const std::uint64_t recs =
            stats_.dListBlocksRecorded - stats_.dListRunExtensions;
        return recs == 0 ? 0.0
                         : static_cast<double>(
                               stats_.dListBlocksRecorded) /
                static_cast<double>(recs);
    });
    reg.registerDerived(prefix + "dlist.escape_fraction", [this] {
        const std::uint64_t recs =
            stats_.dListBlocksRecorded - stats_.dListRunExtensions;
        return recs == 0 ? 0.0
                         : static_cast<double>(stats_.dListEscapes) /
                static_cast<double>(recs);
    });
    reg.registerScalar(prefix + "diverged_events_pre_executed",
                       &stats_.divergedEventsPreExecuted);
    reg.registerScalar(prefix + "mispredicted_dispatches",
                       &stats_.mispredictedDispatches);
    reg.registerDerived(prefix + "spec_match_fraction", [this] {
        return stats_.eventsPreExecuted == 0
            ? 0.0
            : stats_.specMatchSum /
                static_cast<double>(stats_.eventsPreExecuted);
    });
    if (config_.trackWorkingSets) {
        for (std::size_t d = 0; d < instrWorkingSets_.size(); ++d) {
            const std::string depth = std::to_string(d + 1);
            reg.registerSamples(
                prefix + "working_set.instr.esp" + depth,
                &instrWorkingSets_[d]);
            reg.registerSamples(
                prefix + "working_set.data.esp" + depth,
                &dataWorkingSets_[d]);
        }
    }
}

void
EspController::report(StatGroup &out, const std::string &prefix) const
{
    StatRegistry reg;
    registerStats(reg, prefix);
    const StatGroup snap = reg.snapshot();
    for (const auto &[name, value] : snap.values()) {
        // Preserve the historical contract: the match fraction only
        // appears once at least one event was pre-executed.
        if (stats_.eventsPreExecuted == 0 &&
            name == prefix + "spec_match_fraction") {
            continue;
        }
        out.set(name, value);
    }
}

} // namespace espsim
