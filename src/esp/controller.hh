/**
 * @file
 * The Event Sneak Peek controller (paper §3-§4).
 *
 * Attached to the core's stall hook, it spends LLC-miss idle windows
 * speculatively pre-executing the next events in the hardware event
 * queue (ESP-1, then ESP-2 on a further LLC miss or event end). Each
 * pre-execution runs against its own cachelet partition and PIR/RAS
 * context, is re-entrant across stall windows, and records I/D-block
 * addresses and branch outcomes into the compressed lists. When a
 * pre-executed event is later dispatched for real, the controller
 * replays the lists: timely prefetches 190 instructions ahead of
 * recorded use (primed before the event starts, during the looper
 * gap), and just-in-time branch-predictor training a fixed number of
 * branches ahead.
 */

#ifndef ESPSIM_ESP_CONTROLLER_HH
#define ESPSIM_ESP_CONTROLLER_HH

#include <memory>
#include <vector>

#include "branch/pentium_m.hh"
#include "cache/cachelet.hh"
#include "cache/hierarchy.hh"
#include "common/arena.hh"
#include "common/block_run_set.hh"
#include "common/histogram.hh"
#include "common/stats.hh"
#include "cpu/hooks.hh"
#include "esp/config.hh"
#include "esp/event_queue.hh"
#include "esp/lists.hh"
#include "report/stat_registry.hh"
#include "report/timeline.hh"
#include "trace/workload.hh"

namespace espsim
{

/** Counters the controller accumulates over a run. */
struct EspStats
{
    std::uint64_t jumps = 0;            //!< mode entries from stalls
    std::uint64_t deepJumps = 0;        //!< ESP-2 (or deeper) entries
    InstCount preExecutedInstrs = 0;    //!< all ESP modes
    InstCount preExecutedInstrsDeep = 0;//!< depth >= 2
    std::uint64_t eventsPreExecuted = 0;//!< events with any pre-exec
    std::uint64_t eventsPreExecutedToEnd = 0;
    std::uint64_t listPrefetchesInstr = 0;
    std::uint64_t listPrefetchesData = 0;
    std::uint64_t branchesPreTrained = 0;
    std::uint64_t iListOverflows = 0;
    std::uint64_t dListOverflows = 0;
    std::uint64_t bListOverflows = 0;
    // List coverage / compression raw counters (AppendOutcome tallies
    // over every speculative block recorded into an I-/D-list).
    std::uint64_t iListBlocksRecorded = 0; //!< new records + run ext.
    std::uint64_t iListRunExtensions = 0;
    std::uint64_t iListRetouches = 0;
    std::uint64_t iListEscapes = 0;
    std::uint64_t dListBlocksRecorded = 0;
    std::uint64_t dListRunExtensions = 0;
    std::uint64_t dListRetouches = 0;
    std::uint64_t dListEscapes = 0;
    std::uint64_t divergedEventsPreExecuted = 0;
    /** Promotions vetoed by the incorrect-prediction bit (§4.5):
     *  the runtime dispatched a different event than predicted. */
    std::uint64_t mispredictedDispatches = 0;
    /** Sum over pre-executed events of the fraction of speculative ops
     *  matching the normal view (accuracy numerator; divide by
     *  eventsPreExecuted). */
    double specMatchSum = 0.0;
};

/** ESP architecture model; plugs into OoOCore as its stall engine. */
class EspController : public CoreHooks
{
  public:
    EspController(const EspConfig &config, MemoryHierarchy &mem,
                  PentiumMPredictor &bp, const Workload &workload,
                  unsigned core_width = 4);

    // CoreHooks interface -------------------------------------------
    void onEventStart(std::size_t event_idx, Cycle now) override;
    void onEventEnd(std::size_t event_idx, Cycle now) override;
    void beforeOp(std::size_t op_idx, const MicroOp &op,
                  Cycle now) override;
    Cycle onStall(const StallContext &ctx) override;
    SpecEngine engine() const override { return SpecEngine::Esp; }

    /** The per-op hook only does work while list consumption for the
     *  current event is live; tell the core so it can skip the
     *  indirect call in its issue loop otherwise. */
    bool perOpActive() const override { return consume_.valid; }

    const EspStats &stats() const { return stats_; }
    const EspConfig &config() const { return config_; }
    const HardwareEventQueue &eventQueue() const { return queue_; }

    /** Pre-execution working-set sizes per depth (Figure 13; only
     *  populated when config.trackWorkingSets). Index 0 = ESP-1. */
    const std::vector<SampleStat> &instrWorkingSets() const
    {
        return instrWorkingSets_;
    }
    const std::vector<SampleStat> &dataWorkingSets() const
    {
        return dataWorkingSets_;
    }

    /** Register every ESP counter by name (canonical surface). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Snapshot all counters into @p out (view over the registry). */
    void report(StatGroup &out, const std::string &prefix) const;

    /** Attach a timeline sink; pre-execution windows are recorded
     *  into it as ESP-depth slices (nullptr detaches). */
    void setTimeline(EventTimeline *timeline) { timeline_ = timeline; }

  private:
    /** State of one speculative execution context (ESP-i). */
    struct SpecContext
    {
        std::size_t eventIdx = SIZE_MAX;
        std::size_t opIdx = 0; //!< resume point in the speculative view
        bool active = false;
        bool exhausted = false;
        Addr curFetchBlock = ~Addr{0};
        BpContext bpCtx;
        AddressList ilist;
        AddressList dlist;
        BranchList blist;
        std::unique_ptr<PentiumMPredictor> replica; //!< tables policy
        BlockRunSet instrBlocks; //!< Fig. 13 tracking
        BlockRunSet dataBlocks;

        SpecContext() : ilist(0), dlist(0), blist(0, 0) {}
    };

    /** Read-only view of records staged in the event arena. */
    template <typename T>
    struct RecordSpan
    {
        const T *data = nullptr;
        std::size_t count = 0;

        std::size_t size() const { return count; }
        const T &operator[](std::size_t i) const { return data[i]; }
    };

    /** Normal-mode consumption state for the current event's lists.
     *  The record arrays are copies staged in arena_ at promotion —
     *  the owning SpecContext's lists are recycled immediately after,
     *  and arena copies avoid per-event vector churn. */
    struct ConsumeState
    {
        bool valid = false;
        RecordSpan<AddressRecord> irecs;
        RecordSpan<AddressRecord> drecs;
        RecordSpan<BranchRecord> brecs;
        std::size_t icur = 0;
        std::size_t dcur = 0;
        std::size_t bcur = 0;
        std::size_t branchesExecuted = 0;
        /** First op index at which another list record becomes
         *  drainable; beforeOp skips drainPrefetches until then. */
        std::size_t nextDrainOp = 0;
        BpContext trainCtx;
    };

    const EspConfig config_;
    MemoryHierarchy &mem_;
    PentiumMPredictor &bp_;
    const Workload &workload_;
    const unsigned width_;

    HardwareEventQueue queue_;
    Cachelet icachelet_;
    Cachelet dcachelet_;
    std::vector<SpecContext> slots_; //!< slot d pre-executes cur+d+1
    ConsumeState consume_;
    EventArena arena_; //!< backs consume_'s record spans; reset per event
    AddressList scratchList_{0}; //!< reused by promoteContexts rebuilds
    std::size_t curEventIdx_ = 0;

    EspStats stats_;
    EventTimeline *timeline_ = nullptr;
    std::vector<SampleStat> instrWorkingSets_;
    std::vector<SampleStat> dataWorkingSets_;

    // --- pre-execution ----------------------------------------------
    void activate(SpecContext &sc, std::size_t event_idx);
    void finishSpec(SpecContext &sc, bool reached_end);
    /**
     * Pre-execute at depth @p d (0-based) within @p budget_q quarter
     * cycles; returns quarter cycles spent and sets @p want_deeper on
     * an LLC miss that should jump to the next context.
     */
    std::uint64_t runSpec(unsigned d, std::uint64_t budget_q,
                          bool &want_deeper);
    /** Cachelet (or tracking-set) instruction access at depth d. */
    AccessResult speculativeFetch(unsigned d, SpecContext &sc, Addr pc);
    AccessResult speculativeData(unsigned d, SpecContext &sc,
                                 const MicroOp &op);

    // --- normal-mode consumption -------------------------------------
    void drainPrefetches(std::size_t op_idx, Cycle now);
    void trainAhead(Cycle now);
    void promoteContexts(std::size_t finished_idx);
    static void rebuildWithCapacity(AddressList &dst,
                                    const AddressList &src,
                                    std::size_t cap_bytes);
};

} // namespace espsim

#endif // ESPSIM_ESP_CONTROLLER_HH
