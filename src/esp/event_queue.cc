#include "esp/event_queue.hh"

#include "common/logging.hh"

namespace espsim
{

void
HardwareEventQueue::refill(const Workload &workload,
                           std::size_t current_idx)
{
    for (std::size_t slot = 0; slot < depth; ++slot) {
        const std::size_t idx = workload.predictedNext(
            current_idx, static_cast<unsigned>(slot) + 1);
        EventQueueEntry &e = entries_[slot];
        if (idx >= workload.numEvents()) {
            e = EventQueueEntry{};
            continue;
        }
        const EventTrace &trace = workload.event(idx);
        // Preserve the EU bit when the entry already shows this event
        // (a pre-execution may be underway across refills).
        const bool same = e.valid && e.eventIdx == idx;
        const bool eu = same && e.executionUnderway;
        e.handlerPc = trace.handlerPc;
        e.argObjectAddr = trace.argObjectAddr;
        e.eventIdx = idx;
        e.executionUnderway = eu;
        e.incorrectPrediction = false;
        e.valid = true;
    }
}

EventQueueEntry &
HardwareEventQueue::entry(std::size_t slot)
{
    if (slot >= depth)
        panic("event queue slot %zu out of range", slot);
    return entries_[slot];
}

const EventQueueEntry &
HardwareEventQueue::entry(std::size_t slot) const
{
    return const_cast<HardwareEventQueue *>(this)->entry(slot);
}

void
HardwareEventQueue::pop()
{
    for (std::size_t slot = 0; slot + 1 < depth; ++slot)
        entries_[slot] = entries_[slot + 1];
    entries_[depth - 1] = EventQueueEntry{};
}

} // namespace espsim
