#include "esp/lists.hh"

#include <cstdlib>

namespace espsim
{

AddressList::AddressList(std::size_t capacity_bytes)
    : capacityBits_(capacity_bytes * 8)
{
}

bool
AddressList::charge(std::size_t bits)
{
    if (!unbounded() && bitsUsed_ + bits > capacityBits_) {
        full_ = true;
        return false;
    }
    bitsUsed_ += bits;
    return true;
}

bool
AddressList::append(Addr addr, InstCount inst_count,
                    AppendOutcome *outcome)
{
    AppendOutcome scratch;
    AppendOutcome &out = outcome ? *outcome : scratch;
    out = AppendOutcome::Rejected;
    if (full_)
        return false;
    const Addr block = blockAlign(addr);

    // Contiguous with the previous record (accounting for its run)?
    // Extending a run costs no extra bits (the 3-bit field is already
    // paid for) as long as the field can still count it.
    if (!records_.empty()) {
        AddressRecord &prev = records_.back();
        const Addr next_in_run =
            prev.blockAddr + (prev.runLength + 1) * blockBytes;
        if (block == next_in_run && prev.runLength < 7) {
            ++prev.runLength;
            lastBlock_ = block;
            lastInst_ = inst_count;
            out = AppendOutcome::RunExtended;
            return true;
        }
        if (block == lastBlock_) {
            out = AppendOutcome::Retouch;
            return true; // re-touch of the same block: nothing to add
        }
    }

    std::size_t bits = entryBits;
    bool escaped = false;
    if (haveLast_) {
        const auto delta =
            static_cast<std::int64_t>(blockNumber(block)) -
            static_cast<std::int64_t>(blockNumber(lastBlock_));
        if (delta > 127 || delta < -128) {
            // Large-offset escape: the next two entries carry the full
            // 26-bit block address.
            bits += 2 * entryBits;
            escaped = true;
        }
        const auto inst_delta = static_cast<std::int64_t>(inst_count) -
            static_cast<std::int64_t>(lastInst_);
        if (inst_delta > 127) {
            // Instruction-count offsets beyond 7 bits need padding
            // entries; one per 127 instructions of gap.
            bits += entryBits *
                static_cast<std::size_t>((inst_delta - 1) / 127);
        }
    } else {
        // First entry always carries the full address.
        bits += 2 * entryBits;
    }

    if (!charge(bits))
        return false;

    records_.push_back({block, inst_count, 0});
    lastBlock_ = block;
    lastInst_ = inst_count;
    haveLast_ = true;
    out = escaped ? AppendOutcome::NewRecordEscaped
                  : AppendOutcome::NewRecord;
    return true;
}

void
AddressList::clear()
{
    records_.clear();
    bitsUsed_ = 0;
    full_ = false;
    haveLast_ = false;
    lastBlock_ = 0;
    lastInst_ = 0;
}

void
AddressList::resetCapacity(std::size_t capacity_bytes)
{
    clear();
    capacityBits_ = capacity_bytes * 8;
}

BranchList::BranchList(std::size_t dir_capacity_bytes,
                       std::size_t tgt_capacity_bytes)
    : dirCapacityBits_(dir_capacity_bytes * 8),
      tgtCapacityBits_(tgt_capacity_bytes * 8)
{
}

bool
BranchList::append(const BranchRecord &rec)
{
    if (full_)
        return false;

    std::size_t dir_bits = dirEntryBits;
    if (haveLast_) {
        const auto delta = static_cast<std::int64_t>(rec.pc >> 2) -
            static_cast<std::int64_t>(lastPc_ >> 2);
        if (delta > 7 || delta < -8) {
            // PC offset escape: extra entries in 6-bit increments until
            // the offset fits (bounded by a full 26-bit address).
            std::uint64_t need = static_cast<std::uint64_t>(
                delta < 0 ? -delta : delta);
            std::size_t extra = 0;
            std::uint64_t reach = 8;
            while (need >= reach && extra < 5) {
                ++extra;
                reach <<= 6;
            }
            dir_bits += extra * dirEntryBits;
        }
    }
    // Two inst-count entries lead every block of `instCountPeriod`.
    if (sincePeriod_ == 0)
        dir_bits += 2 * dirEntryBits;

    std::size_t tgt_bits = 0;
    if (rec.indirect && rec.taken) {
        tgt_bits = tgtEntryBits;
        const auto tdelta = static_cast<std::int64_t>(rec.target) -
            static_cast<std::int64_t>(rec.pc);
        if (tdelta > 32767 || tdelta < -32768)
            tgt_bits += 2 * tgtEntryBits;
    }

    const bool dir_fits = dirCapacityBits_ == 0 ||
        dirBits_ + dir_bits <= dirCapacityBits_;
    const bool tgt_fits = tgtCapacityBits_ == 0 ||
        tgtBits_ + tgt_bits <= tgtCapacityBits_;
    if (!dir_fits || !tgt_fits) {
        full_ = true;
        return false;
    }

    dirBits_ += dir_bits;
    tgtBits_ += tgt_bits;
    sincePeriod_ = (sincePeriod_ + 1) % instCountPeriod;
    records_.push_back(rec);
    lastPc_ = rec.pc;
    haveLast_ = true;
    return true;
}

void
BranchList::clear()
{
    records_.clear();
    dirBits_ = tgtBits_ = 0;
    full_ = false;
    haveLast_ = false;
    lastPc_ = 0;
    sincePeriod_ = 0;
}

void
BranchList::resetCapacity(std::size_t dir_capacity_bytes,
                          std::size_t tgt_capacity_bytes)
{
    clear();
    dirCapacityBits_ = dir_capacity_bytes * 8;
    tgtCapacityBits_ = tgt_capacity_bytes * 8;
}

} // namespace espsim
