/**
 * @file
 * Configuration of the Event Sneak Peek architecture extensions.
 * Defaults reproduce the paper's final design (Figures 5 and 8); the
 * knobs expose every ablation the evaluation section studies.
 */

#ifndef ESPSIM_ESP_CONFIG_HH
#define ESPSIM_ESP_CONFIG_HH

#include <array>
#include <cstdint>

#include "cache/cache.hh"
#include "common/types.hh"

namespace espsim
{

/** Branch-predictor handling across execution contexts (Figure 12). */
enum class BranchPolicy
{
    /** ESP-mode branches update the one shared PIR and tables. */
    NoExtraHardware,
    /** A PIR (+RAS) per context; tables shared (no B-list). */
    SeparatePir,
    /** Full predictor replica per context, adopted on promotion. */
    SeparatePirAndTables,
    /** Separate PIR + B-list just-in-time training (the ESP design). */
    SeparatePirPlusBList,
};

/** ESP architecture parameters (defaults = paper Figure 8). */
struct EspConfig
{
    /** Jump-ahead contexts (the paper fixes this at 2; the Figure 13
     *  working-set study instruments deeper). */
    unsigned maxDepth = 2;

    /** Resume pre-execution where it was suspended (§3.4). */
    bool reentrant = true;

    /**
     * The strawman of Figure 10: no cachelets and no lists;
     * pre-execution fills L1/L2 directly and trains the shared branch
     * predictor immediately.
     */
    bool naiveMode = false;

    // Which prediction lists are armed (the ESP-I / ESP-I,B /
    // ESP-I,B,D ablations of Figure 10).
    bool useIList = true;
    bool useDList = true;
    bool useBList = true;

    BranchPolicy branchPolicy = BranchPolicy::SeparatePirPlusBList;

    /** List capacities in bytes, indexed by depth-1 (ESP-1, ESP-2). */
    std::array<std::size_t, 2> iListBytes{499, 68};
    std::array<std::size_t, 2> dListBytes{510, 57};
    std::array<std::size_t, 2> bListDirBytes{566, 80};
    std::array<std::size_t, 2> bListTgtBytes{41, 6};

    /** 6 KB, 12-way cachelets; way partitioning gives ESP-1 5.5 KB and
     *  ESP-2 0.5 KB (§4.2). */
    CacheGeometry icachelet{"I-cachelet", 6 * 1024, 12, 2};
    CacheGeometry dcachelet{"D-cachelet", 6 * 1024, 12, 2};

    /** Prefetch this many instructions ahead of recorded use (§3.6). */
    InstCount prefetchLeadInstructions = 190;

    /** Branch-predictor pre-training lookahead, in branches. */
    std::size_t branchTrainLookahead = 48;

    /** Cycles charged for an ESP context switch (pipeline drain). */
    Cycle contextSwitchCycles = 4;

    /** Depth bound on pre-executing one event, in instructions —
     *  roughly the reach of the prediction lists. */
    InstCount maxPreExecPerEvent = 9000;

    /**
     * Idealisation for the "ideal ESP" curves of Figure 11: unbounded
     * cachelets/lists and zero-latency (always timely) prefetches.
     */
    bool ideal = false;

    /** Record per-depth working-set sizes (Figure 13 study). */
    bool trackWorkingSets = false;

    /** List capacity for @p depth (0-based), honoring `ideal`. */
    std::size_t
    listBytes(const std::array<std::size_t, 2> &caps,
              unsigned depth) const
    {
        if (ideal)
            return 0; // unbounded
        return depth < caps.size() ? caps[depth] : caps.back();
    }

    /** Total extra hardware state in bytes (Figure 8 accounting). */
    std::size_t hardwareBytes(unsigned depth) const;
};

} // namespace espsim

#endif // ESPSIM_ESP_CONFIG_HH
