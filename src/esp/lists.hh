/**
 * @file
 * ESP's compressed hardware prediction lists (paper §3.5, §4.2, §4.3).
 *
 * During speculative pre-execution ESP records what the event touched:
 *  - I-list / D-list: cache-block addresses, delta-encoded against the
 *    previous entry (8-bit offset + 3-bit contiguous-run length +
 *    7-bit instruction-count offset + 1 large-offset escape bit; an
 *    escaped address consumes two extra entries carrying the full
 *    26-bit block address);
 *  - B-List-Direction: one 6-bit entry per branch (4-bit PC offset,
 *    1 direction bit, 1 indirect bit), with the first two entries of
 *    every thirty carrying a retired-instruction-count offset;
 *  - B-List-Target: 17-bit entries (16-bit target offset + escape bit)
 *    for taken indirect branches.
 *
 * The classes below keep the *logical* records (block address,
 * instruction count, outcome...) and charge the exact encoded bit cost
 * of each append against the list's byte capacity, so the capacity
 * effects of Figure 8's 499 B / 68 B / ... provisioning are modeled
 * without bit-twiddling the payloads.
 */

#ifndef ESPSIM_ESP_LISTS_HH
#define ESPSIM_ESP_LISTS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/** One logical record of an I-list or D-list. */
struct AddressRecord
{
    Addr blockAddr = 0;      //!< block-aligned byte address
    InstCount instCount = 0; //!< event-relative instruction index
    unsigned runLength = 0;  //!< contiguous blocks that follow
};

/** How AddressList::append() stored (or refused) one block — the raw
 *  material of the list compression / coverage counters. */
enum class AppendOutcome : std::uint8_t
{
    NewRecord = 0,    //!< fresh delta-encoded entry
    NewRecordEscaped, //!< fresh entry needing large-offset escapes
    RunExtended,      //!< folded into the previous record's run field
    Retouch,          //!< same block again — deduplicated at zero cost
    Rejected,         //!< list full; the block is not covered
};

/** Capacity-bounded, delta-encoded list of cache block addresses. */
class AddressList
{
  public:
    /** @p capacity_bytes 0 means unbounded (the "ideal" ESP designs). */
    explicit AddressList(std::size_t capacity_bytes);

    /**
     * Record that @p addr's block was fetched at instruction
     * @p inst_count. Extends the previous record's run when contiguous.
     * @p outcome, when non-null, reports how the block was encoded.
     * @return false (and records nothing) once the list is full.
     */
    bool append(Addr addr, InstCount inst_count,
                AppendOutcome *outcome = nullptr);

    const std::vector<AddressRecord> &records() const { return records_; }
    std::size_t bitsUsed() const { return bitsUsed_; }
    std::size_t capacityBits() const { return capacityBits_; }
    bool full() const { return full_; }
    bool unbounded() const { return capacityBits_ == 0; }
    void clear();

    /** clear() plus a new byte budget; record storage is retained, so
     *  re-arming a list at an event boundary never allocates. */
    void resetCapacity(std::size_t capacity_bytes);

    /** Bits of one base entry (8 + 3 + 7 + 1). */
    static constexpr std::size_t entryBits = 19;

  private:
    std::size_t capacityBits_;
    std::size_t bitsUsed_ = 0;
    bool full_ = false;
    std::vector<AddressRecord> records_;
    Addr lastBlock_ = 0;
    InstCount lastInst_ = 0;
    bool haveLast_ = false;

    bool charge(std::size_t bits);
};

/** One logical record of the B-List-Direction (+ target side). */
struct BranchRecord
{
    Addr pc = 0;
    InstCount instCount = 0;
    Addr target = 0;   //!< taken target (0 if not taken)
    OpType type = OpType::BranchCond;
    bool taken = false;
    bool indirect = false;
};

/** Capacity-bounded branch outcome/target list. */
class BranchList
{
  public:
    /**
     * @p dir_capacity_bytes bounds B-List-Direction,
     * @p tgt_capacity_bytes bounds B-List-Target; 0 = unbounded.
     */
    BranchList(std::size_t dir_capacity_bytes,
               std::size_t tgt_capacity_bytes);

    /** Record one executed branch. @return false once full. */
    bool append(const BranchRecord &rec);

    const std::vector<BranchRecord> &records() const { return records_; }
    std::size_t dirBitsUsed() const { return dirBits_; }
    std::size_t tgtBitsUsed() const { return tgtBits_; }
    bool full() const { return full_; }
    void clear();

    /** clear() plus new byte budgets, retaining record storage. */
    void resetCapacity(std::size_t dir_capacity_bytes,
                       std::size_t tgt_capacity_bytes);

    /** Bits of one direction entry (4 + 1 + 1). */
    static constexpr std::size_t dirEntryBits = 6;
    /** Bits of one target entry (16 + 1). */
    static constexpr std::size_t tgtEntryBits = 17;
    /** Every this many entries, two entries carry instruction counts. */
    static constexpr std::size_t instCountPeriod = 30;

  private:
    std::size_t dirCapacityBits_;
    std::size_t tgtCapacityBits_;
    std::size_t dirBits_ = 0;
    std::size_t tgtBits_ = 0;
    bool full_ = false;
    std::vector<BranchRecord> records_;
    Addr lastPc_ = 0;
    bool haveLast_ = false;
    std::size_t sincePeriod_ = 0;
};

/**
 * Read cursor over prediction lists: the normal-mode consumption state
 * (how far prefetching / pre-training has advanced).
 */
struct ListCursor
{
    std::size_t next = 0;

    template <typename RecordVec>
    bool
    exhausted(const RecordVec &records) const
    {
        return next >= records.size();
    }

    void reset() { next = 0; }
};

} // namespace espsim

#endif // ESPSIM_ESP_LISTS_HH
