#include "esp/config.hh"

namespace espsim
{

std::size_t
EspConfig::hardwareBytes(unsigned depth) const
{
    // Per-mode accounting mirroring the paper's Figure 8.
    const unsigned iways = icachelet.assoc;
    const unsigned dways = dcachelet.assoc;
    // ESP-1 owns all ways but one; ESP-2 owns the reserved way.
    const std::size_t icl = depth == 0
        ? icachelet.sizeBytes * (iways - 1) / iways
        : icachelet.sizeBytes / iways;
    const std::size_t dcl = depth == 0
        ? dcachelet.sizeBytes * (dways - 1) / dways
        : dcachelet.sizeBytes / dways;

    const unsigned i = depth < 2 ? depth : 1;
    constexpr std::size_t rratBytes = 28;       // 32-entry RAT
    constexpr std::size_t eventQueueBytes = 8;  // 2-entry queue share
    constexpr std::size_t specialRegBytes = 12; // PC/SP/flags/mode

    return icl + dcl + iListBytes[i] + dListBytes[i] + bListDirBytes[i] +
        bListTgtBytes[i] + rratBytes + eventQueueBytes + specialRegBytes;
}

} // namespace espsim
