/**
 * @file
 * Bounded tracker of outstanding prefetches (an MSHR-like structure).
 *
 * A prefetch issued at cycle C for a block that lives at level L
 * becomes usable at C + latency(L). The block is inserted into the
 * target cache immediately (so pollution is modeled), and the ready
 * time is recorded here; a demand access that arrives before the ready
 * time pays the residual latency ("late prefetch").
 *
 * Both trackers sit on the per-demand-access path, so they use
 * open-addressed block-keyed tables (common/addr_map.hh) and an
 * intrusive ring for the FIFO instead of node-based containers: no
 * hashing-library heap nodes, no steady-state allocation.
 */

#ifndef ESPSIM_PREFETCH_INFLIGHT_HH
#define ESPSIM_PREFETCH_INFLIGHT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/addr_map.hh"
#include "common/types.hh"

namespace espsim
{

/** Who issued a prefetch (lifecycle attribution). */
enum class PrefetchSource : std::uint8_t
{
    EspIList = 0,  //!< ESP instruction-address list replay
    EspDList,      //!< ESP data-address list replay
    NextLineInstr, //!< next-line instruction prefetcher
    NextLineData,  //!< DCU next-line data prefetcher
    StrideData,    //!< IP-stride data prefetcher
    Other,         //!< untagged (tests, direct calls)
};

constexpr unsigned numPrefetchSources = 6;

/** Stable snake_case stat-name token for @p source. */
const char *prefetchSourceName(PrefetchSource source);

/** Issued-prefetch totals indexed by PrefetchSource. */
using PrefetchIssueCounts = std::array<std::uint64_t, numPrefetchSources>;

/**
 * Lifecycle outcome counters for one prefetch source.
 *
 * Taxonomy (MERE-style): a prefetch is *timely* when the demand access
 * arrives at or after its fill lands, *late* when demand arrives while
 * it is still in flight (the residue is paid), *useless* when it is
 * evicted — or the run ends — without ever being demanded, and
 * *harmful* when its fill displaced a live demand block (pollution).
 */
struct PrefetchSourceStats
{
    std::uint64_t issued = 0;
    std::uint64_t timely = 0;
    std::uint64_t late = 0;
    std::uint64_t useless = 0;
    std::uint64_t harmful = 0;
    Cycle leadCycleSum = 0; //!< Σ (demand − ready) over timely uses

    std::uint64_t used() const { return timely + late; }

    /** Fraction of issued prefetches that were demanded at all. */
    double
    accuracy() const
    {
        return issued == 0 ? 0.0
                           : static_cast<double>(used()) /
                static_cast<double>(issued);
    }

    /** Mean cycles a timely prefetch landed ahead of its demand. */
    double
    avgLeadCycles() const
    {
        return timely == 0 ? 0.0
                           : static_cast<double>(leadCycleSum) /
                static_cast<double>(timely);
    }
};

/**
 * Classifies every prefetch of one cache side (instruction or data)
 * as timely / late / useless / harmful, per source.
 *
 * The MemoryHierarchy drives it from three places: prefetch issue
 * (with the L1 victim the fill displaced), demand access, and demand
 * fill (with its victim). Unused prefetched blocks are scored useless
 * at eviction or at finalize(); a prefetch fill that displaces a
 * demand-live block scores harmful for the *issuing* source.
 */
class PrefetchLifecycleTracker
{
  public:
    /** A prefetch of @p block was issued; its fill lands at @p ready.
     *  @p evicted is the L1 victim the immediate fill displaced. */
    void
    onPrefetchIssue(Addr block, PrefetchSource source, Cycle ready,
                    std::optional<Addr> evicted)
    {
        if (evicted)
            onEviction(*evicted, source);
        ++stats_[static_cast<std::size_t>(source)].issued;
        live_.insertOrAssign(block, LiveEntry{source, ready, false});
    }

    /** A demand access touched @p block at @p now (hit or miss). */
    void
    onDemandAccess(Addr block, Cycle now)
    {
        if (LiveEntry *entry = live_.find(block);
            entry && !entry->used) {
            entry->used = true;
            PrefetchSourceStats &s =
                stats_[static_cast<std::size_t>(entry->source)];
            if (now >= entry->ready) {
                ++s.timely;
                s.leadCycleSum += now - entry->ready;
            } else {
                ++s.late;
            }
        }
        // A demanded block (prefetched or not) is live demand data:
        // if a later prefetch fill displaces it, that fill was
        // harmful.
        demandLive_.insert(block);
    }

    /** A demand fill of @p block displaced @p evicted from the L1. */
    void
    onDemandFill(Addr block, std::optional<Addr> evicted)
    {
        if (evicted)
            onEviction(*evicted, std::nullopt);
        demandLive_.insert(block);
        // The block arrived on demand, not via prefetch: drop any
        // stale lifecycle record (its eviction was already scored).
        live_.erase(block);
    }

    /** End of run: score still-unused live prefetches as useless. */
    void finalize();

    const PrefetchSourceStats &
    stats(PrefetchSource source) const
    {
        return stats_[static_cast<std::size_t>(source)];
    }

    PrefetchIssueCounts issuedCounts() const;

    void clear();

  private:
    struct LiveEntry
    {
        PrefetchSource source = PrefetchSource::Other;
        Cycle ready = 0;
        bool used = false;
    };

    /** @p block left the L1; @p byPrefetch names the displacing
     *  source when the evictor was a prefetch fill. */
    void
    onEviction(Addr block, std::optional<PrefetchSource> byPrefetch)
    {
        if (LiveEntry *entry = live_.find(block)) {
            if (!entry->used) {
                ++stats_[static_cast<std::size_t>(entry->source)]
                      .useless;
            } else if (byPrefetch) {
                // The victim was prefetched data the demand stream
                // had adopted — displacing it is pollution all the
                // same.
                ++stats_[static_cast<std::size_t>(*byPrefetch)].harmful;
            }
            live_.erase(block);
            demandLive_.erase(block);
            return;
        }
        if (demandLive_.erase(block) && byPrefetch)
            ++stats_[static_cast<std::size_t>(*byPrefetch)].harmful;
    }

    std::array<PrefetchSourceStats, numPrefetchSources> stats_{};
    AddrMap<LiveEntry> live_;
    AddrSet demandLive_{1024};
};

/**
 * FIFO-bounded map of in-flight prefetch block addresses.
 *
 * The FIFO is an intrusive power-of-two ring of block addresses. A
 * consumed block leaves the table immediately but its ring slot stays
 * behind as a stale entry (exactly the retired-deque semantics the
 * eviction loop always had); the ring therefore grows past the
 * nominal capacity and is compacted only by eviction.
 */
class InflightPrefetchBuffer
{
  public:
    explicit InflightPrefetchBuffer(std::size_t capacity = 64)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
        fifo_.resize(64);
    }

    /**
     * Record a prefetch of @p block_addr completing at @p ready.
     * When full, the oldest entry is replaced (finite MSHRs).
     * @return false if the block was already in flight.
     */
    bool
    issue(Addr block_addr, Cycle ready)
    {
        if (map_.contains(block_addr))
            return false;
        while (map_.size() >= capacity_ && fifoHead_ != fifoTail_) {
            map_.erase(fifo_[fifoHead_ & (fifo_.size() - 1)]);
            ++fifoHead_;
        }
        map_.insertOrAssign(block_addr, ready);
        fifoPush(block_addr);
        return true;
    }

    /**
     * A demand access touched the block: remove and return its ready
     * cycle (nullopt if not in flight).
     */
    std::optional<Cycle>
    consume(Addr block_addr)
    {
        Cycle *ready = map_.find(block_addr);
        if (!ready)
            return std::nullopt;
        const Cycle when = *ready;
        map_.erase(block_addr);
        // The ring may retain a stale address; issue() skips entries
        // no longer present in the map when it evicts.
        return when;
    }

    bool
    contains(Addr block_addr) const
    {
        return map_.contains(block_addr);
    }

    std::size_t size() const { return map_.size(); }

    void
    clear()
    {
        map_.clear();
        fifoHead_ = fifoTail_ = 0;
    }

  private:
    void
    fifoPush(Addr block_addr)
    {
        if (fifoTail_ - fifoHead_ == fifo_.size())
            growFifo();
        fifo_[fifoTail_ & (fifo_.size() - 1)] = block_addr;
        ++fifoTail_;
    }

    void growFifo();

    std::size_t capacity_;
    AddrMap<Cycle> map_;
    std::vector<Addr> fifo_; //!< power-of-two ring store
    std::uint64_t fifoHead_ = 0;
    std::uint64_t fifoTail_ = 0;
};

} // namespace espsim

#endif // ESPSIM_PREFETCH_INFLIGHT_HH
