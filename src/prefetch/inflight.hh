/**
 * @file
 * Bounded tracker of outstanding prefetches (an MSHR-like structure).
 *
 * A prefetch issued at cycle C for a block that lives at level L
 * becomes usable at C + latency(L). The block is inserted into the
 * target cache immediately (so pollution is modeled), and the ready
 * time is recorded here; a demand access that arrives before the ready
 * time pays the residual latency ("late prefetch").
 */

#ifndef ESPSIM_PREFETCH_INFLIGHT_HH
#define ESPSIM_PREFETCH_INFLIGHT_HH

#include <cstddef>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/types.hh"

namespace espsim
{

/** FIFO-bounded map of in-flight prefetch block addresses. */
class InflightPrefetchBuffer
{
  public:
    explicit InflightPrefetchBuffer(std::size_t capacity = 64);

    /**
     * Record a prefetch of @p block_addr completing at @p ready.
     * When full, the oldest entry is replaced (finite MSHRs).
     * @return false if the block was already in flight.
     */
    bool issue(Addr block_addr, Cycle ready);

    /**
     * A demand access touched the block: remove and return its ready
     * cycle (nullopt if not in flight).
     */
    std::optional<Cycle> consume(Addr block_addr);

    bool contains(Addr block_addr) const;
    std::size_t size() const { return map_.size(); }
    void clear();

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, Cycle> map_;
    std::deque<Addr> fifo_;
};

} // namespace espsim

#endif // ESPSIM_PREFETCH_INFLIGHT_HH
