/**
 * @file
 * Bounded tracker of outstanding prefetches (an MSHR-like structure).
 *
 * A prefetch issued at cycle C for a block that lives at level L
 * becomes usable at C + latency(L). The block is inserted into the
 * target cache immediately (so pollution is modeled), and the ready
 * time is recorded here; a demand access that arrives before the ready
 * time pays the residual latency ("late prefetch").
 */

#ifndef ESPSIM_PREFETCH_INFLIGHT_HH
#define ESPSIM_PREFETCH_INFLIGHT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hh"

namespace espsim
{

/** Who issued a prefetch (lifecycle attribution). */
enum class PrefetchSource : std::uint8_t
{
    EspIList = 0,  //!< ESP instruction-address list replay
    EspDList,      //!< ESP data-address list replay
    NextLineInstr, //!< next-line instruction prefetcher
    NextLineData,  //!< DCU next-line data prefetcher
    StrideData,    //!< IP-stride data prefetcher
    Other,         //!< untagged (tests, direct calls)
};

constexpr unsigned numPrefetchSources = 6;

/** Stable snake_case stat-name token for @p source. */
const char *prefetchSourceName(PrefetchSource source);

/** Issued-prefetch totals indexed by PrefetchSource. */
using PrefetchIssueCounts = std::array<std::uint64_t, numPrefetchSources>;

/**
 * Lifecycle outcome counters for one prefetch source.
 *
 * Taxonomy (MERE-style): a prefetch is *timely* when the demand access
 * arrives at or after its fill lands, *late* when demand arrives while
 * it is still in flight (the residue is paid), *useless* when it is
 * evicted — or the run ends — without ever being demanded, and
 * *harmful* when its fill displaced a live demand block (pollution).
 */
struct PrefetchSourceStats
{
    std::uint64_t issued = 0;
    std::uint64_t timely = 0;
    std::uint64_t late = 0;
    std::uint64_t useless = 0;
    std::uint64_t harmful = 0;
    Cycle leadCycleSum = 0; //!< Σ (demand − ready) over timely uses

    std::uint64_t used() const { return timely + late; }

    /** Fraction of issued prefetches that were demanded at all. */
    double
    accuracy() const
    {
        return issued == 0 ? 0.0
                           : static_cast<double>(used()) /
                static_cast<double>(issued);
    }

    /** Mean cycles a timely prefetch landed ahead of its demand. */
    double
    avgLeadCycles() const
    {
        return timely == 0 ? 0.0
                           : static_cast<double>(leadCycleSum) /
                static_cast<double>(timely);
    }
};

/**
 * Classifies every prefetch of one cache side (instruction or data)
 * as timely / late / useless / harmful, per source.
 *
 * The MemoryHierarchy drives it from three places: prefetch issue
 * (with the L1 victim the fill displaced), demand access, and demand
 * fill (with its victim). Unused prefetched blocks are scored useless
 * at eviction or at finalize(); a prefetch fill that displaces a
 * demand-live block scores harmful for the *issuing* source.
 */
class PrefetchLifecycleTracker
{
  public:
    /** A prefetch of @p block was issued; its fill lands at @p ready.
     *  @p evicted is the L1 victim the immediate fill displaced. */
    void onPrefetchIssue(Addr block, PrefetchSource source, Cycle ready,
                         std::optional<Addr> evicted);

    /** A demand access touched @p block at @p now (hit or miss). */
    void onDemandAccess(Addr block, Cycle now);

    /** A demand fill of @p block displaced @p evicted from the L1. */
    void onDemandFill(Addr block, std::optional<Addr> evicted);

    /** End of run: score still-unused live prefetches as useless. */
    void finalize();

    const PrefetchSourceStats &
    stats(PrefetchSource source) const
    {
        return stats_[static_cast<std::size_t>(source)];
    }

    PrefetchIssueCounts issuedCounts() const;

    void clear();

  private:
    struct LiveEntry
    {
        PrefetchSource source = PrefetchSource::Other;
        Cycle ready = 0;
        bool used = false;
    };

    /** @p block left the L1; @p byPrefetch names the displacing
     *  source when the evictor was a prefetch fill. */
    void onEviction(Addr block,
                    std::optional<PrefetchSource> byPrefetch);

    std::array<PrefetchSourceStats, numPrefetchSources> stats_{};
    std::unordered_map<Addr, LiveEntry> live_;
    std::unordered_set<Addr> demandLive_;
};

/** FIFO-bounded map of in-flight prefetch block addresses. */
class InflightPrefetchBuffer
{
  public:
    explicit InflightPrefetchBuffer(std::size_t capacity = 64);

    /**
     * Record a prefetch of @p block_addr completing at @p ready.
     * When full, the oldest entry is replaced (finite MSHRs).
     * @return false if the block was already in flight.
     */
    bool issue(Addr block_addr, Cycle ready);

    /**
     * A demand access touched the block: remove and return its ready
     * cycle (nullopt if not in flight).
     */
    std::optional<Cycle> consume(Addr block_addr);

    bool contains(Addr block_addr) const;
    std::size_t size() const { return map_.size(); }
    void clear();

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, Cycle> map_;
    std::deque<Addr> fifo_;
};

} // namespace espsim

#endif // ESPSIM_PREFETCH_INFLIGHT_HH
