// Next-line prefetchers are header-only; this file anchors the
// translation unit so the build exposes a stable object for the
// library target.
#include "prefetch/next_line.hh"
