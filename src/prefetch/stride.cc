#include "prefetch/stride.hh"

namespace espsim
{

StridePrefetcher::StridePrefetcher(std::size_t entries, unsigned degree)
    : table_(entries), degree_(degree)
{
}

std::size_t
StridePrefetcher::indexOf(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) % table_.size());
}

std::uint32_t
StridePrefetcher::tagOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) / table_.size()) &
        0xffff;
}

void
StridePrefetcher::notifyAccess(MemoryHierarchy &mem, Addr pc, Addr addr,
                               Cycle now)
{
    Entry &e = table_[indexOf(pc)];
    const std::uint32_t tag = tagOf(pc);
    if (!e.valid || e.tag != tag) {
        e = Entry{};
        e.valid = true;
        e.tag = tag;
        e.lastAddr = addr;
        return;
    }
    const auto stride = static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(e.lastAddr);
    if (stride == e.stride && stride != 0) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
    }
    e.lastAddr = addr;
    if (e.confidence >= 2) {
        for (unsigned d = 1; d <= degree_; ++d) {
            // Unsigned block arithmetic: the target wraps mod 2^64, so
            // an address-space overrun in either direction shows up as
            // the target landing on the wrong side of addr. Such
            // prefetches used to be dropped silently (as was block 0
            // on a down-counting stream), quietly deflating the
            // lifecycle tracker's coverage denominator; now they are
            // counted so accuracy/coverage stay honest.
            const Addr target = addr +
                static_cast<Addr>(d) *
                    static_cast<Addr>(e.stride);
            const bool wrapped = e.stride < 0 ? target > addr
                                              : target < addr;
            if (wrapped) {
                ++droppedWraps_;
                continue;
            }
            mem.prefetchData(target, now, PrefetchSource::StrideData);
        }
    }
}

std::size_t
StridePrefetcher::confidentEntries() const
{
    std::size_t n = 0;
    for (const Entry &e : table_) {
        if (e.valid && e.confidence >= 2)
            ++n;
    }
    return n;
}

} // namespace espsim
