/**
 * @file
 * PC-indexed stride data prefetcher (256 entries, per the paper's
 * Figure 7 "Data: NL, Stride (256 entries)").
 *
 * Classic reference-prediction-table design (Chen & Baer): each load
 * PC tracks its last address and last stride; two consecutive equal
 * strides make the entry confident and arm prefetching of addr +
 * stride.
 */

#ifndef ESPSIM_PREFETCH_STRIDE_HH
#define ESPSIM_PREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"

namespace espsim
{

/** Reference prediction table stride prefetcher. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(std::size_t entries = 256,
                              unsigned degree = 1);

    /** Observe a demand load at @p pc touching @p addr. */
    void notifyAccess(MemoryHierarchy &mem, Addr pc, Addr addr,
                      Cycle now);

    /** Confident entries currently held (for tests). */
    std::size_t confidentEntries() const;

    /**
     * Prefetch targets dropped because the stride walked off either
     * end of the address space (unsigned wrap). Exported as the
     * `stride.dropped_wraps` stat.
     */
    std::uint64_t droppedWraps() const { return droppedWraps_; }

  private:
    struct Entry
    {
        std::uint32_t tag = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::vector<Entry> table_;
    unsigned degree_;
    std::uint64_t droppedWraps_ = 0;

    std::size_t indexOf(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;
};

} // namespace espsim

#endif // ESPSIM_PREFETCH_STRIDE_HH
