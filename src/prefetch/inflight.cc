#include "prefetch/inflight.hh"

namespace espsim
{

InflightPrefetchBuffer::InflightPrefetchBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

bool
InflightPrefetchBuffer::issue(Addr block_addr, Cycle ready)
{
    if (map_.count(block_addr))
        return false;
    while (map_.size() >= capacity_ && !fifo_.empty()) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
    }
    map_.emplace(block_addr, ready);
    fifo_.push_back(block_addr);
    return true;
}

std::optional<Cycle>
InflightPrefetchBuffer::consume(Addr block_addr)
{
    auto it = map_.find(block_addr);
    if (it == map_.end())
        return std::nullopt;
    const Cycle ready = it->second;
    map_.erase(it);
    // The fifo_ may retain a stale address; issue() skips entries no
    // longer present in the map when it evicts.
    return ready;
}

bool
InflightPrefetchBuffer::contains(Addr block_addr) const
{
    return map_.count(block_addr) != 0;
}

void
InflightPrefetchBuffer::clear()
{
    map_.clear();
    fifo_.clear();
}

} // namespace espsim
