#include "prefetch/inflight.hh"

#include "common/logging.hh"

namespace espsim
{

const char *
prefetchSourceName(PrefetchSource source)
{
    switch (source) {
      case PrefetchSource::EspIList: return "esp_ilist";
      case PrefetchSource::EspDList: return "esp_dlist";
      case PrefetchSource::NextLineInstr: return "next_line_instr";
      case PrefetchSource::NextLineData: return "next_line_data";
      case PrefetchSource::StrideData: return "stride_data";
      case PrefetchSource::Other: return "other";
    }
    panic("prefetchSourceName: bad source %u",
          static_cast<unsigned>(source));
}

void
PrefetchLifecycleTracker::onPrefetchIssue(Addr block,
                                          PrefetchSource source,
                                          Cycle ready,
                                          std::optional<Addr> evicted)
{
    if (evicted)
        onEviction(*evicted, source);
    ++stats_[static_cast<std::size_t>(source)].issued;
    live_[block] = LiveEntry{source, ready, false};
}

void
PrefetchLifecycleTracker::onDemandAccess(Addr block, Cycle now)
{
    auto it = live_.find(block);
    if (it != live_.end() && !it->second.used) {
        it->second.used = true;
        PrefetchSourceStats &s =
            stats_[static_cast<std::size_t>(it->second.source)];
        if (now >= it->second.ready) {
            ++s.timely;
            s.leadCycleSum += now - it->second.ready;
        } else {
            ++s.late;
        }
    }
    // A demanded block (prefetched or not) is live demand data: if a
    // later prefetch fill displaces it, that fill was harmful.
    demandLive_.insert(block);
}

void
PrefetchLifecycleTracker::onDemandFill(Addr block,
                                       std::optional<Addr> evicted)
{
    if (evicted)
        onEviction(*evicted, std::nullopt);
    demandLive_.insert(block);
    // The block arrived on demand, not via prefetch: drop any stale
    // lifecycle record (its eviction was already scored).
    live_.erase(block);
}

void
PrefetchLifecycleTracker::onEviction(
    Addr block, std::optional<PrefetchSource> byPrefetch)
{
    auto it = live_.find(block);
    if (it != live_.end()) {
        if (!it->second.used) {
            ++stats_[static_cast<std::size_t>(it->second.source)]
                  .useless;
        } else if (byPrefetch) {
            // The victim was prefetched data the demand stream had
            // adopted — displacing it is pollution all the same.
            ++stats_[static_cast<std::size_t>(*byPrefetch)].harmful;
        }
        live_.erase(it);
        demandLive_.erase(block);
        return;
    }
    if (demandLive_.erase(block) != 0 && byPrefetch)
        ++stats_[static_cast<std::size_t>(*byPrefetch)].harmful;
}

void
PrefetchLifecycleTracker::finalize()
{
    for (auto &[block, entry] : live_) {
        (void)block;
        if (!entry.used)
            ++stats_[static_cast<std::size_t>(entry.source)].useless;
    }
    live_.clear();
    demandLive_.clear();
}

PrefetchIssueCounts
PrefetchLifecycleTracker::issuedCounts() const
{
    PrefetchIssueCounts counts{};
    for (unsigned s = 0; s < numPrefetchSources; ++s)
        counts[s] = stats_[s].issued;
    return counts;
}

void
PrefetchLifecycleTracker::clear()
{
    stats_ = {};
    live_.clear();
    demandLive_.clear();
}

InflightPrefetchBuffer::InflightPrefetchBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

bool
InflightPrefetchBuffer::issue(Addr block_addr, Cycle ready)
{
    if (map_.count(block_addr))
        return false;
    while (map_.size() >= capacity_ && !fifo_.empty()) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
    }
    map_.emplace(block_addr, ready);
    fifo_.push_back(block_addr);
    return true;
}

std::optional<Cycle>
InflightPrefetchBuffer::consume(Addr block_addr)
{
    auto it = map_.find(block_addr);
    if (it == map_.end())
        return std::nullopt;
    const Cycle ready = it->second;
    map_.erase(it);
    // The fifo_ may retain a stale address; issue() skips entries no
    // longer present in the map when it evicts.
    return ready;
}

bool
InflightPrefetchBuffer::contains(Addr block_addr) const
{
    return map_.count(block_addr) != 0;
}

void
InflightPrefetchBuffer::clear()
{
    map_.clear();
    fifo_.clear();
}

} // namespace espsim
