#include "prefetch/inflight.hh"

#include "common/logging.hh"

namespace espsim
{

const char *
prefetchSourceName(PrefetchSource source)
{
    switch (source) {
      case PrefetchSource::EspIList: return "esp_ilist";
      case PrefetchSource::EspDList: return "esp_dlist";
      case PrefetchSource::NextLineInstr: return "next_line_instr";
      case PrefetchSource::NextLineData: return "next_line_data";
      case PrefetchSource::StrideData: return "stride_data";
      case PrefetchSource::Other: return "other";
    }
    panic("prefetchSourceName: bad source %u",
          static_cast<unsigned>(source));
}

void
PrefetchLifecycleTracker::finalize()
{
    live_.forEach([this](Addr, LiveEntry &entry) {
        if (!entry.used)
            ++stats_[static_cast<std::size_t>(entry.source)].useless;
    });
    live_.clear();
    demandLive_.clear();
}

PrefetchIssueCounts
PrefetchLifecycleTracker::issuedCounts() const
{
    PrefetchIssueCounts counts{};
    for (unsigned s = 0; s < numPrefetchSources; ++s)
        counts[s] = stats_[s].issued;
    return counts;
}

void
PrefetchLifecycleTracker::clear()
{
    stats_ = {};
    live_.clear();
    demandLive_.clear();
}

void
InflightPrefetchBuffer::growFifo()
{
    // Unroll the ring into a fresh store twice the size, oldest
    // first, so index arithmetic stays a single mask.
    std::vector<Addr> bigger(fifo_.size() * 2);
    const std::uint64_t count = fifoTail_ - fifoHead_;
    for (std::uint64_t i = 0; i < count; ++i)
        bigger[i] = fifo_[(fifoHead_ + i) & (fifo_.size() - 1)];
    fifo_ = std::move(bigger);
    fifoHead_ = 0;
    fifoTail_ = count;
}

} // namespace espsim
