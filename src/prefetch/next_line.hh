/**
 * @file
 * Next-line prefetchers.
 *
 * Instruction side: classic next-line (IBM 360/91 style) — every
 * demand fetch of block B prefetches B+1.
 *
 * Data side: modeled on Intel's DCU prefetcher (Doweck white paper,
 * paper §5): it waits for multiple accesses to the *same* line in a
 * short window before prefetching the next line, which filters
 * non-streaming traffic.
 */

#ifndef ESPSIM_PREFETCH_NEXT_LINE_HH
#define ESPSIM_PREFETCH_NEXT_LINE_HH

#include "cache/hierarchy.hh"
#include "common/types.hh"

namespace espsim
{

/** Next-line instruction prefetcher. */
class NextLineInstrPrefetcher
{
  public:
    /** Degree = how many sequential blocks to prefetch ahead. */
    explicit NextLineInstrPrefetcher(unsigned degree = 1)
        : degree_(degree)
    {
    }

    /** Observe a demand instruction fetch; issue next-line prefetches. */
    void
    notifyAccess(MemoryHierarchy &mem, Addr addr, Cycle now)
    {
        const Addr block = blockAlign(addr);
        if (block == lastBlock_)
            return;
        lastBlock_ = block;
        for (unsigned d = 1; d <= degree_; ++d) {
            mem.prefetchInstr(block + d * blockBytes, now,
                              PrefetchSource::NextLineInstr);
        }
    }

  private:
    unsigned degree_;
    Addr lastBlock_ = ~Addr{0};
};

/** Intel DCU-style next-line data prefetcher. */
class DcuPrefetcher
{
  public:
    /** @p trigger_count accesses to one line arm the next-line fetch. */
    explicit DcuPrefetcher(unsigned trigger_count = 4)
        : trigger_(trigger_count)
    {
    }

    /** Observe a demand data access. */
    void
    notifyAccess(MemoryHierarchy &mem, Addr addr, Cycle now)
    {
        const Addr block = blockAlign(addr);
        if (block == lastBlock_) {
            if (++count_ >= trigger_) {
                mem.prefetchData(block + blockBytes, now,
                                 PrefetchSource::NextLineData);
                count_ = 0;
            }
        } else {
            lastBlock_ = block;
            count_ = 1;
        }
    }

  private:
    unsigned trigger_;
    Addr lastBlock_ = ~Addr{0};
    unsigned count_ = 0;
};

} // namespace espsim

#endif // ESPSIM_PREFETCH_NEXT_LINE_HH
