#include "report/interval.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/version.hh"
#include "report/artifact.hh"
#include "report/json_writer.hh"
#include "report/timeline.hh"

namespace espsim
{

namespace
{

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/** Index of @p name in sorted @p names, or npos. */
std::size_t
indexOf(const std::vector<std::string> &names, const std::string &name)
{
    const auto it =
        std::lower_bound(names.begin(), names.end(), name);
    if (it == names.end() || *it != name)
        return npos;
    return static_cast<std::size_t>(it - names.begin());
}

} // namespace

IntervalSampler::IntervalSampler(const StatRegistry &reg,
                                 IntervalConfig period)
    : reg_(reg)
{
    series_.period = period;
    // Freeze the counter name set now: stats registered later (the
    // post-run handler breakdown, derived metrics) never appear, so
    // every sample sees the same names and deltas stay well-defined.
    // Interning the getters here makes each sample a plain walk over
    // them — no per-sample string maps.
    getters_.reserve(reg_.size());
    for (StatRegistry::CounterHandle &h : reg_.counterHandles()) {
        series_.names.push_back(std::move(h.name));
        getters_.push_back(std::move(h.getter));
    }
    series_.baseline.reserve(getters_.size());
    for (const StatRegistry::Getter &getter : getters_)
        series_.baseline.push_back(getter());
    prev_ = series_.baseline;
    nextCycle_ = period.sampleCycles;
    nextEvents_ = period.sampleEvents;

    idxCycles_ = indexOf(series_.names, "core.cycles");
    idxInstructions_ = indexOf(series_.names, "core.instructions");
    idxL1iMisses_ = indexOf(series_.names, "mem.l1i.misses");
    idxL1dAccesses_ = indexOf(series_.names, "mem.l1d.accesses");
    idxL1dMisses_ = indexOf(series_.names, "mem.l1d.misses");
    idxEspPreExec_ =
        indexOf(series_.names, "core.cycle_bucket.esp_pre_exec");
}

std::vector<double>
IntervalSampler::currentValues() const
{
    std::vector<double> values;
    values.reserve(getters_.size());
    for (const StatRegistry::Getter &getter : getters_)
        values.push_back(getter());
    return values;
}

void
IntervalSampler::onEventRetired(std::uint64_t events_retired, Cycle now)
{
    if (finalized_)
        return;
    const bool cycles_due =
        series_.period.sampleCycles > 0 && now >= nextCycle_;
    const bool events_due = series_.period.sampleEvents > 0 &&
        events_retired >= nextEvents_;
    if (!cycles_due && !events_due)
        return;
    sample(now, events_retired);
    // Advance past every grid point the run has already crossed: an
    // event spanning several periods yields one (larger) interval,
    // since the registry is only consistent at retire boundaries.
    if (series_.period.sampleCycles > 0) {
        while (nextCycle_ <= now)
            nextCycle_ += series_.period.sampleCycles;
    }
    if (series_.period.sampleEvents > 0) {
        while (nextEvents_ <= events_retired)
            nextEvents_ += series_.period.sampleEvents;
    }
}

void
IntervalSampler::sample(Cycle now, std::uint64_t events_retired)
{
    std::vector<double> values = currentValues();
    IntervalPoint point;
    point.endCycle = now;
    point.endEvents = events_retired;
    point.deltas.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        point.deltas[i] = values[i] - prev_[i];
    prev_ = std::move(values);
    emitTimelineCounters(point);
    series_.intervals.push_back(std::move(point));
}

void
IntervalSampler::emitTimelineCounters(const IntervalPoint &point)
{
    if (!timeline_)
        return;
    const auto delta = [&point](std::size_t idx) {
        return idx == npos ? 0.0 : point.deltas[idx];
    };
    const double cycles = delta(idxCycles_);
    const double instrs = delta(idxInstructions_);
    std::vector<std::pair<std::string, double>> metrics;
    if (cycles > 0) {
        metrics.emplace_back("interval.ipc", instrs / cycles);
        if (idxEspPreExec_ != npos) {
            metrics.emplace_back("interval.esp_occupancy",
                                 delta(idxEspPreExec_) / cycles);
        }
    }
    if (instrs > 0 && idxL1iMisses_ != npos) {
        metrics.emplace_back("interval.l1i_mpki",
                             delta(idxL1iMisses_) /
                                 (instrs / 1000.0));
    }
    const double l1d_accesses = delta(idxL1dAccesses_);
    if (l1d_accesses > 0 && idxL1dMisses_ != npos) {
        metrics.emplace_back("interval.l1d_miss_rate",
                             delta(idxL1dMisses_) / l1d_accesses);
    }
    if (!metrics.empty())
        timeline_->recordIntervalCounters(point.endCycle,
                                          std::move(metrics));
}

void
IntervalSampler::finalize(Cycle now, std::uint64_t events_retired)
{
    if (finalized_)
        panic("IntervalSampler: finalize() called twice");
    std::vector<double> values = currentValues();
    // Trailing partial interval: whatever moved since the last grid
    // sample. Emitting it makes the deltas telescope exactly to the
    // final snapshot.
    if (values != prev_) {
        IntervalPoint point;
        point.endCycle = now;
        point.endEvents = events_retired;
        point.deltas.resize(values.size());
        for (std::size_t i = 0; i < values.size(); ++i)
            point.deltas[i] = values[i] - prev_[i];
        emitTimelineCounters(point);
        series_.intervals.push_back(std::move(point));
    }
    prev_ = values;
    series_.finalCycle = now;
    series_.finalEvents = events_retired;
    series_.finalValues = std::move(values);
    finalized_ = true;
}

std::string
renderIntervalSeriesJson(const ArtifactManifest &manifest,
                         const IntervalSeries &series)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-interval-series");
    w.key("format_version")
        .value(std::uint64_t{intervalSeriesFormatVersion});
    w.key("manifest").beginObject();
    w.key("source").value(manifest.source);
    w.key("tool_version")
        .value(manifest.toolVersion.empty() ? versionString()
                                            : manifest.toolVersion);
    w.key("build_type")
        .value(manifest.buildType.empty() ? buildTypeString()
                                          : manifest.buildType);
    w.key("config_hash").value(series.configHash);
    w.key("config").value(series.configName);
    w.key("workload").value(series.workloadName);
    w.key("sample_cycles")
        .value(std::uint64_t{series.period.sampleCycles});
    w.key("sample_events")
        .value(std::uint64_t{series.period.sampleEvents});
    w.endObject();

    w.key("names").beginArray();
    for (const std::string &name : series.names)
        w.value(name);
    w.endArray();

    w.key("baseline").beginObject();
    w.key("cycle").value(std::uint64_t{series.baselineCycle});
    w.key("events").value(std::uint64_t{series.baselineEvents});
    w.key("values").beginArray();
    for (const double v : series.baseline)
        w.value(v);
    w.endArray();
    w.endObject();

    w.key("intervals").beginArray();
    for (const IntervalPoint &point : series.intervals) {
        w.beginObject();
        w.key("end_cycle").value(std::uint64_t{point.endCycle});
        w.key("end_events").value(std::uint64_t{point.endEvents});
        w.key("deltas").beginArray();
        for (const double v : point.deltas)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("final").beginObject();
    w.key("cycle").value(std::uint64_t{series.finalCycle});
    w.key("events").value(std::uint64_t{series.finalEvents});
    w.key("values").beginArray();
    for (const double v : series.finalValues)
        w.value(v);
    w.endArray();
    w.endObject();

    w.endObject();
    return w.str();
}

} // namespace espsim
