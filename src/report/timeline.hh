/**
 * @file
 * Opt-in per-event timeline recorder with Chrome trace_event export.
 *
 * When attached to a run (espsim run --timeline out.json), the core
 * reports each event's queue/dispatch/retire cycles and every stall it
 * hits (I-miss bubble, ROB-head data miss, LSQ full, mispredict flush,
 * BTB miss); the ESP controller reports each pre-execution window it
 * spends inside a stall shadow. writeChromeTrace() serializes it all
 * in the Chrome trace_event JSON format, which loads directly in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing — fitting,
 * given the paper's workloads are Chromium's renderer events.
 *
 * Cycle-to-time mapping: 1 simulated cycle = 1 microsecond of trace
 * time (`ts`/`dur` are microseconds in the trace_event spec), so a
 * slice's `dur` reads directly as its cycle count.
 *
 * Memory behaviour: by default the recorder buffers every span and
 * renderChromeTrace() serializes them in one pass. Two controls keep
 * long runs bounded:
 *  - streamTo(path) switches to incremental export — each event's
 *    record group (slices, stalls, ESP windows) is serialized and
 *    written as soon as the next event begins, so the buffer holds at
 *    most one event's spans. Both modes produce byte-identical files.
 *  - setEventLimit(n) caps the recorded events at n; later events are
 *    dropped (and counted) instead of silently ballooning RSS, with a
 *    warning to stderr when the trace is finalized.
 *
 * Interval sampling (src/report/interval.hh) can append counter
 * tracks — recordIntervalCounters() samples land on their own trace
 * row so IPC/miss-rate phases line up visually with the event slices.
 *
 * The recorder costs nothing when absent: components hold a nullable
 * pointer and skip all bookkeeping when it is null.
 */

#ifndef ESPSIM_REPORT_TIMELINE_HH
#define ESPSIM_REPORT_TIMELINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace espsim
{

class JsonWriter;

/** Trace format version written into the exported file. */
constexpr std::uint32_t timelineFormatVersion = 1;

/** Why the core sat idle (timeline view; richer than StallKind). */
enum class TimelineStall : std::uint8_t
{
    InstrMiss,  //!< fetch bubble beyond the hidden L1 latency
    DataMiss,   //!< load miss shadow (ROB-head / MLP window)
    LsqFull,    //!< oldest memory op blocking a full LSQ
    Mispredict, //!< branch mispredict flush
    BtbMiss,    //!< taken branch with no/old BTB target
};

const char *timelineStallName(TimelineStall kind);

/** Records one run's per-event timing; exports Chrome trace JSON. */
class EventTimeline
{
  public:
    EventTimeline();
    ~EventTimeline();

    EventTimeline(const EventTimeline &) = delete;
    EventTimeline &operator=(const EventTimeline &) = delete;

    /** Event reached the queue head (before looper overhead). */
    void eventQueued(std::size_t event_idx, Cycle now);

    /** First op of the event enters the pipeline. */
    void eventDispatched(std::size_t event_idx, Cycle now);

    /** Event fully retired. @p instructions is its op count. */
    void eventRetired(std::size_t event_idx, Cycle now,
                      InstCount instructions);

    /**
     * Attach this event's cycle-accounting bucket deltas (name, cycle
     * pairs). Exported both as Perfetto counter tracks and as args on
     * the event slice, so stalls are explained visually.
     */
    void eventCycleBuckets(
        std::size_t event_idx,
        std::vector<std::pair<std::string, Cycle>> buckets);

    /** Attach this event's prefetch-issue tallies by source. */
    void eventPrefetchTallies(
        std::size_t event_idx,
        std::vector<std::pair<std::string, std::uint64_t>> tallies);

    /** One stall of @p kind, @p dur cycles starting at @p start. */
    void recordStall(TimelineStall kind, Cycle start, Cycle dur);

    /**
     * ESP spent @p dur cycles of a stall shadow pre-executing event
     * @p spec_event_idx at depth @p depth (1-based: ESP-1, ESP-2).
     */
    void recordEspWindow(unsigned depth, std::size_t spec_event_idx,
                         Cycle start, Cycle dur);

    /**
     * One interval-sampling counter snapshot at cycle @p ts: each
     * (metric, value) pair becomes a point on its own counter track.
     * Samples are buffered (they are tiny) and emitted after the
     * event slices in both buffered and streaming modes.
     */
    void recordIntervalCounters(
        Cycle ts, std::vector<std::pair<std::string, double>> values);

    /** Run metadata stamped into the trace header. */
    void setRunInfo(const std::string &config_name,
                    const std::string &workload_name);

    /**
     * Label the trace's provenance in otherData.trace_kind (e.g.
     * "flight-recorder" for anomaly dumps); empty = omitted, which is
     * what live full-run timelines write.
     */
    void setTraceKind(const std::string &kind) { traceKind_ = kind; }

    /**
     * Record at most @p max_events events (0 = unlimited). Events
     * beyond the cap are dropped and counted; finalizing the trace
     * warns on stderr when anything was dropped.
     */
    void setEventLimit(std::size_t max_events);

    /** Events dropped by the event limit so far. */
    std::size_t droppedEvents() const { return droppedEvents_; }

    std::size_t numEvents() const
    {
        return flushedEvents_ + events_.size();
    }
    std::size_t numStalls() const
    {
        return flushedStalls_ + stalls_.size();
    }
    std::size_t numEspWindows() const
    {
        return flushedWindows_ + windows_.size();
    }

    /**
     * Begin streaming the trace to @p path: the header is written now
     * and each completed event record is appended as the run
     * progresses. Finish with closeStream(). @return false on I/O.
     */
    bool streamTo(const std::string &path);

    /** True between streamTo() and closeStream(). */
    bool streaming() const { return stream_ != nullptr; }

    /**
     * Flush the last event record, the interval counter tracks and
     * the trace footer, then close the stream. @return false on I/O.
     */
    bool closeStream();

    /** Serialize as Chrome trace_event JSON (buffered mode only). */
    std::string renderChromeTrace() const;

    /** Write renderChromeTrace() to @p path. @return false on I/O. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    struct EventSpan
    {
        std::size_t index = 0;
        Cycle queued = 0;
        Cycle dispatched = 0;
        Cycle retired = 0;
        InstCount instructions = 0;
        Cycle stallCycles[5] = {0, 0, 0, 0, 0}; //!< per TimelineStall
        std::uint32_t stallCount = 0;
        std::uint32_t espWindows = 0;
        std::vector<std::pair<std::string, Cycle>> cycleBuckets;
        std::vector<std::pair<std::string, std::uint64_t>> prefetches;
    };

    struct StallSpan
    {
        TimelineStall kind;
        std::size_t eventIdx = 0;
        Cycle start = 0;
        Cycle dur = 0;
    };

    struct EspSpan
    {
        unsigned depth = 1;
        std::size_t specEventIdx = 0;
        std::size_t triggerEventIdx = 0;
        Cycle start = 0;
        Cycle dur = 0;
    };

    struct CounterSample
    {
        Cycle ts = 0;
        std::vector<std::pair<std::string, double>> values;
    };

    std::vector<EventSpan> events_;
    std::vector<StallSpan> stalls_;
    std::vector<EspSpan> windows_;
    std::vector<CounterSample> counters_;
    std::string configName_;
    std::string workloadName_;
    std::string traceKind_;
    std::size_t curEvent_ = 0;
    std::size_t eventLimit_ = 0;
    std::size_t droppedEvents_ = 0;
    bool dropping_ = false;

    //!< Records already streamed out (still counted by numEvents()).
    std::size_t flushedEvents_ = 0;
    std::size_t flushedStalls_ = 0;
    std::size_t flushedWindows_ = 0;

    struct Stream; //!< ofstream + JsonWriter (defined in the .cc)
    std::unique_ptr<Stream> stream_;

    void renderHeader(JsonWriter &w) const;
    void renderFooter(JsonWriter &w) const;
    void renderEventGroup(JsonWriter &w, const EventSpan &ev,
                          std::size_t &stall_cursor,
                          std::size_t &window_cursor) const;
    void renderTrailing(JsonWriter &w, std::size_t stall_cursor,
                        std::size_t window_cursor) const;
    void renderCounterSamples(JsonWriter &w) const;
    bool flushCompletedEvent();
};

} // namespace espsim

#endif // ESPSIM_REPORT_TIMELINE_HH
