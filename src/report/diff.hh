/**
 * @file
 * Stat-level diff of two suite artifacts — the regression gate behind
 * `espsim diff baseline.json candidate.json`.
 *
 * Both inputs are `espsim-suite-artifact` JSON documents (written by
 * `espsim suite --json`). The diff matches (app, config) points,
 * compares every stat inside the configured tolerances, and ranks the
 * drifts by relative magnitude. Drifts on `core.cycles` are attributed
 * through the cycle-accounting buckets: the report names the buckets
 * whose deltas explain the cycle change, so "amazon/ESP+NL got 4%
 * slower" comes annotated with "dcache_miss +3211, esp_pre_exec -890".
 *
 * Exit-code contract (stable; CI depends on it):
 *   0 — artifacts agree within tolerance on every headline stat
 *   1 — headline regression, missing point, candidate error cell, or
 *       config-hash mismatch
 *   2 — an input failed to load or parse
 *
 * Artifacts produced by a degraded sweep carry an `errors` block (see
 * docs/ROBUSTNESS.md): a failed cell's stats are absent from
 * `results`. The diff reads the block, annotates the corresponding
 * missing-point drift with the cell's error message, and treats any
 * candidate-side error cell as a gate failure.
 *
 * Build-environment manifest fields (`tool_version`, `build_type`)
 * are deliberately ignored: artifacts from different commits must be
 * comparable. `config_hash` *is* compared — a mismatch means the two
 * runs simulated different machines, which makes any stat comparison
 * meaningless — unless `ignoreConfigHash` is set.
 */

#ifndef ESPSIM_REPORT_DIFF_HH
#define ESPSIM_REPORT_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

namespace espsim
{

class JsonValue;

/** Tolerances and report shaping for one diff run. */
struct DiffOptions
{
    /** Relative tolerance: drifts within |b-c| <= rel*max(|b|,|c|)
     *  are ignored. 0 demands bit-exact stats (the determinism
     *  gate: --jobs 1 vs --jobs 8 must produce identical output). */
    double relTol = 0.0;

    /** Absolute floor below which any difference is noise (guards
     *  relative comparison of near-zero stats). */
    double absTol = 1e-12;

    /** Cap on drift rows printed by renderDiffReport. */
    std::size_t maxRows = 20;

    /** Stats whose out-of-tolerance drift fails the gate (exit 1). */
    std::vector<std::string> headlineStats{"core.cycles", "derived.ipc",
                                           "energy.total"};

    /** Headline-specific relative tolerance; negative → use relTol. */
    double headlineRelTol = -1.0;

    /** Compare artifacts from different machine configs anyway. */
    bool ignoreConfigHash = false;
};

/** One stat (or point) that moved beyond tolerance. */
struct StatDrift
{
    std::string app;
    std::string config;
    std::string stat;
    double baseline = 0.0;
    double candidate = 0.0;
    /** (candidate - baseline) / |baseline|; +inf when baseline is 0. */
    double relDrift = 0.0;
    bool onlyInBaseline = false;
    bool onlyInCandidate = false;
    bool headline = false;
    /** Cycle-bucket deltas explaining a core.cycles drift. */
    std::string attribution;
};

/** Outcome of one artifact comparison. */
struct DiffResult
{
    bool loaded = false;
    std::string error;
    bool configHashMatch = true;
    std::size_t pointsCompared = 0;
    std::size_t statsCompared = 0;
    /** Beyond-tolerance drifts, ranked by |relDrift| descending. */
    std::vector<StatDrift> drifts;
    std::size_t headlineRegressions = 0;
    /** Failed cells declared in each artifact's `errors` block. A
     *  candidate error cell always fails the gate (exit 1). */
    std::size_t baselineErrorCells = 0;
    std::size_t candidateErrorCells = 0;

    /** The process exit code this result maps to (0, 1, or 2). */
    int exitCode() const;
};

/** Diff two parsed suite artifacts. */
DiffResult diffSuiteArtifacts(const JsonValue &baseline,
                              const JsonValue &candidate,
                              const DiffOptions &opts = {});

/** Load two artifact files and diff them (exit 2 path on I/O). */
DiffResult diffSuiteArtifactFiles(const std::string &baselinePath,
                                  const std::string &candidatePath,
                                  const DiffOptions &opts = {});

/** Human-readable report: summary header plus ranked drift table. */
std::string renderDiffReport(const DiffResult &result,
                             const DiffOptions &opts = {});

} // namespace espsim

#endif // ESPSIM_REPORT_DIFF_HH
