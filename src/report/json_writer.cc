#include "report/json_writer.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace espsim
{

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                // Non-ASCII bytes pass through: UTF-8 in, UTF-8 out.
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // -0.0 would round-trip but serializes confusingly; normal stat
    // values are never negative zero, so fold it into 0.
    if (v == 0.0)
        return "0";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

void
JsonWriter::beforeValue()
{
    if (scopes_.empty())
        return;
    if (scopes_.back() == Scope::Object && !pendingKey_)
        panic("JsonWriter: object value without a key");
    if (scopes_.back() == Scope::Array || !pendingKey_) {
        if (!first_.back())
            out_ += ',';
    }
    first_.back() = false;
    pendingKey_ = false;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (scopes_.empty() || scopes_.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (pendingKey_)
        panic("JsonWriter: two keys in a row");
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    scopes_.push_back(Scope::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (scopes_.empty() || scopes_.back() != Scope::Object || pendingKey_)
        panic("JsonWriter: unbalanced endObject()");
    out_ += '}';
    scopes_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    scopes_.push_back(Scope::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (scopes_.empty() || scopes_.back() != Scope::Array)
        panic("JsonWriter: unbalanced endArray()");
    out_ += ']';
    scopes_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, res.ptr);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, res.ptr);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

} // namespace espsim
