#include "report/host_profile.hh"

#include <sys/resource.h>

#include "common/version.hh"
#include "report/artifact.hh"
#include "report/json_writer.hh"

namespace espsim
{

double
peakRssMb()
{
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
#ifdef __APPLE__
    // ru_maxrss is bytes on Darwin, kilobytes elsewhere.
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

void
mergeHostStats(StatGroup &stats, const HostCellProfile &profile)
{
    stats.set("host.gen_ms", profile.genMs);
    stats.set("host.warmup_ms", profile.warmupMs);
    stats.set("host.sim_ms", profile.simMs);
    stats.set("host.report_ms", profile.reportMs);
    stats.set("host.total_ms", profile.totalMs());
    stats.set("host.peak_rss_mb", peakRssMb());
}

std::string
renderBenchArtifactJson(const ArtifactManifest &manifest,
                        const BenchReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-bench-artifact");
    w.key("format_version").value(std::uint64_t{benchFormatVersion});
    w.key("manifest").beginObject();
    w.key("source").value(manifest.source);
    w.key("tool_version")
        .value(manifest.toolVersion.empty() ? versionString()
                                            : manifest.toolVersion);
    w.key("build_type")
        .value(manifest.buildType.empty() ? buildTypeString()
                                          : manifest.buildType);
    w.key("config_hash").value(report.configHash);
    w.key("jobs").value(report.jobs);
    w.key("repeat").value(report.repeat);
    w.endObject();
    w.key("suite_wall_ms").value(report.suiteWallMs);
    w.key("peak_rss_mb").value(report.peakRssMb);
    w.key("cells").beginArray();
    for (const BenchCell &cell : report.cells) {
        w.beginObject();
        w.key("app").value(cell.app);
        w.key("config").value(cell.config);
        w.key("sim_cycles").value(std::uint64_t{cell.simCycles});
        w.key("sim_events").value(std::uint64_t{cell.simEvents});
        w.key("instructions").value(std::uint64_t{cell.instructions});
        w.key("wall_ms").value(cell.wallMs);
        w.key("cycles_per_sec").value(cell.cyclesPerSec());
        w.key("events_per_sec").value(cell.eventsPerSec());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace espsim
