/**
 * @file
 * Live telemetry plane: online counter exposition for long runs.
 *
 * Everything else in src/report is post-mortem — artifacts, spans and
 * flight-recorder dumps land after the run ends. A multi-minute
 * `espsim serve` run streaming millions of events needs the opposite
 * shape: in-flight visibility. This header provides it in three
 * pieces:
 *
 *  - **TelemetrySnapshotter** — takes periodic counter snapshots of
 *    the StatRegistry at event-retire boundaries (the only points
 *    where the stat surface is consistent), paced by simulated cycles
 *    and/or wall-clock time. Snapshots are *absolute* counter values
 *    (not deltas like the IntervalSampler), so every snapshot is a
 *    self-contained readout: counters are monotone across snapshots
 *    and the final snapshot — always emitted at finalize — equals the
 *    end-of-run registry values exactly (uint64 counters are exact in
 *    double below 2^53). Snapshots stream as versioned JSON-lines
 *    through a TelemetryStream and publish into a TelemetryPlane.
 *
 *  - **TelemetryStream** — a JSON-lines sink (file or in-memory for
 *    tests). One stream may carry several run blocks (a serve sweep
 *    writes one block per config); each block opens with a header
 *    line carrying the schema, run identity and the frozen counter
 *    name set, followed by snapshot lines and exactly one line with
 *    `"final": true`.
 *
 *  - **TelemetryPlane** — the thread-safe rendezvous between the
 *    simulation thread and external observers (the /metrics HTTP
 *    endpoint, the stall watchdog). The snapshotter owns a private
 *    back buffer and *publishes* each completed snapshot into the
 *    plane's front buffer under a short lock (a classic
 *    double-buffer: the hot loop never waits on a reader holding a
 *    half-read snapshot). The plane also carries the run's health
 *    state (ok/degraded, set by the watchdog) and a relaxed-atomic
 *    retire-progress counter the watchdog monitors.
 *
 * Determinism: telemetry is an opt-in observer. With it off, no code
 * path changes and every artifact stays byte-identical; with it on,
 * the run's *artifacts* are still byte-identical (telemetry only
 * reads counters), and the JSONL itself is deterministic when paced
 * purely by cycles (wall-clock pacing trades determinism for a fixed
 * real-time cadence, which is the point of a live feed).
 *
 * Test hook: ESPSIM_STALL_INJECT="<event>:<ms>" (the
 * ESPSIM_FAULT_INJECT pattern) makes the snapshotter sleep <ms>
 * milliseconds when event <event> retires — an injectable wedge for
 * exercising the stall watchdog end to end. See report/watchdog.hh.
 */

#ifndef ESPSIM_REPORT_TELEMETRY_HH
#define ESPSIM_REPORT_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "report/stat_registry.hh"

namespace espsim
{

/** Version of the telemetry-stream schema this build writes. */
constexpr std::uint32_t telemetryStreamFormatVersion = 1;

/** When the snapshotter samples. Either pace may be 0 (= disabled). */
struct TelemetryConfig
{
    /** Snapshot when ≥ this many simulated cycles passed. */
    Cycle periodCycles = 0;
    /** Snapshot when ≥ this many wall-clock ms passed. */
    double wallMs = 0;

    bool
    enabled() const
    {
        return periodCycles > 0 || wallMs > 0;
    }
};

/** One absolute counter readout (aligned with the run's name set). */
struct TelemetrySnapshot
{
    std::uint64_t seq = 0; //!< 1-based within the run block
    Cycle cycle = 0;
    std::uint64_t events = 0;
    bool isFinal = false;
    std::vector<double> values;
};

/** Identity of the run a telemetry block describes. */
struct TelemetryRunInfo
{
    std::string config;
    std::string workload;
    std::string configHash;
};

/**
 * JSON-lines sink for telemetry blocks. Lines are flushed as written
 * so a live `tail -f` (or a post-crash read) always sees complete
 * records. Not thread-safe: only the simulation thread writes.
 */
class TelemetryStream
{
  public:
    TelemetryStream() = default;
    ~TelemetryStream();
    TelemetryStream(const TelemetryStream &) = delete;
    TelemetryStream &operator=(const TelemetryStream &) = delete;

    /** Open @p path for writing. @return false on I/O failure. */
    bool openFile(const std::string &path);

    /** Capture lines into @p sink instead of a file (tests). */
    void captureTo(std::string *sink) { sink_ = sink; }

    bool good() const { return file_ != nullptr || sink_ != nullptr; }

    /** Append one record (newline added, file flushed). */
    void writeLine(const std::string &line);

    std::uint64_t linesWritten() const { return lines_; }

    /** Close the file (no-op for capture mode). @return false on
     *  I/O failure. */
    bool close();

  private:
    std::FILE *file_ = nullptr;
    std::string *sink_ = nullptr;
    std::uint64_t lines_ = 0;
    bool writeFailed_ = false;
};

/**
 * Thread-safe rendezvous between the run and its observers: the
 * published front buffer (latest snapshot + run identity), the health
 * state, and the retire-progress counter.
 */
class TelemetryPlane
{
  public:
    /** A copy of the front buffer; `valid` is false before the first
     *  publish. */
    struct View
    {
        bool valid = false;
        std::string config;
        std::string workload;
        std::string configHash;
        std::shared_ptr<const std::vector<std::string>> names;
        TelemetrySnapshot snap;
    };

    /** Writer side: replace the front buffer (short lock). */
    void publish(const TelemetryRunInfo &info,
                 const std::shared_ptr<const std::vector<std::string>>
                     &names,
                 const TelemetrySnapshot &snap);

    /** Reader side: copy the front buffer out. */
    View latest() const;

    /** One event retired (relaxed; the watchdog's liveness signal). */
    void
    noteProgress()
    {
        progress_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    progress() const
    {
        return progress_.load(std::memory_order_relaxed);
    }

    /** Latch the degraded health state (first reason wins). */
    void markDegraded(const std::string &reason);

    bool
    degraded() const
    {
        return degraded_.load(std::memory_order_acquire);
    }

    /** The first degradation reason ("" while healthy). */
    std::string degradedReason() const;

  private:
    mutable std::mutex mu_;
    View front_;
    std::string reason_;
    std::atomic<std::uint64_t> progress_{0};
    std::atomic<bool> degraded_{false};
};

/**
 * Samples a StatRegistry's counters over one run. Construct after
 * every pre-run counter is registered (the name set freezes now, like
 * the IntervalSampler), attach to the core, finalize after the run.
 */
class TelemetrySnapshotter
{
  public:
    /** @p stream and @p plane are both nullable (either sink alone is
     *  useful); the header line is written immediately. */
    TelemetrySnapshotter(const StatRegistry &reg, TelemetryConfig cfg,
                         TelemetryRunInfo info, TelemetryStream *stream,
                         TelemetryPlane *plane);

    /** Core callback at each event-retire boundary. */
    void onEventRetired(std::uint64_t events_retired, Cycle now);

    /**
     * Close the block: emit the final snapshot (always, flagged
     * `"final": true`), whose values equal the end-of-run registry
     * counters exactly.
     */
    void finalize(Cycle now, std::uint64_t events_retired);

    const std::vector<std::string> &names() const { return *names_; }
    std::uint64_t snapshots() const { return seq_; }
    /** The back buffer after the most recent sample. */
    const TelemetrySnapshot &lastSnapshot() const { return snap_; }

  private:
    TelemetryConfig cfg_;
    TelemetryRunInfo info_;
    TelemetryStream *stream_;
    TelemetryPlane *plane_;
    std::shared_ptr<std::vector<std::string>> names_;
    std::vector<StatRegistry::Getter> getters_;
    TelemetrySnapshot snap_; //!< writer-owned back buffer (reused)
    std::uint64_t seq_ = 0;
    Cycle nextCycle_ = 0;
    std::chrono::steady_clock::time_point lastWall_;
    unsigned sinceWallCheck_ = 0;
    bool finalized_ = false;
    //!< ESPSIM_STALL_INJECT state (testing the watchdog).
    bool stallArmed_ = false;
    std::uint64_t stallEvent_ = 0;
    unsigned stallMs_ = 0;

    void writeHeader();
    void sample(Cycle now, std::uint64_t events_retired, bool final_);
};

/** Render one snapshot line (or the /snapshot.json body). */
std::string renderTelemetrySnapshotJson(
    const TelemetryRunInfo &info,
    const std::vector<std::string> &names,
    const TelemetrySnapshot &snap, bool includeNames);

/**
 * Render the latest published view as Prometheus/OpenMetrics text
 * exposition: one `espsim_`-prefixed counter family per registry
 * counter with config/workload labels, plus liveness and health
 * meta-series. @p degraded folds the plane's health state in.
 */
std::string renderPrometheusText(const TelemetryPlane::View &view,
                                 bool degraded);

} // namespace espsim

#endif // ESPSIM_REPORT_TELEMETRY_HH
