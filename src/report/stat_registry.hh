/**
 * @file
 * The canonical statistics surface of a simulation run.
 *
 * Components own their counters as plain struct fields (cheap to bump
 * on the simulation fast path — no map lookup, no virtual call) and
 * *register* them here by name: the registry stores a getter per stat
 * and materialises a point-in-time StatGroup snapshot on demand. This
 * inverts the old flow — instead of every component hand-writing a
 * report() that copies fields into a StatGroup, the wiring happens
 * once at construction and the name space is checked for collisions.
 *
 * Three kinds of stats:
 *  - scalars backed by a component counter (uint64 or double field),
 *  - derived values computed at snapshot time (rates, ratios),
 *  - sample distributions (SampleStat), expanded into .count / .mean /
 *    .max / .p95 scalars in the snapshot.
 *
 * Snapshots are name-ordered, so every downstream consumer (text dump,
 * JSON artifact, CSV) is deterministic by construction.
 */

#ifndef ESPSIM_REPORT_STAT_REGISTRY_HH
#define ESPSIM_REPORT_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"

namespace espsim
{

/**
 * What backs a registered stat. Interval sampling only differences
 * Counter-kind stats: uint64-backed monotone counters difference
 * exactly in double (values stay < 2^53), so per-interval deltas
 * telescope back to the final aggregate with zero error. Gauges can
 * move both ways, Derived values are ratios of other stats, and
 * Sample expansions are order statistics — none of them difference
 * meaningfully.
 */
enum class StatKind
{
    Counter, ///< uint64-backed, monotone non-decreasing
    Gauge,   ///< double-backed, may move either way
    Derived, ///< computed at snapshot time (rates, ratios)
    Sample,  ///< SampleStat expansion (.count/.mean/.max/.p95)
};

/** Named-stat registry; components register, consumers snapshot. */
class StatRegistry
{
  public:
    using Getter = std::function<double()>;

    /** Register a scalar backed by a live component counter. */
    void registerScalar(const std::string &name,
                        const std::uint64_t *counter);
    void registerScalar(const std::string &name, const double *value);

    /** Register a value computed at snapshot time. */
    void registerDerived(const std::string &name, Getter getter);

    /**
     * Register a sample distribution; the snapshot expands it into
     * `name.count`, `name.mean`, `name.max` and `name.p95`.
     */
    void registerSamples(const std::string &name, const SampleStat *s);

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Evaluate every registered stat into a flat StatGroup. */
    StatGroup snapshot() const;

    /**
     * Evaluate only Counter-kind stats (uint64-backed monotone
     * counters). This is the interval-sampling surface: deltas of
     * these values are exact and sum to the final aggregate.
     */
    StatGroup counterSnapshot() const;

    /** An interned Counter-kind stat: its name and a copy of its
     *  getter. */
    struct CounterHandle
    {
        std::string name;
        Getter getter;
    };

    /**
     * Intern the Counter-kind stats: resolve each name to its getter
     * once, in name order. Interval sampling holds these handles and
     * re-reads values with plain calls — no per-sample string-map
     * construction or lookups (the snapshot surface above is
     * unchanged).
     */
    std::vector<CounterHandle> counterHandles() const;

  private:
    struct Entry
    {
        Getter getter;
        StatKind kind;
    };

    std::map<std::string, Entry> entries_;

    void insert(const std::string &name, Getter getter, StatKind kind);
};

} // namespace espsim

#endif // ESPSIM_REPORT_STAT_REGISTRY_HH
