#include "report/json_reader.hh"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/logging.hh"

namespace espsim
{

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(name);
    return it == object.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    const JsonValue *v = find(name);
    if (!v)
        panic("JsonValue: missing member '%s'", name.c_str());
    return *v;
}

namespace
{

/** Cursor over the input with error reporting. */
struct Parser
{
    std::string_view text = {};
    std::size_t pos = 0;
    std::string error = {};

    bool
    fail(const std::string &msg)
    {
        if (error.empty()) {
            char where[32];
            std::snprintf(where, sizeof(where), " at offset %zu", pos);
            error = msg + where;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool parseValue(JsonValue &out);
    bool parseString(std::string &out);
    bool parseNumber(JsonValue &out);
};

/** Append Unicode code point @p cp as UTF-8. */
void
appendUtf8(std::string &out, unsigned cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xc0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
        out += static_cast<char>(0xe0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    }
}

bool
Parser::parseString(std::string &out)
{
    if (!consume('"'))
        return fail("expected string");
    while (pos < text.size()) {
        const char c = text[pos++];
        if (c == '"')
            return true;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (pos >= text.size())
            break;
        const char esc = text[pos++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos + 4 > text.size())
                return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int k = 0; k < 4; ++k) {
                const char h = text[pos++];
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return fail("bad \\u escape digit");
            }
            // Surrogate pairs are not needed by espsim artifacts;
            // encode the raw code point (BMP only).
            appendUtf8(out, cp);
            break;
          }
          default:
            return fail("unknown escape");
        }
    }
    return fail("unterminated string");
}

bool
Parser::parseNumber(JsonValue &out)
{
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-')
        ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
        ++pos;
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text.data() + start, text.data() + pos, v);
    if (res.ec != std::errc() || res.ptr != text.data() + pos) {
        pos = start;
        return fail("bad number");
    }
    out.kind = JsonValue::Kind::Number;
    out.number = v;
    return true;
}

bool
Parser::parseValue(JsonValue &out)
{
    skipWs();
    if (pos >= text.size())
        return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
        ++pos;
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            std::string name;
            if (!parseString(name))
                return false;
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.object.emplace(std::move(name), std::move(member));
            if (consume(',')) {
                skipWs();
                continue;
            }
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }
    if (c == '[') {
        ++pos;
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.array.push_back(std::move(element));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }
    if (c == '"') {
        out.kind = JsonValue::Kind::String;
        return parseString(out.string);
    }
    if (c == 't') {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
    }
    if (c == 'f') {
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
    }
    if (c == 'n') {
        out.kind = JsonValue::Kind::Null;
        return literal("null");
    }
    return parseNumber(out);
}

} // namespace

std::unique_ptr<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    Parser p{text};
    auto root = std::make_unique<JsonValue>();
    if (!p.parseValue(*root)) {
        if (error)
            *error = p.error;
        return nullptr;
    }
    p.skipWs();
    if (p.pos != p.text.size()) {
        if (error)
            *error = "trailing garbage after document";
        return nullptr;
    }
    return root;
}

} // namespace espsim
