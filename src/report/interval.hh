/**
 * @file
 * Interval sampling engine: time-resolved counter series for one run.
 *
 * Every figure in the paper is an end-of-run aggregate; this engine
 * exposes *phase behaviour* instead. The core invokes the sampler at
 * each event-retire boundary (the only points where the stat surface
 * is guaranteed consistent); whenever the run has advanced by the
 * configured cycle and/or event period, the sampler takes a
 * counter-only delta snapshot of the StatRegistry and appends one
 * interval to the series.
 *
 * Only Counter-kind stats (uint64-backed monotone counters, see
 * StatKind) are sampled. Their doubles are exact below 2^53, so the
 * per-interval deltas **telescope**: for every counter,
 *
 *     baseline + Σ interval deltas == final snapshot     (exactly)
 *
 * — a property the artifact validator, the unit tests and the fuzz
 * harness's interval-delta-closure oracle all check. Rates and ratios
 * (IPC, miss rates, ESP occupancy) are *not* sampled; downstream
 * consumers (tools/plot_intervals.py, the timeline counter tracks)
 * derive them per interval from the counter deltas.
 *
 * The series is deterministic by construction — names are the
 * registry's sorted order, intervals fire at cycle/event grid points
 * derived only from simulated time — so the rendered artifact is
 * byte-identical at any `--jobs` count.
 */

#ifndef ESPSIM_REPORT_INTERVAL_HH
#define ESPSIM_REPORT_INTERVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "report/stat_registry.hh"

namespace espsim
{

struct ArtifactManifest;
class EventTimeline;

/** Version of the interval-series schema this build writes. */
constexpr std::uint32_t intervalSeriesFormatVersion = 1;

/** When the sampler fires. Either period may be 0 (= disabled). */
struct IntervalConfig
{
    /** Sample when ≥ this many cycles passed since the last sample. */
    Cycle sampleCycles = 0;
    /** Sample when ≥ this many events retired since the last sample. */
    std::uint64_t sampleEvents = 0;

    bool
    enabled() const
    {
        return sampleCycles > 0 || sampleEvents > 0;
    }
};

/** One sampling interval: counter deltas since the previous sample. */
struct IntervalPoint
{
    Cycle endCycle = 0;
    std::uint64_t endEvents = 0;
    /** Aligned with IntervalSeries::names. */
    std::vector<double> deltas;
};

/** A whole run's time-resolved counter series. */
struct IntervalSeries
{
    std::string configName;
    std::string workloadName;
    std::string configHash; //!< 16-hex-digit hash of the run's config
    IntervalConfig period;

    /** Sorted counter names; every values/deltas vector aligns. */
    std::vector<std::string> names;

    /** Counter values when sampling began (post-warmup machine). */
    Cycle baselineCycle = 0;
    std::uint64_t baselineEvents = 0;
    std::vector<double> baseline;

    std::vector<IntervalPoint> intervals;

    /** Counter values at finalize; closure target for the deltas. */
    Cycle finalCycle = 0;
    std::uint64_t finalEvents = 0;
    std::vector<double> finalValues;
};

/**
 * Samples a StatRegistry's counters over a run. Construct after every
 * component registered its counters (the name set is frozen at
 * construction), attach to the core, finalize after the run.
 */
class IntervalSampler
{
  public:
    IntervalSampler(const StatRegistry &reg, IntervalConfig period);

    /**
     * Core callback at each event-retire boundary. Samples when a
     * cycle/event grid point has been crossed since the last sample.
     */
    void onEventRetired(std::uint64_t events_retired, Cycle now);

    /**
     * Close the series: record the final counter snapshot and the
     * trailing partial interval (if any counter moved since the last
     * sample), so the deltas telescope to the final values.
     */
    void finalize(Cycle now, std::uint64_t events_retired);

    /**
     * Also emit each sample as timeline counter-track points (IPC,
     * miss rates, ESP occupancy derived from the interval deltas).
     */
    void setTimeline(EventTimeline *timeline) { timeline_ = timeline; }

    const IntervalSeries &series() const { return series_; }

    /** Move the finished series out of the sampler. */
    IntervalSeries take() { return std::move(series_); }

  private:
    const StatRegistry &reg_;
    IntervalSeries series_;
    /** Interned getters aligned with series_.names; each sample reads
     *  these directly instead of building a string-keyed snapshot. */
    std::vector<StatRegistry::Getter> getters_;
    std::vector<double> prev_; //!< counter values at the last sample
    Cycle nextCycle_ = 0;
    std::uint64_t nextEvents_ = 0;
    bool finalized_ = false;
    EventTimeline *timeline_ = nullptr;

    //!< Indices into series_.names for derived track metrics
    //!< (npos when the counter is not registered in this run).
    std::size_t idxCycles_, idxInstructions_, idxL1iMisses_,
        idxL1dAccesses_, idxL1dMisses_, idxEspPreExec_;

    std::vector<double> currentValues() const;
    void sample(Cycle now, std::uint64_t events_retired);
    void emitTimelineCounters(const IntervalPoint &point);
};

/**
 * Render the canonical `espsim-interval-series` JSON artifact.
 * Deterministic: name-ordered counters, shortest-round-trip numbers.
 */
std::string renderIntervalSeriesJson(const ArtifactManifest &manifest,
                                     const IntervalSeries &series);

} // namespace espsim

#endif // ESPSIM_REPORT_INTERVAL_HH
