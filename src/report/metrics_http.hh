/**
 * @file
 * Dependency-free minimal HTTP/1.0 metrics endpoint.
 *
 * `espsim serve --metrics-port P` exposes the live TelemetryPlane to
 * external scrapers with zero new dependencies: plain POSIX sockets,
 * one accept thread, HTTP/1.0 with `Connection: close` (no keep-alive
 * state machine). Three routes:
 *
 *   GET /metrics        Prometheus/OpenMetrics text exposition of the
 *                       latest published snapshot.
 *   GET /healthz        200 {"status":"ok"} while the run is healthy,
 *                       503 {"status":"degraded","reason":...} once
 *                       the stall watchdog latched a degraded state.
 *   GET /snapshot.json  the latest snapshot as self-describing JSON
 *                       (503 until the first snapshot is published).
 *
 * The server only ever *reads* the plane's front buffer — it shares
 * nothing with the simulation hot loop except the double-buffer
 * publish, so scraping cannot perturb the run. Port 0 binds an
 * ephemeral port (tests); port() reports the bound port after start().
 */

#ifndef ESPSIM_REPORT_METRICS_HTTP_HH
#define ESPSIM_REPORT_METRICS_HTTP_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace espsim
{

class TelemetryPlane;

/** One background accept loop serving the three metrics routes. */
class MetricsHttpServer
{
  public:
    explicit MetricsHttpServer(const TelemetryPlane &plane)
        : plane_(plane)
    {}
    ~MetricsHttpServer();
    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start the accept
     * thread. @return false (with errno intact) when the bind fails.
     */
    bool start(std::uint16_t port);

    /** Stop the accept thread and close the socket (idempotent). */
    void stop();

    bool running() const { return fd_ >= 0; }

    /** The bound port (resolves port 0 requests). */
    std::uint16_t port() const { return port_; }

    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    const TelemetryPlane &plane_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    int fd_ = -1;
    std::uint16_t port_ = 0;

    void acceptLoop();
    void handleConnection(int client);
};

/**
 * Build the full HTTP/1.0 response for @p target (the request path)
 * against @p plane — split out so tests can exercise routing without
 * sockets.
 */
std::string metricsHttpResponse(const TelemetryPlane &plane,
                                const std::string &target);

} // namespace espsim

#endif // ESPSIM_REPORT_METRICS_HTTP_HH
