#include "report/watchdog.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/log.hh"
#include "report/telemetry.hh"

namespace espsim
{

StallWatchdog::StallWatchdog(TelemetryPlane &plane, double budgetMs,
                             DumpFn dump)
    : plane_(plane), budgetMs_(budgetMs), dump_(std::move(dump))
{
    thread_ = std::thread([this] { watchLoop(); });
}

StallWatchdog::~StallWatchdog()
{
    stop();
}

void
StallWatchdog::stop()
{
    if (!thread_.joinable())
        return;
    stop_.store(true, std::memory_order_release);
    thread_.join();
}

void
StallWatchdog::watchLoop()
{
    using clock = std::chrono::steady_clock;
    // Poll at a quarter of the budget (capped at 50ms) so detection
    // latency stays within ~1.25x the budget without busy-waiting.
    const auto poll_interval = std::chrono::milliseconds(std::max<long>(
        1, std::min<long>(50, static_cast<long>(budgetMs_ / 4))));

    std::uint64_t last_progress = plane_.progress();
    auto last_move = clock::now();
    bool fired = false;

    while (!stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll_interval);
        const std::uint64_t progress = plane_.progress();
        const auto now = clock::now();
        if (progress != last_progress) {
            last_progress = progress;
            last_move = now;
            continue;
        }
        const double stalled_ms =
            std::chrono::duration<double, std::milli>(now - last_move)
                .count();
        if (fired || stalled_ms < budgetMs_)
            continue;
        // Exactly-once: latch locally; the plane's degraded state
        // latches globally for /healthz and the artifact.
        fired = true;
        fires_.fetch_add(1, std::memory_order_release);
        char reason[160];
        std::snprintf(reason, sizeof(reason),
                      "stall watchdog: no retire progress for %.0f ms "
                      "(budget %.0f ms, progress=%llu)",
                      stalled_ms, budgetMs_,
                      static_cast<unsigned long long>(last_progress));
        plane_.markDegraded(reason);
        logLine(LogLevel::Warn, "%s", reason);
        if (dump_) {
            StallReport report;
            report.stalledMs = stalled_ms;
            report.lastProgress = last_progress;
            dump_(report);
        }
    }
}

} // namespace espsim
