/**
 * @file
 * Dependency-free streaming JSON writer for observability artifacts.
 *
 * Design goals, in order:
 *  1. **Determinism** — the same values always serialize to the same
 *     bytes, on any platform and at any `--jobs` count. Numbers use
 *     std::to_chars shortest-round-trip formatting; no locale is ever
 *     consulted.
 *  2. **Validity** — output is always strict RFC 8259 JSON. Strings
 *     are escaped (quote, backslash, control characters); non-ASCII
 *     bytes are passed through untouched, so UTF-8 input stays UTF-8.
 *     NaN and infinities, which JSON cannot represent, serialize as
 *     `null` (the documented espsim artifact policy).
 *  3. **No dependencies** — artifacts must be emittable from any
 *     binary that links espsim, including the slimmest bench tool.
 *
 * Usage:
 *     JsonWriter w;
 *     w.beginObject();
 *     w.key("cycles").value(std::uint64_t{978703});
 *     w.key("apps").beginArray().value("amazon").endArray();
 *     w.endObject();
 *     std::string text = w.str();
 */

#ifndef ESPSIM_REPORT_JSON_WRITER_HH
#define ESPSIM_REPORT_JSON_WRITER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace espsim
{

/** Escape @p s for embedding inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/**
 * Deterministic JSON representation of @p v: shortest string that
 * round-trips to the same double ("0.1", "3", "1e+300"). NaN and
 * infinities return "null".
 */
std::string jsonNumber(double v);

/** Streaming writer; tracks nesting and inserts commas itself. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next value call supplies its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t{v}); }
    JsonWriter &value(int v) { return value(std::int64_t{v}); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** The document so far. Valid JSON once all scopes are closed. */
    const std::string &str() const { return out_; }

    /**
     * Move out everything buffered so far and reset the buffer, while
     * keeping the scope/comma state. Streaming consumers drain the
     * writer into a file incrementally so the full document never
     * lives in memory at once.
     */
    std::string
    drain()
    {
        std::string text = std::move(out_);
        out_.clear();
        return text;
    }

    /** True when every beginObject/beginArray has been closed. */
    bool complete() const { return scopes_.empty(); }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    std::string out_;
    std::vector<Scope> scopes_;
    std::vector<bool> first_;   //!< no comma needed yet in this scope
    bool pendingKey_ = false;

    void beforeValue();
};

} // namespace espsim

#endif // ESPSIM_REPORT_JSON_WRITER_HH
