#include "report/metrics_http.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hh"
#include "report/telemetry.hh"

namespace espsim
{

namespace
{

std::string
httpResponse(int status, const char *reason,
             const std::string &content_type, const std::string &body)
{
    std::string out = "HTTP/1.0 ";
    out += std::to_string(status);
    out += ' ';
    out += reason;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

std::string
healthzBody(const TelemetryPlane &plane)
{
    if (!plane.degraded())
        return "{\"status\":\"ok\"}\n";
    std::string reason = plane.degradedReason();
    // Reason strings are our own log text; escape the JSON specials
    // anyway so the body stays parseable no matter what.
    std::string escaped;
    for (const char c : reason) {
        if (c == '"' || c == '\\')
            escaped.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            escaped.push_back(c);
    }
    return "{\"status\":\"degraded\",\"reason\":\"" + escaped +
           "\"}\n";
}

} // namespace

std::string
metricsHttpResponse(const TelemetryPlane &plane,
                    const std::string &target)
{
    if (target == "/metrics") {
        return httpResponse(
            200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            renderPrometheusText(plane.latest(), plane.degraded()));
    }
    if (target == "/healthz") {
        if (plane.degraded())
            return httpResponse(503, "Service Unavailable",
                                "application/json",
                                healthzBody(plane));
        return httpResponse(200, "OK", "application/json",
                            healthzBody(plane));
    }
    if (target == "/snapshot.json") {
        const TelemetryPlane::View view = plane.latest();
        if (!view.valid || !view.names) {
            return httpResponse(503, "Service Unavailable",
                                "application/json",
                                "{\"error\":\"no snapshot yet\"}\n");
        }
        TelemetryRunInfo info;
        info.config = view.config;
        info.workload = view.workload;
        info.configHash = view.configHash;
        std::string body = renderTelemetrySnapshotJson(
            info, *view.names, view.snap, /*includeNames=*/true);
        body.push_back('\n');
        return httpResponse(200, "OK", "application/json", body);
    }
    return httpResponse(404, "Not Found", "text/plain",
                        "not found\n");
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

bool
MetricsHttpServer::start(std::uint16_t port)
{
    if (fd_ >= 0)
        return true;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
    fd_ = fd;
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (fd_ < 0)
        return;
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    ::close(fd_);
    fd_ = -1;
}

void
MetricsHttpServer::acceptLoop()
{
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        // Short poll timeout so stop() is honoured promptly without
        // the self-pipe dance.
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue;
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0)
            continue;
        handleConnection(client);
        ::close(client);
    }
}

void
MetricsHttpServer::handleConnection(int client)
{
    // One short request line is all we need; clients sending slowly
    // get a bounded wait, not a hung accept loop.
    pollfd pfd{};
    pfd.fd = client;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 1000) <= 0)
        return;
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return;
    buf[n] = '\0';
    // Parse "GET <target> HTTP/1.x" — anything else is a 404/405.
    std::string response;
    if (std::strncmp(buf, "GET ", 4) == 0) {
        const char *start = buf + 4;
        const char *end = std::strchr(start, ' ');
        const std::string target =
            end ? std::string(start, end) : std::string(start);
        response = metricsHttpResponse(plane_, target);
    } else {
        response = httpResponse(405, "Method Not Allowed",
                                "text/plain", "GET only\n");
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::size_t off = 0;
    while (off < response.size()) {
        const ssize_t sent =
            ::send(client, response.data() + off,
                   response.size() - off, MSG_NOSIGNAL);
        if (sent <= 0)
            break;
        off += static_cast<std::size_t>(sent);
    }
}

} // namespace espsim
