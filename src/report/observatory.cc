#include "report/observatory.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/version.hh"
#include "report/json_reader.hh"
#include "report/json_writer.hh"

namespace espsim
{

namespace fs = std::filesystem;

namespace
{

std::string
stringField(const JsonValue *obj, const char *name)
{
    if (obj == nullptr)
        return "";
    const JsonValue *v = obj->find(name);
    return v != nullptr ? v->string : "";
}

double
numberField(const JsonValue *obj, const char *name, double fallback)
{
    if (obj == nullptr)
        return fallback;
    const JsonValue *v = obj->find(name);
    return v != nullptr ? v->number : fallback;
}

void
addMetric(ObservatoryRun &run, std::string name, double value)
{
    run.metricNames.push_back(std::move(name));
    run.metricValues.push_back(value);
}

/**
 * Workload fingerprint: the part of a run's identity the config hash
 * does not cover. Two runs only trend against each other when they
 * measured the same workload shape — trending a 100k-event serve run
 * against a 1M-event one would compare raw cycle counts across
 * scales.
 */
std::string
workloadFingerprint(const JsonValue &doc, const std::string &schema)
{
    const JsonValue *manifest = doc.find("manifest");
    std::string fp;
    if (schema == "espsim-suite-artifact") {
        fp = "apps=";
        const JsonValue *apps =
            manifest != nullptr ? manifest->find("apps") : nullptr;
        if (apps != nullptr && apps->isArray()) {
            for (const JsonValue &app : apps->array) {
                if (fp.back() != '=')
                    fp += ',';
                fp += app.string;
            }
        }
    } else if (schema == "espsim-latency-artifact") {
        const JsonValue *arrival =
            manifest != nullptr ? manifest->find("arrival") : nullptr;
        char buf[64];
        std::snprintf(buf, sizeof(buf), ":%.0f ev",
                      numberField(manifest, "events", 0));
        fp = stringField(manifest, "profile") + buf + " " +
             stringField(arrival, "kind");
    } else { // bench
        std::vector<std::string> apps;
        const JsonValue *cells = doc.find("cells");
        if (cells != nullptr && cells->isArray()) {
            for (const JsonValue &cell : cells->array) {
                const std::string app = stringField(&cell, "app");
                if (!app.empty() &&
                    std::find(apps.begin(), apps.end(), app) ==
                        apps.end())
                    apps.push_back(app);
            }
        }
        std::sort(apps.begin(), apps.end());
        fp = "apps=";
        for (const std::string &app : apps) {
            if (fp.back() != '=')
                fp += ',';
            fp += app;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), " x%.0f",
                      numberField(manifest, "repeat", 1));
        fp += buf;
    }
    return fp;
}

/** Headline metrics of one suite artifact: per-config mean IPC and
 *  mean cycles over its apps. */
void
extractSuiteMetrics(const JsonValue &doc, ObservatoryRun &run)
{
    const JsonValue *results = doc.find("results");
    if (results == nullptr || !results->isArray())
        return;
    std::map<std::string, std::pair<double, double>> sums; // ipc, cyc
    std::map<std::string, std::size_t> counts;
    for (const JsonValue &row : results->array) {
        const std::string config = stringField(&row, "config");
        const JsonValue *stats = row.find("stats");
        if (config.empty() || stats == nullptr)
            continue;
        sums[config].first += numberField(stats, "derived.ipc", 0);
        sums[config].second += numberField(stats, "core.cycles", 0);
        ++counts[config];
    }
    for (const auto &[config, sum] : sums) {
        const double n = static_cast<double>(counts[config]);
        addMetric(run, "ipc." + config, sum.first / n);
        addMetric(run, "cycles." + config, sum.second / n);
    }
}

/** Headline metrics of one latency artifact: per-config p50/p99 total
 *  latency and cycles. */
void
extractLatencyMetrics(const JsonValue &doc, ObservatoryRun &run)
{
    const JsonValue *results = doc.find("results");
    if (results == nullptr || !results->isArray())
        return;
    for (const JsonValue &cell : results->array) {
        const std::string config = stringField(&cell, "config");
        if (config.empty())
            continue;
        const JsonValue *latency = cell.find("latency");
        const JsonValue *total =
            latency != nullptr ? latency->find("total") : nullptr;
        addMetric(run, "p50." + config,
                  numberField(total, "p50", 0));
        addMetric(run, "p99." + config,
                  numberField(total, "p99", 0));
        addMetric(run, "cycles." + config,
                  numberField(&cell, "cycles", 0));
        addMetric(run, "ipc." + config,
                  numberField(&cell, "ipc", 0));
    }
}

/** Headline metrics of one bench artifact: Mcycles/s per cell and
 *  the sweep wall time. */
void
extractBenchMetrics(const JsonValue &doc, ObservatoryRun &run)
{
    addMetric(run, "suite_wall_ms",
              numberField(&doc, "suite_wall_ms", 0));
    const JsonValue *cells = doc.find("cells");
    if (cells == nullptr || !cells->isArray())
        return;
    for (const JsonValue &cell : cells->array) {
        const std::string app = stringField(&cell, "app");
        const std::string config = stringField(&cell, "config");
        if (app.empty() || config.empty())
            continue;
        addMetric(run, "mcps." + app + "." + config,
                  numberField(&cell, "cycles_per_sec", 0) / 1e6);
    }
}

} // namespace

bool
observatoryHigherIsBetter(const std::string &metric)
{
    // Throughput-flavoured metrics go up when things improve; cycle
    // and latency-flavoured metrics go down.
    return metric.rfind("ipc.", 0) == 0 ||
           metric.rfind("mcps.", 0) == 0;
}

ObservatoryReport
buildObservatoryReport(const std::vector<std::string> &dirs,
                       double tolerance)
{
    ObservatoryReport report;
    report.tolerance = tolerance;

    for (const std::string &dir : dirs) {
        std::error_code ec;
        fs::directory_iterator it(dir, ec);
        if (ec) {
            report.skipped.push_back(dir + " (" + ec.message() + ")");
            continue;
        }
        for (const fs::directory_entry &entry : it) {
            if (!entry.is_regular_file(ec))
                continue;
            const fs::path &path = entry.path();
            if (path.extension() != ".json")
                continue;
            std::ifstream in(path, std::ios::binary);
            std::ostringstream text;
            text << in.rdbuf();
            std::string err;
            const auto doc = parseJson(text.str(), &err);
            if (!doc) {
                report.skipped.push_back(path.string() +
                                         " (parse error)");
                continue;
            }
            const std::string schema = stringField(doc.get(),
                                                   "schema");
            const bool known =
                schema == "espsim-suite-artifact" ||
                schema == "espsim-latency-artifact" ||
                schema == "espsim-bench-artifact";
            if (!known) {
                report.skipped.push_back(path.string() + " (schema " +
                                         (schema.empty() ? "none"
                                                         : schema) +
                                         ")");
                continue;
            }
            ObservatoryRun run;
            run.path = path.string();
            run.schema = schema;
            run.workload = workloadFingerprint(*doc, schema);
            const JsonValue *manifest = doc->find("manifest");
            run.configHash = stringField(manifest, "config_hash");
            run.toolVersion = stringField(manifest, "tool_version");
            run.buildType = stringField(manifest, "build_type");
            if (manifest != nullptr) {
                const JsonValue *health = manifest->find("health");
                run.degraded =
                    health != nullptr &&
                    stringField(health, "status") == "degraded";
            }
            const auto mtime = fs::last_write_time(path, ec);
            if (!ec)
                run.mtimeNs = std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(
                                  mtime.time_since_epoch())
                                  .count();
            if (schema == "espsim-suite-artifact")
                extractSuiteMetrics(*doc, run);
            else if (schema == "espsim-latency-artifact")
                extractLatencyMetrics(*doc, run);
            else
                extractBenchMetrics(*doc, run);
            report.runs.push_back(std::move(run));
        }
    }

    // Stable global order (oldest first, path as tiebreak) so the
    // rendered report is deterministic for a given file set.
    std::vector<std::size_t> order(report.runs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const ObservatoryRun &ra = report.runs[a];
                  const ObservatoryRun &rb = report.runs[b];
                  if (ra.mtimeNs != rb.mtimeNs)
                      return ra.mtimeNs < rb.mtimeNs;
                  return ra.path < rb.path;
              });

    std::map<std::tuple<std::string, std::string, std::string>,
             ObservatoryGroup>
        groups;
    for (const std::size_t idx : order) {
        const ObservatoryRun &run = report.runs[idx];
        ObservatoryGroup &group =
            groups[{run.schema, run.configHash, run.workload}];
        group.schema = run.schema;
        group.configHash = run.configHash;
        group.workload = run.workload;
        group.runIndices.push_back(idx);
    }

    for (auto &[key, group] : groups) {
        if (group.runIndices.size() >= 2) {
            const ObservatoryRun &first =
                report.runs[group.runIndices.front()];
            const ObservatoryRun &last =
                report.runs[group.runIndices.back()];
            for (std::size_t i = 0; i < first.metricNames.size();
                 ++i) {
                const std::string &metric = first.metricNames[i];
                const auto it = std::find(last.metricNames.begin(),
                                          last.metricNames.end(),
                                          metric);
                if (it == last.metricNames.end())
                    continue;
                ObservatoryTrend trend;
                trend.metric = metric;
                trend.first = first.metricValues[i];
                trend.last = last.metricValues[static_cast<
                    std::size_t>(it - last.metricNames.begin())];
                trend.relChange =
                    trend.first == 0
                        ? 0
                        : (trend.last - trend.first) / trend.first;
                trend.higherIsBetter =
                    observatoryHigherIsBetter(metric);
                const double bad = trend.higherIsBetter
                                       ? -trend.relChange
                                       : trend.relChange;
                trend.regressed = bad > tolerance;
                if (trend.regressed)
                    ++report.regressions;
                group.trends.push_back(std::move(trend));
            }
        }
        report.groups.push_back(std::move(group));
    }
    return report;
}

std::string
renderObservatoryMarkdown(const ObservatoryReport &report)
{
    std::ostringstream out;
    out << "# espsim observatory\n\n";
    out << "- runs ingested: " << report.runs.size() << "\n";
    out << "- comparable groups: " << report.groups.size() << "\n";
    out << "- tolerance: " << report.tolerance * 100 << "%\n";
    out << "- regressions flagged: " << report.regressions << "\n";
    if (!report.skipped.empty()) {
        out << "- skipped: " << report.skipped.size() << " file(s)\n";
    }
    for (const ObservatoryGroup &group : report.groups) {
        out << "\n## " << group.schema << " @ "
            << (group.configHash.empty() ? "<no-hash>"
                                         : group.configHash);
        if (!group.workload.empty())
            out << " (" << group.workload << ")";
        out << "\n\n";
        out << "| run | version | build | degraded |\n";
        out << "|---|---|---|---|\n";
        for (const std::size_t idx : group.runIndices) {
            const ObservatoryRun &run = report.runs[idx];
            out << "| " << fs::path(run.path).filename().string()
                << " | " << run.toolVersion << " | " << run.buildType
                << " | " << (run.degraded ? "**yes**" : "no")
                << " |\n";
        }
        if (group.trends.empty()) {
            out << "\n(single run — no trend)\n";
            continue;
        }
        out << "\n| metric | first | last | change | flag |\n";
        out << "|---|---|---|---|---|\n";
        for (const ObservatoryTrend &trend : group.trends) {
            char change[32];
            std::snprintf(change, sizeof(change), "%+.1f%%",
                          trend.relChange * 100);
            out << "| " << trend.metric << " | " << trend.first
                << " | " << trend.last << " | " << change << " | "
                << (trend.regressed ? "REGRESSED"
                                    : (trend.higherIsBetter ? "↑ good"
                                                            : "↓ good"))
                << " |\n";
        }
    }
    return out.str();
}

std::string
renderObservatoryJson(const ObservatoryReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-observatory-report");
    w.key("format_version").value(std::uint64_t{1});
    w.key("manifest").beginObject();
    w.key("source").value("espsim report");
    w.key("tool_version").value(versionString());
    w.key("build_type").value(buildTypeString());
    w.key("tolerance").value(report.tolerance);
    w.endObject();
    w.key("runs").beginArray();
    for (const ObservatoryRun &run : report.runs) {
        w.beginObject();
        w.key("path").value(run.path);
        w.key("schema").value(run.schema);
        w.key("config_hash").value(run.configHash);
        w.key("workload").value(run.workload);
        w.key("tool_version").value(run.toolVersion);
        w.key("build_type").value(run.buildType);
        w.key("degraded").value(run.degraded);
        w.key("metrics").beginObject();
        for (std::size_t i = 0; i < run.metricNames.size(); ++i)
            w.key(run.metricNames[i]).value(run.metricValues[i]);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.key("groups").beginArray();
    for (const ObservatoryGroup &group : report.groups) {
        w.beginObject();
        w.key("schema").value(group.schema);
        w.key("config_hash").value(group.configHash);
        w.key("workload").value(group.workload);
        w.key("runs").beginArray();
        for (const std::size_t idx : group.runIndices)
            w.value(std::uint64_t{idx});
        w.endArray();
        w.key("trends").beginArray();
        for (const ObservatoryTrend &trend : group.trends) {
            w.beginObject();
            w.key("metric").value(trend.metric);
            w.key("first").value(trend.first);
            w.key("last").value(trend.last);
            w.key("rel_change").value(trend.relChange);
            w.key("higher_is_better").value(trend.higherIsBetter);
            w.key("regressed").value(trend.regressed);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("skipped").beginArray();
    for (const std::string &path : report.skipped)
        w.value(path);
    w.endArray();
    w.key("regressions").value(std::uint64_t{report.regressions});
    w.endObject();
    return w.str();
}

} // namespace espsim
