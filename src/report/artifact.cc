#include "report/artifact.hh"

#include <fstream>

#include "common/version.hh"
#include "report/host_profile.hh"
#include "report/json_writer.hh"

namespace espsim
{

namespace
{

/** Append one labelled field to a canonical config serialization. */
void
field(std::string &out, const char *name, double v)
{
    out += name;
    out += '=';
    out += jsonNumber(v);
    out += ';';
}

void
field(std::string &out, const char *name, const std::string &v)
{
    out += name;
    out += '=';
    out += v;
    out += ';';
}

void
geometry(std::string &out, const char *name, const CacheGeometry &g)
{
    out += name;
    out += "={";
    field(out, "size", static_cast<double>(g.sizeBytes));
    field(out, "assoc", g.assoc);
    field(out, "lat", static_cast<double>(g.hitLatency));
    out += "};";
}

/** Canonical text form of every architectural parameter of @p c. */
std::string
configCanonical(const SimConfig &c)
{
    std::string out;
    field(out, "name", c.name);
    field(out, "engine", static_cast<double>(c.engine));

    field(out, "core.width", c.core.width);
    field(out, "core.rob", c.core.robSize);
    field(out, "core.lsq", c.core.lsqSize);
    field(out, "core.mispredict",
          static_cast<double>(c.core.mispredictPenalty));
    field(out, "core.btbMiss",
          static_cast<double>(c.core.btbMissPenalty));
    field(out, "core.depth", static_cast<double>(c.core.pipelineDepth));
    field(out, "core.fpExtra",
          static_cast<double>(c.core.fpExtraLatency));
    field(out, "core.perfectBranch", c.core.perfectBranch);
    field(out, "core.looper", c.core.looperOverheadInstr);
    field(out, "core.stallThreshold",
          static_cast<double>(c.core.stallReportThreshold));
    field(out, "core.fetchHide",
          static_cast<double>(c.core.fetchQueueHide));

    geometry(out, "mem.l1i", c.memory.l1i);
    geometry(out, "mem.l1d", c.memory.l1d);
    geometry(out, "mem.l2", c.memory.l2);
    field(out, "mem.latency", static_cast<double>(c.memory.memLatency));
    field(out, "mem.perfectL1I", c.memory.perfectL1I);
    field(out, "mem.perfectL1D", c.memory.perfectL1D);

    field(out, "bp.global",
          static_cast<double>(c.branch.globalEntries));
    field(out, "bp.local", static_cast<double>(c.branch.localEntries));
    field(out, "bp.btb", static_cast<double>(c.branch.btbEntries));
    field(out, "bp.ibtb", static_cast<double>(c.branch.ibtbEntries));
    field(out, "bp.loop", static_cast<double>(c.branch.loopEntries));
    field(out, "bp.ras", c.branch.rasDepth);

    field(out, "pf.nlInstr", c.prefetch.nextLineInstr);
    field(out, "pf.nlData", c.prefetch.nextLineData);
    field(out, "pf.stride", c.prefetch.strideData);

    field(out, "esp.depth", c.esp.maxDepth);
    field(out, "esp.reentrant", c.esp.reentrant);
    field(out, "esp.naive", c.esp.naiveMode);
    field(out, "esp.iList", c.esp.useIList);
    field(out, "esp.dList", c.esp.useDList);
    field(out, "esp.bList", c.esp.useBList);
    field(out, "esp.branchPolicy",
          static_cast<double>(c.esp.branchPolicy));
    for (std::size_t d = 0; d < c.esp.iListBytes.size(); ++d) {
        field(out, "esp.iListBytes",
              static_cast<double>(c.esp.iListBytes[d]));
        field(out, "esp.dListBytes",
              static_cast<double>(c.esp.dListBytes[d]));
        field(out, "esp.bListDirBytes",
              static_cast<double>(c.esp.bListDirBytes[d]));
        field(out, "esp.bListTgtBytes",
              static_cast<double>(c.esp.bListTgtBytes[d]));
    }
    geometry(out, "esp.icachelet", c.esp.icachelet);
    geometry(out, "esp.dcachelet", c.esp.dcachelet);
    field(out, "esp.lead",
          static_cast<double>(c.esp.prefetchLeadInstructions));
    field(out, "esp.lookahead",
          static_cast<double>(c.esp.branchTrainLookahead));

    field(out, "ra.warmData", c.runahead.warmData);
    field(out, "ra.trainBp", c.runahead.trainBranchPredictor);
    field(out, "ra.warmInstr", c.runahead.warmInstr);
    field(out, "ra.mispredict",
          static_cast<double>(c.runahead.mispredictPenalty));

    field(out, "en.instr", c.energy.instrDynamic);
    field(out, "en.l1", c.energy.l1Access);
    field(out, "en.l2", c.energy.l2Access);
    field(out, "en.mem", c.energy.memAccess);
    field(out, "en.bp", c.energy.bpAccess);
    field(out, "en.mispredict", c.energy.mispredictWork);
    field(out, "en.cachelet", c.energy.cacheletAccess);
    return out;
}

const char *
versionOr(const std::string &override_str, const char *fallback)
{
    return override_str.empty() ? fallback : override_str.c_str();
}

} // namespace

std::string
configsHash(const std::vector<SimConfig> &configs)
{
    // FNV-1a, 64 bit.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const std::string &s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
    };
    for (const SimConfig &c : configs)
        mix(configCanonical(c));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

namespace
{

void
writeManifest(JsonWriter &w, const ArtifactManifest &manifest,
              const std::vector<SimConfig> &configs,
              const std::vector<SuiteRow> &rows)
{
    w.key("manifest").beginObject();
    w.key("source").value(manifest.source);
    w.key("tool_version")
        .value(versionOr(manifest.toolVersion, versionString()));
    w.key("build_type")
        .value(versionOr(manifest.buildType, buildTypeString()));
    w.key("config_hash").value(configsHash(configs));
    w.key("apps").beginArray();
    for (const SuiteRow &row : rows)
        w.value(row.app);
    w.endArray();
    w.key("configs").beginArray();
    for (const SimConfig &c : configs)
        w.value(c.name);
    w.endArray();
    w.key("points").value(
        std::uint64_t{rows.size() * configs.size()});
    w.endObject();
}

} // namespace

std::string
renderSuiteArtifactJson(const ArtifactManifest &manifest,
                        const std::vector<SimConfig> &configs,
                        const std::vector<SuiteRow> &rows,
                        const JobPoolUsage *pool_usage)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-suite-artifact");
    w.key("format_version").value(std::uint64_t{artifactFormatVersion});
    writeManifest(w, manifest, configs, rows);
    w.key("results").beginArray();
    for (const SuiteRow &row : rows) {
        for (std::size_t c = 0;
             c < configs.size() && c < row.results.size(); ++c) {
            if (!row.ok(c))
                continue; // failed cells live in the errors block
            const SimResult &r = row.results[c];
            w.beginObject();
            w.key("app").value(row.app);
            w.key("config").value(configs[c].name);
            w.key("stats").beginObject();
            for (const auto &[name, value] : r.stats.values())
                w.key(name).value(value);
            w.endObject();
            w.endObject();
        }
    }
    w.endArray();
    // Failed cells: the block is emitted only when a cell failed, so
    // clean artifacts stay byte-identical to the pre-error-cell
    // format (and to golden baselines).
    if (suiteHasErrors(rows)) {
        w.key("errors").beginArray();
        for (const SuiteRow &row : rows) {
            for (std::size_t c = 0;
                 c < configs.size() && c < row.errors.size(); ++c) {
                if (row.ok(c))
                    continue;
                w.beginObject();
                w.key("app").value(row.app);
                w.key("config").value(configs[c].name);
                w.key("config_hash").value(row.errors[c].configHash);
                w.key("message").value(row.errors[c].message);
                w.endObject();
            }
        }
        w.endArray();
    }
    // Host self-profile (espsim suite --profile only): wall-clock
    // facts about this machine, never present in clean artifacts.
    if (pool_usage) {
        w.key("host").beginObject();
        w.key("jobs").value(pool_usage->threads);
        w.key("jobs_completed")
            .value(std::uint64_t{pool_usage->jobsCompleted});
        w.key("queue_depth_high_water")
            .value(std::uint64_t{pool_usage->queueDepthHighWater});
        w.key("busy_ms").value(pool_usage->busyMs);
        w.key("wall_ms").value(pool_usage->wallMs);
        w.key("busy_fraction").value(pool_usage->busyFraction());
        w.key("jobs_per_sec").value(pool_usage->jobsPerSec());
        w.key("peak_rss_mb").value(peakRssMb());
        w.endObject();
    }
    w.endObject();
    return w.str();
}

std::string
renderSuiteArtifactCsv(const ArtifactManifest &manifest,
                       const std::vector<SimConfig> &configs,
                       const std::vector<SuiteRow> &rows)
{
    std::string out;
    out += "# schema=espsim-suite-artifact-csv\n";
    out += "# format_version=" + std::to_string(artifactFormatVersion) +
        "\n";
    out += "# source=" + manifest.source + "\n";
    out += std::string("# tool_version=") +
        versionOr(manifest.toolVersion, versionString()) + "\n";
    out += "# config_hash=" + configsHash(configs) + "\n";
    for (const SuiteRow &row : rows) {
        for (std::size_t c = 0;
             c < configs.size() && c < row.errors.size(); ++c) {
            if (!row.ok(c)) {
                out += "# error " + row.app + "," + configs[c].name +
                    ": " + row.errors[c].message + "\n";
            }
        }
    }
    out += "app,config,stat,value\n";
    for (const SuiteRow &row : rows) {
        for (std::size_t c = 0;
             c < configs.size() && c < row.results.size(); ++c) {
            if (!row.ok(c))
                continue;
            const SimResult &r = row.results[c];
            for (const auto &[name, value] : r.stats.values()) {
                out += row.app;
                out += ',';
                out += configs[c].name;
                out += ',';
                out += name;
                out += ',';
                out += jsonNumber(value);
                out += '\n';
            }
        }
    }
    return out;
}

namespace
{

/** RFC-4180 style quoting for table cells that need it. */
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
renderTableArtifactJson(const ArtifactManifest &manifest,
                        const TextTable &table)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-table-artifact");
    w.key("format_version").value(std::uint64_t{artifactFormatVersion});
    w.key("manifest").beginObject();
    w.key("source").value(manifest.source);
    w.key("tool_version")
        .value(versionOr(manifest.toolVersion, versionString()));
    w.key("build_type")
        .value(versionOr(manifest.buildType, buildTypeString()));
    w.endObject();
    w.key("title").value(table.title());
    w.key("header").beginArray();
    for (const std::string &cell : table.headerCells())
        w.value(cell);
    w.endArray();
    w.key("rows").beginArray();
    for (const auto &row : table.dataRows()) {
        w.beginArray();
        for (const std::string &cell : row)
            w.value(cell);
        w.endArray();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
renderTableArtifactCsv(const ArtifactManifest &manifest,
                       const TextTable &table)
{
    std::string out;
    out += "# schema=espsim-table-artifact-csv\n";
    out += "# format_version=" + std::to_string(artifactFormatVersion) +
        "\n";
    out += "# source=" + manifest.source + "\n";
    out += std::string("# tool_version=") +
        versionOr(manifest.toolVersion, versionString()) + "\n";
    out += "# title=" + table.title() + "\n";
    auto emitRow = [&out](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out += ',';
            out += csvCell(cells[i]);
        }
        out += '\n';
    };
    emitRow(table.headerCells());
    for (const auto &row : table.dataRows())
        emitRow(row);
    return out;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    return static_cast<bool>(out);
}

} // namespace espsim
