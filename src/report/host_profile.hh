/**
 * @file
 * Host-side self-profiler and the `espsim bench` artifact.
 *
 * Simulators are programs too: the ROADMAP's "as fast as the hardware
 * allows" north-star needs the simulator to *measure itself*. This
 * header provides the two surfaces that do it:
 *
 *  - **Per-cell wall-clock profiles** (HostCellProfile + the RAII
 *    WallClockSpan): trace generation, warmup, simulation and
 *    reporting time per (app, config) sweep cell, plus process peak
 *    RSS. `espsim suite --profile` merges them into the cell stats as
 *    a `host.*` namespace and prints a one-line per-cell summary.
 *    Host times are wall-clock facts about *this* run on *this*
 *    machine, so they are strictly opt-in: without `--profile` no
 *    `host.*` stat exists and suite artifacts stay byte-identical to
 *    the deterministic baseline.
 *
 *  - **Bench artifacts** (BenchReport + renderBenchArtifactJson):
 *    `espsim bench` runs a pinned micro-suite and records simulated
 *    cycles/sec and events/sec per cell plus total suite wall time
 *    into a `BENCH_<git-describe>.json`. tools/compare_bench.py diffs
 *    two of these with relative tolerances, giving CI a
 *    simulator-throughput regression gate.
 */

#ifndef ESPSIM_REPORT_HOST_PROFILE_HH
#define ESPSIM_REPORT_HOST_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace espsim
{

struct ArtifactManifest;

/** Version of the bench-artifact schema this build writes. */
constexpr std::uint32_t benchFormatVersion = 1;

/** Where one (app, config) cell's host wall time went, in ms. */
struct HostCellProfile
{
    std::string app;
    std::string config;
    double genMs = 0;    //!< trace generation (charged to the cell
                         //!< that ran the app's call_once)
    double warmupMs = 0; //!< LLC pre-warm
    double simMs = 0;    //!< core.run + prefetch finalize
    double reportMs = 0; //!< stat registration, energy, snapshot

    double
    totalMs() const
    {
        return genMs + warmupMs + simMs + reportMs;
    }
};

/**
 * RAII wall-clock span: adds the elapsed milliseconds to @p target_ms
 * on destruction. A null target makes the span free (profiling off).
 */
class WallClockSpan
{
  public:
    explicit WallClockSpan(double *target_ms)
        : target_(target_ms),
          start_(target_ms ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{})
    {
    }

    ~WallClockSpan()
    {
        if (target_) {
            *target_ += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
        }
    }

    WallClockSpan(const WallClockSpan &) = delete;
    WallClockSpan &operator=(const WallClockSpan &) = delete;

  private:
    double *target_;
    std::chrono::steady_clock::time_point start_;
};

/** Process peak resident set size in MiB (0 when unavailable). */
double peakRssMb();

/**
 * Merge @p profile into @p stats as the `host.*` namespace
 * (host.gen_ms, host.warmup_ms, host.sim_ms, host.report_ms,
 * host.total_ms, host.peak_rss_mb). Only ever called with --profile.
 */
void mergeHostStats(StatGroup &stats, const HostCellProfile &profile);

/** One bench cell: simulator throughput on one (app, config) point. */
struct BenchCell
{
    std::string app;
    std::string config;
    Cycle simCycles = 0;
    std::uint64_t simEvents = 0;
    std::uint64_t instructions = 0;
    double wallMs = 0; //!< best (minimum) over --repeat runs

    double
    cyclesPerSec() const
    {
        return wallMs <= 0.0
            ? 0.0
            : static_cast<double>(simCycles) * 1000.0 / wallMs;
    }

    double
    eventsPerSec() const
    {
        return wallMs <= 0.0
            ? 0.0
            : static_cast<double>(simEvents) * 1000.0 / wallMs;
    }
};

/** A whole `espsim bench` run. */
struct BenchReport
{
    std::string configHash; //!< hash of the pinned config set
    unsigned jobs = 1;
    unsigned repeat = 1;
    double suiteWallMs = 0;
    double peakRssMb = 0;
    std::vector<BenchCell> cells;
};

/** Render the `espsim-bench-artifact` JSON document. */
std::string renderBenchArtifactJson(const ArtifactManifest &manifest,
                                    const BenchReport &report);

} // namespace espsim

#endif // ESPSIM_REPORT_HOST_PROFILE_HH
