#include "report/timeline.hh"

#include <fstream>

#include "report/json_writer.hh"

namespace espsim
{

const char *
timelineStallName(TimelineStall kind)
{
    switch (kind) {
      case TimelineStall::InstrMiss:
        return "icache-miss";
      case TimelineStall::DataMiss:
        return "dcache-miss";
      case TimelineStall::LsqFull:
        return "lsq-full";
      case TimelineStall::Mispredict:
        return "mispredict-flush";
      case TimelineStall::BtbMiss:
        return "btb-miss";
    }
    return "unknown";
}

void
EventTimeline::eventQueued(std::size_t event_idx, Cycle now)
{
    EventSpan span;
    span.index = event_idx;
    span.queued = now;
    span.dispatched = now;
    span.retired = now;
    events_.push_back(span);
    curEvent_ = event_idx;
}

void
EventTimeline::eventDispatched(std::size_t event_idx, Cycle now)
{
    if (!events_.empty() && events_.back().index == event_idx)
        events_.back().dispatched = now;
}

void
EventTimeline::eventRetired(std::size_t event_idx, Cycle now,
                            InstCount instructions)
{
    if (!events_.empty() && events_.back().index == event_idx) {
        events_.back().retired = now;
        events_.back().instructions = instructions;
    }
}

void
EventTimeline::eventCycleBuckets(
    std::size_t event_idx,
    std::vector<std::pair<std::string, Cycle>> buckets)
{
    if (!events_.empty() && events_.back().index == event_idx)
        events_.back().cycleBuckets = std::move(buckets);
}

void
EventTimeline::eventPrefetchTallies(
    std::size_t event_idx,
    std::vector<std::pair<std::string, std::uint64_t>> tallies)
{
    if (!events_.empty() && events_.back().index == event_idx)
        events_.back().prefetches = std::move(tallies);
}

void
EventTimeline::recordStall(TimelineStall kind, Cycle start, Cycle dur)
{
    StallSpan span;
    span.kind = kind;
    span.eventIdx = curEvent_;
    span.start = start;
    span.dur = dur;
    stalls_.push_back(span);
    if (!events_.empty()) {
        events_.back().stallCycles[static_cast<unsigned>(kind)] += dur;
        ++events_.back().stallCount;
    }
}

void
EventTimeline::recordEspWindow(unsigned depth,
                               std::size_t spec_event_idx, Cycle start,
                               Cycle dur)
{
    EspSpan span;
    span.depth = depth;
    span.specEventIdx = spec_event_idx;
    span.triggerEventIdx = curEvent_;
    span.start = start;
    span.dur = dur;
    windows_.push_back(span);
    if (!events_.empty())
        ++events_.back().espWindows;
}

void
EventTimeline::setRunInfo(const std::string &config_name,
                          const std::string &workload_name)
{
    configName_ = config_name;
    workloadName_ = workload_name;
}

namespace
{

/** Trace rows: one pid, four named tids. */
constexpr int tracePid = 1;
constexpr int tidEvents = 1;
constexpr int tidStalls = 2;
constexpr int tidEsp = 3;
constexpr int tidAccounting = 4;

void
metadataRecord(JsonWriter &w, const char *name, int tid,
               const char *value)
{
    w.beginObject();
    w.key("name").value(name);
    w.key("ph").value("M");
    w.key("pid").value(tracePid);
    if (tid >= 0)
        w.key("tid").value(tid);
    w.key("args").beginObject().key("name").value(value).endObject();
    w.endObject();
}

void
sliceCommon(JsonWriter &w, const char *cat, Cycle ts, Cycle dur,
            int tid)
{
    w.key("cat").value(cat);
    w.key("ph").value("X");
    w.key("ts").value(std::uint64_t{ts});
    w.key("dur").value(std::uint64_t{dur});
    w.key("pid").value(tracePid);
    w.key("tid").value(tid);
}

} // namespace

std::string
EventTimeline::renderChromeTrace() const
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    metadataRecord(w, "process_name", -1, "espsim");
    metadataRecord(w, "thread_name", tidEvents, "events");
    metadataRecord(w, "thread_name", tidStalls, "stalls");
    metadataRecord(w, "thread_name", tidEsp, "esp pre-execution");
    metadataRecord(w, "thread_name", tidAccounting, "cycle accounting");

    for (const EventSpan &ev : events_) {
        // The full event span: queue-head to retire.
        w.beginObject();
        w.key("name").value("event " + std::to_string(ev.index));
        sliceCommon(w, "event", ev.queued, ev.retired - ev.queued,
                    tidEvents);
        w.key("args").beginObject();
        w.key("index").value(std::uint64_t{ev.index});
        w.key("queued_cycle").value(std::uint64_t{ev.queued});
        w.key("dispatch_cycle").value(std::uint64_t{ev.dispatched});
        w.key("retire_cycle").value(std::uint64_t{ev.retired});
        w.key("instructions").value(std::uint64_t{ev.instructions});
        w.key("stall_count").value(std::uint64_t{ev.stallCount});
        w.key("esp_windows").value(std::uint64_t{ev.espWindows});
        w.key("stall_cycles").beginObject();
        for (unsigned k = 0; k < 5; ++k) {
            w.key(timelineStallName(static_cast<TimelineStall>(k)))
                .value(std::uint64_t{ev.stallCycles[k]});
        }
        w.endObject();
        if (!ev.cycleBuckets.empty()) {
            w.key("cycle_buckets").beginObject();
            for (const auto &[name, cycles] : ev.cycleBuckets)
                w.key(name).value(std::uint64_t{cycles});
            w.endObject();
        }
        if (!ev.prefetches.empty()) {
            w.key("prefetches").beginObject();
            for (const auto &[name, count] : ev.prefetches)
                w.key(name).value(std::uint64_t{count});
            w.endObject();
        }
        w.endObject();
        w.endObject();

        // Counter track: the event's cycle-accounting breakdown as a
        // stacked Perfetto counter sampled at dispatch time.
        if (!ev.cycleBuckets.empty()) {
            w.beginObject();
            w.key("name").value("cycle buckets");
            w.key("cat").value("accounting");
            w.key("ph").value("C");
            w.key("ts").value(std::uint64_t{ev.queued});
            w.key("pid").value(tracePid);
            w.key("tid").value(tidAccounting);
            w.key("args").beginObject();
            for (const auto &[name, cycles] : ev.cycleBuckets)
                w.key(name).value(std::uint64_t{cycles});
            w.endObject();
            w.endObject();
        }

        // Nested execute slice: dispatch to retire (the looper-gap
        // prefix of the outer slice is the queue/dequeue overhead).
        w.beginObject();
        w.key("name").value("execute");
        sliceCommon(w, "event", ev.dispatched,
                    ev.retired - ev.dispatched, tidEvents);
        w.key("args")
            .beginObject()
            .key("index")
            .value(std::uint64_t{ev.index})
            .endObject();
        w.endObject();
    }

    for (const StallSpan &st : stalls_) {
        w.beginObject();
        w.key("name").value(timelineStallName(st.kind));
        sliceCommon(w, "stall", st.start, st.dur, tidStalls);
        w.key("args")
            .beginObject()
            .key("event")
            .value(std::uint64_t{st.eventIdx})
            .endObject();
        w.endObject();
    }

    for (const EspSpan &sp : windows_) {
        w.beginObject();
        w.key("name").value("ESP-" + std::to_string(sp.depth));
        sliceCommon(w, "esp", sp.start, sp.dur, tidEsp);
        w.key("args").beginObject();
        w.key("depth").value(sp.depth);
        w.key("pre_executed_event")
            .value(std::uint64_t{sp.specEventIdx});
        w.key("triggering_event")
            .value(std::uint64_t{sp.triggerEventIdx});
        w.endObject();
        w.endObject();
    }

    w.endArray();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("tool").value("espsim");
    w.key("timeline_format_version")
        .value(std::uint64_t{timelineFormatVersion});
    w.key("config").value(configName_);
    w.key("workload").value(workloadName_);
    w.key("cycles_per_us").value(std::uint64_t{1});
    w.endObject();
    w.endObject();
    return w.str();
}

bool
EventTimeline::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    const std::string text = renderChromeTrace();
    out.write(text.data(),
              static_cast<std::streamsize>(text.size()));
    return static_cast<bool>(out);
}

} // namespace espsim
