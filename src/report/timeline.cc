#include "report/timeline.hh"

#include <fstream>

#include "common/logging.hh"
#include "report/json_writer.hh"

namespace espsim
{

/** Streaming state: the open file plus the comma-tracking writer. */
struct EventTimeline::Stream
{
    std::ofstream out;
    JsonWriter writer;

    bool
    drainTo()
    {
        const std::string text = writer.drain();
        out.write(text.data(),
                  static_cast<std::streamsize>(text.size()));
        return static_cast<bool>(out);
    }
};

EventTimeline::EventTimeline() = default;

EventTimeline::~EventTimeline()
{
    // An abandoned stream still holds an open scope; close it so the
    // file is at least valid-prefix JSON, but don't warn — the owner
    // already reported whatever error abandoned it.
    if (stream_)
        closeStream();
}

const char *
timelineStallName(TimelineStall kind)
{
    switch (kind) {
      case TimelineStall::InstrMiss:
        return "icache-miss";
      case TimelineStall::DataMiss:
        return "dcache-miss";
      case TimelineStall::LsqFull:
        return "lsq-full";
      case TimelineStall::Mispredict:
        return "mispredict-flush";
      case TimelineStall::BtbMiss:
        return "btb-miss";
    }
    return "unknown";
}

void
EventTimeline::eventQueued(std::size_t event_idx, Cycle now)
{
    if (eventLimit_ > 0 && numEvents() >= eventLimit_) {
        // Over the cap: flush whatever is buffered so the kept
        // prefix reaches the stream, then drop this and later events.
        if (stream_ && !dropping_)
            flushCompletedEvent();
        dropping_ = true;
        ++droppedEvents_;
        curEvent_ = event_idx;
        return;
    }
    if (stream_)
        flushCompletedEvent();
    EventSpan span;
    span.index = event_idx;
    span.queued = now;
    span.dispatched = now;
    span.retired = now;
    events_.push_back(span);
    curEvent_ = event_idx;
}

void
EventTimeline::eventDispatched(std::size_t event_idx, Cycle now)
{
    if (!events_.empty() && events_.back().index == event_idx)
        events_.back().dispatched = now;
}

void
EventTimeline::eventRetired(std::size_t event_idx, Cycle now,
                            InstCount instructions)
{
    if (!events_.empty() && events_.back().index == event_idx) {
        events_.back().retired = now;
        events_.back().instructions = instructions;
    }
}

void
EventTimeline::eventCycleBuckets(
    std::size_t event_idx,
    std::vector<std::pair<std::string, Cycle>> buckets)
{
    if (!events_.empty() && events_.back().index == event_idx)
        events_.back().cycleBuckets = std::move(buckets);
}

void
EventTimeline::eventPrefetchTallies(
    std::size_t event_idx,
    std::vector<std::pair<std::string, std::uint64_t>> tallies)
{
    if (!events_.empty() && events_.back().index == event_idx)
        events_.back().prefetches = std::move(tallies);
}

void
EventTimeline::recordStall(TimelineStall kind, Cycle start, Cycle dur)
{
    if (dropping_)
        return;
    StallSpan span;
    span.kind = kind;
    span.eventIdx = curEvent_;
    span.start = start;
    span.dur = dur;
    stalls_.push_back(span);
    if (!events_.empty()) {
        events_.back().stallCycles[static_cast<unsigned>(kind)] += dur;
        ++events_.back().stallCount;
    }
}

void
EventTimeline::recordEspWindow(unsigned depth,
                               std::size_t spec_event_idx, Cycle start,
                               Cycle dur)
{
    if (dropping_)
        return;
    EspSpan span;
    span.depth = depth;
    span.specEventIdx = spec_event_idx;
    span.triggerEventIdx = curEvent_;
    span.start = start;
    span.dur = dur;
    windows_.push_back(span);
    if (!events_.empty())
        ++events_.back().espWindows;
}

void
EventTimeline::recordIntervalCounters(
    Cycle ts, std::vector<std::pair<std::string, double>> values)
{
    CounterSample sample;
    sample.ts = ts;
    sample.values = std::move(values);
    counters_.push_back(std::move(sample));
}

void
EventTimeline::setRunInfo(const std::string &config_name,
                          const std::string &workload_name)
{
    configName_ = config_name;
    workloadName_ = workload_name;
}

void
EventTimeline::setEventLimit(std::size_t max_events)
{
    eventLimit_ = max_events;
}

namespace
{

/** Trace rows: one pid, five named tids. */
constexpr int tracePid = 1;
constexpr int tidEvents = 1;
constexpr int tidStalls = 2;
constexpr int tidEsp = 3;
constexpr int tidAccounting = 4;
constexpr int tidIntervals = 5;

void
metadataRecord(JsonWriter &w, const char *name, int tid,
               const char *value)
{
    w.beginObject();
    w.key("name").value(name);
    w.key("ph").value("M");
    w.key("pid").value(tracePid);
    if (tid >= 0)
        w.key("tid").value(tid);
    w.key("args").beginObject().key("name").value(value).endObject();
    w.endObject();
}

void
sliceCommon(JsonWriter &w, const char *cat, Cycle ts, Cycle dur,
            int tid)
{
    w.key("cat").value(cat);
    w.key("ph").value("X");
    w.key("ts").value(std::uint64_t{ts});
    w.key("dur").value(std::uint64_t{dur});
    w.key("pid").value(tracePid);
    w.key("tid").value(tid);
}

} // namespace

void
EventTimeline::renderHeader(JsonWriter &w) const
{
    w.beginObject();
    w.key("traceEvents").beginArray();

    metadataRecord(w, "process_name", -1, "espsim");
    metadataRecord(w, "thread_name", tidEvents, "events");
    metadataRecord(w, "thread_name", tidStalls, "stalls");
    metadataRecord(w, "thread_name", tidEsp, "esp pre-execution");
    metadataRecord(w, "thread_name", tidAccounting, "cycle accounting");
    metadataRecord(w, "thread_name", tidIntervals, "interval stats");
}

void
EventTimeline::renderEventGroup(JsonWriter &w, const EventSpan &ev,
                                std::size_t &stall_cursor,
                                std::size_t &window_cursor) const
{
    // The full event span: queue-head to retire.
    w.beginObject();
    w.key("name").value("event " + std::to_string(ev.index));
    sliceCommon(w, "event", ev.queued, ev.retired - ev.queued,
                tidEvents);
    w.key("args").beginObject();
    w.key("index").value(std::uint64_t{ev.index});
    w.key("queued_cycle").value(std::uint64_t{ev.queued});
    w.key("dispatch_cycle").value(std::uint64_t{ev.dispatched});
    w.key("retire_cycle").value(std::uint64_t{ev.retired});
    w.key("instructions").value(std::uint64_t{ev.instructions});
    w.key("stall_count").value(std::uint64_t{ev.stallCount});
    w.key("esp_windows").value(std::uint64_t{ev.espWindows});
    w.key("stall_cycles").beginObject();
    for (unsigned k = 0; k < 5; ++k) {
        w.key(timelineStallName(static_cast<TimelineStall>(k)))
            .value(std::uint64_t{ev.stallCycles[k]});
    }
    w.endObject();
    if (!ev.cycleBuckets.empty()) {
        w.key("cycle_buckets").beginObject();
        for (const auto &[name, cycles] : ev.cycleBuckets)
            w.key(name).value(std::uint64_t{cycles});
        w.endObject();
    }
    if (!ev.prefetches.empty()) {
        w.key("prefetches").beginObject();
        for (const auto &[name, count] : ev.prefetches)
            w.key(name).value(std::uint64_t{count});
        w.endObject();
    }
    w.endObject();
    w.endObject();

    // Counter track: the event's cycle-accounting breakdown as a
    // stacked Perfetto counter sampled at dispatch time.
    if (!ev.cycleBuckets.empty()) {
        w.beginObject();
        w.key("name").value("cycle buckets");
        w.key("cat").value("accounting");
        w.key("ph").value("C");
        w.key("ts").value(std::uint64_t{ev.queued});
        w.key("pid").value(tracePid);
        w.key("tid").value(tidAccounting);
        w.key("args").beginObject();
        for (const auto &[name, cycles] : ev.cycleBuckets)
            w.key(name).value(std::uint64_t{cycles});
        w.endObject();
        w.endObject();
    }

    // Nested execute slice: dispatch to retire (the looper-gap
    // prefix of the outer slice is the queue/dequeue overhead).
    w.beginObject();
    w.key("name").value("execute");
    sliceCommon(w, "event", ev.dispatched, ev.retired - ev.dispatched,
                tidEvents);
    w.key("args")
        .beginObject()
        .key("index")
        .value(std::uint64_t{ev.index})
        .endObject();
    w.endObject();

    // The event's stalls and ESP windows. Spans are recorded in
    // event order, so a cursor walk groups them without indexing.
    while (stall_cursor < stalls_.size() &&
           stalls_[stall_cursor].eventIdx <= ev.index) {
        const StallSpan &st = stalls_[stall_cursor++];
        w.beginObject();
        w.key("name").value(timelineStallName(st.kind));
        sliceCommon(w, "stall", st.start, st.dur, tidStalls);
        w.key("args")
            .beginObject()
            .key("event")
            .value(std::uint64_t{st.eventIdx})
            .endObject();
        w.endObject();
    }
    while (window_cursor < windows_.size() &&
           windows_[window_cursor].triggerEventIdx <= ev.index) {
        const EspSpan &sp = windows_[window_cursor++];
        w.beginObject();
        w.key("name").value("ESP-" + std::to_string(sp.depth));
        sliceCommon(w, "esp", sp.start, sp.dur, tidEsp);
        w.key("args").beginObject();
        w.key("depth").value(sp.depth);
        w.key("pre_executed_event")
            .value(std::uint64_t{sp.specEventIdx});
        w.key("triggering_event")
            .value(std::uint64_t{sp.triggerEventIdx});
        w.endObject();
        w.endObject();
    }
}

void
EventTimeline::renderTrailing(JsonWriter &w, std::size_t stall_cursor,
                              std::size_t window_cursor) const
{
    while (stall_cursor < stalls_.size()) {
        const StallSpan &st = stalls_[stall_cursor++];
        w.beginObject();
        w.key("name").value(timelineStallName(st.kind));
        sliceCommon(w, "stall", st.start, st.dur, tidStalls);
        w.key("args")
            .beginObject()
            .key("event")
            .value(std::uint64_t{st.eventIdx})
            .endObject();
        w.endObject();
    }
    while (window_cursor < windows_.size()) {
        const EspSpan &sp = windows_[window_cursor++];
        w.beginObject();
        w.key("name").value("ESP-" + std::to_string(sp.depth));
        sliceCommon(w, "esp", sp.start, sp.dur, tidEsp);
        w.key("args").beginObject();
        w.key("depth").value(sp.depth);
        w.key("pre_executed_event")
            .value(std::uint64_t{sp.specEventIdx});
        w.key("triggering_event")
            .value(std::uint64_t{sp.triggerEventIdx});
        w.endObject();
        w.endObject();
    }
}

void
EventTimeline::renderCounterSamples(JsonWriter &w) const
{
    // One record per metric per sample: each metric gets its own
    // Perfetto counter track on the interval row.
    for (const CounterSample &sample : counters_) {
        for (const auto &[name, value] : sample.values) {
            w.beginObject();
            w.key("name").value(name);
            w.key("cat").value("interval");
            w.key("ph").value("C");
            w.key("ts").value(std::uint64_t{sample.ts});
            w.key("pid").value(tracePid);
            w.key("tid").value(tidIntervals);
            w.key("args")
                .beginObject()
                .key("value")
                .value(value)
                .endObject();
            w.endObject();
        }
    }
}

void
EventTimeline::renderFooter(JsonWriter &w) const
{
    w.endArray();
    w.key("displayTimeUnit").value("ms");
    w.key("otherData").beginObject();
    w.key("tool").value("espsim");
    w.key("timeline_format_version")
        .value(std::uint64_t{timelineFormatVersion});
    w.key("config").value(configName_);
    w.key("workload").value(workloadName_);
    if (!traceKind_.empty())
        w.key("trace_kind").value(traceKind_);
    w.key("cycles_per_us").value(std::uint64_t{1});
    if (droppedEvents_ > 0)
        w.key("dropped_events").value(std::uint64_t{droppedEvents_});
    w.endObject();
    w.endObject();
}

std::string
EventTimeline::renderChromeTrace() const
{
    if (droppedEvents_ > 0) {
        warn("timeline: event limit %zu reached; dropped %zu later "
             "events",
             eventLimit_, droppedEvents_);
    }
    JsonWriter w;
    renderHeader(w);
    std::size_t stall_cursor = 0;
    std::size_t window_cursor = 0;
    for (const EventSpan &ev : events_)
        renderEventGroup(w, ev, stall_cursor, window_cursor);
    renderTrailing(w, stall_cursor, window_cursor);
    renderCounterSamples(w);
    renderFooter(w);
    return w.str();
}

bool
EventTimeline::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    const std::string text = renderChromeTrace();
    out.write(text.data(),
              static_cast<std::streamsize>(text.size()));
    return static_cast<bool>(out);
}

bool
EventTimeline::streamTo(const std::string &path)
{
    if (stream_)
        panic("EventTimeline: streamTo() while already streaming");
    stream_ = std::make_unique<Stream>();
    stream_->out.open(path, std::ios::binary);
    if (!stream_->out) {
        stream_.reset();
        return false;
    }
    renderHeader(stream_->writer);
    return stream_->drainTo();
}

bool
EventTimeline::flushCompletedEvent()
{
    if (!stream_ || events_.empty())
        return true;
    // In streaming mode the buffers hold exactly the spans recorded
    // since the previous flush, all belonging to the buffered event
    // (or recorded before the first one).
    std::size_t stall_cursor = 0;
    std::size_t window_cursor = 0;
    renderEventGroup(stream_->writer, events_.back(), stall_cursor,
                     window_cursor);
    renderTrailing(stream_->writer, stall_cursor, window_cursor);
    flushedEvents_ += events_.size();
    flushedStalls_ += stalls_.size();
    flushedWindows_ += windows_.size();
    events_.clear();
    stalls_.clear();
    windows_.clear();
    return stream_->drainTo();
}

bool
EventTimeline::closeStream()
{
    if (!stream_)
        return false;
    if (droppedEvents_ > 0) {
        warn("timeline: event limit %zu reached; dropped %zu later "
             "events",
             eventLimit_, droppedEvents_);
    }
    bool ok = flushCompletedEvent();
    renderCounterSamples(stream_->writer);
    renderFooter(stream_->writer);
    ok = stream_->drainTo() && ok;
    stream_->out.close();
    ok = static_cast<bool>(stream_->out) && ok;
    stream_.reset();
    return ok;
}

} // namespace espsim
