/**
 * @file
 * Flight-recorder export: replay a SpanCollector's ring — the most
 * recent window of request spans, ending at the anomaly trigger — into
 * an EventTimeline and write it as a Chrome trace_event JSON file that
 * loads directly in Perfetto.
 *
 * Each span becomes an event slice (queue-head to retire, with a
 * nested execute slice) carrying its cycle-bucket blame and per-source
 * prefetch-issue tallies as slice args plus a stacked cycle-bucket
 * counter track, exactly like a live `--timeline` recording of the
 * same window. The trace header is stamped "flight-recorder" so a dump
 * is distinguishable from a full-run timeline.
 */

#ifndef ESPSIM_REPORT_FLIGHT_RECORDER_HH
#define ESPSIM_REPORT_FLIGHT_RECORDER_HH

#include <string>

#include "report/spans.hh"

namespace espsim
{

/** Render the ring as Chrome trace_event JSON (Perfetto-loadable). */
std::string renderFlightRecorderTrace(const SpanCollector &collector,
                                      const std::string &configName,
                                      const std::string &workloadName);

/** Write renderFlightRecorderTrace() to @p path. @return false on
 *  I/O failure. */
bool writeFlightRecorderTrace(const SpanCollector &collector,
                              const std::string &configName,
                              const std::string &workloadName,
                              const std::string &path);

} // namespace espsim

#endif // ESPSIM_REPORT_FLIGHT_RECORDER_HH
