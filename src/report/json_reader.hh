/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Exists so the repo can *consume* its own artifacts — round-trip
 * tests, the timeline structural checks, and any future tool that
 * wants to diff two suite artifacts — without growing a third-party
 * dependency. It parses strict RFC 8259 JSON into a small value tree;
 * it is not optimised for huge documents (artifacts are a few hundred
 * KB at most).
 */

#ifndef ESPSIM_REPORT_JSON_READER_HH
#define ESPSIM_REPORT_JSON_READER_HH

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace espsim
{

/** One parsed JSON value; a tagged tree node. */
class JsonValue
{
  public:
    enum class Kind : unsigned char
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member access; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Member that must exist (panics otherwise; for tests/tools). */
    const JsonValue &at(const std::string &name) const;
};

/**
 * Parse @p text as one JSON document. Returns nullptr (and fills
 * @p error when given) on malformed input or trailing garbage.
 */
std::unique_ptr<JsonValue> parseJson(std::string_view text,
                                     std::string *error = nullptr);

} // namespace espsim

#endif // ESPSIM_REPORT_JSON_READER_HH
