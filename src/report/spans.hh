/**
 * @file
 * Per-request span tracing with ESP blame attribution.
 *
 * Every served request carries a span — queue (arrival to dispatch),
 * service (dispatch to retire) — whose execute phase captures delta
 * snapshots of the core's cycle-bucket accounting and of the per-source
 * prefetch lifecycle counters. The result is a causal decomposition of
 * each individual request: which buckets its cycles went to, how much
 * stall shadow ESP pre-execution consumed on its behalf, and whether
 * the prefetches attributed to it were timely, late, or harmful.
 *
 * The core emits spans through the SpanSink interface (an attach-point
 * like EventTimeline / EventPacer: nullable pointer, zero cost when
 * absent). SpanCollector is the standard sink: a preallocated
 * flight-recorder ring of the most recent spans, a bounded worst-K
 * table, and an online tail-anomaly detector over a power-of-two
 * latency histogram. Steady state allocates nothing (see
 * tests/test_spans.cc for the ESPSIM_ALLOC_COUNTER assertions); only
 * the one-shot anomaly callback — which dumps the ring as a Perfetto
 * trace via report/flight_recorder.hh — is allowed to touch the heap.
 *
 * Span cycle deltas close exactly against core accounting:
 *   Σ span.buckets == span.retire - span.startCycle
 * and consecutive spans tile the run (each startCycle equals the
 * previous retire), so per-request blame sums back to the whole run.
 */

#ifndef ESPSIM_REPORT_SPANS_HH
#define ESPSIM_REPORT_SPANS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/ring_buffer.hh"
#include "common/types.hh"
#include "cpu/ooo_core.hh"
#include "prefetch/inflight.hh"

namespace espsim
{

/** Prefetch lifecycle movement attributed to one request's span. */
struct SpanPrefetchDelta
{
    std::uint64_t issued = 0;
    std::uint64_t timely = 0;
    std::uint64_t late = 0;
    std::uint64_t harmful = 0;
};

/** One served request's causal record (POD; copied into the ring). */
struct RequestSpan
{
    std::size_t index = 0;          //!< event sequence number
    std::uint32_t handlerType = 0;  //!< static handler id
    Cycle startCycle = 0; //!< core clock when the loop turned to it
    Cycle arrival = 0;    //!< pacer arrival (== startCycle unpaced)
    Cycle dispatch = 0;   //!< first op entered the pipeline
    Cycle retire = 0;     //!< event fully retired
    InstCount instructions = 0;
    /** Cycle-bucket deltas over [startCycle, retire). */
    CycleBucketArray buckets{};
    /** Per-source prefetch lifecycle deltas over the same window. */
    std::array<SpanPrefetchDelta, numPrefetchSources> prefetch{};

    Cycle
    queueCycles() const
    {
        return dispatch >= arrival ? dispatch - arrival : 0;
    }
    Cycle serviceCycles() const { return retire - dispatch; }
    Cycle totalCycles() const { return queueCycles() + serviceCycles(); }
    /** Cycles the core's clock advanced while this span was current. */
    Cycle spanCycles() const { return retire - startCycle; }
    Cycle espPreExecCycles() const
    {
        return buckets[static_cast<std::size_t>(CycleBucket::EspPreExec)];
    }

    Cycle
    bucketSum() const
    {
        Cycle sum = 0;
        for (const Cycle c : buckets)
            sum += c;
        return sum;
    }
};

/** Receives one RequestSpan per retired event (core attach-point). */
class SpanSink
{
  public:
    virtual ~SpanSink() = default;
    virtual void onSpan(const RequestSpan &span) = 0;
};

/** Power-of-two total-latency buckets for the running-p99 estimate. */
constexpr std::size_t spanHistBuckets = 48;

/** Knobs of one SpanCollector. */
struct SpanCollectorConfig
{
    /** Flight-recorder ring capacity (rounded up to a power of two). */
    std::size_t ringCapacity = 256;
    /** Worst-request table size (largest total latency). */
    std::size_t worstK = 8;
    /** Anomaly: total latency > threshold x running p99 estimate. */
    double anomalyThreshold = 8.0;
    /** Detector warmup: no triggers before this many spans. */
    std::uint64_t anomalyMinSamples = 64;
    /** Structured anomaly records kept (overflow is counted). */
    std::size_t maxAnomalyRecords = 32;
};

/** One detector firing: the trigger span and the estimate it beat. */
struct AnomalyRecord
{
    RequestSpan span;
    double runningP99 = 0.0;
};

/**
 * The standard SpanSink: flight-recorder ring + worst-K table +
 * online tail-anomaly detector. All storage is preallocated in the
 * constructor; onSpan() never allocates.
 */
class SpanCollector final : public SpanSink
{
  public:
    using AnomalyCallback =
        std::function<void(const SpanCollector &, const RequestSpan &)>;

    explicit SpanCollector(const SpanCollectorConfig &config);

    void onSpan(const RequestSpan &span) override;

    /**
     * Invoked exactly once, on the *first* anomaly, while the ring
     * still holds the window around the trigger span (the trigger is
     * the ring's newest entry). The callback may allocate — it is off
     * the steady-state path by construction.
     */
    void
    setAnomalyCallback(AnomalyCallback callback)
    {
        onAnomaly_ = std::move(callback);
    }

    const SpanCollectorConfig &config() const { return config_; }

    /** The flight-recorder ring, oldest span first. */
    const FixedRing<RequestSpan> &ring() const { return ring_; }

    /** Spans observed over the whole run (ring overwrites count). */
    std::uint64_t spansRecorded() const { return spansRecorded_; }

    /** Worst-K spans, sorted by descending total latency. */
    std::vector<RequestSpan> worstSpans() const;

    const std::vector<AnomalyRecord> &anomalies() const
    {
        return anomalies_;
    }
    /** Anomalies past maxAnomalyRecords (counted, not stored). */
    std::uint64_t anomalyOverflow() const { return anomalyOverflow_; }

    /** Current running-p99 estimate (pow2-bucket upper edge). */
    double runningP99() const;

    /** True once the one-shot anomaly callback fired. */
    bool dumpTriggered() const { return dumpTriggered_; }
    /** Event index of the span that fired the callback. */
    std::size_t dumpEvent() const { return dumpEvent_; }

  private:
    SpanCollectorConfig config_;
    FixedRing<RequestSpan> ring_;
    std::vector<RequestSpan> worst_; //!< min-heap by total latency
    std::vector<AnomalyRecord> anomalies_;
    std::array<std::uint64_t, spanHistBuckets> hist_{};
    std::uint64_t spansRecorded_ = 0;
    std::uint64_t anomalyOverflow_ = 0;
    bool dumpTriggered_ = false;
    std::size_t dumpEvent_ = 0;
    AnomalyCallback onAnomaly_;

    void noteWorst(const RequestSpan &span);
};

} // namespace espsim

#endif // ESPSIM_REPORT_SPANS_HH
