/**
 * @file
 * Stall watchdog: detects a wedged run and captures the evidence.
 *
 * Long `espsim serve` runs must make continuous retire progress; a
 * run that stops retiring (a livelocked model change, a pathological
 * workload cell, a host stall) should be *detected* within a bounded
 * wall-clock budget, not discovered when someone checks hours later.
 *
 * The watchdog is a background thread watching the TelemetryPlane's
 * relaxed-atomic progress counter. When the counter has not moved for
 * at least the configured budget it fires **exactly once** per run:
 *
 *   1. latches the plane's degraded health state (reason string with
 *      the stall duration and last-progress count) — /healthz flips
 *      to 503 and the final artifact gains a `health` block;
 *   2. invokes the dump callback (the serve path wires this to the
 *      span flight-recorder ring + a host-profile line) so the
 *      evidence lands on disk while the process is still alive.
 *
 * Firing does not kill the run: a stall that resolves still completes
 * normally, but the run stays marked degraded — detection is the
 * contract, not recovery. Test with ESPSIM_STALL_INJECT (see
 * report/telemetry.hh) which wedges the retire boundary on demand.
 */

#ifndef ESPSIM_REPORT_WATCHDOG_HH
#define ESPSIM_REPORT_WATCHDOG_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace espsim
{

class TelemetryPlane;

/** What the watchdog saw when it fired. */
struct StallReport
{
    double stalledMs = 0;          //!< time with no retire progress
    std::uint64_t lastProgress = 0; //!< progress count at the stall
};

/** Background no-progress detector over a TelemetryPlane. */
class StallWatchdog
{
  public:
    using DumpFn = std::function<void(const StallReport &)>;

    /**
     * Watch @p plane; fire when no progress for @p budgetMs. The
     * optional @p dump runs on the watchdog thread, once.
     */
    StallWatchdog(TelemetryPlane &plane, double budgetMs,
                  DumpFn dump = nullptr);
    ~StallWatchdog();
    StallWatchdog(const StallWatchdog &) = delete;
    StallWatchdog &operator=(const StallWatchdog &) = delete;

    /** Stop the watchdog thread (idempotent; also run by ~). */
    void stop();

    /** How many times the watchdog fired (0 or 1 by design). */
    std::uint64_t
    fireCount() const
    {
        return fires_.load(std::memory_order_acquire);
    }

    double budgetMs() const { return budgetMs_; }

  private:
    TelemetryPlane &plane_;
    const double budgetMs_;
    DumpFn dump_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> fires_{0};

    void watchLoop();
};

} // namespace espsim

#endif // ESPSIM_REPORT_WATCHDOG_HH
