#include "report/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "report/json_writer.hh"

namespace espsim
{

namespace
{

/**
 * Parse ESPSIM_STALL_INJECT="<event>:<ms>". Returns true and fills
 * the outputs when the variable is present and well-formed; a
 * malformed value is ignored (telemetry must never take a run down).
 */
bool
stallInjectRequested(std::uint64_t *event, unsigned *ms)
{
    const char *spec = std::getenv("ESPSIM_STALL_INJECT");
    if (spec == nullptr || *spec == '\0')
        return false;
    const char *colon = std::strchr(spec, ':');
    if (colon == nullptr)
        return false;
    char *end = nullptr;
    const unsigned long long ev = std::strtoull(spec, &end, 10);
    if (end != colon)
        return false;
    const unsigned long sleep_ms = std::strtoul(colon + 1, &end, 10);
    if (end == colon + 1 || *end != '\0')
        return false;
    *event = ev;
    *ms = static_cast<unsigned>(sleep_ms);
    return true;
}

/** Prometheus metric names: [a-zA-Z0-9_:]; everything else → '_'. */
std::string
promName(const std::string &stat)
{
    std::string out = "espsim_";
    out.reserve(out.size() + stat.size());
    for (const char c : stat) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string
promLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

// --------------------------------------------------------------------
// TelemetryStream
// --------------------------------------------------------------------

TelemetryStream::~TelemetryStream()
{
    close();
}

bool
TelemetryStream::openFile(const std::string &path)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    return file_ != nullptr;
}

void
TelemetryStream::writeLine(const std::string &line)
{
    if (sink_ != nullptr) {
        sink_->append(line);
        sink_->push_back('\n');
    }
    if (file_ != nullptr) {
        if (std::fwrite(line.data(), 1, line.size(), file_) !=
                line.size() ||
            std::fputc('\n', file_) == EOF)
            writeFailed_ = true;
        // Flush per record: a live tail (or a post-crash read) must
        // only ever see whole lines.
        std::fflush(file_);
    }
    ++lines_;
}

bool
TelemetryStream::close()
{
    bool ok = !writeFailed_;
    if (file_ != nullptr) {
        if (std::fclose(file_) != 0)
            ok = false;
        file_ = nullptr;
    }
    return ok;
}

// --------------------------------------------------------------------
// TelemetryPlane
// --------------------------------------------------------------------

void
TelemetryPlane::publish(
    const TelemetryRunInfo &info,
    const std::shared_ptr<const std::vector<std::string>> &names,
    const TelemetrySnapshot &snap)
{
    std::lock_guard<std::mutex> lock(mu_);
    front_.valid = true;
    front_.config = info.config;
    front_.workload = info.workload;
    front_.configHash = info.configHash;
    front_.names = names;
    front_.snap = snap;
}

TelemetryPlane::View
TelemetryPlane::latest() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return front_;
}

void
TelemetryPlane::markDegraded(const std::string &reason)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!degraded_.load(std::memory_order_relaxed)) {
        reason_ = reason;
        degraded_.store(true, std::memory_order_release);
    }
}

std::string
TelemetryPlane::degradedReason() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
}

// --------------------------------------------------------------------
// TelemetrySnapshotter
// --------------------------------------------------------------------

TelemetrySnapshotter::TelemetrySnapshotter(const StatRegistry &reg,
                                           TelemetryConfig cfg,
                                           TelemetryRunInfo info,
                                           TelemetryStream *stream,
                                           TelemetryPlane *plane)
    : cfg_(cfg), info_(std::move(info)), stream_(stream), plane_(plane),
      names_(std::make_shared<std::vector<std::string>>())
{
    // Freeze the counter name set now, exactly like the
    // IntervalSampler: stats registered after the run (handler
    // breakdown, derived metrics) never appear, so every snapshot
    // reads the same names.
    getters_.reserve(reg.size());
    for (StatRegistry::CounterHandle &h : reg.counterHandles()) {
        names_->push_back(std::move(h.name));
        getters_.push_back(std::move(h.getter));
    }
    snap_.values.resize(getters_.size(), 0.0);
    nextCycle_ = cfg_.periodCycles;
    lastWall_ = std::chrono::steady_clock::now();
    stallArmed_ = stallInjectRequested(&stallEvent_, &stallMs_);
    writeHeader();
}

void
TelemetrySnapshotter::writeHeader()
{
    if (stream_ == nullptr)
        return;
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-telemetry-stream");
    w.key("format_version")
        .value(static_cast<std::uint64_t>(telemetryStreamFormatVersion));
    w.key("config").value(info_.config);
    w.key("workload").value(info_.workload);
    w.key("config_hash").value(info_.configHash);
    w.key("period_cycles").value(cfg_.periodCycles);
    w.key("wall_ms").value(cfg_.wallMs);
    w.key("names");
    w.beginArray();
    for (const std::string &name : *names_)
        w.value(name);
    w.endArray();
    w.endObject();
    stream_->writeLine(w.drain());
}

void
TelemetrySnapshotter::sample(Cycle now, std::uint64_t events_retired,
                             bool final_)
{
    ++seq_;
    snap_.seq = seq_;
    snap_.cycle = now;
    snap_.events = events_retired;
    snap_.isFinal = final_;
    for (std::size_t i = 0; i < getters_.size(); ++i)
        snap_.values[i] = getters_[i]();
    if (stream_ != nullptr)
        stream_->writeLine(renderTelemetrySnapshotJson(
            info_, *names_, snap_, /*includeNames=*/false));
    if (plane_ != nullptr)
        plane_->publish(info_, names_, snap_);
}

void
TelemetrySnapshotter::onEventRetired(std::uint64_t events_retired,
                                     Cycle now)
{
    if (finalized_)
        return;
    if (plane_ != nullptr)
        plane_->noteProgress();
    if (stallArmed_ && events_retired == stallEvent_) {
        // One-shot injected wedge: hold the retire boundary long
        // enough for the watchdog to notice no progress.
        stallArmed_ = false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stallMs_));
    }
    bool due = cfg_.periodCycles > 0 && now >= nextCycle_;
    if (cfg_.wallMs > 0 && !due) {
        // The steady_clock read costs far more than a retire; check
        // it only every 64 retires. Worst-case staleness at serve
        // throughput is microseconds — invisible at ms-scale pacing.
        if (++sinceWallCheck_ >= 64) {
            sinceWallCheck_ = 0;
            const auto now_wall = std::chrono::steady_clock::now();
            const double elapsed_ms =
                std::chrono::duration<double, std::milli>(now_wall -
                                                          lastWall_)
                    .count();
            if (elapsed_ms >= cfg_.wallMs) {
                due = true;
                lastWall_ = now_wall;
            }
        }
    }
    if (!due)
        return;
    if (cfg_.periodCycles > 0 && now >= nextCycle_) {
        // Re-anchor the grid past `now` so a long event skips grid
        // points instead of emitting a burst of stale samples.
        nextCycle_ +=
            ((now - nextCycle_) / cfg_.periodCycles + 1) *
            cfg_.periodCycles;
    }
    sample(now, events_retired, /*final_=*/false);
}

void
TelemetrySnapshotter::finalize(Cycle now, std::uint64_t events_retired)
{
    if (finalized_)
        return;
    finalized_ = true;
    // The closing snapshot is unconditional: its values are read from
    // the same getters the registry snapshot uses, so the last JSONL
    // line equals the end-of-run counter values exactly.
    sample(now, events_retired, /*final_=*/true);
}

// --------------------------------------------------------------------
// Renderers
// --------------------------------------------------------------------

std::string
renderTelemetrySnapshotJson(const TelemetryRunInfo &info,
                            const std::vector<std::string> &names,
                            const TelemetrySnapshot &snap,
                            bool includeNames)
{
    JsonWriter w;
    w.beginObject();
    if (includeNames) {
        // Standalone form (/snapshot.json): self-describing.
        w.key("schema").value("espsim-telemetry-snapshot");
        w.key("format_version").value(
            static_cast<std::uint64_t>(telemetryStreamFormatVersion));
        w.key("config").value(info.config);
        w.key("workload").value(info.workload);
        w.key("config_hash").value(info.configHash);
    }
    w.key("seq").value(snap.seq);
    w.key("cycle").value(snap.cycle);
    w.key("events").value(snap.events);
    if (snap.isFinal)
        w.key("final").value(true);
    if (includeNames) {
        w.key("names");
        w.beginArray();
        for (const std::string &name : names)
            w.value(name);
        w.endArray();
    }
    w.key("values");
    w.beginArray();
    for (const double v : snap.values)
        w.value(v);
    w.endArray();
    w.endObject();
    return w.drain();
}

std::string
renderPrometheusText(const TelemetryPlane::View &view, bool degraded)
{
    std::string out;
    // Health and liveness series exist even before the first publish
    // so scrapers always get a well-formed page.
    out += "# TYPE espsim_health_degraded gauge\n";
    out += "espsim_health_degraded ";
    out += degraded ? '1' : '0';
    out += '\n';
    if (!view.valid)
        return out;

    const std::string labels = "{config=\"" + promLabel(view.config) +
                               "\",workload=\"" +
                               promLabel(view.workload) + "\"}";
    char buf[64];

    out += "# TYPE espsim_snapshot_seq counter\n";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(view.snap.seq));
    out += "espsim_snapshot_seq" + labels + " " + buf + "\n";
    out += "# TYPE espsim_cycles counter\n";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(view.snap.cycle));
    out += "espsim_cycles" + labels + " " + buf + "\n";
    out += "# TYPE espsim_events counter\n";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(view.snap.events));
    out += "espsim_events" + labels + " " + buf + "\n";

    const std::size_t n =
        view.names ? std::min(view.names->size(),
                              view.snap.values.size())
                   : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::string name = promName((*view.names)[i]);
        out += "# TYPE " + name + " counter\n";
        // Counters are uint64-backed; print integral when exact so
        // the exposition round-trips without float noise.
        const double v = view.snap.values[i];
        if (v == static_cast<double>(static_cast<std::uint64_t>(v)))
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(v));
        else
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += name + labels + " " + buf + "\n";
    }
    return out;
}

} // namespace espsim
