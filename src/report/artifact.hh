/**
 * @file
 * Versioned machine-readable artifacts for suite sweeps.
 *
 * Every figure binary and `espsim suite` can export the full
 * per-(app, config) stat dump as JSON (the canonical artifact) or CSV
 * (a flat convenience view). Artifacts carry a manifest — format
 * version, tool version (git describe), build type, producing binary,
 * and a hash of the swept configurations — so results can be diffed
 * across commits and machines with confidence.
 *
 * Artifacts are **deterministic and byte-identical at any `--jobs`
 * count**: results are index-ordered, stat maps are name-ordered, and
 * numbers use shortest-round-trip formatting. Volatile run facts
 * (jobs, wall time) are therefore *not* embedded in the artifact; they
 * are printed to stderr as the run manifest instead (see
 * docs/OBSERVABILITY.md).
 *
 * Failed sweep cells (see CellError) are reported in a top-level
 * `errors` array — one `{app, config, config_hash, message}` entry
 * per failed cell — and omitted from `results`. The block is absent
 * when every cell succeeded, so clean artifacts are unchanged. See
 * docs/ROBUSTNESS.md.
 */

#ifndef ESPSIM_REPORT_ARTIFACT_HH
#define ESPSIM_REPORT_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/stats_report.hh"

namespace espsim
{

/** Version of the suite-artifact schema this build writes. */
constexpr std::uint32_t artifactFormatVersion = 1;

/** Provenance block stamped into every artifact. */
struct ArtifactManifest
{
    /** Producing binary, e.g. "fig09_performance" or "espsim suite". */
    std::string source;
    /** Overrides for tests; default to this build's version strings. */
    std::string toolVersion;
    std::string buildType;
};

/**
 * FNV-1a hash over a canonical serialization of @p configs (names and
 * every architectural parameter), as a 16-digit hex string. Two sweeps
 * with the same hash simulated the same design points.
 */
std::string configsHash(const std::vector<SimConfig> &configs);

/**
 * Render the canonical JSON artifact for one suite sweep.
 *
 * @p pool_usage (profiling runs only) appends a top-level `host`
 * block with the JobPool utilization and process peak RSS. It MUST
 * stay null for deterministic artifacts: host facts are wall-clock
 * measurements of this machine and would break byte-identity. The
 * default keeps clean artifacts bit-for-bit unchanged.
 */
std::string renderSuiteArtifactJson(
    const ArtifactManifest &manifest,
    const std::vector<SimConfig> &configs,
    const std::vector<SuiteRow> &rows,
    const JobPoolUsage *pool_usage = nullptr);

/**
 * Render the flat CSV view: `app,config,stat,value` rows, preceded by
 * `# key=value` manifest comment lines.
 */
std::string renderSuiteArtifactCsv(const ArtifactManifest &manifest,
                                   const std::vector<SimConfig> &configs,
                                   const std::vector<SuiteRow> &rows);

/**
 * Render a printed table (Figures 6-8 and other descriptive tables
 * with no per-(app, config) sweep behind them) as a machine-readable
 * artifact: the manifest plus the table's title, header and rows.
 */
std::string renderTableArtifactJson(const ArtifactManifest &manifest,
                                    const TextTable &table);

/** CSV view of a printed table: manifest comments + header + rows. */
std::string renderTableArtifactCsv(const ArtifactManifest &manifest,
                                   const TextTable &table);

/** Write @p text to @p path (binary mode). @return false on I/O. */
bool writeTextFile(const std::string &path, const std::string &text);

} // namespace espsim

#endif // ESPSIM_REPORT_ARTIFACT_HH
