#include "report/spans.hh"

#include <algorithm>
#include <bit>

namespace espsim
{

namespace
{

/** Heap order: smallest total latency at the front, ties broken by
 *  the *larger* index so the older request survives a tie. */
bool
worstHeapLess(const RequestSpan &a, const RequestSpan &b)
{
    const Cycle ta = a.totalCycles();
    const Cycle tb = b.totalCycles();
    return ta != tb ? ta > tb : a.index < b.index;
}

std::size_t
latencyBucket(Cycle total)
{
    if (total == 0)
        return 0;
    return std::min<std::size_t>(
        static_cast<std::size_t>(std::bit_width(std::uint64_t{total}) -
                                 1),
        spanHistBuckets - 1);
}

} // namespace

SpanCollector::SpanCollector(const SpanCollectorConfig &config)
    : config_(config)
{
    ring_.reset(config_.ringCapacity == 0 ? 1 : config_.ringCapacity);
    worst_.reserve(config_.worstK);
    anomalies_.reserve(config_.maxAnomalyRecords);
}

double
SpanCollector::runningP99() const
{
    if (spansRecorded_ == 0)
        return 0.0;
    // Nearest-rank over the pow2 histogram; the estimate is the
    // bucket's upper edge, so it rounds the true p99 *up* — the
    // detector errs toward fewer, larger anomalies.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               0.99 * static_cast<double>(spansRecorded_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < spanHistBuckets; ++b) {
        seen += hist_[b];
        if (seen >= rank)
            return static_cast<double>((std::uint64_t{2} << b) - 1);
    }
    return static_cast<double>((std::uint64_t{2} << (spanHistBuckets - 1)) -
                               1);
}

void
SpanCollector::noteWorst(const RequestSpan &span)
{
    if (config_.worstK == 0)
        return;
    if (worst_.size() < config_.worstK) {
        worst_.push_back(span); // within reserve(): no allocation
        std::push_heap(worst_.begin(), worst_.end(), worstHeapLess);
        return;
    }
    if (worstHeapLess(span, worst_.front())) {
        std::pop_heap(worst_.begin(), worst_.end(), worstHeapLess);
        worst_.back() = span;
        std::push_heap(worst_.begin(), worst_.end(), worstHeapLess);
    }
}

void
SpanCollector::onSpan(const RequestSpan &span)
{
    // Flight recorder: overwrite the oldest entry when full, so the
    // ring always holds the most recent window — including, below,
    // the span that trips the detector.
    if (ring_.size() == ring_.capacity())
        ring_.pop_front();
    ring_.push_back(span);
    noteWorst(span);

    // Detector: compare against the estimate formed by *previous*
    // spans only (a lone spike must not raise its own bar).
    const Cycle total = span.totalCycles();
    if (spansRecorded_ >= config_.anomalyMinSamples) {
        const double p99 = runningP99();
        if (p99 > 0.0 &&
            static_cast<double>(total) >
                config_.anomalyThreshold * p99) {
            if (anomalies_.size() < config_.maxAnomalyRecords)
                anomalies_.push_back(AnomalyRecord{span, p99});
            else
                ++anomalyOverflow_;
            if (!dumpTriggered_) {
                dumpTriggered_ = true;
                dumpEvent_ = span.index;
                if (onAnomaly_)
                    onAnomaly_(*this, span);
            }
        }
    }

    ++hist_[latencyBucket(total)];
    ++spansRecorded_;
}

std::vector<RequestSpan>
SpanCollector::worstSpans() const
{
    std::vector<RequestSpan> out = worst_;
    std::sort(out.begin(), out.end(),
              [](const RequestSpan &a, const RequestSpan &b) {
                  const Cycle ta = a.totalCycles();
                  const Cycle tb = b.totalCycles();
                  return ta != tb ? ta > tb : a.index < b.index;
              });
    return out;
}

} // namespace espsim
