#include "report/stat_registry.hh"

#include "common/logging.hh"

namespace espsim
{

void
StatRegistry::insert(const std::string &name, Getter getter)
{
    if (name.empty())
        panic("StatRegistry: empty stat name");
    if (!entries_.emplace(name, std::move(getter)).second)
        panic("StatRegistry: duplicate stat '%s'", name.c_str());
}

void
StatRegistry::registerScalar(const std::string &name,
                             const std::uint64_t *counter)
{
    insert(name,
           [counter] { return static_cast<double>(*counter); });
}

void
StatRegistry::registerScalar(const std::string &name, const double *value)
{
    insert(name, [value] { return *value; });
}

void
StatRegistry::registerDerived(const std::string &name, Getter getter)
{
    insert(name, std::move(getter));
}

void
StatRegistry::registerSamples(const std::string &name, const SampleStat *s)
{
    insert(name + ".count", [s] {
        return static_cast<double>(s->count());
    });
    insert(name + ".mean", [s] { return s->mean(); });
    insert(name + ".max", [s] { return s->max(); });
    insert(name + ".p95", [s] { return s->percentile(95.0); });
}

bool
StatRegistry::contains(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

StatGroup
StatRegistry::snapshot() const
{
    StatGroup out;
    for (const auto &[name, getter] : entries_)
        out.set(name, getter());
    return out;
}

} // namespace espsim
