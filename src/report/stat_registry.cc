#include "report/stat_registry.hh"

#include "common/logging.hh"

namespace espsim
{

void
StatRegistry::insert(const std::string &name, Getter getter, StatKind kind)
{
    if (name.empty())
        panic("StatRegistry: empty stat name");
    if (!entries_.emplace(name, Entry{std::move(getter), kind}).second)
        panic("StatRegistry: duplicate stat '%s'", name.c_str());
}

void
StatRegistry::registerScalar(const std::string &name,
                             const std::uint64_t *counter)
{
    insert(name,
           [counter] { return static_cast<double>(*counter); },
           StatKind::Counter);
}

void
StatRegistry::registerScalar(const std::string &name, const double *value)
{
    insert(name, [value] { return *value; }, StatKind::Gauge);
}

void
StatRegistry::registerDerived(const std::string &name, Getter getter)
{
    insert(name, std::move(getter), StatKind::Derived);
}

void
StatRegistry::registerSamples(const std::string &name, const SampleStat *s)
{
    insert(name + ".count", [s] {
        return static_cast<double>(s->count());
    }, StatKind::Sample);
    insert(name + ".mean", [s] { return s->mean(); }, StatKind::Sample);
    insert(name + ".max", [s] { return s->max(); }, StatKind::Sample);
    insert(name + ".p95", [s] {
        return s->percentile(95.0);
    }, StatKind::Sample);
}

bool
StatRegistry::contains(const std::string &name) const
{
    return entries_.find(name) != entries_.end();
}

StatGroup
StatRegistry::snapshot() const
{
    StatGroup out;
    for (const auto &[name, entry] : entries_)
        out.set(name, entry.getter());
    return out;
}

StatGroup
StatRegistry::counterSnapshot() const
{
    StatGroup out;
    for (const auto &[name, entry] : entries_) {
        if (entry.kind == StatKind::Counter)
            out.set(name, entry.getter());
    }
    return out;
}

std::vector<StatRegistry::CounterHandle>
StatRegistry::counterHandles() const
{
    std::vector<CounterHandle> handles;
    for (const auto &[name, entry] : entries_) {
        if (entry.kind == StatKind::Counter)
            handles.push_back({name, entry.getter});
    }
    return handles;
}

} // namespace espsim
