#include "report/diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/table.hh"
#include "report/json_reader.hh"

namespace espsim
{

int
DiffResult::exitCode() const
{
    if (!loaded)
        return 2;
    if (headlineRegressions > 0 || !configHashMatch)
        return 1;
    return 0;
}

namespace
{

/** (app, config) → stat name → value, in artifact order. */
using PointKey = std::pair<std::string, std::string>;
using StatMap = std::map<std::string, double>;
using PointMap = std::map<PointKey, StatMap>;
/** (app, config) → error message from the artifact's errors block. */
using ErrorMap = std::map<PointKey, std::string>;

/**
 * Extract the comparable content of one suite artifact. Returns false
 * (with @p error set) when the document is not a suite artifact.
 * JSON null stat values (NaN serialized) load as quiet NaN.
 */
bool
loadArtifact(const JsonValue &root, PointMap &points, ErrorMap &errors,
             std::string &configHash, std::string &error)
{
    const JsonValue *schema = root.find("schema");
    if (!schema || schema->string != "espsim-suite-artifact") {
        error = "not an espsim-suite-artifact document";
        return false;
    }
    if (const JsonValue *manifest = root.find("manifest")) {
        if (const JsonValue *hash = manifest->find("config_hash"))
            configHash = hash->string;
    }
    const JsonValue *results = root.find("results");
    if (!results || !results->isArray()) {
        error = "artifact has no results array";
        return false;
    }
    for (const JsonValue &entry : results->array) {
        const JsonValue *app = entry.find("app");
        const JsonValue *config = entry.find("config");
        const JsonValue *stats = entry.find("stats");
        if (!app || !config || !stats || !stats->isObject()) {
            error = "malformed result entry";
            return false;
        }
        StatMap &dst = points[{app->string, config->string}];
        for (const auto &[name, value] : stats->object) {
            dst[name] = value.isNull()
                ? std::numeric_limits<double>::quiet_NaN()
                : value.number;
        }
    }
    // Optional errors block: cells that failed instead of producing
    // stats (fault-tolerant sweeps, docs/ROBUSTNESS.md).
    if (const JsonValue *errs = root.find("errors");
        errs && errs->isArray()) {
        for (const JsonValue &entry : errs->array) {
            const JsonValue *app = entry.find("app");
            const JsonValue *config = entry.find("config");
            const JsonValue *message = entry.find("message");
            if (!app || !config) {
                error = "malformed errors entry";
                return false;
            }
            errors[{app->string, config->string}] =
                message ? message->string : "unknown error";
        }
    }
    return true;
}

/** Within tolerance? NaN == NaN counts as equal (both undefined). */
bool
withinTolerance(double b, double c, double relTol, double absTol)
{
    if (std::isnan(b) && std::isnan(c))
        return true;
    if (std::isnan(b) != std::isnan(c))
        return false;
    const double delta = std::fabs(b - c);
    return delta <= absTol ||
        delta <= relTol * std::max(std::fabs(b), std::fabs(c));
}

double
relativeDrift(double b, double c)
{
    if (b == c)
        return 0.0;
    if (b == 0.0 || std::isnan(b) || std::isnan(c))
        return std::numeric_limits<double>::infinity();
    return (c - b) / std::fabs(b);
}

/**
 * Explain a core.cycles drift through the accounting buckets: the
 * top bucket deltas (by magnitude) for this point, formatted as
 * "dcache_miss +3211, esp_pre_exec -890".
 */
std::string
bucketAttribution(const StatMap &base, const StatMap &cand)
{
    static const std::string prefix = "core.cycle_bucket.";
    std::vector<std::pair<std::string, double>> deltas;
    for (auto it = base.lower_bound(prefix);
         it != base.end() && it->first.compare(0, prefix.size(),
                                               prefix) == 0;
         ++it) {
        const auto cit = cand.find(it->first);
        const double cv = cit == cand.end() ? 0.0 : cit->second;
        const double delta = cv - it->second;
        if (delta != 0.0 && !std::isnan(delta))
            deltas.emplace_back(it->first.substr(prefix.size()), delta);
    }
    // Buckets only the candidate has (new bucket in a newer build).
    for (auto it = cand.lower_bound(prefix);
         it != cand.end() && it->first.compare(0, prefix.size(),
                                               prefix) == 0;
         ++it) {
        if (base.count(it->first) == 0 && it->second != 0.0)
            deltas.emplace_back(it->first.substr(prefix.size()),
                                it->second);
    }
    std::sort(deltas.begin(), deltas.end(),
              [](const auto &a, const auto &b) {
                  const double ma = std::fabs(a.second);
                  const double mb = std::fabs(b.second);
                  return ma != mb ? ma > mb : a.first < b.first;
              });
    std::string out;
    constexpr std::size_t maxBuckets = 3;
    for (std::size_t i = 0; i < deltas.size() && i < maxBuckets; ++i) {
        if (i)
            out += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%+.0f", deltas[i].second);
        out += deltas[i].first + " " + buf;
    }
    return out;
}

bool
isHeadline(const DiffOptions &opts, const std::string &stat)
{
    return std::find(opts.headlineStats.begin(),
                     opts.headlineStats.end(),
                     stat) != opts.headlineStats.end();
}

} // namespace

DiffResult
diffSuiteArtifacts(const JsonValue &baseline, const JsonValue &candidate,
                   const DiffOptions &opts)
{
    DiffResult res;
    PointMap basePoints, candPoints;
    ErrorMap baseErrors, candErrors;
    std::string baseHash, candHash;
    if (!loadArtifact(baseline, basePoints, baseErrors, baseHash,
                      res.error)) {
        res.error = "baseline: " + res.error;
        return res;
    }
    if (!loadArtifact(candidate, candPoints, candErrors, candHash,
                      res.error)) {
        res.error = "candidate: " + res.error;
        return res;
    }
    res.loaded = true;
    res.configHashMatch =
        opts.ignoreConfigHash || baseHash == candHash;
    res.baselineErrorCells = baseErrors.size();
    res.candidateErrorCells = candErrors.size();

    const double headlineRel =
        opts.headlineRelTol >= 0.0 ? opts.headlineRelTol : opts.relTol;

    // Points present in only one artifact always fail the gate: the
    // candidate silently dropping an (app, config) point is itself a
    // regression, and a grown matrix deserves a fresh baseline.
    for (const auto &[key, stats] : basePoints) {
        (void)stats;
        if (candPoints.count(key) == 0) {
            StatDrift d;
            d.app = key.first;
            d.config = key.second;
            d.stat = "(entire point)";
            d.onlyInBaseline = true;
            d.headline = true;
            d.relDrift = -std::numeric_limits<double>::infinity();
            // The candidate's errors block explains why the point is
            // missing; surface the cell's message in the report.
            if (const auto eit = candErrors.find(key);
                eit != candErrors.end())
                d.attribution = "error: " + eit->second;
            res.drifts.push_back(std::move(d));
            ++res.headlineRegressions;
        }
    }
    // Candidate error cells whose point the baseline results also
    // lack (e.g. both sides degraded) would otherwise pass silently:
    // an error cell in the candidate always fails the gate.
    for (const auto &[key, message] : candErrors) {
        if (basePoints.count(key) != 0)
            continue; // already flagged as a missing point above
        StatDrift d;
        d.app = key.first;
        d.config = key.second;
        d.stat = "(error cell)";
        d.headline = true;
        d.relDrift = std::numeric_limits<double>::infinity();
        d.onlyInCandidate = candPoints.count(key) == 0;
        d.attribution = "error: " + message;
        res.drifts.push_back(std::move(d));
        ++res.headlineRegressions;
    }
    for (const auto &[key, stats] : candPoints) {
        (void)stats;
        if (basePoints.count(key) == 0) {
            StatDrift d;
            d.app = key.first;
            d.config = key.second;
            d.stat = "(entire point)";
            d.onlyInCandidate = true;
            d.headline = true;
            d.relDrift = std::numeric_limits<double>::infinity();
            res.drifts.push_back(std::move(d));
            ++res.headlineRegressions;
        }
    }

    for (const auto &[key, base] : basePoints) {
        const auto cit = candPoints.find(key);
        if (cit == candPoints.end())
            continue;
        const StatMap &cand = cit->second;
        ++res.pointsCompared;

        // Union of stat names, walked in merge order.
        auto bi = base.begin();
        auto ci = cand.begin();
        while (bi != base.end() || ci != cand.end()) {
            StatDrift d;
            d.app = key.first;
            d.config = key.second;
            if (ci == cand.end() ||
                (bi != base.end() && bi->first < ci->first)) {
                d.stat = bi->first;
                d.baseline = bi->second;
                d.onlyInBaseline = true;
                d.relDrift = -std::numeric_limits<double>::infinity();
                ++bi;
            } else if (bi == base.end() || ci->first < bi->first) {
                d.stat = ci->first;
                d.candidate = ci->second;
                d.onlyInCandidate = true;
                d.relDrift = std::numeric_limits<double>::infinity();
                ++ci;
            } else {
                d.stat = bi->first;
                d.baseline = bi->second;
                d.candidate = ci->second;
                d.relDrift = relativeDrift(d.baseline, d.candidate);
                ++res.statsCompared;
                const bool headline = isHeadline(opts, d.stat);
                const bool ok = withinTolerance(
                    d.baseline, d.candidate,
                    headline ? headlineRel : opts.relTol, opts.absTol);
                ++bi;
                ++ci;
                if (ok)
                    continue;
                d.headline = headline;
                if (d.stat == "core.cycles")
                    d.attribution = bucketAttribution(base, cand);
                if (headline)
                    ++res.headlineRegressions;
                res.drifts.push_back(std::move(d));
                continue;
            }
            // A stat existing on only one side is a schema drift; it
            // fails the gate only when the stat is a headline one.
            d.headline = isHeadline(opts, d.stat);
            if (d.headline)
                ++res.headlineRegressions;
            res.drifts.push_back(std::move(d));
        }
    }

    std::sort(res.drifts.begin(), res.drifts.end(),
              [](const StatDrift &a, const StatDrift &b) {
                  const double ma = std::fabs(a.relDrift);
                  const double mb = std::fabs(b.relDrift);
                  if (ma != mb)
                      return ma > mb;
                  if (a.stat != b.stat)
                      return a.stat < b.stat;
                  if (a.app != b.app)
                      return a.app < b.app;
                  return a.config < b.config;
              });
    return res;
}

DiffResult
diffSuiteArtifactFiles(const std::string &baselinePath,
                       const std::string &candidatePath,
                       const DiffOptions &opts)
{
    auto readAll = [](const std::string &path,
                      std::string &out) -> bool {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return false;
        std::ostringstream ss;
        ss << in.rdbuf();
        out = ss.str();
        return true;
    };

    DiffResult res;
    std::string baseText, candText;
    if (!readAll(baselinePath, baseText)) {
        res.error = "cannot read baseline '" + baselinePath + "'";
        return res;
    }
    if (!readAll(candidatePath, candText)) {
        res.error = "cannot read candidate '" + candidatePath + "'";
        return res;
    }
    std::string parseErr;
    const auto base = parseJson(baseText, &parseErr);
    if (!base) {
        res.error = "baseline '" + baselinePath + "': " + parseErr;
        return res;
    }
    const auto cand = parseJson(candText, &parseErr);
    if (!cand) {
        res.error = "candidate '" + candidatePath + "': " + parseErr;
        return res;
    }
    return diffSuiteArtifacts(*base, *cand, opts);
}

std::string
renderDiffReport(const DiffResult &result, const DiffOptions &opts)
{
    std::string out;
    if (!result.loaded) {
        out += "diff failed: " + result.error + "\n";
        return out;
    }

    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "compared %zu points, %zu stats; %zu drifts beyond "
                  "tolerance (rel %g, abs %g)\n",
                  result.pointsCompared, result.statsCompared,
                  result.drifts.size(), opts.relTol, opts.absTol);
    out += buf;
    if (result.baselineErrorCells || result.candidateErrorCells) {
        std::snprintf(buf, sizeof(buf),
                      "error cells: %zu baseline, %zu candidate\n",
                      result.baselineErrorCells,
                      result.candidateErrorCells);
        out += buf;
    }
    if (!result.configHashMatch)
        out += "config hash MISMATCH: the artifacts describe "
               "different machines (pass --ignore-config-hash to "
               "compare anyway)\n";

    if (result.drifts.empty()) {
        out += "no drift: candidate matches baseline\n";
        return out;
    }

    TextTable table("stat drifts (ranked by |relative drift|)");
    table.header({"app", "config", "stat", "baseline", "candidate",
                  "drift", "attribution"});
    const std::size_t shown =
        std::min(result.drifts.size(), opts.maxRows);
    for (std::size_t i = 0; i < shown; ++i) {
        const StatDrift &d = result.drifts[i];
        std::string drift;
        if (d.onlyInBaseline)
            drift = "removed";
        else if (d.onlyInCandidate)
            drift = "added";
        else if (std::isinf(d.relDrift))
            drift = d.relDrift > 0 ? "+inf" : "-inf";
        else {
            std::snprintf(buf, sizeof(buf), "%+.4g%%",
                          100.0 * d.relDrift);
            drift = buf;
        }
        std::string stat = d.stat;
        if (d.headline)
            stat += " [headline]";
        table.row({d.app, d.config, stat,
                   d.onlyInCandidate ? "-" : TextTable::num(d.baseline, 6),
                   d.onlyInBaseline ? "-" : TextTable::num(d.candidate, 6),
                   drift, d.attribution});
    }
    out += table.render();
    if (result.drifts.size() > shown) {
        std::snprintf(buf, sizeof(buf), "(%zu more drifts not shown)\n",
                      result.drifts.size() - shown);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "headline regressions: %zu\n",
                  result.headlineRegressions);
    out += buf;
    return out;
}

} // namespace espsim
