/**
 * @file
 * Cross-run observatory: the perf trajectory *across* artifacts.
 *
 * Every espsim artifact is a self-contained snapshot of one run; this
 * module reads a directory of them (suite, latency, bench) plus the
 * committed bench baselines and joins them into a trajectory:
 *
 *  - runs are classified by schema and keyed by (schema,
 *    manifest.config_hash, workload fingerprint) — only artifacts
 *    measuring the *same* configuration matrix over the *same*
 *    workload shape (profile + event count for latency runs, app set
 *    for suites and bench sweeps) are comparable; trending a 100k-
 *    event run against a 1M-event run would compare raw cycle counts
 *    across scales;
 *  - within a group, runs are ordered (oldest → newest) by file
 *    modification time — the in-tree `espsim report` is offline and
 *    dependency-free; tools/observatory.py layers git-ancestry
 *    ordering on top for commit-accurate trajectories;
 *  - per run a small set of headline metrics is extracted (mean IPC
 *    and cycles per config from suites, p50/p99 total latency per
 *    config from latency artifacts, Mcycles/s per cell and suite wall
 *    from bench artifacts);
 *  - first→last relative drift per metric is flagged against a
 *    tolerance, direction-aware (ipc/throughput up is good, cycles
 *    and latency down is good).
 *
 * Output: a human-readable markdown report and/or a versioned
 * `espsim-observatory-report` JSON artifact (schema checked by
 * tools/validate_artifact.py).
 */

#ifndef ESPSIM_REPORT_OBSERVATORY_HH
#define ESPSIM_REPORT_OBSERVATORY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace espsim
{

/** One ingested artifact. */
struct ObservatoryRun
{
    std::string path;       //!< as given (for the report)
    std::string schema;     //!< espsim-suite-artifact, ...
    std::string configHash; //!< manifest.config_hash
    std::string workload;   //!< workload fingerprint (join key)
    std::string toolVersion;
    std::string buildType;
    std::int64_t mtimeNs = 0; //!< ordering key (file mtime)
    bool degraded = false;    //!< manifest.health says degraded
    std::vector<std::string> metricNames;
    std::vector<double> metricValues;
};

/** First→last drift of one metric within a comparable group. */
struct ObservatoryTrend
{
    std::string metric;
    double first = 0;
    double last = 0;
    double relChange = 0; //!< (last-first)/first, 0 when first==0
    bool higherIsBetter = false;
    bool regressed = false;
};

/** All runs sharing (schema, config_hash, workload). */
struct ObservatoryGroup
{
    std::string schema;
    std::string configHash;
    std::string workload;
    std::vector<std::size_t> runIndices; //!< into report.runs, ordered
    std::vector<ObservatoryTrend> trends;
};

struct ObservatoryReport
{
    std::vector<ObservatoryRun> runs;
    std::vector<ObservatoryGroup> groups;
    std::vector<std::string> skipped; //!< unreadable/foreign files
    double tolerance = 0.10;
    std::size_t regressions = 0; //!< trends flagged across all groups
};

/**
 * Ingest every *.json under @p dirs (non-recursive per directory) and
 * build the trajectory with regression flags at @p tolerance.
 * Unreadable or non-espsim files land in `skipped`, never fail the
 * scan.
 */
ObservatoryReport buildObservatoryReport(
    const std::vector<std::string> &dirs, double tolerance);

/** Direction convention for a metric name (see file comment). */
bool observatoryHigherIsBetter(const std::string &metric);

/** Render the report as markdown (the CLI's stdout form). */
std::string renderObservatoryMarkdown(const ObservatoryReport &report);

/** Render the versioned espsim-observatory-report JSON artifact. */
std::string renderObservatoryJson(const ObservatoryReport &report);

} // namespace espsim

#endif // ESPSIM_REPORT_OBSERVATORY_HH
