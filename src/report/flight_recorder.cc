#include "report/flight_recorder.hh"

#include <utility>
#include <vector>

#include "report/timeline.hh"

namespace espsim
{

namespace
{

void
replayRing(const SpanCollector &collector, EventTimeline &timeline)
{
    const FixedRing<RequestSpan> &ring = collector.ring();
    for (std::size_t i = 0; i < ring.size(); ++i) {
        const RequestSpan &span = ring.at(i);
        timeline.eventQueued(span.index, span.arrival);
        timeline.eventDispatched(span.index, span.dispatch);
        timeline.eventRetired(span.index, span.retire,
                              span.instructions);
        std::vector<std::pair<std::string, Cycle>> buckets;
        buckets.reserve(numCycleBuckets);
        for (unsigned b = 0; b < numCycleBuckets; ++b) {
            buckets.emplace_back(
                cycleBucketName(static_cast<CycleBucket>(b)),
                span.buckets[b]);
        }
        timeline.eventCycleBuckets(span.index, std::move(buckets));
        std::vector<std::pair<std::string, std::uint64_t>> tallies;
        tallies.reserve(numPrefetchSources);
        for (unsigned s = 0; s < numPrefetchSources; ++s) {
            tallies.emplace_back(
                prefetchSourceName(static_cast<PrefetchSource>(s)),
                span.prefetch[s].issued);
        }
        timeline.eventPrefetchTallies(span.index, std::move(tallies));
    }
}

} // namespace

std::string
renderFlightRecorderTrace(const SpanCollector &collector,
                          const std::string &configName,
                          const std::string &workloadName)
{
    EventTimeline timeline;
    timeline.setRunInfo(configName, workloadName);
    timeline.setTraceKind("flight-recorder");
    replayRing(collector, timeline);
    return timeline.renderChromeTrace();
}

bool
writeFlightRecorderTrace(const SpanCollector &collector,
                         const std::string &configName,
                         const std::string &workloadName,
                         const std::string &path)
{
    EventTimeline timeline;
    timeline.setRunInfo(configName, workloadName);
    timeline.setTraceKind("flight-recorder");
    replayRing(collector, timeline);
    return timeline.writeChromeTrace(path);
}

} // namespace espsim
