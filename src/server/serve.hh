/**
 * @file
 * The serve driver: stream a request-serving profile through the
 * simulator under an arrival discipline, once per config, and collect
 * tail-latency reports.
 *
 * One ServeCell per config carries the architectural headlines plus
 * the queue/service/total latency summaries and a power-of-two
 * total-latency histogram. renderLatencyArtifactJson() writes the
 * versioned `espsim-latency-artifact` (validated by
 * tools/validate_artifact.py) — deterministic and free of wall-clock
 * facts, like every other espsim artifact.
 */

#ifndef ESPSIM_SERVER_SERVE_HH
#define ESPSIM_SERVER_SERVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "report/artifact.hh"
#include "report/spans.hh"
#include "server/arrival.hh"
#include "server/latency.hh"
#include "server/profile.hh"
#include "sim/simulator.hh"

namespace espsim
{

/** Sentinel: no latency spike injected. */
constexpr std::uint64_t noSpikeEvent = ~std::uint64_t{0};

/** Span-tracing knobs of one serve run (see report/spans.hh). */
struct ServeSpanOptions
{
    bool enabled = false;
    /** Flight-recorder ring capacity (spans). */
    std::size_t flightRecorder = 256;
    /** Worst-request table size in the span artifact. */
    std::size_t worstK = 8;
    /** Anomaly: total latency > threshold x running p99. */
    double anomalyThreshold = 8.0;
    /** Detector warmup (spans before triggers are armed). */
    std::uint64_t anomalyMinSamples = 64;
    /**
     * Flight-recorder dump path prefix; the first anomaly per config
     * writes `<prefix>.<config>.trace.json`. Empty = no dump files
     * (the detector still records anomalies in the artifact).
     */
    std::string dumpPrefix;
    /** Inject a service-time spike into this event id (tests the
     *  detector end to end); noSpikeEvent = off. */
    std::uint64_t spikeEvent = noSpikeEvent;
    /** Op-count amplification of the spiked event. */
    unsigned spikeScale = 16;
};

/**
 * Live-telemetry knobs of one serve run (see report/telemetry.hh,
 * report/metrics_http.hh, report/watchdog.hh). The plane, snapshot
 * stream, HTTP endpoint and watchdog are all optional and mutually
 * independent; none of them perturbs the deterministic artifacts.
 */
struct ServeTelemetryOptions
{
    /** Snapshot pacing; a zero config disables sampling (the plane
     *  still carries liveness progress for the watchdog). */
    TelemetryConfig period;
    /** JSONL snapshot stream path ("" = no stream). */
    std::string jsonlPath;
    /** Serve /metrics, /healthz, /snapshot.json over HTTP. */
    bool metricsEnabled = false;
    /** Port for the metrics endpoint (0 = ephemeral). */
    std::uint16_t metricsPort = 0;
    /** Stall-watchdog budget in wall-clock ms (0 = no watchdog). */
    double watchdogBudgetMs = 0;
    /**
     * Flight-recorder dump path prefix for a watchdog fire; the dump
     * is `<prefix>.<config>.stall.trace.json` and requires the span
     * recorder to be armed. Empty = log-only.
     */
    std::string watchdogDumpPrefix;

    bool
    any() const
    {
        return period.enabled() || !jsonlPath.empty() ||
               metricsEnabled || watchdogBudgetMs > 0;
    }
};

/** Knobs of one serve run (applied identically to every config). */
struct ServeOptions
{
    /** Override profile.app.numEvents when non-zero. */
    std::size_t events = 0;
    /** Streaming window (resident trace budget per reader). */
    std::size_t window = 16;
    /** Latency reservoir capacity (0 = buffer every sample). */
    std::size_t reservoirCapacity = 4096;
    ArrivalConfig arrival;
    ServeSpanOptions spans;
    ServeTelemetryOptions telemetry;
};

/** One handler type's latency breakdown (span/latency artifacts). */
struct HandlerLatencyRow
{
    std::uint32_t handler = 0;
    std::uint64_t events = 0;
    LatencySummary queue;
    LatencySummary service;
};

/** Results of one (profile, config) serve run. */
struct ServeCell
{
    std::string config;
    Cycle cycles = 0;
    double ipc = 0.0;
    Cycle idleCycles = 0;
    std::uint64_t events = 0;
    LatencySummary queue;
    LatencySummary service;
    LatencySummary total;
    std::vector<std::uint64_t> histogram;
    /** Per-handler queue/service breakdown (handlers that served). */
    std::vector<HandlerLatencyRow> handlers;

    // --- span tracing (populated when opts.spans.enabled) ----------
    std::uint64_t spansRecorded = 0;
    double runningP99 = 0.0;
    std::vector<RequestSpan> worstSpans;
    std::vector<AnomalyRecord> anomalies;
    std::uint64_t anomalyOverflow = 0;
    bool dumpTriggered = false;
    std::uint64_t dumpEvent = 0;
    std::string dumpPath;
};

/** A full serve sweep over one profile. */
struct ServeReport
{
    std::string profile;
    std::string profileDescription;
    std::size_t events = 0;
    std::size_t window = 0;
    std::size_t reservoirCapacity = 0;
    ArrivalConfig arrival;
    ServeSpanOptions spans;
    std::vector<std::string> configNames;
    std::string configHash;
    std::vector<ServeCell> cells;

    // --- live-telemetry health (populated when telemetry.any()) ----
    /** The stall watchdog latched a degraded state mid-run. */
    bool degraded = false;
    std::string degradedReason;
    /** Total watchdog fires across the sweep (0 or 1 per config by
     *  design). */
    std::uint64_t watchdogFires = 0;
    /** Telemetry snapshots streamed across the sweep. */
    std::uint64_t telemetrySnapshots = 0;
};

/**
 * Run @p profile under every config in @p configs (serially; each
 * config replays the identical request stream and arrival schedule).
 */
ServeReport runServe(const ServerProfile &profile,
                     const std::vector<SimConfig> &configs,
                     const ServeOptions &opts);

/** Render the versioned espsim-latency-artifact JSON. */
std::string renderLatencyArtifactJson(const ArtifactManifest &manifest,
                                      const ServeReport &report);

/**
 * Render the versioned espsim-span-artifact JSON: per config, the
 * worst-K tail requests decomposed into queue vs service, per-bucket
 * cycle blame and ESP prefetch deltas, plus the anomaly records and
 * flight-recorder dump provenance. Requires opts.spans.enabled runs.
 */
std::string renderSpanArtifactJson(const ArtifactManifest &manifest,
                                   const ServeReport &report);

} // namespace espsim

#endif // ESPSIM_SERVER_SERVE_HH
