/**
 * @file
 * The serve driver: stream a request-serving profile through the
 * simulator under an arrival discipline, once per config, and collect
 * tail-latency reports.
 *
 * One ServeCell per config carries the architectural headlines plus
 * the queue/service/total latency summaries and a power-of-two
 * total-latency histogram. renderLatencyArtifactJson() writes the
 * versioned `espsim-latency-artifact` (validated by
 * tools/validate_artifact.py) — deterministic and free of wall-clock
 * facts, like every other espsim artifact.
 */

#ifndef ESPSIM_SERVER_SERVE_HH
#define ESPSIM_SERVER_SERVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "report/artifact.hh"
#include "server/arrival.hh"
#include "server/latency.hh"
#include "server/profile.hh"
#include "sim/simulator.hh"

namespace espsim
{

/** Knobs of one serve run (applied identically to every config). */
struct ServeOptions
{
    /** Override profile.app.numEvents when non-zero. */
    std::size_t events = 0;
    /** Streaming window (resident trace budget per reader). */
    std::size_t window = 16;
    /** Latency reservoir capacity (0 = buffer every sample). */
    std::size_t reservoirCapacity = 4096;
    ArrivalConfig arrival;
};

/** Results of one (profile, config) serve run. */
struct ServeCell
{
    std::string config;
    Cycle cycles = 0;
    double ipc = 0.0;
    Cycle idleCycles = 0;
    std::uint64_t events = 0;
    LatencySummary queue;
    LatencySummary service;
    LatencySummary total;
    std::vector<std::uint64_t> histogram;
};

/** A full serve sweep over one profile. */
struct ServeReport
{
    std::string profile;
    std::string profileDescription;
    std::size_t events = 0;
    std::size_t window = 0;
    std::size_t reservoirCapacity = 0;
    ArrivalConfig arrival;
    std::vector<std::string> configNames;
    std::string configHash;
    std::vector<ServeCell> cells;
};

/**
 * Run @p profile under every config in @p configs (serially; each
 * config replays the identical request stream and arrival schedule).
 */
ServeReport runServe(const ServerProfile &profile,
                     const std::vector<SimConfig> &configs,
                     const ServeOptions &opts);

/** Render the versioned espsim-latency-artifact JSON. */
std::string renderLatencyArtifactJson(const ArtifactManifest &manifest,
                                      const ServeReport &report);

} // namespace espsim

#endif // ESPSIM_SERVER_SERVE_HH
