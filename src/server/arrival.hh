/**
 * @file
 * Seeded-deterministic request arrival processes for the serve path.
 *
 * Three disciplines, all pure functions of (config, seed):
 *  - Poisson: open-loop, exponentially distributed inter-arrival gaps
 *    at a fixed mean — the classic memoryless request stream.
 *  - Bursty: open-loop Markov-modulated Poisson process (MMPP) with
 *    two states; the stream alternates between a burst state (short
 *    gaps) and a calm state (long gaps), with exponentially
 *    distributed state dwell times. Same long-run mean structure as
 *    Poisson but with the traffic variance real services see.
 *  - Closed-loop: a fixed population of @c concurrency clients, each
 *    issuing its next request @c thinkCycles after its previous one
 *    retired. Load self-regulates with service time — the canonical
 *    benchmark-harness discipline.
 *
 * Open-loop processes ignore retire feedback; the closed-loop one is
 * driven by it (the pacer forwards every retirement).
 */

#ifndef ESPSIM_SERVER_ARRIVAL_HH
#define ESPSIM_SERVER_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace espsim
{

/** Which arrival discipline drives the serve run. */
enum class ArrivalKind
{
    Poisson,
    Bursty,
    ClosedLoop,
};

/** Stable CLI/artifact token for @p kind. */
const char *arrivalKindName(ArrivalKind kind);

/** Parse a CLI token; returns false on an unknown name. */
bool parseArrivalKind(const std::string &token, ArrivalKind &out);

/** Knobs for every discipline (unused fields are ignored). */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Open-loop mean inter-arrival gap, cycles. */
    double meanGapCycles = 3000.0;
    /** Burst-state gap multiplier (< 1 = faster than the mean). */
    double burstGapFactor = 0.25;
    /** Calm-state gap multiplier (> 1 = slower than the mean). */
    double calmGapFactor = 2.5;
    /** Mean dwell in the burst state, cycles. */
    double meanBurstCycles = 150000.0;
    /** Mean dwell in the calm state, cycles. */
    double meanCalmCycles = 450000.0;
    /** Closed-loop client population. */
    unsigned concurrency = 4;
    /** Closed-loop think time between retire and next issue. */
    Cycle thinkCycles = 2000;
    /** Seed for the discipline's private random stream. */
    std::uint64_t seed = 0x5eed;
};

/**
 * One request-arrival schedule. arrivalCycle() is called exactly once
 * per event, in event order; onEventRetired() once per retirement, in
 * order. Implementations must be deterministic given the config.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** The discipline's stable name (artifact metadata). */
    virtual const char *kindName() const = 0;

    /** Arrival cycle of event @p idx (non-decreasing in idx). */
    virtual Cycle arrivalCycle(std::uint64_t idx) = 0;

    /** Feedback: event @p idx retired at @p retireCycle. */
    virtual void onEventRetired(std::uint64_t idx, Cycle retireCycle)
    {
        (void)idx;
        (void)retireCycle;
    }
};

/** Build the configured process (panics on a bad config). */
std::unique_ptr<ArrivalProcess>
makeArrivalProcess(const ArrivalConfig &config);

} // namespace espsim

#endif // ESPSIM_SERVER_ARRIVAL_HH
