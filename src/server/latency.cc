#include "server/latency.hh"

#include <algorithm>
#include <bit>
#include <string>

#include "common/logging.hh"
#include "report/stat_registry.hh"

namespace espsim
{

LatencySummary
summarizeLatency(const SampleStat &s)
{
    LatencySummary out;
    out.count = s.count();
    out.mean = s.mean();
    out.max = s.max();
    out.p50 = s.percentile(50.0);
    out.p95 = s.percentile(95.0);
    out.p99 = s.percentile(99.0);
    out.p999 = s.percentile(99.9);
    return out;
}

ServePacer::ServePacer(std::unique_ptr<ArrivalProcess> arrival,
                       std::size_t reservoirCapacity,
                       std::uint64_t seed, std::size_t numHandlers)
    : arrival_(std::move(arrival))
{
    if (!arrival_)
        panic("ServePacer needs an arrival process");
    if (reservoirCapacity > 0) {
        // Distinct seeds per class: identical replacement streams
        // would correlate the three reservoirs' sampling error.
        queue_.enableReservoir(reservoirCapacity, seed ^ 0x71);
        service_.enableReservoir(reservoirCapacity, seed ^ 0x5e);
        total_.enableReservoir(reservoirCapacity, seed ^ 0x70);
    }
    // Per-handler breakdowns: a smaller reservoir per handler (each
    // handler sees only a slice of the stream) keeps the table's
    // memory bounded for many-route profiles.
    handlers_.resize(numHandlers);
    if (reservoirCapacity > 0) {
        const std::size_t per_handler =
            std::min<std::size_t>(reservoirCapacity, 1024);
        for (std::size_t h = 0; h < handlers_.size(); ++h) {
            handlers_[h].queue.enableReservoir(
                per_handler, seed ^ (0x9100 + 2 * h));
            handlers_[h].service.enableReservoir(
                per_handler, seed ^ (0x9101 + 2 * h));
        }
    }
}

Cycle
ServePacer::eventArrival(std::size_t idx, Cycle now)
{
    (void)now;
    curArrival_ = arrival_->arrivalCycle(idx);
    return curArrival_;
}

void
ServePacer::eventDispatched(std::size_t idx, Cycle now)
{
    (void)idx;
    curDispatch_ = now;
}

void
ServePacer::eventRetired(std::size_t idx, Cycle now)
{
    // The core dispatches in arrival order, so dispatch/retire always
    // trail this event's recorded arrival.
    const Cycle queue_cycles =
        curDispatch_ >= curArrival_ ? curDispatch_ - curArrival_ : 0;
    const Cycle service_cycles =
        now >= curDispatch_ ? now - curDispatch_ : 0;
    const Cycle total_cycles = queue_cycles + service_cycles;
    queue_.record(static_cast<double>(queue_cycles));
    service_.record(static_cast<double>(service_cycles));
    total_.record(static_cast<double>(total_cycles));
    const std::size_t bucket = total_cycles == 0
        ? 0
        : std::min<std::size_t>(
              static_cast<std::size_t>(
                  std::bit_width(total_cycles) - 1),
              latencyHistBuckets - 1);
    ++hist_[bucket];
    ++events_;
    if (curHandler_ < handlers_.size()) {
        HandlerLatency &h = handlers_[curHandler_];
        ++h.events;
        h.queue.record(static_cast<double>(queue_cycles));
        h.service.record(static_cast<double>(service_cycles));
    }
    arrival_->onEventRetired(idx, now);
}

void
ServePacer::eventHandlerType(std::size_t idx,
                             std::uint32_t handler_type)
{
    (void)idx;
    curHandler_ = handler_type;
}

void
ServePacer::registerStats(StatRegistry &reg,
                          const std::string &prefix) const
{
    for (std::size_t h = 0; h < handlers_.size(); ++h) {
        const HandlerLatency &hl = handlers_[h];
        if (hl.events == 0)
            continue;
        const std::string base =
            prefix + "handler." + std::to_string(h) + ".";
        // Values are captured now (the run is over; the registry
        // snapshot follows immediately), so the registered getters
        // never dangle into this pacer.
        reg.registerDerived(base + "events", [v = hl.events] {
            return static_cast<double>(v);
        });
        reg.registerDerived(base + "queue.p50",
                            [v = hl.queue.percentile(50.0)] {
                                return v;
                            });
        reg.registerDerived(base + "queue.p99",
                            [v = hl.queue.percentile(99.0)] {
                                return v;
                            });
        reg.registerDerived(base + "service.p50",
                            [v = hl.service.percentile(50.0)] {
                                return v;
                            });
        reg.registerDerived(base + "service.p99",
                            [v = hl.service.percentile(99.0)] {
                                return v;
                            });
    }
}

} // namespace espsim
