#include "server/latency.hh"

#include <bit>

#include "common/logging.hh"

namespace espsim
{

LatencySummary
summarizeLatency(const SampleStat &s)
{
    LatencySummary out;
    out.count = s.count();
    out.mean = s.mean();
    out.max = s.max();
    out.p50 = s.percentile(50.0);
    out.p95 = s.percentile(95.0);
    out.p99 = s.percentile(99.0);
    out.p999 = s.percentile(99.9);
    return out;
}

ServePacer::ServePacer(std::unique_ptr<ArrivalProcess> arrival,
                       std::size_t reservoirCapacity,
                       std::uint64_t seed)
    : arrival_(std::move(arrival))
{
    if (!arrival_)
        panic("ServePacer needs an arrival process");
    if (reservoirCapacity > 0) {
        // Distinct seeds per class: identical replacement streams
        // would correlate the three reservoirs' sampling error.
        queue_.enableReservoir(reservoirCapacity, seed ^ 0x71);
        service_.enableReservoir(reservoirCapacity, seed ^ 0x5e);
        total_.enableReservoir(reservoirCapacity, seed ^ 0x70);
    }
}

Cycle
ServePacer::eventArrival(std::size_t idx, Cycle now)
{
    (void)now;
    curArrival_ = arrival_->arrivalCycle(idx);
    return curArrival_;
}

void
ServePacer::eventDispatched(std::size_t idx, Cycle now)
{
    (void)idx;
    curDispatch_ = now;
}

void
ServePacer::eventRetired(std::size_t idx, Cycle now)
{
    // The core dispatches in arrival order, so dispatch/retire always
    // trail this event's recorded arrival.
    const Cycle queue_cycles =
        curDispatch_ >= curArrival_ ? curDispatch_ - curArrival_ : 0;
    const Cycle service_cycles =
        now >= curDispatch_ ? now - curDispatch_ : 0;
    const Cycle total_cycles = queue_cycles + service_cycles;
    queue_.record(static_cast<double>(queue_cycles));
    service_.record(static_cast<double>(service_cycles));
    total_.record(static_cast<double>(total_cycles));
    const std::size_t bucket = total_cycles == 0
        ? 0
        : std::min<std::size_t>(
              static_cast<std::size_t>(
                  std::bit_width(total_cycles) - 1),
              latencyHistBuckets - 1);
    ++hist_[bucket];
    ++events_;
    arrival_->onEventRetired(idx, now);
}

} // namespace espsim
