#include "server/serve.hh"

#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/version.hh"
#include "cpu/ooo_core.hh"
#include "report/json_writer.hh"
#include "workload/streaming.hh"

namespace espsim
{

ServeReport
runServe(const ServerProfile &profile,
         const std::vector<SimConfig> &configs,
         const ServeOptions &opts)
{
    if (configs.empty())
        panic("runServe: no configs");

    ServerProfile p = profile;
    if (opts.events > 0)
        p.app.numEvents = opts.events;

    ServeReport report;
    report.profile = p.name;
    report.profileDescription = p.description;
    report.events = p.app.numEvents;
    report.window = opts.window;
    report.reservoirCapacity = opts.reservoirCapacity;
    report.arrival = opts.arrival;
    report.configHash = configsHash(configs);
    for (const SimConfig &c : configs)
        report.configNames.push_back(c.name);

    for (const SimConfig &config : configs) {
        // A fresh streaming workload per config: each replay starts at
        // event 0 with an empty pin window, so resident-trace bounds
        // (and thus peak RSS) don't accumulate across configs.
        StreamingWorkload workload(
            std::make_unique<ServerTraceSource>(p), opts.window);
        ServePacer pacer(makeArrivalProcess(opts.arrival),
                         opts.reservoirCapacity, opts.arrival.seed);
        RunInstrumentation inst;
        inst.pacer = &pacer;
        const SimResult r = Simulator(config).run(workload, inst);

        ServeCell cell;
        cell.config = config.name;
        cell.cycles = r.cycles;
        cell.ipc = r.ipc;
        cell.idleCycles = r.core.bucketCycles[static_cast<std::size_t>(
            CycleBucket::Idle)];
        cell.events = pacer.events();
        cell.queue = summarizeLatency(pacer.queueLatency());
        cell.service = summarizeLatency(pacer.serviceLatency());
        cell.total = summarizeLatency(pacer.totalLatency());
        cell.histogram.assign(pacer.histogram().begin(),
                              pacer.histogram().end());
        report.cells.push_back(std::move(cell));
    }
    return report;
}

namespace
{

void
writeLatencyClass(JsonWriter &w, const char *name,
                  const LatencySummary &s)
{
    w.key(name).beginObject();
    w.key("count").value(std::uint64_t{s.count});
    w.key("mean").value(s.mean);
    w.key("max").value(s.max);
    w.key("p50").value(s.p50);
    w.key("p95").value(s.p95);
    w.key("p99").value(s.p99);
    w.key("p999").value(s.p999);
    w.endObject();
}

} // namespace

std::string
renderLatencyArtifactJson(const ArtifactManifest &manifest,
                          const ServeReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-latency-artifact");
    w.key("format_version").value(std::uint64_t{artifactFormatVersion});

    w.key("manifest").beginObject();
    w.key("source").value(manifest.source);
    w.key("tool_version")
        .value(manifest.toolVersion.empty() ? versionString()
                                            : manifest.toolVersion);
    w.key("build_type")
        .value(manifest.buildType.empty() ? buildTypeString()
                                          : manifest.buildType);
    w.key("config_hash").value(report.configHash);
    w.key("profile").value(report.profile);
    w.key("events").value(std::uint64_t{report.events});
    w.key("window").value(std::uint64_t{report.window});
    w.key("reservoir_capacity")
        .value(std::uint64_t{report.reservoirCapacity});
    w.key("arrival").beginObject();
    w.key("kind").value(arrivalKindName(report.arrival.kind));
    w.key("mean_gap_cycles").value(report.arrival.meanGapCycles);
    w.key("burst_gap_factor").value(report.arrival.burstGapFactor);
    w.key("calm_gap_factor").value(report.arrival.calmGapFactor);
    w.key("mean_burst_cycles").value(report.arrival.meanBurstCycles);
    w.key("mean_calm_cycles").value(report.arrival.meanCalmCycles);
    w.key("concurrency")
        .value(std::uint64_t{report.arrival.concurrency});
    w.key("think_cycles")
        .value(std::uint64_t{report.arrival.thinkCycles});
    w.key("seed").value(std::uint64_t{report.arrival.seed});
    w.endObject();
    w.key("configs").beginArray();
    for (const std::string &name : report.configNames)
        w.value(name);
    w.endArray();
    w.endObject();

    w.key("results").beginArray();
    for (const ServeCell &cell : report.cells) {
        w.beginObject();
        w.key("config").value(cell.config);
        w.key("cycles").value(std::uint64_t{cell.cycles});
        w.key("ipc").value(cell.ipc);
        w.key("idle_cycles").value(std::uint64_t{cell.idleCycles});
        w.key("events").value(std::uint64_t{cell.events});
        w.key("latency").beginObject();
        writeLatencyClass(w, "queue", cell.queue);
        writeLatencyClass(w, "service", cell.service);
        writeLatencyClass(w, "total", cell.total);
        w.endObject();
        w.key("histogram").beginObject();
        w.key("scale").value("pow2_cycles");
        w.key("buckets").beginArray();
        for (const std::uint64_t count : cell.histogram)
            w.value(std::uint64_t{count});
        w.endArray();
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace espsim
