#include "server/serve.hh"

#include <memory>
#include <utility>

#include <mutex>

#include "common/log.hh"
#include "common/logging.hh"
#include "common/version.hh"
#include "cpu/ooo_core.hh"
#include "report/flight_recorder.hh"
#include "report/host_profile.hh"
#include "report/json_writer.hh"
#include "report/metrics_http.hh"
#include "report/telemetry.hh"
#include "report/watchdog.hh"
#include "workload/streaming.hh"

namespace espsim
{

namespace
{

/**
 * EventSource decorator that amplifies one event's op stream by an
 * integer factor: a deterministic, injectable service-time spike for
 * exercising the tail-anomaly detector end to end. Every other event
 * passes through bit-identically, so the surrounding latency
 * distribution is untouched.
 */
class SpikedSource final : public EventSource
{
  public:
    SpikedSource(std::unique_ptr<const EventSource> inner,
                 std::uint64_t spikeEvent, unsigned scale)
        : inner_(std::move(inner)), spikeEvent_(spikeEvent),
          scale_(scale < 2 ? 2 : scale)
    {
    }

    const std::string &name() const override { return inner_->name(); }
    std::size_t numEvents() const override
    {
        return inner_->numEvents();
    }
    std::vector<AddrRange> warmSet() const override
    {
        return inner_->warmSet();
    }

    EventTrace
    makeEvent(std::uint64_t id) const override
    {
        EventTrace trace = inner_->makeEvent(id);
        if (id != spikeEvent_)
            return trace;
        OpSequence amplified;
        amplified.reserve(trace.ops.size() * scale_);
        for (unsigned r = 0; r < scale_; ++r) {
            for (std::size_t i = 0; i < trace.ops.size(); ++i)
                amplified.push_back(trace.ops[i]);
        }
        trace.ops = std::move(amplified);
        // The replicated stream invalidates any recorded divergence
        // index; treat the spiked event as independent.
        trace.divergencePoint = noDivergence;
        trace.divergedTail.clear();
        return trace;
    }

  private:
    std::unique_ptr<const EventSource> inner_;
    std::uint64_t spikeEvent_;
    unsigned scale_;
};

} // namespace

ServeReport
runServe(const ServerProfile &profile,
         const std::vector<SimConfig> &configs,
         const ServeOptions &opts)
{
    if (configs.empty())
        panic("runServe: no configs");

    ServerProfile p = profile;
    if (opts.events > 0)
        p.app.numEvents = opts.events;

    ServeReport report;
    report.profile = p.name;
    report.profileDescription = p.description;
    report.events = p.app.numEvents;
    report.window = opts.window;
    report.reservoirCapacity = opts.reservoirCapacity;
    report.arrival = opts.arrival;
    report.spans = opts.spans;
    report.configHash = configsHash(configs);
    for (const SimConfig &c : configs)
        report.configNames.push_back(c.name);

    // Live-telemetry plane: one plane/stream/endpoint/watchdog spans
    // the whole sweep (the progress counter and health state are
    // sweep-global; each config opens its own JSONL block).
    std::unique_ptr<TelemetryPlane> plane;
    std::unique_ptr<TelemetryStream> stream;
    std::unique_ptr<MetricsHttpServer> metrics;
    std::unique_ptr<StallWatchdog> watchdog;
    // The watchdog thread dumps the flight-recorder ring of whichever
    // config is currently running; the pointer swap is mutex-guarded
    // (the stalled simulation thread is by definition not mid-span
    // when the watchdog reads the ring).
    struct WatchdogTarget
    {
        std::mutex mu;
        const SpanCollector *collector = nullptr;
        std::string config;
    };
    auto wd_target = std::make_shared<WatchdogTarget>();
    if (opts.telemetry.any()) {
        plane = std::make_unique<TelemetryPlane>();
        if (!opts.telemetry.jsonlPath.empty()) {
            stream = std::make_unique<TelemetryStream>();
            if (!stream->openFile(opts.telemetry.jsonlPath)) {
                logLine(LogLevel::Error,
                        "cannot open telemetry stream '%s'",
                        opts.telemetry.jsonlPath.c_str());
                stream.reset();
            }
        }
        if (opts.telemetry.metricsEnabled) {
            metrics = std::make_unique<MetricsHttpServer>(*plane);
            if (!metrics->start(opts.telemetry.metricsPort)) {
                logLine(LogLevel::Error,
                        "cannot bind metrics port %u",
                        unsigned{opts.telemetry.metricsPort});
                metrics.reset();
            } else {
                logLine(LogLevel::Info,
                        "# metrics endpoint: http://127.0.0.1:%u"
                        "/metrics",
                        unsigned{metrics->port()});
            }
        }
        if (opts.telemetry.watchdogBudgetMs > 0) {
            const std::string prefix =
                opts.telemetry.watchdogDumpPrefix;
            watchdog = std::make_unique<StallWatchdog>(
                *plane, opts.telemetry.watchdogBudgetMs,
                [wd_target, prefix, &p](const StallReport &stall) {
                    logLine(LogLevel::Warn,
                            "# watchdog: host peak RSS %.1f MB, "
                            "stalled %.0f ms at progress %llu",
                            peakRssMb(), stall.stalledMs,
                            static_cast<unsigned long long>(
                                stall.lastProgress));
                    std::lock_guard<std::mutex> lock(wd_target->mu);
                    if (wd_target->collector == nullptr ||
                        prefix.empty())
                        return;
                    const std::string path = prefix + "." +
                        wd_target->config + ".stall.trace.json";
                    if (writeFlightRecorderTrace(
                            *wd_target->collector, wd_target->config,
                            p.name, path))
                        logLine(LogLevel::Warn,
                                "# watchdog: wrote flight-recorder "
                                "dump %s",
                                path.c_str());
                    else
                        logLine(LogLevel::Error,
                                "cannot write watchdog dump '%s'",
                                path.c_str());
                });
        }
    }

    for (const SimConfig &config : configs) {
        // A fresh streaming workload per config: each replay starts at
        // event 0 with an empty pin window, so resident-trace bounds
        // (and thus peak RSS) don't accumulate across configs.
        std::unique_ptr<const EventSource> source =
            std::make_unique<ServerTraceSource>(p);
        if (opts.spans.spikeEvent != noSpikeEvent) {
            source = std::make_unique<SpikedSource>(
                std::move(source), opts.spans.spikeEvent,
                opts.spans.spikeScale);
        }
        StreamingWorkload workload(std::move(source), opts.window);
        ServePacer pacer(makeArrivalProcess(opts.arrival),
                         opts.reservoirCapacity, opts.arrival.seed,
                         p.app.numHandlerTypes);
        RunInstrumentation inst;
        inst.pacer = &pacer;

        std::unique_ptr<SpanCollector> spans;
        std::string dump_path;
        if (opts.spans.enabled) {
            SpanCollectorConfig scfg;
            scfg.ringCapacity = opts.spans.flightRecorder;
            scfg.worstK = opts.spans.worstK;
            scfg.anomalyThreshold = opts.spans.anomalyThreshold;
            scfg.anomalyMinSamples = opts.spans.anomalyMinSamples;
            spans = std::make_unique<SpanCollector>(scfg);
            if (!opts.spans.dumpPrefix.empty()) {
                dump_path = opts.spans.dumpPrefix + "." + config.name +
                    ".trace.json";
                spans->setAnomalyCallback(
                    [&dump_path, &config, &p](
                        const SpanCollector &collector,
                        const RequestSpan &trigger) {
                        if (!writeFlightRecorderTrace(collector,
                                                      config.name,
                                                      p.name,
                                                      dump_path)) {
                            logLine(LogLevel::Error,
                                    "cannot write flight-recorder "
                                    "dump '%s'",
                                    dump_path.c_str());
                            return;
                        }
                        logLine(LogLevel::Info,
                                "# flight recorder: event %zu tripped "
                                "the tail detector; wrote %s",
                                trigger.index, dump_path.c_str());
                    });
            }
            inst.spans = spans.get();
        }

        if (plane) {
            inst.telemetry = opts.telemetry.period;
            inst.telemetryStream = stream.get();
            inst.telemetryPlane = plane.get();
            inst.telemetryConfigHash = report.configHash;
            std::lock_guard<std::mutex> lock(wd_target->mu);
            wd_target->collector = spans.get();
            wd_target->config = config.name;
        }

        const SimResult r = Simulator(config).run(workload, inst);

        if (plane) {
            // The per-run snapshotter is gone; detach the watchdog's
            // dump target before the collector dies with this scope.
            report.telemetrySnapshots += plane->latest().snap.seq;
            std::lock_guard<std::mutex> lock(wd_target->mu);
            wd_target->collector = nullptr;
        }

        ServeCell cell;
        cell.config = config.name;
        cell.cycles = r.cycles;
        cell.ipc = r.ipc;
        cell.idleCycles = r.core.bucketCycles[static_cast<std::size_t>(
            CycleBucket::Idle)];
        cell.events = pacer.events();
        cell.queue = summarizeLatency(pacer.queueLatency());
        cell.service = summarizeLatency(pacer.serviceLatency());
        cell.total = summarizeLatency(pacer.totalLatency());
        cell.histogram.assign(pacer.histogram().begin(),
                              pacer.histogram().end());
        for (std::size_t h = 0; h < pacer.handlers().size(); ++h) {
            const HandlerLatency &hl = pacer.handlers()[h];
            if (hl.events == 0)
                continue;
            HandlerLatencyRow row;
            row.handler = static_cast<std::uint32_t>(h);
            row.events = hl.events;
            row.queue = summarizeLatency(hl.queue);
            row.service = summarizeLatency(hl.service);
            cell.handlers.push_back(row);
        }
        if (spans) {
            cell.spansRecorded = spans->spansRecorded();
            cell.runningP99 = spans->runningP99();
            cell.worstSpans = spans->worstSpans();
            cell.anomalies = spans->anomalies();
            cell.anomalyOverflow = spans->anomalyOverflow();
            cell.dumpTriggered = spans->dumpTriggered();
            cell.dumpEvent = spans->dumpEvent();
            if (cell.dumpTriggered && !dump_path.empty())
                cell.dumpPath = dump_path;
        }
        report.cells.push_back(std::move(cell));
    }

    if (watchdog) {
        watchdog->stop();
        report.watchdogFires = watchdog->fireCount();
    }
    if (metrics)
        metrics->stop();
    if (plane && plane->degraded()) {
        report.degraded = true;
        report.degradedReason = plane->degradedReason();
    }
    if (stream && !stream->close())
        logLine(LogLevel::Error, "telemetry stream '%s': write failed",
                opts.telemetry.jsonlPath.c_str());
    return report;
}

namespace
{

void
writeLatencyClass(JsonWriter &w, const char *name,
                  const LatencySummary &s)
{
    w.key(name).beginObject();
    w.key("count").value(std::uint64_t{s.count});
    w.key("mean").value(s.mean);
    w.key("max").value(s.max);
    w.key("p50").value(s.p50);
    w.key("p95").value(s.p95);
    w.key("p99").value(s.p99);
    w.key("p999").value(s.p999);
    w.endObject();
}

void
writeHandlerRows(JsonWriter &w, const ServeCell &cell)
{
    w.key("handlers").beginArray();
    for (const HandlerLatencyRow &row : cell.handlers) {
        w.beginObject();
        w.key("handler").value(std::uint64_t{row.handler});
        w.key("events").value(std::uint64_t{row.events});
        writeLatencyClass(w, "queue", row.queue);
        writeLatencyClass(w, "service", row.service);
        w.endObject();
    }
    w.endArray();
}

void
writeManifestCommon(JsonWriter &w, const ArtifactManifest &manifest,
                    const ServeReport &report)
{
    w.key("source").value(manifest.source);
    w.key("tool_version")
        .value(manifest.toolVersion.empty() ? versionString()
                                            : manifest.toolVersion);
    w.key("build_type")
        .value(manifest.buildType.empty() ? buildTypeString()
                                          : manifest.buildType);
    w.key("config_hash").value(report.configHash);
    w.key("profile").value(report.profile);
    w.key("events").value(std::uint64_t{report.events});
    w.key("window").value(std::uint64_t{report.window});
    w.key("reservoir_capacity")
        .value(std::uint64_t{report.reservoirCapacity});
    w.key("arrival").beginObject();
    w.key("kind").value(arrivalKindName(report.arrival.kind));
    w.key("mean_gap_cycles").value(report.arrival.meanGapCycles);
    w.key("burst_gap_factor").value(report.arrival.burstGapFactor);
    w.key("calm_gap_factor").value(report.arrival.calmGapFactor);
    w.key("mean_burst_cycles").value(report.arrival.meanBurstCycles);
    w.key("mean_calm_cycles").value(report.arrival.meanCalmCycles);
    w.key("concurrency")
        .value(std::uint64_t{report.arrival.concurrency});
    w.key("think_cycles")
        .value(std::uint64_t{report.arrival.thinkCycles});
    w.key("seed").value(std::uint64_t{report.arrival.seed});
    w.endObject();
    // Opt-in like the suite artifact's `host` block: the health
    // object only appears on degraded runs, so healthy telemetry-on
    // artifacts stay byte-identical to telemetry-off ones.
    if (report.degraded) {
        w.key("health").beginObject();
        w.key("status").value("degraded");
        w.key("reason").value(report.degradedReason);
        w.key("watchdog_fires")
            .value(std::uint64_t{report.watchdogFires});
        w.endObject();
    }
    w.key("configs").beginArray();
    for (const std::string &name : report.configNames)
        w.value(name);
    w.endArray();
}

void
writeSpanRecord(JsonWriter &w, const RequestSpan &span)
{
    w.beginObject();
    w.key("event").value(std::uint64_t{span.index});
    w.key("handler").value(std::uint64_t{span.handlerType});
    w.key("arrival").value(std::uint64_t{span.arrival});
    w.key("dispatch").value(std::uint64_t{span.dispatch});
    w.key("retire").value(std::uint64_t{span.retire});
    w.key("queue_cycles").value(std::uint64_t{span.queueCycles()});
    w.key("service_cycles").value(std::uint64_t{span.serviceCycles()});
    w.key("total_cycles").value(std::uint64_t{span.totalCycles()});
    w.key("span_cycles").value(std::uint64_t{span.spanCycles()});
    w.key("instructions").value(std::uint64_t{span.instructions});
    w.key("buckets").beginObject();
    for (unsigned b = 0; b < numCycleBuckets; ++b) {
        w.key(cycleBucketName(static_cast<CycleBucket>(b)))
            .value(std::uint64_t{span.buckets[b]});
    }
    w.endObject();
    w.key("esp").beginObject();
    w.key("pre_exec_cycles")
        .value(std::uint64_t{span.espPreExecCycles()});
    w.key("prefetch").beginObject();
    for (unsigned s = 0; s < numPrefetchSources; ++s) {
        const SpanPrefetchDelta &d = span.prefetch[s];
        w.key(prefetchSourceName(static_cast<PrefetchSource>(s)))
            .beginObject();
        w.key("issued").value(std::uint64_t{d.issued});
        w.key("timely").value(std::uint64_t{d.timely});
        w.key("late").value(std::uint64_t{d.late});
        w.key("harmful").value(std::uint64_t{d.harmful});
        w.endObject();
    }
    w.endObject();
    w.endObject();
    w.endObject();
}

} // namespace

std::string
renderLatencyArtifactJson(const ArtifactManifest &manifest,
                          const ServeReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-latency-artifact");
    w.key("format_version").value(std::uint64_t{artifactFormatVersion});

    w.key("manifest").beginObject();
    writeManifestCommon(w, manifest, report);
    w.endObject();

    w.key("results").beginArray();
    for (const ServeCell &cell : report.cells) {
        w.beginObject();
        w.key("config").value(cell.config);
        w.key("cycles").value(std::uint64_t{cell.cycles});
        w.key("ipc").value(cell.ipc);
        w.key("idle_cycles").value(std::uint64_t{cell.idleCycles});
        w.key("events").value(std::uint64_t{cell.events});
        w.key("latency").beginObject();
        writeLatencyClass(w, "queue", cell.queue);
        writeLatencyClass(w, "service", cell.service);
        writeLatencyClass(w, "total", cell.total);
        w.endObject();
        writeHandlerRows(w, cell);
        w.key("histogram").beginObject();
        w.key("scale").value("pow2_cycles");
        w.key("buckets").beginArray();
        for (const std::uint64_t count : cell.histogram)
            w.value(std::uint64_t{count});
        w.endArray();
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
renderSpanArtifactJson(const ArtifactManifest &manifest,
                       const ServeReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("espsim-span-artifact");
    w.key("format_version").value(std::uint64_t{artifactFormatVersion});

    w.key("manifest").beginObject();
    writeManifestCommon(w, manifest, report);
    w.key("flight_recorder")
        .value(std::uint64_t{report.spans.flightRecorder});
    w.key("worst_k").value(std::uint64_t{report.spans.worstK});
    w.key("anomaly_threshold").value(report.spans.anomalyThreshold);
    w.key("anomaly_min_samples")
        .value(std::uint64_t{report.spans.anomalyMinSamples});
    if (report.spans.spikeEvent != noSpikeEvent) {
        w.key("spike_event")
            .value(std::uint64_t{report.spans.spikeEvent});
        w.key("spike_scale")
            .value(std::uint64_t{report.spans.spikeScale});
    }
    w.endObject();

    w.key("results").beginArray();
    for (const ServeCell &cell : report.cells) {
        w.beginObject();
        w.key("config").value(cell.config);
        w.key("cycles").value(std::uint64_t{cell.cycles});
        w.key("events").value(std::uint64_t{cell.events});
        w.key("spans_recorded")
            .value(std::uint64_t{cell.spansRecorded});
        w.key("running_p99").value(cell.runningP99);
        w.key("dump").beginObject();
        w.key("triggered").value(cell.dumpTriggered);
        if (cell.dumpTriggered) {
            w.key("event").value(std::uint64_t{cell.dumpEvent});
            if (!cell.dumpPath.empty())
                w.key("path").value(cell.dumpPath);
        }
        w.endObject();
        w.key("worst").beginArray();
        for (const RequestSpan &span : cell.worstSpans)
            writeSpanRecord(w, span);
        w.endArray();
        w.key("anomalies").beginArray();
        for (const AnomalyRecord &record : cell.anomalies) {
            w.beginObject();
            w.key("running_p99").value(record.runningP99);
            w.key("span");
            writeSpanRecord(w, record.span);
            w.endObject();
        }
        w.endArray();
        w.key("anomaly_overflow")
            .value(std::uint64_t{cell.anomalyOverflow});
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace espsim
