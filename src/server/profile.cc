#include "server/profile.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace espsim
{

namespace
{

/** splitmix64-style stateless mixer (static per-key properties). */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t z =
        a + 0x9e3779b97f4a7c15ULL * (b + 1) + c * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double skew)
{
    if (n == 0)
        panic("ZipfSampler over an empty population");
    cdf_.resize(static_cast<std::size_t>(n));
    double acc = 0.0;
    for (std::uint64_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), skew);
        cdf_[static_cast<std::size_t>(k)] = acc;
    }
    const double total = acc;
    for (double &v : cdf_)
        v /= total;
}

std::uint64_t
ZipfSampler::draw(double u) const
{
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const std::size_t k = it == cdf_.end()
        ? cdf_.size() - 1
        : static_cast<std::size_t>(it - cdf_.begin());
    return static_cast<std::uint64_t>(k);
}

ServerTraceSource::ServerTraceSource(ServerProfile profile)
    : profile_(std::move(profile)),
      generator_(profile_.app),
      zipf_(profile_.numRoutes > 0 ? profile_.numRoutes
                                   : profile_.numKeys,
            profile_.zipfSkew)
{
    if (profile_.numRoutes > 0 &&
        profile_.numRoutes != profile_.app.numHandlerTypes) {
        fatal("server profile '%s': %u routes but %u handler types",
              profile_.name.c_str(), profile_.numRoutes,
              profile_.app.numHandlerTypes);
    }
    if (profile_.numRoutes == 0 && profile_.app.numHandlerTypes < 3)
        fatal("server profile '%s': KV mode needs 3 handler types",
              profile_.name.c_str());
}

RequestInfo
ServerTraceSource::requestFor(std::uint64_t id) const
{
    const ServerProfile &p = profile_;
    Rng rng(mix(p.app.seed, id, 0x5e4e));
    RequestInfo req;

    double len_scale = 1.0;
    if (p.numRoutes > 0) {
        req.kind = RequestKind::Route;
        req.key = zipf_.draw(rng.real());
        // Per-route length class: routes differ in handler weight.
        len_scale = 0.5 +
            static_cast<double>(mix(p.app.seed, req.key, 0x10e) % 256) /
                128.0;
    } else {
        const double u = rng.real();
        if (u < p.getFrac) {
            req.kind = RequestKind::Get;
            len_scale = p.getLenScale;
        } else if (u < p.getFrac + p.setFrac) {
            req.kind = RequestKind::Set;
            len_scale = p.setLenScale;
        } else {
            req.kind = RequestKind::Del;
            len_scale = p.delLenScale;
        }
        req.key = zipf_.draw(rng.real());
    }

    // Exponential length draw around the kind's mean, clamped like
    // the generator's drawLength.
    const double u_len = std::max(rng.real(), 1e-12);
    double len =
        len_scale * p.app.avgEventLen * -std::log(1.0 - u_len);
    len = std::min(len, 8.0 * len_scale * p.app.avgEventLen);
    req.targetLen = std::max<std::size_t>(
        static_cast<std::size_t>(len), p.app.minEventLen);
    return req;
}

Addr
ServerTraceSource::valueBase(std::uint64_t key) const
{
    const Addr stride = Addr{profile_.valueBlocksMax} * blockBytes;
    return layout::kvHeapBase + key * stride;
}

std::size_t
ServerTraceSource::valueBytes(std::uint64_t key) const
{
    const unsigned blocks = 1 +
        static_cast<unsigned>(mix(profile_.app.seed, key, 0x5a1) %
                              profile_.valueBlocksMax);
    return std::size_t{blocks} * blockBytes;
}

EventTrace
ServerTraceSource::makeEvent(std::uint64_t id) const
{
    const RequestInfo req = requestFor(id);
    EventShape shape;
    shape.targetLen = req.targetLen;
    if (profile_.numRoutes > 0) {
        shape.handler = static_cast<std::uint32_t>(req.key);
    } else {
        shape.handler = static_cast<std::uint32_t>(req.kind);
        shape.keyRegion = valueBase(req.key);
        shape.keyBytes = valueBytes(req.key);
        shape.keyFrac = profile_.keyAccessFrac;
    }
    return generator_.generateEvent(id, shape);
}

std::vector<AddrRange>
ServerTraceSource::warmSet() const
{
    std::vector<AddrRange> ranges = generator_.warmSet();
    if (profile_.numRoutes == 0) {
        // The popular head of the key space is resident in a running
        // cache server; the long tail is not.
        const std::uint64_t hot_keys =
            std::max<std::uint64_t>(profile_.numKeys / 16, 1);
        ranges.emplace_back(layout::kvHeapBase, valueBase(hot_keys));
    }
    return ranges;
}

ServerProfile
ServerProfile::memcached()
{
    ServerProfile p;
    p.name = "memcached";
    p.description = "key/value cache: GET/SET/DEL, Zipfian keys";
    p.app.name = "memcached";
    p.app.description = p.description;
    p.app.seed = 0x6ca5;
    p.app.numEvents = 20000;
    p.app.avgEventLen = 400;
    p.app.minEventLen = 80;
    p.app.numHandlerTypes = 3;
    p.app.hotRegionsPerHandler = 8;
    p.app.codeRegionPool = 512;
    p.app.phasePeriod = 400;
    p.app.windowsPerEvent = 6;
    p.app.argFrac = 0.08;
    p.app.sharedHeapFrac = 0.14;
    p.app.dependencyRate = 0.002;
    return p;
}

ServerProfile
ServerProfile::httpRouter()
{
    ServerProfile p;
    p.name = "http";
    p.description = "HTTP router: 24 routes, Zipfian popularity";
    p.app.name = "http";
    p.app.description = p.description;
    p.app.seed = 0x477b;
    p.app.numEvents = 20000;
    p.app.avgEventLen = 900;
    p.app.minEventLen = 150;
    p.app.numHandlerTypes = 24;
    p.app.windowsPerEvent = 10;
    p.app.dependencyRate = 0.004;
    p.numRoutes = 24;
    p.zipfSkew = 0.9;
    return p;
}

ServerProfile
ServerProfile::testProfile()
{
    ServerProfile p;
    p.name = "testsrv";
    p.description = "tiny KV profile for unit tests";
    p.app.name = "testsrv";
    p.app.description = p.description;
    p.app.seed = 42;
    p.app.numEvents = 400;
    p.app.avgEventLen = 220;
    p.app.minEventLen = 60;
    p.app.numHandlerTypes = 3;
    p.app.hotRegionsPerHandler = 6;
    p.app.codeRegionPool = 128;
    p.app.sharedHeapBlocks = 2048;
    p.app.windowsPerEvent = 4;
    p.numKeys = 512;
    return p;
}

std::vector<ServerProfile>
ServerProfile::all()
{
    return {memcached(), httpRouter()};
}

ServerProfile
ServerProfile::byName(const std::string &name)
{
    for (ServerProfile &p : all()) {
        if (p.name == name)
            return p;
    }
    if (name == "testsrv")
        return testProfile();
    fatal("unknown server profile '%s' (try: memcached, http, "
          "testsrv)",
          name.c_str());
}

} // namespace espsim
