/**
 * @file
 * End-to-end request-latency accounting for paced (server) runs.
 *
 * ServePacer sits between the core's event loop and an ArrivalProcess:
 * it asks the process when each event arrives, lets the core idle or
 * queue accordingly, and splits every request's lifetime into
 *   queue   = dispatch - arrival   (waiting behind the loop)
 *   service = retire  - dispatch   (running on the core)
 *   total   = retire  - arrival
 * Each class feeds a reservoir-backed SampleStat (bounded memory at
 * millions of events, deterministic given the run seed) plus a
 * power-of-two total-latency histogram for the artifact.
 */

#ifndef ESPSIM_SERVER_LATENCY_HH
#define ESPSIM_SERVER_LATENCY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.hh"
#include "cpu/pacer.hh"
#include "server/arrival.hh"

namespace espsim
{

/** Scalar summary of one latency class (cycles). */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** Extract count/mean/max and the tail quantiles from @p s. */
LatencySummary summarizeLatency(const SampleStat &s);

/** Power-of-two histogram buckets: bucket i holds [2^i, 2^(i+1)). */
constexpr std::size_t latencyHistBuckets = 40;

/** Queue/service latency of one event-handler type. */
struct HandlerLatency
{
    std::uint64_t events = 0;
    SampleStat queue;
    SampleStat service;
};

/** EventPacer that drives an ArrivalProcess and records latency. */
class ServePacer final : public EventPacer
{
  public:
    /**
     * @p reservoirCapacity bounds each latency class's sample memory
     * (0 = keep every sample); @p seed drives reservoir replacement.
     * @p numHandlers preallocates per-handler breakdown slots (0 =
     * aggregate classes only); slots are fixed up front so the
     * per-event recording path never allocates.
     */
    ServePacer(std::unique_ptr<ArrivalProcess> arrival,
               std::size_t reservoirCapacity, std::uint64_t seed,
               std::size_t numHandlers = 0);

    Cycle eventArrival(std::size_t idx, Cycle now) override;
    void eventDispatched(std::size_t idx, Cycle now) override;
    void eventRetired(std::size_t idx, Cycle now) override;
    void eventHandlerType(std::size_t idx,
                          std::uint32_t handler_type) override;

    /** Register `<prefix>handler.<id>.{events,queue,service}.*`. */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const override;

    const ArrivalProcess &arrival() const { return *arrival_; }

    /** Per-handler breakdowns, indexed by handler type. */
    const std::vector<HandlerLatency> &handlers() const
    {
        return handlers_;
    }

    const SampleStat &queueLatency() const { return queue_; }
    const SampleStat &serviceLatency() const { return service_; }
    const SampleStat &totalLatency() const { return total_; }
    const std::array<std::uint64_t, latencyHistBuckets> &
    histogram() const
    {
        return hist_;
    }
    std::uint64_t events() const { return events_; }

  private:
    std::unique_ptr<ArrivalProcess> arrival_;
    Cycle curArrival_ = 0;
    Cycle curDispatch_ = 0;
    std::uint32_t curHandler_ = 0;
    SampleStat queue_;
    SampleStat service_;
    SampleStat total_;
    std::vector<HandlerLatency> handlers_;
    std::array<std::uint64_t, latencyHistBuckets> hist_{};
    std::uint64_t events_ = 0;
};

} // namespace espsim

#endif // ESPSIM_SERVER_LATENCY_HH
