#include "server/arrival.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace espsim
{

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::ClosedLoop: return "closed";
    }
    panic("arrivalKindName: bad kind %u", static_cast<unsigned>(kind));
}

bool
parseArrivalKind(const std::string &token, ArrivalKind &out)
{
    if (token == "poisson") {
        out = ArrivalKind::Poisson;
    } else if (token == "bursty") {
        out = ArrivalKind::Bursty;
    } else if (token == "closed") {
        out = ArrivalKind::ClosedLoop;
    } else {
        return false;
    }
    return true;
}

namespace
{

/** Unit-mean exponential draw (inverse CDF; u < 1 by Rng contract). */
double
expDraw(Rng &rng)
{
    return -std::log(1.0 - rng.real());
}

class PoissonProcess final : public ArrivalProcess
{
  public:
    PoissonProcess(double meanGap, std::uint64_t seed)
        : rng_(seed), meanGap_(std::max(meanGap, 1.0))
    {
    }

    const char *kindName() const override { return "poisson"; }

    Cycle
    arrivalCycle(std::uint64_t idx) override
    {
        (void)idx;
        time_ += meanGap_ * expDraw(rng_);
        return static_cast<Cycle>(time_);
    }

  private:
    Rng rng_;
    double meanGap_;
    double time_ = 0.0;
};

/**
 * Two-state MMPP. Each event carries a unit-exponential "work" budget;
 * it is spent against the current state's rate until exhausted,
 * crossing state boundaries (with their own exponential dwell draws)
 * as needed — the standard thinning-free MMPP sampler.
 */
class BurstyProcess final : public ArrivalProcess
{
  public:
    BurstyProcess(const ArrivalConfig &c)
        : rng_(c.seed),
          burstGap_(std::max(c.meanGapCycles * c.burstGapFactor, 1.0)),
          calmGap_(std::max(c.meanGapCycles * c.calmGapFactor, 1.0)),
          meanBurst_(std::max(c.meanBurstCycles, 1.0)),
          meanCalm_(std::max(c.meanCalmCycles, 1.0))
    {
        stateEnd_ = meanCalm_ * expDraw(rng_); // start calm
    }

    const char *kindName() const override { return "bursty"; }

    Cycle
    arrivalCycle(std::uint64_t idx) override
    {
        (void)idx;
        double work = expDraw(rng_);
        while (true) {
            const double gap = inBurst_ ? burstGap_ : calmGap_;
            const double span = stateEnd_ - time_;
            if (work * gap <= span) {
                time_ += work * gap;
                break;
            }
            work -= span / gap;
            time_ = stateEnd_;
            inBurst_ = !inBurst_;
            stateEnd_ = time_ +
                (inBurst_ ? meanBurst_ : meanCalm_) * expDraw(rng_);
        }
        return static_cast<Cycle>(time_);
    }

  private:
    Rng rng_;
    double burstGap_;
    double calmGap_;
    double meanBurst_;
    double meanCalm_;
    double time_ = 0.0;
    double stateEnd_ = 0.0;
    bool inBurst_ = false;
};

class ClosedLoopProcess final : public ArrivalProcess
{
  public:
    ClosedLoopProcess(const ArrivalConfig &c)
        : think_(c.thinkCycles)
    {
        Rng rng(c.seed);
        const unsigned clients = std::max(c.concurrency, 1u);
        ready_.reserve(clients);
        // Stagger session starts so the first C requests don't all
        // land on cycle 0 (deterministic given the seed).
        for (unsigned i = 0; i < clients; ++i)
            ready_.push_back(rng.below(think_ + 1));
        std::make_heap(ready_.begin(), ready_.end(),
                       std::greater<Cycle>());
    }

    const char *kindName() const override { return "closed"; }

    Cycle
    arrivalCycle(std::uint64_t idx) override
    {
        (void)idx;
        if (ready_.empty())
            panic("closed-loop arrival with no ready client (more "
                  "arrivals than retirements + concurrency)");
        std::pop_heap(ready_.begin(), ready_.end(),
                      std::greater<Cycle>());
        const Cycle t = ready_.back();
        ready_.pop_back();
        return t;
    }

    void
    onEventRetired(std::uint64_t idx, Cycle retireCycle) override
    {
        (void)idx;
        ready_.push_back(retireCycle + think_);
        std::push_heap(ready_.begin(), ready_.end(),
                       std::greater<Cycle>());
    }

  private:
    Cycle think_;
    std::vector<Cycle> ready_; //!< min-heap of client ready times
};

} // namespace

std::unique_ptr<ArrivalProcess>
makeArrivalProcess(const ArrivalConfig &config)
{
    switch (config.kind) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonProcess>(config.meanGapCycles,
                                                config.seed);
      case ArrivalKind::Bursty:
        return std::make_unique<BurstyProcess>(config);
      case ArrivalKind::ClosedLoop:
        return std::make_unique<ClosedLoopProcess>(config);
    }
    panic("makeArrivalProcess: bad kind %u",
          static_cast<unsigned>(config.kind));
}

} // namespace espsim
