/**
 * @file
 * Request-serving workload profiles (the server-side counterpart of
 * the browser suite in workload/app_profile.hh).
 *
 * Two families, both built on the synthetic generator via EventShape:
 *  - memcached: a GET/SET/DEL key/value mix. Each request picks a key
 *    by Zipfian popularity; a slice of its memory accesses lands on
 *    that key's value object in the dedicated KV heap, so the data
 *    working set is the hot head of the key space plus a long tail of
 *    cold keys — the classic cache-server profile. The three op kinds
 *    run three distinct handlers with distinct length classes (DELs
 *    short, SETs long).
 *  - http: an HTTP-router profile. Each request resolves a route by
 *    Zipfian popularity and runs that route's handler — many distinct
 *    handlers with skewed popularity, which is exactly the
 *    instruction-locality-destroying pattern ESP targets, now at
 *    server request granularity.
 *
 * Everything is deterministic from (profile seed, request id): the
 * request stream regenerates bit-identically event by event, so these
 * profiles stream through StreamingWorkload at flat memory.
 */

#ifndef ESPSIM_SERVER_PROFILE_HH
#define ESPSIM_SERVER_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/app_profile.hh"
#include "workload/streaming.hh"

namespace espsim
{

/** What one request does (artifact/debug surface). */
enum class RequestKind : std::uint8_t
{
    Get = 0,
    Set = 1,
    Del = 2,
    Route = 3,
};

/** A decoded request: kind, key (or route), length class. */
struct RequestInfo
{
    RequestKind kind = RequestKind::Get;
    std::uint64_t key = 0; //!< KV key index, or route index
    std::size_t targetLen = 0;
};

/** One request-serving application. */
struct ServerProfile
{
    std::string name;
    std::string description;

    /** Code image / instruction mix / seed; numHandlerTypes is the
     *  op-kind count (KV) or route count (HTTP). */
    AppProfile app;

    // --- Key/value mix (ignored when numRoutes > 0).
    double getFrac = 0.90;
    double setFrac = 0.08;
    double delFrac = 0.02;
    std::uint64_t numKeys = 16384;
    /** Value sizes are 1..valueBlocksMax cache blocks, per-key fixed. */
    unsigned valueBlocksMax = 4;
    /** Fraction of memory ops redirected onto the request's value. */
    double keyAccessFrac = 0.35;
    /** Per-kind event-length multipliers over app.avgEventLen. */
    double getLenScale = 0.7;
    double setLenScale = 1.4;
    double delLenScale = 0.35;

    // --- Router mode: > 0 routes turns key popularity into route
    // --- popularity and disables the KV overlay.
    unsigned numRoutes = 0;

    /** Zipf exponent of key/route popularity. */
    double zipfSkew = 0.99;

    static ServerProfile memcached();
    static ServerProfile httpRouter();
    /** Tiny profile for fast unit tests / smoke ctests. */
    static ServerProfile testProfile();

    /** The named profile family surfaced by `espsim serve`. */
    static std::vector<ServerProfile> all();
    /** Look up a profile by name (fatal if unknown). */
    static ServerProfile byName(const std::string &name);
};

/**
 * Zipfian sampler over [0, n): P(k) ∝ 1 / (k+1)^skew, drawn by
 * binary-searching a precomputed harmonic CDF. Deterministic given
 * the uniform input.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double skew);

    /** Map a uniform u in [0, 1) to a rank in [0, n). */
    std::uint64_t draw(double u) const;

    std::uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/** EventSource producing a ServerProfile's request stream. */
class ServerTraceSource final : public EventSource
{
  public:
    explicit ServerTraceSource(ServerProfile profile);

    const std::string &name() const override { return profile_.name; }
    std::size_t numEvents() const override
    {
        return profile_.app.numEvents;
    }
    EventTrace makeEvent(std::uint64_t id) const override;
    std::vector<AddrRange> warmSet() const override;

    /** Decode request @p id without generating its trace. */
    RequestInfo requestFor(std::uint64_t id) const;

    const ServerProfile &profile() const { return profile_; }

  private:
    ServerProfile profile_;
    SyntheticGenerator generator_;
    ZipfSampler zipf_;

    Addr valueBase(std::uint64_t key) const;
    std::size_t valueBytes(std::uint64_t key) const;
};

} // namespace espsim

#endif // ESPSIM_SERVER_PROFILE_HH
