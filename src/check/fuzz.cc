#include "check/fuzz.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "branch/pentium_m.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "esp/controller.hh"
#include "report/artifact.hh"
#include "report/interval.hh"
#include "report/json_reader.hh"
#include "sim/simulator.hh"
#include "sim/stats_report.hh"
#include "workload/generator.hh"

namespace espsim
{

namespace
{

using ULL = unsigned long long;

/** The architectural counts a speculation engine must not change. */
constexpr const char *archStats[] = {
    "core.instructions", "core.events", "core.branches",
    "core.loads",        "core.stores",
};

std::string
describeCase(const FuzzCase &c)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "config=%s events=%zu avgLen=%.0f minLen=%zu "
                  "handlers=%u depRate=%.3f profileSeed=%llu",
                  c.config.name.c_str(), c.profile.numEvents,
                  c.profile.avgEventLen, c.profile.minEventLen,
                  c.profile.numHandlerTypes, c.profile.dependencyRate,
                  static_cast<ULL>(c.profile.seed));
    return buf;
}

/** Oracle: every cycle is attributed to exactly one bucket. */
std::string
bucketMismatch(const SimResult &r)
{
    const std::string prefix = "core.cycle_bucket.";
    double sum = 0.0;
    bool any = false;
    for (const auto &[name, value] : r.stats.values()) {
        if (name.compare(0, prefix.size(), prefix) == 0) {
            sum += value;
            any = true;
        }
    }
    const double cycles = r.stats.get("core.cycles");
    if (!any)
        return "no core.cycle_bucket.* stats registered";
    // Bucket counters are integral cycle counts; the sum is exact in
    // a double up to 2^53 cycles, far beyond any fuzz workload.
    if (sum != cycles) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "bucket sum %.0f != core.cycles %.0f (%s)", sum,
                      cycles, r.configName.c_str());
        return buf;
    }
    return {};
}

/**
 * Oracle: drive an EspController's pre-execution directly and verify
 * speculative stores stayed inside the cachelets — the architectural
 * L1-D/L2 must hold zero dirty lines (prefetch fills are clean and no
 * demand write ever ran). Skipped for the naive strawman, whose whole
 * point is that pre-execution writes the real hierarchy.
 */
std::string
cacheletLeak(const FuzzCase &c, const Workload &workload)
{
    if (c.config.engine == SpeculationEngine::Esp &&
        c.config.esp.naiveMode) {
        return {};
    }
    EspConfig ecfg = c.config.engine == SpeculationEngine::Esp
        ? c.config.esp
        : EspConfig{};
    ecfg.naiveMode = false;
    MemoryHierarchy mem{c.config.memory};
    PentiumMPredictor bp;
    EspController esp(ecfg, mem, bp, workload, c.config.core.width);

    StallContext stallCtx;
    stallCtx.kind = StallKind::DataLlcMiss;
    stallCtx.idleCycles = 50'000;

    Cycle now = 0;
    const std::size_t events =
        std::min<std::size_t>(workload.numEvents(), 6);
    for (std::size_t ev = 0; ev < events; ++ev) {
        esp.onEventStart(ev, now);
        for (int k = 0; k < 6; ++k)
            esp.onStall(stallCtx);
        now += 10'000;
        esp.onEventEnd(ev, now);
    }
    const std::size_t l1dDirty = mem.l1d().dirtyPopulation();
    const std::size_t l2Dirty = mem.l2().dirtyPopulation();
    if (l1dDirty != 0 || l2Dirty != 0) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "speculative stores leaked: %zu dirty L1-D, "
                      "%zu dirty L2 lines",
                      l1dDirty, l2Dirty);
        return buf;
    }
    return {};
}

/** Exact comparison of two sweeps' stat snapshots. */
std::string
sweepMismatch(const std::vector<SuiteRow> &a,
              const std::vector<SuiteRow> &b,
              const std::vector<SimConfig> &configs)
{
    for (std::size_t r = 0; r < a.size(); ++r) {
        for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
            const auto &sa = a[r].results[cfg].stats.values();
            const auto &sb = b[r].results[cfg].stats.values();
            if (sa.size() != sb.size())
                return "stat snapshots differ in size for config " +
                    configs[cfg].name;
            auto ia = sa.begin();
            auto ib = sb.begin();
            for (; ia != sa.end(); ++ia, ++ib) {
                if (ia->first != ib->first ||
                    ia->second != ib->second) {
                    char buf[160];
                    std::snprintf(
                        buf, sizeof(buf),
                        "%s / %s: jobs=1 %.17g vs jobs=4 %.17g",
                        configs[cfg].name.c_str(), ia->first.c_str(),
                        ia->second, ib->second);
                    return buf;
                }
            }
        }
    }
    return {};
}

/**
 * Oracle: the suite JSON artifact re-parses, carries the expected
 * shape, and every stat value round-trips exactly (the writer uses
 * shortest-round-trip formatting).
 */
std::string
roundtripMismatch(const std::vector<SimConfig> &configs,
                  const std::vector<SuiteRow> &rows)
{
    ArtifactManifest manifest;
    manifest.source = "espsim-fuzz";
    const std::string json =
        renderSuiteArtifactJson(manifest, configs, rows);
    std::string err;
    const std::unique_ptr<JsonValue> doc = parseJson(json, &err);
    if (!doc)
        return "artifact does not re-parse: " + err;
    const JsonValue *schema = doc->find("schema");
    if (!schema || schema->string != "espsim-suite-artifact")
        return "artifact schema tag missing or wrong";
    const JsonValue *results = doc->find("results");
    if (!results || !results->isArray())
        return "artifact results block missing";
    if (results->array.size() != rows.size() * configs.size()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "artifact has %zu results, expected %zu",
                      results->array.size(),
                      rows.size() * configs.size());
        return buf;
    }
    std::size_t i = 0;
    for (const SuiteRow &row : rows) {
        for (std::size_t cfg = 0; cfg < configs.size(); ++cfg, ++i) {
            const JsonValue &point = results->array[i];
            const JsonValue *stats = point.find("stats");
            if (!stats || !stats->isObject())
                return "result point lost its stats object";
            for (const auto &[name, value] :
                 row.results[cfg].stats.values()) {
                const JsonValue *parsed = stats->find(name);
                if (!parsed || !parsed->isNumber() ||
                    parsed->number != value) {
                    return "stat '" + name +
                        "' did not round-trip through JSON";
                }
            }
        }
    }
    return {};
}

/**
 * Oracle: the streaming workload core is a perfect stand-in for a
 * fully-materialised trace. Replaying the same profile through
 * SuiteRunner's streaming path (bounded sliding window, worker
 * threads pinning events concurrently) must yield a byte-identical
 * suite artifact — not just equal stats, the exact same serialised
 * bytes.
 */
std::string
streamingMismatch(const FuzzCase &c,
                  const std::vector<SimConfig> &configs,
                  const std::vector<SuiteRow> &materialized)
{
    SuiteRunner runner({c.profile});
    runner.setJobs(2);
    runner.setStreaming(true);
    const std::vector<SuiteRow> srows = runner.run(configs);
    if (suiteHasErrors(srows)) {
        for (const SuiteRow &row : srows) {
            for (std::size_t cfg = 0; cfg < configs.size(); ++cfg) {
                if (!row.ok(cfg))
                    return "streaming cell failed (" +
                        configs[cfg].name + "): " +
                        row.errors[cfg].message;
            }
        }
    }
    ArtifactManifest manifest;
    manifest.source = "espsim-fuzz";
    const std::string a =
        renderSuiteArtifactJson(manifest, configs, materialized);
    const std::string b =
        renderSuiteArtifactJson(manifest, configs, srows);
    if (a != b)
        return "streamed artifact bytes differ from materialised "
               "trace (same profile seed " +
            std::to_string(c.profile.seed) + ")";
    return {};
}

/**
 * Oracle: interval sampling telescopes. For every counter and any
 * sample period, baseline + Σ interval deltas must equal the final
 * snapshot *exactly* (counters are uint64-backed, exact in a double
 * below 2^53; see src/report/interval.hh), interval end cycles must
 * be monotone, and the trailing interval must land on the final
 * cycle.
 */
std::string
intervalClosureMismatch(const FuzzCase &c, const Workload &workload)
{
    // Periods from a case-derived stream: short cycle periods and
    // tiny event periods stress the grid-advance logic hardest.
    Rng rng(c.caseSeed ^ 0x1257a15a3713ULL);
    RunInstrumentation inst;
    if (rng.chance(0.5))
        inst.interval.sampleCycles = 500 + rng.below(30'000);
    if (inst.interval.sampleCycles == 0 || rng.chance(0.5))
        inst.interval.sampleEvents = 1 + rng.below(8);
    IntervalSeries series;
    inst.intervalSeries = &series;
    (void)Simulator(c.config).run(workload, inst);

    if (series.names.size() != series.baseline.size() ||
        series.names.size() != series.finalValues.size())
        return "series name/value widths disagree";
    std::vector<double> acc = series.baseline;
    Cycle prev_cycle = series.baselineCycle;
    std::uint64_t prev_events = series.baselineEvents;
    for (const IntervalPoint &point : series.intervals) {
        if (point.endCycle < prev_cycle)
            return "interval end cycles are not monotone";
        if (point.endEvents < prev_events)
            return "interval end events are not monotone";
        prev_cycle = point.endCycle;
        prev_events = point.endEvents;
        if (point.deltas.size() != acc.size())
            return "interval delta width != names width";
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += point.deltas[i];
    }
    for (std::size_t i = 0; i < acc.size(); ++i) {
        if (acc[i] != series.finalValues[i]) {
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "%s: baseline+deltas %.17g != final %.17g "
                          "(period %llu cycles / %llu events)",
                          series.names[i].c_str(), acc[i],
                          series.finalValues[i],
                          static_cast<ULL>(
                              inst.interval.sampleCycles),
                          static_cast<ULL>(
                              inst.interval.sampleEvents));
            return buf;
        }
    }
    if (!series.intervals.empty() &&
        series.intervals.back().endCycle != series.finalCycle)
        return "trailing interval does not land on the final cycle";
    return {};
}

} // namespace

FuzzCase
makeFuzzCase(std::uint64_t case_seed)
{
    Rng rng(case_seed);
    FuzzCase c;
    c.caseSeed = case_seed;

    AppProfile p = AppProfile::testProfile();
    p.name = "fuzz";
    p.description = "randomised fuzz profile";
    p.seed = rng.next();
    p.numEvents = 4 + rng.below(13);       // 4..16 events
    p.avgEventLen = 200.0 +
        static_cast<double>(rng.below(801)); // 200..1000 instructions
    p.minEventLen = 60 + rng.below(61);
    p.numHandlerTypes = 2 + static_cast<unsigned>(rng.below(7));
    p.windowsPerEvent = 4 + static_cast<unsigned>(rng.below(9));
    p.dependencyRate = 0.10 * rng.real();
    p.loadFrac = 0.15 + 0.15 * rng.real();
    p.storeFrac = 0.05 + 0.10 * rng.real();
    p.sharedCodeFraction = 0.10 + 0.30 * rng.real();
    p.coldCodeFraction = 0.02 + 0.15 * rng.real();
    p.biasedBranchFrac = 0.50 + 0.40 * rng.real();
    p.branchBias = 0.80 + 0.19 * rng.real();
    p.argFrac = 0.05 + 0.10 * rng.real();
    p.sharedHeapFrac = 0.10 + 0.20 * rng.real();
    p.allocFrac = 0.05 + 0.10 * rng.real();
    p.coldDataFrac = 0.01 * rng.real();
    p.dataRepeatFrac = 0.30 + 0.40 * rng.real();
    c.profile = p;

    // A speculative design point from the paper's evaluated family.
    switch (rng.below(7)) {
      case 0:
        c.config = SimConfig::espFull(true);
        break;
      case 1:
        c.config = SimConfig::espFull(false);
        break;
      case 2:
        c.config = SimConfig::espNaive(true);
        break;
      case 3: {
          bool use_i = rng.chance(0.5);
          bool use_b = rng.chance(0.5);
          bool use_d = rng.chance(0.5);
          if (!use_i && !use_b && !use_d)
              use_i = true;
          c.config = SimConfig::espAblation(use_i, use_b, use_d);
          break;
      }
      case 4:
        c.config = SimConfig::espInstrOnly(rng.chance(0.5), false);
        break;
      case 5:
        c.config = SimConfig::espDataOnly(rng.chance(0.5), false);
        break;
      default:
        c.config = SimConfig::runaheadExec(rng.chance(0.5));
        break;
    }
    if (c.config.engine == SpeculationEngine::Esp) {
        c.config.esp.prefetchLeadInstructions = 32 + rng.below(400);
        c.config.esp.branchTrainLookahead = 8 + rng.below(96);
        c.config.esp.maxPreExecPerEvent = 1000 + rng.below(12'000);
        c.config.esp.contextSwitchCycles = rng.below(10);
    }
    return c;
}

FuzzFailure
checkFuzzCase(const FuzzCase &c)
{
    SyntheticGenerator gen(c.profile);
    const std::unique_ptr<InMemoryWorkload> workload = gen.generate();

    // Oracle: cachelet containment, on the raw controller.
    if (std::string m = cacheletLeak(c, *workload); !m.empty())
        return {"cachelet-containment", std::move(m)};

    // One sweep of {ESP-off, ESP-on} at jobs=1 and jobs=4 feeds the
    // remaining oracles.
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         c.config};
    SuiteRunner runner({c.profile});
    runner.setJobs(1);
    const std::vector<SuiteRow> rows1 = runner.run(configs);
    runner.setJobs(4);
    const std::vector<SuiteRow> rows4 = runner.run(configs);
    if (suiteHasErrors(rows1) || suiteHasErrors(rows4)) {
        for (const std::vector<SuiteRow> *rows : {&rows1, &rows4}) {
            for (const SuiteRow &row : *rows) {
                for (std::size_t cfg = 0; cfg < configs.size();
                     ++cfg) {
                    if (!row.ok(cfg)) {
                        return {"sweep-error",
                                configs[cfg].name + ": " +
                                    row.errors[cfg].message};
                    }
                }
            }
        }
    }

    // Oracle: bit-identical results at any job count.
    if (std::string m = sweepMismatch(rows1, rows4, configs);
        !m.empty()) {
        return {"jobs-determinism", std::move(m)};
    }

    // Oracle: cycle accounting closes for both design points.
    for (const SimResult &r : rows1[0].results) {
        if (std::string m = bucketMismatch(r); !m.empty())
            return {"cycle-bucket-sum", std::move(m)};
    }

    // Oracle: speculation must not change architectural results.
    const SimResult &off = rows1[0].results[0];
    const SimResult &on = rows1[0].results[1];
    for (const char *stat : archStats) {
        if (off.stats.get(stat) != on.stats.get(stat)) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "%s: %s %.0f vs %s %.0f", stat,
                          configs[0].name.c_str(),
                          off.stats.get(stat),
                          configs[1].name.c_str(), on.stats.get(stat));
            return {"arch-equality", buf};
        }
    }

    // Oracle: the artifact is a faithful serialisation.
    if (std::string m = roundtripMismatch(configs, rows1); !m.empty())
        return {"artifact-roundtrip", std::move(m)};

    // Oracle: streamed window replay == fully-materialised trace.
    if (std::string m = streamingMismatch(c, configs, rows1);
        !m.empty()) {
        return {"streaming-equivalence", std::move(m)};
    }

    // Oracle: interval deltas telescope at any sample period.
    if (std::string m = intervalClosureMismatch(c, *workload);
        !m.empty()) {
        return {"interval-delta-closure", std::move(m)};
    }

    return {};
}

FuzzCase
shrinkFuzzCase(const FuzzCase &c, const std::string &oracle)
{
    FuzzCase best = c;
    bool progress = true;
    int attempts = 0;
    // Greedy halving over the scale knobs: accept any mutation that
    // keeps the same oracle failing, until a fixpoint (or a budget —
    // each attempt re-runs the whole case).
    while (progress && attempts < 32) {
        progress = false;
        for (int knob = 0; knob < 4; ++knob) {
            FuzzCase cand = best;
            AppProfile &p = cand.profile;
            switch (knob) {
              case 0:
                if (p.numEvents < 4)
                    continue;
                p.numEvents /= 2;
                break;
              case 1:
                if (p.avgEventLen < 200.0)
                    continue;
                p.avgEventLen /= 2;
                p.minEventLen = std::min<std::size_t>(
                    p.minEventLen,
                    static_cast<std::size_t>(p.avgEventLen / 2));
                break;
              case 2:
                if (p.numHandlerTypes < 2)
                    continue;
                p.numHandlerTypes /= 2;
                break;
              default:
                if (p.dependencyRate == 0.0)
                    continue;
                p.dependencyRate = 0.0;
                break;
            }
            ++attempts;
            if (checkFuzzCase(cand).oracle == oracle) {
                best = cand;
                progress = true;
            }
        }
    }
    return best;
}

int
runFuzz(const FuzzOptions &opts)
{
    for (std::size_t i = 0; i < opts.runs; ++i) {
        const std::uint64_t caseSeed = opts.seed + i;
        const FuzzCase c = makeFuzzCase(caseSeed);
        if (opts.verbose) {
            std::fprintf(stderr, "# fuzz case %zu/%zu seed=%llu %s\n",
                         i + 1, opts.runs,
                         static_cast<ULL>(caseSeed),
                         describeCase(c).c_str());
        }
        const FuzzFailure f = checkFuzzCase(c);
        if (!f.failed())
            continue;
        std::fprintf(stderr,
                     "fuzz: case %zu (seed %llu) FAILED oracle "
                     "'%s'\nfuzz: %s\n",
                     i + 1, static_cast<ULL>(caseSeed),
                     f.oracle.c_str(), f.message.c_str());
        const FuzzCase small = shrinkFuzzCase(c, f.oracle);
        std::fprintf(stderr, "fuzz: minimal failing point: %s\n",
                     describeCase(small).c_str());
        std::fprintf(stderr,
                     "fuzz: repro: espsim fuzz --runs 1 --seed %llu\n",
                     static_cast<ULL>(caseSeed));
        return 1;
    }
    std::printf("fuzz: %zu case%s passed, seeds %llu..%llu\n",
                opts.runs, opts.runs == 1 ? "" : "s",
                static_cast<ULL>(opts.seed),
                static_cast<ULL>(opts.seed + opts.runs - 1));
    return 0;
}

} // namespace espsim
