/**
 * @file
 * Property-based fuzz harness (`espsim fuzz`).
 *
 * Draws random valid (AppProfile, SimConfig) points from a seed and
 * checks machine-independent invariants ("oracles") that must hold
 * for every design point:
 *
 *   - cycle-bucket-sum:      Σ core.cycle_bucket.* == core.cycles
 *   - arch-equality:         ESP-off and ESP-on agree on every
 *                            architectural count (instructions,
 *                            events, branches, loads, stores)
 *   - cachelet-containment:  speculative stores never dirty the
 *                            architectural L1/L2 (paper §3.4)
 *   - jobs-determinism:      a --jobs 1 sweep and a --jobs 4 sweep
 *                            produce bit-identical stat snapshots
 *   - artifact-roundtrip:    the suite JSON artifact re-parses and
 *                            reproduces every stat value exactly
 *   - interval-delta-closure: at any sample period, the interval
 *                            sampler's deltas telescope — baseline +
 *                            Σ deltas == final counter snapshot
 *
 * On a violation the harness shrinks the profile to a minimal
 * still-failing point and prints a one-line repro command; see
 * docs/ROBUSTNESS.md for the full oracle list and contract.
 */

#ifndef ESPSIM_CHECK_FUZZ_HH
#define ESPSIM_CHECK_FUZZ_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/sim_config.hh"
#include "workload/app_profile.hh"

namespace espsim
{

/** Options of one `espsim fuzz` invocation. */
struct FuzzOptions
{
    std::size_t runs = 25;  //!< number of random cases to check
    std::uint64_t seed = 1; //!< seed of the first case
    bool verbose = false;   //!< narrate every case to stderr
};

/** One random design point under test. */
struct FuzzCase
{
    std::uint64_t caseSeed = 0; //!< reproduces this exact case
    AppProfile profile;         //!< randomised workload profile
    SimConfig config;           //!< randomised speculative config
};

/**
 * Deterministically generate the case for @p case_seed: a perturbed
 * small AppProfile plus a speculation config drawn from the paper's
 * design points with randomised ESP knobs. Same seed, same case.
 */
FuzzCase makeFuzzCase(std::uint64_t case_seed);

/** Verdict of checkFuzzCase: which oracle failed (empty = passed). */
struct FuzzFailure
{
    std::string oracle;  //!< oracle name, empty when the case passed
    std::string message; //!< human-readable mismatch description

    bool failed() const { return !oracle.empty(); }
};

/** Run every oracle against @p c; the first violation wins. */
FuzzFailure checkFuzzCase(const FuzzCase &c);

/**
 * Greedily shrink @p c (halving event count/length, dropping
 * dependences, ...) while the named oracle keeps failing; returns the
 * smallest still-failing case found.
 */
FuzzCase shrinkFuzzCase(const FuzzCase &c, const std::string &oracle);

/**
 * The `espsim fuzz` entry point: check opts.runs cases starting at
 * opts.seed. @return 0 when every case passes; 1 on the first oracle
 * violation, after printing the shrunken point and a repro command.
 */
int runFuzz(const FuzzOptions &opts);

} // namespace espsim

#endif // ESPSIM_CHECK_FUZZ_HH
