/**
 * @file
 * Set-associative, LRU-replacement cache tag array.
 *
 * Tracks presence only (the simulator is trace driven, so no data
 * values are stored). Used for L1-I, L1-D, L2, and as the substrate of
 * the ESP cachelets.
 */

#ifndef ESPSIM_CACHE_CACHE_HH
#define ESPSIM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/** Geometry and latency of one cache level. */
struct CacheGeometry
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    Cycle hitLatency = 2;

    std::size_t numBlocks() const { return sizeBytes / blockBytes; }
    std::size_t numSets() const { return numBlocks() / assoc; }
};

/** LRU set-associative tag array. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(CacheGeometry geometry);

    const CacheGeometry &geometry() const { return geometry_; }

    /**
     * Demand lookup of the block containing @p addr; updates LRU on
     * hit.
     * @return true on hit.
     */
    bool lookup(Addr addr);

    /** Presence check without touching replacement state. */
    bool contains(Addr addr) const;

    /**
     * Fill the block containing @p addr (refreshes LRU if already
     * present). Evicts the set's LRU way if the set is full.
     */
    void insert(Addr addr, bool dirty = false);

    /**
     * insert() that reports the displaced block: the block-aligned
     * address of the valid line evicted to make room, or nullopt when
     * a free way existed / the block was already present. The prefetch
     * lifecycle tracker keys pollution ("harmful") on this.
     */
    std::optional<Addr> insertEvicting(Addr addr, bool dirty = false);

    /** Mark the block dirty if present. */
    void writeHit(Addr addr);

    /** Drop every block. */
    void invalidateAll();

    /** Number of valid blocks currently cached. */
    std::size_t population() const;

    /**
     * Number of valid *dirty* blocks. Speculative (cachelet) stores
     * must never dirty the architectural L1/L2 (paper §3.4); the fuzz
     * harness asserts this via before/after snapshots.
     */
    std::size_t dirtyPopulation() const;

    // Demand-access statistics (prefetch fills are not counted here).
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return accesses_ - hits_; }
    void clearStats() { accesses_ = hits_ = 0; }

  protected:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    CacheGeometry geometry_;
    std::size_t numSets_;
    std::vector<Line> lines_; //!< numSets_ * assoc, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const { return blockNumber(addr); }
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /**
     * Fill restricted to ways [way_lo, way_hi]; used by Cachelet's way
     * reservation. @return the displaced block (see insertEvicting).
     */
    std::optional<Addr> insertInWays(Addr addr, unsigned way_lo,
                                     unsigned way_hi, bool dirty);
    bool lookupInWays(Addr addr, unsigned way_lo, unsigned way_hi);
};

} // namespace espsim

#endif // ESPSIM_CACHE_CACHE_HH
