/**
 * @file
 * Set-associative, LRU-replacement cache tag array.
 *
 * Tracks presence only (the simulator is trace driven, so no data
 * values are stored). Used for L1-I, L1-D, L2, and as the substrate of
 * the ESP cachelets.
 *
 * The lookup/fill methods live in the header: they are the innermost
 * loop of every simulated memory access, and inlining them into the
 * core's issue loop removes a call per access and lets the set index
 * fold into a mask (set counts are powers of two for every real
 * geometry; a modulo fallback covers odd test geometries).
 */

#ifndef ESPSIM_CACHE_CACHE_HH
#define ESPSIM_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/** Geometry and latency of one cache level. */
struct CacheGeometry
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    Cycle hitLatency = 2;

    std::size_t numBlocks() const { return sizeBytes / blockBytes; }
    std::size_t numSets() const { return numBlocks() / assoc; }
};

/** LRU set-associative tag array. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(CacheGeometry geometry);

    const CacheGeometry &geometry() const { return geometry_; }

    /**
     * Demand lookup of the block containing @p addr; updates LRU on
     * hit.
     * @return true on hit.
     */
    bool
    lookup(Addr addr)
    {
        ++accesses_;
        if (Line *line = findLine(addr)) {
            line->lastUse = ++useClock_;
            ++hits_;
            return true;
        }
        return false;
    }

    /** Presence check without touching replacement state. */
    bool
    contains(Addr addr) const
    {
        return findLine(addr) != nullptr;
    }

    /**
     * Fill the block containing @p addr (refreshes LRU if already
     * present). Evicts the set's LRU way if the set is full.
     */
    void
    insert(Addr addr, bool dirty = false)
    {
        insertInWays(addr, 0, geometry_.assoc - 1, dirty);
    }

    /**
     * insert() that reports the displaced block: the block-aligned
     * address of the valid line evicted to make room, or nullopt when
     * a free way existed / the block was already present. The prefetch
     * lifecycle tracker keys pollution ("harmful") on this.
     */
    std::optional<Addr>
    insertEvicting(Addr addr, bool dirty = false)
    {
        return insertInWays(addr, 0, geometry_.assoc - 1, dirty);
    }

    /** Mark the block dirty if present. */
    void
    writeHit(Addr addr)
    {
        if (Line *line = findLine(addr))
            line->dirty = true;
    }

    /** Drop every block. */
    void invalidateAll();

    /** Number of valid blocks currently cached. */
    std::size_t population() const;

    /**
     * Number of valid *dirty* blocks. Speculative (cachelet) stores
     * must never dirty the architectural L1/L2 (paper §3.4); the fuzz
     * harness asserts this via before/after snapshots.
     */
    std::size_t dirtyPopulation() const;

    // Demand-access statistics (prefetch fills are not counted here).
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return accesses_ - hits_; }
    void clearStats() { accesses_ = hits_ = 0; }

  protected:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    CacheGeometry geometry_;
    std::size_t numSets_;
    std::size_t setMask_ = 0; //!< numSets_ - 1 when a power of two
    std::vector<Line> lines_; //!< numSets_ * assoc, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t hits_ = 0;

    std::size_t
    setIndex(Addr addr) const
    {
        const auto block = static_cast<std::size_t>(blockNumber(addr));
        return setMask_ ? (block & setMask_) : (block % numSets_);
    }

    Addr tagOf(Addr addr) const { return blockNumber(addr); }

    Line *
    findLine(Addr addr)
    {
        const Addr tag = tagOf(addr);
        Line *set = &lines_[setIndex(addr) * geometry_.assoc];
        for (unsigned w = 0; w < geometry_.assoc; ++w) {
            if (set[w].valid && set[w].tag == tag)
                return &set[w];
        }
        return nullptr;
    }

    const Line *
    findLine(Addr addr) const
    {
        return const_cast<SetAssocCache *>(this)->findLine(addr);
    }

    /**
     * Fill restricted to ways [way_lo, way_hi]; used by Cachelet's way
     * reservation. @return the displaced block (see insertEvicting).
     */
    std::optional<Addr>
    insertInWays(Addr addr, unsigned way_lo, unsigned way_hi, bool dirty)
    {
        if (Line *line = findLine(addr)) {
            line->lastUse = ++useClock_;
            line->dirty = line->dirty || dirty;
            return std::nullopt;
        }
        Line *set = &lines_[setIndex(addr) * geometry_.assoc];
        Line *victim = &set[way_lo];
        for (unsigned w = way_lo; w <= way_hi; ++w) {
            if (!set[w].valid) {
                victim = &set[w];
                break;
            }
            if (set[w].lastUse < victim->lastUse)
                victim = &set[w];
        }
        std::optional<Addr> evicted;
        if (victim->valid)
            evicted = victim->tag * blockBytes;
        victim->tag = tagOf(addr);
        victim->valid = true;
        victim->dirty = dirty;
        victim->lastUse = ++useClock_;
        return evicted;
    }

    bool
    lookupInWays(Addr addr, unsigned way_lo, unsigned way_hi)
    {
        ++accesses_;
        const Addr tag = tagOf(addr);
        Line *set = &lines_[setIndex(addr) * geometry_.assoc];
        for (unsigned w = way_lo; w <= way_hi; ++w) {
            if (set[w].valid && set[w].tag == tag) {
                set[w].lastUse = ++useClock_;
                ++hits_;
                return true;
            }
        }
        return false;
    }
};

} // namespace espsim

#endif // ESPSIM_CACHE_CACHE_HH
