#include "cache/cache.hh"

#include "common/logging.hh"

namespace espsim
{

SetAssocCache::SetAssocCache(CacheGeometry geometry)
    : geometry_(std::move(geometry))
{
    if (geometry_.assoc == 0)
        fatal("cache '%s': zero associativity", geometry_.name.c_str());
    if (geometry_.sizeBytes % (geometry_.assoc * blockBytes) != 0) {
        fatal("cache '%s': size %zu not divisible into %u ways of 64 B "
              "blocks", geometry_.name.c_str(), geometry_.sizeBytes,
              geometry_.assoc);
    }
    numSets_ = geometry_.numSets();
    if (numSets_ == 0)
        fatal("cache '%s': zero sets", geometry_.name.c_str());
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = numSets_ - 1;
    lines_.resize(numSets_ * geometry_.assoc);
}

void
SetAssocCache::invalidateAll()
{
    for (Line &line : lines_)
        line = Line{};
}

std::size_t
SetAssocCache::population() const
{
    std::size_t n = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++n;
    }
    return n;
}

std::size_t
SetAssocCache::dirtyPopulation() const
{
    std::size_t n = 0;
    for (const Line &line : lines_) {
        if (line.valid && line.dirty)
            ++n;
    }
    return n;
}

} // namespace espsim
