#include "cache/cache.hh"

#include "common/logging.hh"

namespace espsim
{

SetAssocCache::SetAssocCache(CacheGeometry geometry)
    : geometry_(std::move(geometry))
{
    if (geometry_.assoc == 0)
        fatal("cache '%s': zero associativity", geometry_.name.c_str());
    if (geometry_.sizeBytes % (geometry_.assoc * blockBytes) != 0) {
        fatal("cache '%s': size %zu not divisible into %u ways of 64 B "
              "blocks", geometry_.name.c_str(), geometry_.sizeBytes,
              geometry_.assoc);
    }
    numSets_ = geometry_.numSets();
    if (numSets_ == 0)
        fatal("cache '%s': zero sets", geometry_.name.c_str());
    lines_.resize(numSets_ * geometry_.assoc);
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>(blockNumber(addr)) % numSets_;
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *set = &lines_[setIndex(addr) * geometry_.assoc];
    for (unsigned w = 0; w < geometry_.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

bool
SetAssocCache::lookup(Addr addr)
{
    ++accesses_;
    if (Line *line = findLine(addr)) {
        line->lastUse = ++useClock_;
        ++hits_;
        return true;
    }
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
SetAssocCache::insert(Addr addr, bool dirty)
{
    insertInWays(addr, 0, geometry_.assoc - 1, dirty);
}

std::optional<Addr>
SetAssocCache::insertEvicting(Addr addr, bool dirty)
{
    return insertInWays(addr, 0, geometry_.assoc - 1, dirty);
}

std::optional<Addr>
SetAssocCache::insertInWays(Addr addr, unsigned way_lo, unsigned way_hi,
                            bool dirty)
{
    if (Line *line = findLine(addr)) {
        line->lastUse = ++useClock_;
        line->dirty = line->dirty || dirty;
        return std::nullopt;
    }
    Line *set = &lines_[setIndex(addr) * geometry_.assoc];
    Line *victim = &set[way_lo];
    for (unsigned w = way_lo; w <= way_hi; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    std::optional<Addr> evicted;
    if (victim->valid)
        evicted = victim->tag * blockBytes;
    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->lastUse = ++useClock_;
    return evicted;
}

bool
SetAssocCache::lookupInWays(Addr addr, unsigned way_lo, unsigned way_hi)
{
    ++accesses_;
    const Addr tag = tagOf(addr);
    Line *set = &lines_[setIndex(addr) * geometry_.assoc];
    for (unsigned w = way_lo; w <= way_hi; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::writeHit(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = true;
}

void
SetAssocCache::invalidateAll()
{
    for (Line &line : lines_)
        line = Line{};
}

std::size_t
SetAssocCache::population() const
{
    std::size_t n = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++n;
    }
    return n;
}

std::size_t
SetAssocCache::dirtyPopulation() const
{
    std::size_t n = 0;
    for (const Line &line : lines_) {
        if (line.valid && line.dirty)
            ++n;
    }
    return n;
}

} // namespace espsim
