#include "cache/hierarchy.hh"

namespace espsim
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

PrefetchSourceStats
MemoryHierarchy::prefetchLifecycle(PrefetchSource source) const
{
    const PrefetchSourceStats &i = lifecycleInstr_.stats(source);
    const PrefetchSourceStats &d = lifecycleData_.stats(source);
    PrefetchSourceStats sum;
    sum.issued = i.issued + d.issued;
    sum.timely = i.timely + d.timely;
    sum.late = i.late + d.late;
    sum.useless = i.useless + d.useless;
    sum.harmful = i.harmful + d.harmful;
    sum.leadCycleSum = i.leadCycleSum + d.leadCycleSum;
    return sum;
}

PrefetchIssueCounts
MemoryHierarchy::prefetchIssuedBySource() const
{
    PrefetchIssueCounts counts = lifecycleInstr_.issuedCounts();
    const PrefetchIssueCounts data = lifecycleData_.issuedCounts();
    for (unsigned s = 0; s < numPrefetchSources; ++s)
        counts[s] += data[s];
    return counts;
}

void
MemoryHierarchy::finalizePrefetchLifecycles()
{
    lifecycleInstr_.finalize();
    lifecycleData_.finalize();
}

void
MemoryHierarchy::registerStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.registerScalar(prefix + "l1i.accesses", &stat_l1i_acc_);
    reg.registerScalar(prefix + "l1i.misses", &stat_l1i_miss_);
    reg.registerScalar(prefix + "l1d.accesses", &stat_l1d_acc_);
    reg.registerScalar(prefix + "l1d.misses", &stat_l1d_miss_);
    reg.registerScalar(prefix + "l2.misses", &stat_l2_miss_);
    reg.registerScalar(prefix + "prefetches.issued", &stat_pf_issued_);
    reg.registerScalar(prefix + "prefetches.late", &stat_pf_late_);
    for (unsigned s = 0; s < numPrefetchSources; ++s) {
        const auto source = static_cast<PrefetchSource>(s);
        const std::string base = prefix + "prefetch." +
            prefetchSourceName(source) + ".";
        reg.registerDerived(base + "issued", [this, source] {
            return static_cast<double>(prefetchLifecycle(source).issued);
        });
        reg.registerDerived(base + "timely", [this, source] {
            return static_cast<double>(prefetchLifecycle(source).timely);
        });
        reg.registerDerived(base + "late", [this, source] {
            return static_cast<double>(prefetchLifecycle(source).late);
        });
        reg.registerDerived(base + "useless", [this, source] {
            return static_cast<double>(
                prefetchLifecycle(source).useless);
        });
        reg.registerDerived(base + "harmful", [this, source] {
            return static_cast<double>(
                prefetchLifecycle(source).harmful);
        });
        reg.registerDerived(base + "accuracy", [this, source] {
            return prefetchLifecycle(source).accuracy();
        });
        reg.registerDerived(base + "avg_lead_cycles", [this, source] {
            return prefetchLifecycle(source).avgLeadCycles();
        });
    }
    // Coverage: fraction of would-be misses a prefetch covered
    // (timely fully, late partially). Late hits already count in the
    // miss stat, so the would-be-miss denominator is timely + misses.
    reg.registerDerived(prefix + "prefetch.coverage.instr", [this] {
        std::uint64_t timely = 0, used = 0;
        for (unsigned s = 0; s < numPrefetchSources; ++s) {
            const PrefetchSourceStats &st =
                lifecycleInstr_.stats(static_cast<PrefetchSource>(s));
            timely += st.timely;
            used += st.used();
        }
        const std::uint64_t denom = timely + stat_l1i_miss_;
        return denom == 0 ? 0.0
                          : static_cast<double>(used) /
                static_cast<double>(denom);
    });
    reg.registerDerived(prefix + "prefetch.coverage.data", [this] {
        std::uint64_t timely = 0, used = 0;
        for (unsigned s = 0; s < numPrefetchSources; ++s) {
            const PrefetchSourceStats &st =
                lifecycleData_.stats(static_cast<PrefetchSource>(s));
            timely += st.timely;
            used += st.used();
        }
        const std::uint64_t denom = timely + stat_l1d_miss_;
        return denom == 0 ? 0.0
                          : static_cast<double>(used) /
                static_cast<double>(denom);
    });
}

void
MemoryHierarchy::report(StatGroup &stats, const std::string &prefix) const
{
    StatRegistry reg;
    registerStats(reg, prefix);
    const StatGroup snap = reg.snapshot();
    for (const auto &[name, value] : snap.values())
        stats.set(name, value);
}

} // namespace espsim
