#include "cache/hierarchy.hh"

namespace espsim
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

AccessResult
MemoryHierarchy::accessSide(SetAssocCache &l1,
                            InflightPrefetchBuffer &inflight, Addr addr,
                            bool write, Cycle now,
                            std::uint64_t &acc_stat,
                            std::uint64_t &miss_stat)
{
    if (countStats_)
        ++acc_stat;
    const Cycle l1_lat = l1.geometry().hitLatency;
    const auto ready = inflight.consume(blockAlign(addr));

    if (l1.lookup(addr)) {
        if (ready && *ready > now) {
            // Prefetched block still being filled: pay the residue.
            if (countStats_) {
                ++miss_stat;
                ++stat_pf_late_;
            }
            if (write)
                l1.writeHit(addr);
            return {*ready - now + l1_lat, HitLevel::L2};
        }
        if (write)
            l1.writeHit(addr);
        return {l1_lat, HitLevel::L1};
    }

    if (countStats_)
        ++miss_stat;
    const Cycle l2_lat = l2_.geometry().hitLatency;
    if (l2_.lookup(addr)) {
        l1.insert(addr, write);
        return {l1_lat + l2_lat, HitLevel::L2};
    }

    if (countStats_)
        ++stat_l2_miss_;
    l2_.insert(addr);
    l1.insert(addr, write);
    return {l1_lat + l2_lat + config_.memLatency, HitLevel::Memory};
}

AccessResult
MemoryHierarchy::accessInstr(Addr addr, Cycle now)
{
    if (config_.perfectL1I) {
        if (countStats_)
            ++stat_l1i_acc_;
        return {config_.l1i.hitLatency, HitLevel::L1};
    }
    return accessSide(l1i_, inflightInstr_, addr, false, now,
                      stat_l1i_acc_, stat_l1i_miss_);
}

AccessResult
MemoryHierarchy::accessData(Addr addr, bool write, Cycle now)
{
    if (config_.perfectL1D) {
        if (countStats_)
            ++stat_l1d_acc_;
        return {config_.l1d.hitLatency, HitLevel::L1};
    }
    return accessSide(l1d_, inflightData_, addr, write, now,
                      stat_l1d_acc_, stat_l1d_miss_);
}

AccessResult
MemoryHierarchy::probeSide(const SetAssocCache &l1, Addr addr) const
{
    const Cycle l1_lat = l1.geometry().hitLatency;
    const Cycle l2_lat = l2_.geometry().hitLatency;
    if (l1.contains(addr))
        return {l1_lat, HitLevel::L1};
    if (l2_.contains(addr))
        return {l1_lat + l2_lat, HitLevel::L2};
    return {l1_lat + l2_lat + config_.memLatency, HitLevel::Memory};
}

AccessResult
MemoryHierarchy::probeInstr(Addr addr) const
{
    if (config_.perfectL1I)
        return {config_.l1i.hitLatency, HitLevel::L1};
    return probeSide(l1i_, addr);
}

AccessResult
MemoryHierarchy::probeData(Addr addr) const
{
    if (config_.perfectL1D)
        return {config_.l1d.hitLatency, HitLevel::L1};
    return probeSide(l1d_, addr);
}

bool
MemoryHierarchy::prefetchSide(SetAssocCache &l1,
                              InflightPrefetchBuffer &inflight,
                              Addr addr, Cycle now)
{
    if (l1.contains(addr) || inflight.contains(addr))
        return false;
    const AccessResult src = probeSide(l1, addr);
    // Fill now (so capacity pressure and pollution are modeled) and
    // remember when the fill actually lands.
    l2_.insert(addr);
    l1.insert(addr);
    inflight.issue(blockAlign(addr), now + src.latency);
    ++stat_pf_issued_;
    return true;
}

bool
MemoryHierarchy::prefetchInstr(Addr addr, Cycle now)
{
    if (config_.perfectL1I)
        return false;
    return prefetchSide(l1i_, inflightInstr_, addr, now);
}

bool
MemoryHierarchy::prefetchData(Addr addr, Cycle now)
{
    if (config_.perfectL1D)
        return false;
    return prefetchSide(l1d_, inflightData_, addr, now);
}

void
MemoryHierarchy::registerStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.registerScalar(prefix + "l1i.accesses", &stat_l1i_acc_);
    reg.registerScalar(prefix + "l1i.misses", &stat_l1i_miss_);
    reg.registerScalar(prefix + "l1d.accesses", &stat_l1d_acc_);
    reg.registerScalar(prefix + "l1d.misses", &stat_l1d_miss_);
    reg.registerScalar(prefix + "l2.misses", &stat_l2_miss_);
    reg.registerScalar(prefix + "prefetches.issued", &stat_pf_issued_);
    reg.registerScalar(prefix + "prefetches.late", &stat_pf_late_);
}

void
MemoryHierarchy::report(StatGroup &stats, const std::string &prefix) const
{
    StatRegistry reg;
    registerStats(reg, prefix);
    const StatGroup snap = reg.snapshot();
    for (const auto &[name, value] : snap.values())
        stats.set(name, value);
}

} // namespace espsim
