/**
 * @file
 * The memory hierarchy of the baseline core (paper Figure 7):
 * split 32 KB 2-way L1-I / L1-D, unified 2 MB 16-way L2 (the LLC),
 * and DRAM at a flat 101-cycle access latency.
 *
 * Demand accesses walk L1 → L2 → memory and fill inclusively.
 * Prefetches insert immediately and record their completion time in an
 * in-flight buffer so late prefetches pay residual latency. Probe
 * methods report where a block lives without disturbing state — the
 * ESP cachelet fill path uses them, because ESP-mode accesses bypass
 * the L1/L2 entirely (§3.4).
 */

#ifndef ESPSIM_CACHE_HIERARCHY_HH
#define ESPSIM_CACHE_HIERARCHY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "prefetch/inflight.hh"
#include "report/stat_registry.hh"

namespace espsim
{

/** Level that serviced an access. */
enum class HitLevel : std::uint8_t
{
    L1,     //!< first-level hit
    L2,     //!< L1 miss, L2 hit
    Memory, //!< LLC miss (this is what triggers ESP / runahead)
};

/** Outcome of a demand access or probe. */
struct AccessResult
{
    Cycle latency = 0;
    HitLevel level = HitLevel::L1;

    bool llcMiss() const { return level == HitLevel::Memory; }
};

/** Configuration of the hierarchy. */
struct HierarchyConfig
{
    CacheGeometry l1i{"L1-I", 32 * 1024, 2, 2};
    CacheGeometry l1d{"L1-D", 32 * 1024, 2, 2};
    CacheGeometry l2{"L2", 2 * 1024 * 1024, 16, 21};
    Cycle memLatency = 101;

    /** Idealisation switches for the Figure 3 potential study. */
    bool perfectL1I = false;
    bool perfectL1D = false;
};

/** Two-level cache hierarchy plus DRAM with prefetch support. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config);

    const HierarchyConfig &config() const { return config_; }

    /** Demand instruction fetch of the block containing @p addr. */
    AccessResult
    accessInstr(Addr addr, Cycle now)
    {
        if (config_.perfectL1I) {
            if (countStats_)
                ++stat_l1i_acc_;
            return {config_.l1i.hitLatency, HitLevel::L1};
        }
        return accessSide(l1i_, inflightInstr_, lifecycleInstr_, addr,
                          false, now, stat_l1i_acc_, stat_l1i_miss_);
    }

    /** Demand data access (@p write marks the block dirty). */
    AccessResult
    accessData(Addr addr, bool write, Cycle now)
    {
        if (config_.perfectL1D) {
            if (countStats_)
                ++stat_l1d_acc_;
            return {config_.l1d.hitLatency, HitLevel::L1};
        }
        return accessSide(l1d_, inflightData_, lifecycleData_, addr,
                          write, now, stat_l1d_acc_, stat_l1d_miss_);
    }

    /**
     * Where would the block come from right now? No state change; used
     * by ESP cachelet fills and by prefetch-issue latency estimation.
     */
    AccessResult
    probeInstr(Addr addr) const
    {
        if (config_.perfectL1I)
            return {config_.l1i.hitLatency, HitLevel::L1};
        return probeSide(l1i_, addr);
    }

    AccessResult
    probeData(Addr addr) const
    {
        if (config_.perfectL1D)
            return {config_.l1d.hitLatency, HitLevel::L1};
        return probeSide(l1d_, addr);
    }

    /**
     * Issue a prefetch of the block containing @p addr into the
     * instruction (or data) side. Fills L1 and L2 immediately and
     * tracks readiness; a no-op when already resident or in flight.
     * @p source tags the prefetch for lifecycle classification
     * (timely / late / useless / harmful, per issuing engine).
     * @return true if a prefetch was actually issued.
     */
    bool
    prefetchInstr(Addr addr, Cycle now,
                  PrefetchSource source = PrefetchSource::Other)
    {
        if (config_.perfectL1I)
            return false;
        return prefetchSide(l1i_, inflightInstr_, lifecycleInstr_,
                            addr, now, source);
    }

    bool
    prefetchData(Addr addr, Cycle now,
                 PrefetchSource source = PrefetchSource::Other)
    {
        if (config_.perfectL1D)
            return false;
        return prefetchSide(l1d_, inflightData_, lifecycleData_, addr,
                            now, source);
    }

    /** Direct cache access (ESP naive mode uses these). */
    SetAssocCache &l1i() { return l1i_; }
    SetAssocCache &l1d() { return l1d_; }
    SetAssocCache &l2() { return l2_; }

    /**
     * Gate demand statistics; speculative pre-executions that go
     * through the regular hierarchy (naive ESP, runahead) disable
     * counting so reported miss rates reflect normal execution only.
     */
    void setStatCounting(bool enable) { countStats_ = enable; }

    // --- statistics -----------------------------------------------
    std::uint64_t l1iAccesses() const { return stat_l1i_acc_; }
    std::uint64_t l1iMisses() const { return stat_l1i_miss_; }
    std::uint64_t l1dAccesses() const { return stat_l1d_acc_; }
    std::uint64_t l1dMisses() const { return stat_l1d_miss_; }
    std::uint64_t l2Misses() const { return stat_l2_miss_; }
    std::uint64_t prefetchesIssued() const { return stat_pf_issued_; }
    std::uint64_t latePrefetchHits() const { return stat_pf_late_; }

    /** Per-source lifecycle stats, instruction + data side summed. */
    PrefetchSourceStats prefetchLifecycle(PrefetchSource source) const;

    /** Issued-prefetch totals by source (both sides summed). */
    PrefetchIssueCounts prefetchIssuedBySource() const;

    /** End of run: score still-unused prefetched blocks as useless.
     *  Call once, before snapshotting the registry. */
    void finalizePrefetchLifecycles();

    /** Register every hierarchy counter by name (canonical surface). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Snapshot all counters into @p stats (view over the registry). */
    void report(StatGroup &stats, const std::string &prefix) const;

  private:
    HierarchyConfig config_;
    bool countStats_ = true;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    InflightPrefetchBuffer inflightInstr_;
    InflightPrefetchBuffer inflightData_;
    PrefetchLifecycleTracker lifecycleInstr_;
    PrefetchLifecycleTracker lifecycleData_;

    std::uint64_t stat_l1i_acc_ = 0;
    std::uint64_t stat_l1i_miss_ = 0;
    std::uint64_t stat_l1d_acc_ = 0;
    std::uint64_t stat_l1d_miss_ = 0;
    std::uint64_t stat_l2_miss_ = 0;
    std::uint64_t stat_pf_issued_ = 0;
    std::uint64_t stat_pf_late_ = 0;

    /** The demand path proper; inline so the whole L1→L2→memory walk
     *  (including inflight-buffer consume and lifecycle scoring)
     *  compiles into the caller's loop. */
    AccessResult
    accessSide(SetAssocCache &l1, InflightPrefetchBuffer &inflight,
               PrefetchLifecycleTracker &lifecycle, Addr addr,
               bool write, Cycle now, std::uint64_t &acc_stat,
               std::uint64_t &miss_stat)
    {
        if (countStats_)
            ++acc_stat;
        const Cycle l1_lat = l1.geometry().hitLatency;
        const auto ready = inflight.consume(blockAlign(addr));

        if (l1.lookup(addr)) {
            if (countStats_)
                lifecycle.onDemandAccess(blockAlign(addr), now);
            if (ready && *ready > now) {
                // Prefetched block still being filled: pay the
                // residue.
                if (countStats_) {
                    ++miss_stat;
                    ++stat_pf_late_;
                }
                if (write)
                    l1.writeHit(addr);
                return {*ready - now + l1_lat, HitLevel::L2};
            }
            if (write)
                l1.writeHit(addr);
            return {l1_lat, HitLevel::L1};
        }

        if (countStats_)
            ++miss_stat;
        const Cycle l2_lat = l2_.geometry().hitLatency;
        if (l2_.lookup(addr)) {
            const auto evicted = l1.insertEvicting(addr, write);
            if (countStats_)
                lifecycle.onDemandFill(blockAlign(addr), evicted);
            return {l1_lat + l2_lat, HitLevel::L2};
        }

        if (countStats_)
            ++stat_l2_miss_;
        l2_.insert(addr);
        const auto evicted = l1.insertEvicting(addr, write);
        if (countStats_)
            lifecycle.onDemandFill(blockAlign(addr), evicted);
        return {l1_lat + l2_lat + config_.memLatency, HitLevel::Memory};
    }

    AccessResult
    probeSide(const SetAssocCache &l1, Addr addr) const
    {
        const Cycle l1_lat = l1.geometry().hitLatency;
        const Cycle l2_lat = l2_.geometry().hitLatency;
        if (l1.contains(addr))
            return {l1_lat, HitLevel::L1};
        if (l2_.contains(addr))
            return {l1_lat + l2_lat, HitLevel::L2};
        return {l1_lat + l2_lat + config_.memLatency, HitLevel::Memory};
    }

    bool
    prefetchSide(SetAssocCache &l1, InflightPrefetchBuffer &inflight,
                 PrefetchLifecycleTracker &lifecycle, Addr addr,
                 Cycle now, PrefetchSource source)
    {
        if (l1.contains(addr) || inflight.contains(addr))
            return false;
        const AccessResult src = probeSide(l1, addr);
        // Fill now (so capacity pressure and pollution are modeled)
        // and remember when the fill actually lands.
        l2_.insert(addr);
        const auto evicted = l1.insertEvicting(addr);
        const Cycle ready = now + src.latency;
        inflight.issue(blockAlign(addr), ready);
        lifecycle.onPrefetchIssue(blockAlign(addr), source, ready,
                                  evicted);
        ++stat_pf_issued_;
        return true;
    }
};

} // namespace espsim

#endif // ESPSIM_CACHE_HIERARCHY_HH
