#include "cache/cachelet.hh"

#include "common/logging.hh"

namespace espsim
{

Cachelet::Cachelet(CacheGeometry geometry)
    : SetAssocCache(std::move(geometry)),
      reservedWay_(geometry_.assoc - 1)
{
    if (geometry_.assoc < 2)
        fatal("cachelet '%s' needs at least 2 ways to partition",
              geometry_.name.c_str());
}

void
Cachelet::rotateReservedWay()
{
    reservedWay_ = reservedWay_ == 0 ? geometry_.assoc - 1 : 0;
    // The new ESP-2 way must not leak the promoted event's blocks into
    // the fresh context; clear just that way.
    invalidateFor(EspDepth::Esp2);
}

void
Cachelet::invalidateFor(EspDepth depth)
{
    unsigned lo, hi;
    waysFor(depth, lo, hi);
    for (std::size_t set = 0; set < numSets_; ++set) {
        for (unsigned w = lo; w <= hi; ++w)
            lines_[set * geometry_.assoc + w] = Line{};
    }
}

} // namespace espsim
