/**
 * @file
 * ESP cachelets — the L0 caches used exclusively during speculative
 * pre-execution (paper §3.4/§4.2).
 *
 * One 12-way, 6 KB cachelet exists per side (I and D). It is
 * partitioned by way reservation: one way (0.5 KB) belongs to the
 * ESP-2 context, the remaining eleven (5.5 KB) to ESP-1. When the
 * current event completes and the ESP-2 event is promoted to ESP-1,
 * the reserved way *rotates* between the first and last way, so the
 * promoted event keeps its blocks and gains the other ten ways —
 * exactly the scheme of §4.2.
 *
 * Cachelet blocks are never written back: a dirty eviction silently
 * loses the speculative value (§4.4), which is one source of hint
 * divergence and is modeled by the controller.
 */

#ifndef ESPSIM_CACHE_CACHELET_HH
#define ESPSIM_CACHE_CACHELET_HH

#include "cache/cache.hh"

namespace espsim
{

/** Which speculative context an access belongs to. */
enum class EspDepth : unsigned
{
    Esp1 = 0, //!< one event jumped ahead
    Esp2 = 1, //!< two events jumped ahead
};

/** Way-partitioned L0 cache for the two ESP contexts. */
class Cachelet : public SetAssocCache
{
  public:
    explicit Cachelet(CacheGeometry geometry);

    /**
     * Demand lookup in the ways owned by @p depth; updates LRU.
     * Inline: called once per speculative block transition.
     * @return true on hit.
     */
    bool
    lookupFor(EspDepth depth, Addr addr)
    {
        unsigned lo, hi;
        waysFor(depth, lo, hi);
        return lookupInWays(addr, lo, hi);
    }

    /** Fill into the ways owned by @p depth. */
    void
    insertFor(EspDepth depth, Addr addr, bool dirty = false)
    {
        unsigned lo, hi;
        waysFor(depth, lo, hi);
        insertInWays(addr, lo, hi, dirty);
    }

    /**
     * The current event finished: promote ESP-2's content to ESP-1
     * ownership by rotating the reserved way to the other edge.
     */
    void rotateReservedWay();

    /** Way currently reserved for the ESP-2 context. */
    unsigned reservedWay() const { return reservedWay_; }

    /** Drop the blocks owned by @p depth (used on squash). */
    void invalidateFor(EspDepth depth);

  private:
    unsigned reservedWay_;

    void
    waysFor(EspDepth depth, unsigned &lo, unsigned &hi) const
    {
        const unsigned last = geometry_.assoc - 1;
        if (depth == EspDepth::Esp2) {
            lo = hi = reservedWay_;
        } else if (reservedWay_ == 0) {
            lo = 1;
            hi = last;
        } else {
            lo = 0;
            hi = last - 1;
        }
    }
};

} // namespace espsim

#endif // ESPSIM_CACHE_CACHELET_HH
