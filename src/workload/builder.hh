/**
 * @file
 * Fluent public API for constructing event-trace workloads by hand.
 *
 * This is how a downstream user feeds their own asynchronous program's
 * trace into the simulator (the synthetic generator is just one
 * producer). Used by the custom_workload example and many tests.
 */

#ifndef ESPSIM_WORKLOAD_BUILDER_HH
#define ESPSIM_WORKLOAD_BUILDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.hh"

namespace espsim
{

/** Incrementally builds an InMemoryWorkload, one event at a time. */
class WorkloadBuilder
{
  public:
    /**
     * Start a new event. Ops added afterwards belong to it until the
     * next beginEvent()/build().
     */
    WorkloadBuilder &beginEvent(Addr handler_pc, Addr arg_object = 0);

    /** Append a fully-specified micro-op. */
    WorkloadBuilder &op(const MicroOp &op);

    /** Append an integer ALU op at @p pc. */
    WorkloadBuilder &alu(Addr pc);

    /** Append @p n sequential ALU ops starting at @p pc. */
    WorkloadBuilder &aluBlock(Addr pc, std::size_t n);

    /** Append a load of @p addr at @p pc writing register @p dest. */
    WorkloadBuilder &load(Addr pc, Addr addr, std::uint8_t dest = 1);

    /** Append a store to @p addr at @p pc. */
    WorkloadBuilder &store(Addr pc, Addr addr);

    /** Append a conditional branch. */
    WorkloadBuilder &branch(Addr pc, bool taken, Addr target);

    /** Append a call / return pair of control ops. */
    WorkloadBuilder &call(Addr pc, Addr target);
    WorkloadBuilder &ret(Addr pc, Addr target);

    /**
     * Mark the current event as dependent on its predecessor: its
     * speculative pre-execution diverges at op index @p divergence_point
     * and follows @p diverged_tail instead.
     */
    WorkloadBuilder &dependsOnPrevious(std::size_t divergence_point,
                                       OpSequence diverged_tail);

    /** Number of ops in the event currently being built. */
    std::size_t currentEventSize() const;

    /** Finish and return the workload (fatal if no events built). */
    std::unique_ptr<InMemoryWorkload> build(std::string name);

  private:
    std::vector<EventTrace> events_;
    bool open_ = false;

    EventTrace &current();
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_BUILDER_HH
