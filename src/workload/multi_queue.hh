/**
 * @file
 * Multi-queue asynchronous systems (paper §4.5, "ESP for any
 * Asynchronous Program").
 *
 * In the general case an application has several software event queues
 * whose events a runtime multiplexes onto looper threads. The runtime
 * then *predicts* the next two events that will run on each looper and
 * exposes those to the ESP hardware queue. The prediction is usually
 * right, but e.g. a synchronous barrier posted to one queue can hold
 * its events back and let later events from other queues run first —
 * in which case the hardware's incorrect-prediction bit must veto the
 * stale list state.
 *
 * InterleavedWorkload models this: it merges the event streams of
 * several logical queues into one looper-order stream, and publishes
 * the runtime's (imperfect) dispatch predictions through
 * Workload::predictedNext(). A configurable rate of "barrier"
 * reorderings makes predictions wrong exactly the way §4.5 describes.
 */

#ifndef ESPSIM_WORKLOAD_MULTI_QUEUE_HH
#define ESPSIM_WORKLOAD_MULTI_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/workload.hh"

namespace espsim
{

/** Configuration of the runtime's queue multiplexing. */
struct MultiQueueConfig
{
    /** Seed for the interleaving and barrier injection. */
    std::uint64_t seed = 1;

    /**
     * Probability that a dispatch decision is a "barrier" reordering
     * the runtime failed to predict: the next two predicted events
     * swap / defer, so the prediction for that slot is wrong.
     */
    double barrierRate = 0.02;
};

/**
 * A looper-order merge of several queues with dispatch predictions.
 */
class InterleavedWorkload : public Workload
{
  public:
    /**
     * Merge @p queues (consumed) into one looper stream. Events are
     * drawn from the queues in a seeded weighted round-robin; the
     * runtime's predictions follow the *intended* schedule, which the
     * barrier injections then perturb.
     */
    InterleavedWorkload(std::string name,
                        std::vector<std::unique_ptr<Workload>> queues,
                        const MultiQueueConfig &config);

    const std::string &name() const override { return name_; }
    std::size_t numEvents() const override { return order_.size(); }
    const EventTrace &event(std::size_t idx) const override;
    std::vector<AddrRange> warmSet() const override { return warmSet_; }

    std::size_t predictedNext(std::size_t current,
                              unsigned ahead) const override;

    /** Which logical queue event @p idx came from (for reports). */
    unsigned queueOf(std::size_t idx) const;

    /** Fraction of (current, ahead<=2) predictions that are correct. */
    double dispatchPredictionAccuracy() const;

  private:
    struct Slot
    {
        unsigned queue = 0;
        std::size_t queueIdx = 0; //!< index within that queue
        /** Runtime-predicted stream indices for ahead = 1, 2. */
        std::size_t predicted1 = 0;
        std::size_t predicted2 = 0;
    };

    std::string name_;
    std::vector<std::unique_ptr<Workload>> queues_;
    std::vector<Slot> order_;
    std::vector<AddrRange> warmSet_;
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_MULTI_QUEUE_HH
