#include "workload/app_profile.hh"

#include "common/logging.hh"

namespace espsim
{

namespace
{

/**
 * Common starting point for every web app; the per-site functions
 * below perturb it. Defaults follow the paper's characterisation of
 * Web 2.0 JavaScript: large instruction footprints, short varied
 * events, little cross-event locality.
 */
AppProfile
webBase()
{
    AppProfile p;
    p.dependencyRate = 0.02;
    return p;
}

} // namespace

std::vector<AppProfile>
AppProfile::webSuite()
{
    std::vector<AppProfile> suite;

    {
        // e-commerce: many short DOM-manipulation events, wide code.
        AppProfile p = webBase();
        p.name = "amazon";
        p.windowsPerEvent = 14;
        p.description = "Search for headphones, click a result, go to "
                        "a related item";
        p.seed = 0xa11ce;
        p.numEvents = 40;
        p.avgEventLen = 28000;
        p.numHandlerTypes = 40;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 1100;
        p.sharedCodeFraction = 0.28;
        p.coldCodeFraction = 0.05;
        p.paperEvents = 7787;
        p.paperInstMillions = 434;
        suite.push_back(p);
    }
    {
        // search: lighter pages, fewer handlers.
        AppProfile p = webBase();
        p.name = "bing";
        p.windowsPerEvent = 18;
        p.description = "Search for 'Roger Federer', go to new results";
        p.seed = 0xb196;
        p.numEvents = 32;
        p.avgEventLen = 26000;
        p.numHandlerTypes = 28;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 900;
        p.sharedCodeFraction = 0.26;
        p.coldCodeFraction = 0.07;
        p.paperEvents = 4858;
        p.paperInstMillions = 259;
        suite.push_back(p);
    }
    {
        // news: the most events; ad/layout scripts spread code widely.
        AppProfile p = webBase();
        p.name = "cnn";
        p.windowsPerEvent = 24;
        p.description = "Click on the headline, go to world news";
        p.seed = 0xc44;
        p.numEvents = 45;
        p.avgEventLen = 33000;
        p.numHandlerTypes = 48;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 1300;
        p.sharedCodeFraction = 0.26;
        p.coldCodeFraction = 0.09;
        p.paperEvents = 13409;
        p.paperInstMillions = 1230;
        suite.push_back(p);
    }
    {
        // social networking: biggest footprint, long feed-render events.
        AppProfile p = webBase();
        p.name = "facebook";
        p.windowsPerEvent = 20;
        p.description = "Visit own homepage, go to communities, go to "
                        "pictures";
        p.seed = 0xface;
        p.numEvents = 36;
        p.avgEventLen = 48000;
        p.numHandlerTypes = 56;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 1500;
        p.sharedCodeFraction = 0.24;
        p.coldCodeFraction = 0.09;
        p.sharedHeapBlocks = 16384;
        p.paperEvents = 9305;
        p.paperInstMillions = 2165;
        suite.push_back(p);
    }
    {
        // interactive maps: long compute events (routing), more FP.
        AppProfile p = webBase();
        p.name = "gmaps";
        p.windowsPerEvent = 20;
        p.description = "Search two addresses; driving, transit and "
                        "biking directions";
        p.seed = 0x93a95;
        p.numEvents = 36;
        p.avgEventLen = 44000;
        p.numHandlerTypes = 44;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 1400;
        p.fpFrac = 0.08;
        p.loopFrac = 0.14;
        p.sharedCodeFraction = 0.22;
        p.coldCodeFraction = 0.07;
        p.paperEvents = 7298;
        p.paperInstMillions = 2722;
        suite.push_back(p);
    }
    {
        // utilities / spreadsheet: few, long, loopy events.
        AppProfile p = webBase();
        p.name = "gdocs";
        p.windowsPerEvent = 20;
        p.description = "Open a spreadsheet, insert data, add 5 values";
        p.seed = 0x9d0c5;
        p.numEvents = 26;
        p.avgEventLen = 46000;
        p.numHandlerTypes = 36;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 1200;
        p.loopFrac = 0.15;
        p.sharedCodeFraction = 0.24;
        p.coldCodeFraction = 0.06;
        p.paperEvents = 1714;
        p.paperInstMillions = 809;
        suite.push_back(p);
    }
    {
        // image editing: small hot kernels, data-intensive streaming.
        AppProfile p = webBase();
        p.name = "pixlr";
        p.windowsPerEvent = 14;
        p.description = "Add various filters to an uploaded image";
        p.seed = 0x1f1b;
        p.numEvents = 22;
        p.avgEventLen = 28000;
        p.numHandlerTypes = 16;
        p.hotRegionsPerHandler = 12;
        p.codeRegionPool = 350;
        p.sharedCodeFraction = 0.30;
        p.coldCodeFraction = 0.05;
        p.loopFrac = 0.20;
        p.fpFrac = 0.10;
        p.allocFrac = 0.18;
        p.coldDataFrac = 0.02;
        p.allocBlocksPerEvent = 32;
        p.paperEvents = 465;
        p.paperInstMillions = 26;
        suite.push_back(p);
    }

    return suite;
}

AppProfile
AppProfile::byName(const std::string &name)
{
    for (const AppProfile &p : webSuite()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown application profile '%s'", name.c_str());
}

AppProfile
AppProfile::testProfile()
{
    AppProfile p = webBase();
    p.name = "test";
    p.description = "tiny deterministic workload for unit tests";
    p.seed = 42;
    p.numEvents = 24;
    p.avgEventLen = 600;
    p.minEventLen = 100;
    p.numHandlerTypes = 6;
    p.codeRegionPool = 256;
    p.sharedHeapBlocks = 2048;
    return p;
}

} // namespace espsim
