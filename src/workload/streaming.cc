#include "workload/streaming.hh"

#include <algorithm>

#include "common/logging.hh"

namespace espsim
{

StreamingWorkload::StreamingWorkload(
    std::unique_ptr<const EventSource> source, std::size_t window)
    : source_(std::move(source)),
      name_(source_->name()),
      numEvents_(source_->numEvents()),
      window_(std::max<std::size_t>(window, 4))
{
}

std::vector<StreamingWorkload::Entry>::iterator
StreamingWorkload::findAt(std::vector<Entry> &entries, std::size_t idx)
{
    return std::lower_bound(
        entries.begin(), entries.end(), idx,
        [](const Entry &e, std::size_t i) { return e.first < i; });
}

const EventTrace &
StreamingWorkload::event(std::size_t idx) const
{
    if (idx >= numEvents_)
        panic("streaming workload '%s': event %zu out of range %zu",
              name_.c_str(), idx, numEvents_);

    std::lock_guard<std::mutex> lock(mutex_);

    auto it = findAt(cache_, idx);
    if (it == cache_.end() || it->first != idx) {
        std::shared_ptr<EventTrace> slot;
        if (!freeList_.empty()) {
            // Reuse a retired trace: move-assignment recycles its
            // OpSequence arrays, so steady-state generation allocates
            // only growth beyond the recycled capacity.
            slot = std::move(freeList_.back());
            freeList_.pop_back();
            *slot = source_->makeEvent(idx);
            ++recycled_;
        } else {
            slot = std::make_shared<EventTrace>(source_->makeEvent(idx));
        }
        it = cache_.insert(it, {idx, std::move(slot)});
        ++generations_;
    }
    std::shared_ptr<EventTrace> trace = it->second;

    // Pin the trace in the calling thread's recent window so the
    // returned reference outlives cache eviction by other readers.
    // Pins are keyed by index and dropped only once this thread has
    // moved window_ events past them; re-requesting a lookahead event
    // therefore never pushes an older, still-live reference out.
    const std::thread::id tid = std::this_thread::get_id();
    PinWindow *win = nullptr;
    for (PinWindow &w : pins_) {
        if (w.tid == tid) {
            win = &w;
            break;
        }
    }
    if (!win) {
        pins_.push_back(PinWindow{tid, {}});
        win = &pins_.back();
    }
    auto pin = findAt(win->pins, idx);
    if (pin == win->pins.end() || pin->first != idx)
        win->pins.insert(pin, {idx, trace});
    else
        pin->second = trace;
    std::size_t drop = 0;
    while (drop < win->pins.size() &&
           win->pins[drop].first + window_ <= idx + 1) {
        ++drop;
    }
    win->pins.erase(win->pins.begin(), win->pins.begin() + drop);

    // Evict traces far behind the requested index; references to
    // events in [idx - 1, idx + window) stay valid, which covers the
    // simulator's lookahead contract (idx + 3). Entries pinned by a
    // (possibly lagging) reader are skipped, so the cache is bounded
    // by one window per reader thread plus the caller's live window.
    const std::size_t budget = window_ * pins_.size();
    for (std::size_t v = 0; cache_.size() > budget && v < cache_.size();) {
        if (cache_[v].first + window_ > idx + 1)
            break; // inside the caller's live window (and beyond)
        if (cache_[v].second.use_count() > 1) {
            ++v; // another reader still holds it pinned
        } else {
            if (freeList_.size() < window_)
                freeList_.push_back(std::move(cache_[v].second));
            cache_.erase(cache_.begin() + v);
        }
    }

    return *trace;
}

std::size_t
StreamingWorkload::residentTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::uint64_t
StreamingWorkload::generations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generations_;
}

std::uint64_t
StreamingWorkload::recycled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recycled_;
}

std::vector<AddrRange>
StreamingWorkload::warmSet() const
{
    return source_->warmSet();
}

} // namespace espsim
