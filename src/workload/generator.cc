#include "workload/generator.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace espsim
{

namespace
{

/** splitmix64-style stateless mixer for deriving static properties. */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
    std::uint64_t c = 0)
{
    std::uint64_t z =
        a + 0x9e3779b97f4a7c15ULL * (b + 1) + c * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Behaviour classes of conditional-branch PCs. */
enum class BranchClass
{
    Biased,     //!< almost always one direction
    Correlated, //!< function of recent outcome history
    Random,     //!< data dependent, unpredictable by tables
};

/** Static kinds of block-terminator instructions. */
enum class TermKind
{
    Call,
    Return,
    Indirect,
    CondForward,
    CondBackward, //!< loop branch
};

/** In-progress state of one event-trace random walk. */
struct Walk
{
    Rng rng;
    OpSequence out;
    std::size_t targetLen = 0;
    Addr pc = 0;
    std::vector<Addr> callStack;
    std::uint64_t histReg = 0; //!< recent conditional outcomes
    Addr argObject = 0;
    std::uint64_t eventId = 0;
    std::uint32_t handler = 0;
    unsigned eventPhase = 0; //!< steadies indirect targets per event
    Addr allocRegion = 0;
    Addr allocOff = 0;
    Addr lastDataBlock = 0; //!< previous memory-op block (reuse model)
    Addr keyRegion = 0;     //!< value object of this request (server)
    std::size_t keyBytes = 0;
    double keyFrac = 0.0;
    std::uint8_t lastDest = noReg;
    unsigned opsSinceTerm = 0;
    std::unordered_map<Addr, unsigned> loopCounts;

    explicit Walk(std::uint64_t seed) : rng(seed) {}

    unsigned depth() const
    {
        return static_cast<unsigned>(callStack.size());
    }
};

} // namespace

SyntheticGenerator::SyntheticGenerator(AppProfile profile)
    : profile_(std::move(profile))
{
    if (profile_.numEvents == 0)
        fatal("profile '%s' has zero events", profile_.name.c_str());
    if (profile_.blocksPerRegion == 0 || profile_.codeRegionPool == 0)
        fatal("profile '%s' has an empty code image",
              profile_.name.c_str());
}

namespace
{

/**
 * Generator internals bound to one profile.
 *
 * The *static program* is a pure function of (PC, seed): whether a PC
 * is a block terminator, its instruction type, a branch's kind/class/
 * target, a call's destination — all derived by hashing the PC. Only
 * the *dynamics* vary per visit: conditional outcomes, indirect-target
 * selection (per-event phase), memory addresses, loop exits. Branch
 * predictors therefore see stable, learnable static branches exactly
 * as they would in real code, while the footprint and path coverage
 * vary event to event.
 */
class WalkEngine
{
  public:
    explicit WalkEngine(const AppProfile &p) : p_(p) {}

    /** Run a walk until it reaches its target length. */
    void
    run(Walk &st) const
    {
        while (st.out.size() < st.targetLen)
            step(st);
    }

    /** Draw this event's target length (exponential-ish, floored). */
    std::size_t
    drawLength(Rng &rng) const
    {
        const double u = std::max(rng.real(), 1e-12);
        double len = p_.avgEventLen * -std::log(1.0 - u);
        len = std::min(len, 12.0 * p_.avgEventLen);
        return std::max<std::size_t>(static_cast<std::size_t>(len),
                                     p_.minEventLen);
    }

    /** Entry PC of handler @p h (its base region). */
    Addr
    handlerEntry(std::uint32_t h) const
    {
        return entryAt(handlerBaseSlot(h), 0);
    }

  private:
    const AppProfile &p_;

    /** Function entries are quantised to 128 B boundaries. */
    static constexpr Addr entryStride = 64;

    Addr
    regionBase(std::uint64_t slot) const
    {
        return layout::appCodeBase +
            slot * p_.blocksPerRegion * blockBytes;
    }

    Addr
    regionBytes() const
    {
        return p_.blocksPerRegion * blockBytes;
    }

    /** Region-slot index containing @p pc (app code space only). */
    std::uint64_t
    slotOf(Addr pc) const
    {
        return (pc - layout::appCodeBase) / regionBytes();
    }

    /** First slot index of the cold (never-warm) code space. */
    std::uint64_t
    coldSlotBase() const
    {
        return p_.codeRegionPool;
    }

    /** Quantised entry inside region @p slot selected by hash @p h. */
    Addr
    entryAt(std::uint64_t slot, std::uint64_t h) const
    {
        const Addr entries = std::max<Addr>(regionBytes() / entryStride, 1);
        return regionBase(slot) + (h % entries) * entryStride;
    }

    std::uint64_t
    handlerBaseSlot(std::uint32_t handler) const
    {
        return mix(p_.seed, handler, 0x1000) % p_.codeRegionPool;
    }

    /** Quantised entry in the shared runtime, skew-selected. */
    Addr
    sharedEntry(std::uint64_t h) const
    {
        // Square the hash fraction for skew: a few runtime entry
        // points (dispatch, GC barriers, DOM glue) dominate.
        const double u = static_cast<double>(h % 65536) / 65536.0;
        const auto span =
            static_cast<std::uint64_t>(p_.sharedCodeBlocks) * blockBytes /
            entryStride;
        const auto idx = static_cast<std::uint64_t>(
            u * u * static_cast<double>(span));
        return layout::sharedCodeBase + idx * entryStride;
    }

    // --- static decode ----------------------------------------------

    bool
    isTerminator(const Walk &st, Addr pc) const
    {
        (void)st;
        // Every 24th instruction slot terminates unconditionally so
        // straight-line runs are bounded; this is a *static* property
        // (the decode at a PC never depends on how it was reached).
        if ((pc >> 2) % 24 == 23)
            return true;
        const double p_term = 1.0 / (p_.avgBasicBlockLen + 1.0);
        return static_cast<double>(mix(pc, p_.seed, 0x7e12) % 16384) <
            16384.0 * p_term;
    }

    TermKind
    termKind(Addr pc) const
    {
        const double u = static_cast<double>(
                             mix(pc, p_.seed, 0x7e57) % 16384) /
            16384.0;
        double acc = p_.callFrac;
        if (u < acc)
            return TermKind::Call;
        acc += p_.returnFrac;
        if (u < acc)
            return TermKind::Return;
        acc += p_.indirectFrac;
        if (u < acc)
            return TermKind::Indirect;
        acc += p_.loopFrac;
        if (u < acc)
            return TermKind::CondBackward;
        return TermKind::CondForward;
    }

    BranchClass
    branchClass(Addr pc) const
    {
        const std::uint64_t h = mix(pc, p_.seed, 0xbc);
        const double u = static_cast<double>(h % 10000) / 10000.0;
        if (u < p_.biasedBranchFrac)
            return BranchClass::Biased;
        if (u < p_.biasedBranchFrac + p_.correlatedBranchFrac)
            return BranchClass::Correlated;
        return BranchClass::Random;
    }

    /**
     * Fixed direct-call destination of the call at @p pc. Code is laid
     * out with call locality: a call site targets a function within a
     * small slot neighbourhood ahead of its own region (or the shared
     * runtime), so the walk drifts through the code image and the
     * touched footprint grows with event length.
     */
    Addr
    callTarget(const Walk &st, Addr pc) const
    {
        (void)st;
        const std::uint64_t h = mix(pc, p_.seed, 0xca11);
        const double u = static_cast<double>(h % 10000) / 10000.0;
        if (u < p_.sharedCodeFraction)
            return sharedEntry(h >> 16);
        const std::uint64_t span = p_.hotRegionsPerHandler;
        std::uint64_t slot;
        if (pc >= layout::appCodeBase) {
            const std::uint64_t here = slotOf(pc);
            if (here >= coldSlotBase()) {
                // Calls within fresh code stay in its neighbourhood.
                slot = here + 1 + (h >> 8) % 3;
            } else {
                // Calls stay inside the aligned `span`-region window
                // containing the call site: one module of the code
                // image. Event footprints are therefore bounded by the
                // window set the event visits, not by event length.
                const std::uint64_t window = here / span;
                slot = window * span + (here + 1 + (h >> 8) % span) % span;
            }
        } else {
            // Runtime code calling back into the application.
            slot = (h >> 8) % p_.codeRegionPool;
        }
        return entryAt(slot, h >> 24);
    }

    /**
     * Destination of the indirect branch at @p pc for this visit:
     * stable within an event (the same receiver object), varies across
     * events, and reaches event-specific fresh code with probability
     * coldCodeFraction — this is how compulsory-miss code keeps
     * arriving, like newly JITted or first-touched functions.
     */
    Addr
    indirectTarget(const Walk &st, Addr pc) const
    {
        const std::uint64_t h = mix(pc, p_.seed, 0x19d);
        const unsigned fanout = 1 + static_cast<unsigned>((h >> 3) % 6);
        const unsigned which =
            (st.eventPhase + static_cast<unsigned>(h >> 16)) % fanout;
        const std::uint64_t hw = mix(h, which, 0x3b);
        const double u = static_cast<double>(hw % 10000) / 10000.0;
        if (u < p_.coldCodeFraction) {
            // Event-specific fresh code (JIT output, first-touched
            // functions): slots beyond the warm pool, so they are
            // compulsory-miss territory.
            const std::uint64_t slot = coldSlotBase() +
                mix(p_.seed, st.handler * 131 + st.eventId, hw >> 8) %
                    (1u << 20);
            return entryAt(slot, hw >> 20);
        }
        // Dispatch re-bases the walk onto one of this event's code
        // windows, cycling every phasePeriod instructions. An event's
        // instruction footprint is the union of a few windows however
        // long it runs — matching the bounded per-event working sets
        // of the paper's Figure 13.
        const std::uint64_t span = p_.hotRegionsPerHandler;
        const std::uint64_t num_windows =
            std::max<std::uint64_t>(p_.codeRegionPool / span, 1);
        const std::uint64_t phase = st.out.size() / p_.phasePeriod;
        const std::uint64_t wslot =
            (phase + (hw >> 7)) % p_.windowsPerEvent;
        const std::uint64_t window =
            mix(p_.seed, st.handler * 64 + st.eventPhase, wslot) %
            num_windows;
        // Early passes over the window set explore new dispatch
        // subgraphs (pass salt); later passes revisit them. Long
        // events therefore build their footprint over the first few
        // passes, then reuse it — misses stay front-loaded.
        const std::uint64_t pass =
            std::min<std::uint64_t>(phase / p_.windowsPerEvent, 3);
        const std::uint64_t slot =
            window * span + (mix(hw >> 4, pass, 0x9a) % span);
        return entryAt(slot, mix(hw >> 24, pass, 0x9b));
    }

    // --- dynamics ----------------------------------------------------

    /** Effective address for the next load or store. */
    Addr
    dataAddress(Walk &st) const
    {
        // Temporal/spatial locality: programs frequently re-touch the
        // line they just used (field accesses on the same object).
        if (st.lastDataBlock != 0 && st.rng.chance(p_.dataRepeatFrac))
            return st.lastDataBlock + 8 * st.rng.below(8);

        // Request-serving overlay (src/server): a slice of accesses
        // lands on the looked-up key's value object in the KV heap.
        // The keyFrac guard short-circuits before any rng draw, so
        // unshaped (browser) events consume an identical rng stream
        // whether or not this overlay exists.
        if (st.keyFrac > 0.0 && st.rng.chance(st.keyFrac)) {
            const Addr words = std::max<Addr>(st.keyBytes / 8, 1);
            return st.keyRegion + 8 * st.rng.below(words);
        }

        const double r = st.rng.real();
        double acc = p_.argFrac;
        if (r < acc)
            return st.argObject + 8 * st.rng.below(24);
        acc += p_.sharedHeapFrac;
        if (r < acc) {
            // Two-tier heap: a hot window of frequently-reused objects
            // plus a long cold tail over the whole heap.
            std::uint64_t block;
            if (st.rng.chance(p_.sharedHotFrac)) {
                block = st.rng.skewed(std::min<std::uint64_t>(
                    p_.sharedHotBlocks, p_.sharedHeapBlocks));
            } else {
                block = st.rng.below(p_.sharedHeapBlocks);
            }
            return layout::sharedHeapBase + block * blockBytes +
                8 * st.rng.below(8);
        }
        acc += p_.allocFrac;
        if (r < acc) {
            // Bump allocation with short-range reuse.
            const Addr span = p_.allocBlocksPerEvent * blockBytes;
            if (st.rng.chance(0.55) && st.allocOff > 0) {
                const Addr back =
                    std::min<Addr>(st.allocOff, 2 * blockBytes);
                return st.allocRegion + st.allocOff -
                    st.rng.below(back + 1);
            }
            st.allocOff = (st.allocOff + st.rng.range(16, 96)) % span;
            return st.allocRegion + st.allocOff;
        }
        acc += p_.coldDataFrac;
        if (r < acc) {
            // Streaming data, never reused.
            return layout::coldDataBase +
                (st.rng.next() % (Addr{1} << 30));
        }
        // Stack frame of the current call depth.
        return layout::stackBase - st.depth() * 192 -
            8 * st.rng.below(24);
    }

    /** Outcome of the forward conditional branch at @p pc. */
    bool
    conditionalOutcome(Walk &st, Addr pc) const
    {
        bool outcome;
        switch (branchClass(pc)) {
          case BranchClass::Biased: {
            const bool dir = (mix(pc, p_.seed, 0xd1) >> 8) & 1;
            outcome = st.rng.chance(p_.branchBias) ? dir : !dir;
            break;
          }
          case BranchClass::Correlated: {
            const auto h = mix(pc, p_.seed, 0xc0);
            outcome = (std::popcount(st.histReg & 0x1b) +
                       static_cast<int>((h >> 9) & 1)) &
                1;
            break;
          }
          case BranchClass::Random:
          default:
            outcome = st.rng.chance(0.5);
            break;
        }
        st.histReg = (st.histReg << 1) | (outcome ? 1 : 0);
        return outcome;
    }

    // --- emission ----------------------------------------------------

    void
    emitPlainOp(Walk &st) const
    {
        MicroOp op;
        op.pc = st.pc;
        const std::uint64_t h = mix(st.pc, p_.seed, 0x0b);
        const double u = static_cast<double>(h % 10000) / 10000.0;
        if (u < p_.loadFrac) {
            op.setType(OpType::Load);
            op.memAddr = dataAddress(st);
            st.lastDataBlock = blockAlign(op.memAddr);
            op.dest = static_cast<std::uint8_t>((h >> 16) % 24);
            op.srcA = st.rng.chance(0.30) && st.lastDest != noReg
                ? st.lastDest
                : static_cast<std::uint8_t>(st.rng.below(numArchRegs));
            st.lastDest = op.dest;
        } else if (u < p_.loadFrac + p_.storeFrac) {
            op.setType(OpType::Store);
            op.memAddr = dataAddress(st);
            st.lastDataBlock = blockAlign(op.memAddr);
            op.srcA = st.rng.chance(0.40) && st.lastDest != noReg
                ? st.lastDest
                : static_cast<std::uint8_t>(st.rng.below(numArchRegs));
            op.srcB = static_cast<std::uint8_t>((h >> 20) % numArchRegs);
        } else {
            const double fp_cut =
                p_.loadFrac + p_.storeFrac +
                p_.fpFrac * (1.0 - p_.loadFrac - p_.storeFrac);
            op.setType(u < fp_cut ? OpType::FpAlu : OpType::IntAlu);
            op.dest = static_cast<std::uint8_t>((h >> 16) % numArchRegs);
            op.srcA = st.rng.chance(0.45) && st.lastDest != noReg
                ? st.lastDest
                : static_cast<std::uint8_t>(st.rng.below(numArchRegs));
            op.srcB = static_cast<std::uint8_t>((h >> 24) % numArchRegs);
            st.lastDest = op.dest;
        }
        st.out.push_back(op);
        st.pc += 4;
        ++st.opsSinceTerm;
    }

    void
    emitControl(Walk &st, OpType type, bool taken, Addr target) const
    {
        MicroOp op;
        op.pc = st.pc;
        op.setType(type);
        op.setTaken(taken);
        op.setBranchTarget(taken ? target : 0);
        op.srcA = st.lastDest != noReg && st.rng.chance(0.2)
            ? st.lastDest
            : static_cast<std::uint8_t>(st.rng.below(numArchRegs));
        st.out.push_back(op);
        st.pc = taken ? target : st.pc + 4;
        st.opsSinceTerm = 0;
    }

    /** Emit one instruction (static decode at the walk's PC). */
    void
    step(Walk &st) const
    {
        const Addr pc = st.pc;
        if (!isTerminator(st, pc)) {
            emitPlainOp(st);
            return;
        }

        const TermKind kind = termKind(pc);
        switch (kind) {
          case TermKind::Call: {
            // Bounded stack: beyond the modeled depth the oldest frame
            // is dropped (matching RAS overflow) so the decode at this
            // PC is always a call.
            const Addr callee = callTarget(st, pc);
            if (st.depth() >= p_.maxCallDepth)
                st.callStack.erase(st.callStack.begin());
            st.callStack.push_back(pc + 4);
            emitControl(st, OpType::Call, true, callee);
            break;
          }
          case TermKind::Return: {
            // A return with an empty stack is the handler's final
            // return into the dispatcher: still a return instruction,
            // its target just isn't a recorded frame.
            Addr ret;
            if (st.callStack.empty()) {
                ret = indirectTarget(st, pc);
            } else {
                ret = st.callStack.back();
                st.callStack.pop_back();
            }
            emitControl(st, OpType::Return, true, ret);
            break;
          }
          case TermKind::Indirect:
            emitControl(st, OpType::BranchIndirect, true,
                        indirectTarget(st, pc));
            break;
          case TermKind::CondBackward: {
            // Loop branch: per-PC-constant trip count.
            const std::uint64_t h = mix(pc, p_.seed, 0x100b);
            const unsigned trips = 2 + static_cast<unsigned>(h % 13);
            const unsigned count = ++st.loopCounts[pc];
            const bool taken = count % trips != 0;
            const Addr target = pc - 4 * (4 + (h >> 8) % 28);
            emitControl(st, OpType::BranchCond, taken, target);
            st.histReg = (st.histReg << 1) | (taken ? 1 : 0);
            break;
          }
          case TermKind::CondForward: {
            const bool taken = conditionalOutcome(st, pc);
            const std::uint64_t h = mix(pc, p_.seed, 0x5c1);
            const Addr target = pc + 4 + 4 * (5 + h % 26);
            emitControl(st, OpType::BranchCond, taken, target);
            break;
          }
        }
    }
};

} // namespace

EventTrace
SyntheticGenerator::generateEvent(std::uint64_t id) const
{
    return generateShaped(id, nullptr);
}

EventTrace
SyntheticGenerator::generateEvent(std::uint64_t id,
                                  const EventShape &shape) const
{
    return generateShaped(id, &shape);
}

EventTrace
SyntheticGenerator::generateShaped(std::uint64_t id,
                                   const EventShape *shape) const
{
    const AppProfile &p = profile_;
    EventTrace trace;
    trace.id = id;

    WalkEngine engine(p);
    Walk st(mix(p.seed, id, 0xe7e47));

    st.eventId = id;
    if (shape) {
        if (shape->handler >= p.numHandlerTypes)
            panic("event shape handler %u out of range %u",
                  shape->handler, p.numHandlerTypes);
        st.handler = shape->handler;
        st.keyRegion = shape->keyRegion;
        st.keyBytes = shape->keyBytes;
        st.keyFrac = shape->keyFrac;
    } else {
        // Handler popularity: half the events come from a skewed head
        // of popular handlers (timers, scroll), half are spread
        // uniformly — consecutive events usually run *different* code,
        // which is what destroys instruction locality in asynchronous
        // programs (§2.1).
        st.handler = static_cast<std::uint32_t>(
            st.rng.chance(0.5) ? st.rng.skewed(p.numHandlerTypes)
                               : st.rng.below(p.numHandlerTypes));
    }
    st.eventPhase =
        static_cast<unsigned>(mix(id, st.handler, 0x9a5e) % 64);
    st.targetLen = shape && shape->targetLen
        ? std::max<std::size_t>(shape->targetLen, p.minEventLen)
        : engine.drawLength(st.rng);
    st.argObject = layout::argObjectBase + id * 4096;
    st.allocRegion = layout::allocBase +
        id * (2ULL * p.allocBlocksPerEvent * blockBytes);
    st.pc = engine.handlerEntry(st.handler);

    trace.handlerType = st.handler;
    trace.handlerPc = st.pc;
    trace.argObjectAddr = st.argObject;

    // Inter-event dependence: decided before the walk so the divergence
    // point is a property of the event, not of its length realisation.
    const bool dependent = id > 0 && st.rng.chance(p.dependencyRate);
    const double div_frac = 0.15 + 0.70 * st.rng.real();

    engine.run(st);
    trace.ops = std::move(st.out);

    if (dependent) {
        trace.divergencePoint = std::min(
            trace.ops.size() - 1,
            static_cast<std::size_t>(
                div_frac * static_cast<double>(trace.ops.size())));

        // The wrong path a pre-execution follows after reading a stale
        // value: a fresh walk from the divergence PC with its own
        // random stream. Often shorter than the real remainder (the
        // paper's ~2% of forked pre-executions that fail early).
        Walk bad(mix(p.seed, id, 0xbad));
        bad.eventId = id;
        bad.handler = st.handler;
        bad.eventPhase = (st.eventPhase + 17) % 64;
        bad.argObject = st.argObject;
        bad.allocRegion = st.allocRegion;
        bad.keyRegion = st.keyRegion;
        bad.keyBytes = st.keyBytes;
        bad.keyFrac = st.keyFrac;
        bad.pc = trace.ops[trace.divergencePoint].pc;
        const std::size_t remainder =
            trace.ops.size() - trace.divergencePoint;
        bad.targetLen = std::max<std::size_t>(
            1,
            static_cast<std::size_t>(static_cast<double>(remainder) *
                                     (0.30 + 0.70 * bad.rng.real())));
        engine.run(bad);
        trace.divergedTail = std::move(bad.out);
    }

    return trace;
}

std::vector<AddrRange>
SyntheticGenerator::warmSet() const
{
    const AppProfile &p = profile_;
    std::vector<AddrRange> ranges;
    // Shared runtime code.
    ranges.emplace_back(layout::sharedCodeBase,
                        layout::sharedCodeBase +
                            Addr{p.sharedCodeBlocks} * blockBytes);
    // The application's entire warm code pool (handlers + callees).
    const Addr region_bytes = Addr{p.blocksPerRegion} * blockBytes;
    ranges.emplace_back(layout::appCodeBase,
                        layout::appCodeBase +
                            p.codeRegionPool * region_bytes);
    // The whole shared heap (hot window and tail).
    ranges.emplace_back(layout::sharedHeapBase,
                        layout::sharedHeapBase +
                            Addr{p.sharedHeapBlocks} * blockBytes);
    return ranges;
}

std::unique_ptr<InMemoryWorkload>
SyntheticGenerator::generate() const
{
    std::vector<EventTrace> events;
    events.reserve(profile_.numEvents);
    for (std::uint64_t id = 0; id < profile_.numEvents; ++id)
        events.push_back(generateEvent(id));
    auto workload = std::make_unique<InMemoryWorkload>(
        profile_.name, std::move(events));
    workload->setWarmSet(warmSet());
    return workload;
}

} // namespace espsim
