/**
 * @file
 * Memory-bounded lazy workload: events are generated on demand and a
 * small window is cached, instead of materialising the whole stream.
 *
 * The simulator only ever holds references to the current event and
 * the ESP queue's two lookahead events, so a window of a few traces
 * suffices — this is how multi-hundred-million-instruction runs stay
 * within memory. Honors the Workload contract that a reference stays
 * valid until event idx+3 is requested.
 *
 * Safe to share across concurrently replaying simulators (the parallel
 * sweep engine runs several configs against one workload at once): the
 * cache is guarded by a mutex, and each reader thread pins the traces
 * it was handed recently, so eviction driven by a thread far ahead can
 * never invalidate a reference a lagging thread still holds. The
 * reference-validity contract is per calling thread.
 */

#ifndef ESPSIM_WORKLOAD_LAZY_HH
#define ESPSIM_WORKLOAD_LAZY_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "trace/workload.hh"
#include "workload/generator.hh"

namespace espsim
{

/** Workload backed by on-demand generation with a bounded cache. */
class LazyWorkload : public Workload
{
  public:
    /** @p window traces are kept resident (>= 4 per the contract). */
    explicit LazyWorkload(AppProfile profile, std::size_t window = 8);

    const std::string &name() const override { return name_; }
    std::size_t numEvents() const override { return numEvents_; }
    const EventTrace &event(std::size_t idx) const override;
    std::vector<AddrRange> warmSet() const override;

    /** Traces currently materialised (tests / memory accounting). */
    std::size_t residentTraces() const;
    /** Total events generated over the lifetime (cache misses). */
    std::uint64_t generations() const;

  private:
    SyntheticGenerator generator_;
    std::string name_;
    std::size_t numEvents_;
    std::size_t window_;

    /** One cached trace, keyed by event index. */
    using Entry =
        std::pair<std::size_t, std::shared_ptr<const EventTrace>>;

    mutable std::mutex mutex_;
    /** Sorted by event index; binary-searched. The window is small
     *  (a handful of entries per reader), so a flat vector beats the
     *  node-per-entry std::map it replaced. */
    mutable std::vector<Entry> cache_;
    /**
     * Traces handed to each reader thread recently, keyed by event
     * index (sorted). A pin keeps its trace alive (shared_ptr) even
     * after cache eviction, and is released only once the thread
     * requests an index window_ ahead — so returned references honour
     * the validity contract no matter how many event() calls the
     * thread makes in between (ESP re-requests its lookahead events on
     * every stall episode).
     */
    struct PinWindow
    {
        std::thread::id tid;
        std::vector<Entry> pins; //!< sorted by event index
    };
    mutable std::vector<PinWindow> pins_;
    mutable std::uint64_t generations_ = 0;

    /** Sorted-vector lower bound on the event-index key. */
    static std::vector<Entry>::iterator
    findAt(std::vector<Entry> &entries, std::size_t idx);
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_LAZY_HH
