/**
 * @file
 * Memory-bounded lazy workload: events are generated on demand and a
 * small window is cached, instead of materialising the whole stream.
 *
 * The simulator only ever holds references to the current event and
 * the ESP queue's two lookahead events, so a window of a few traces
 * suffices — this is how multi-hundred-million-instruction runs stay
 * within memory. Honors the Workload contract that a reference stays
 * valid until event idx+3 is requested.
 */

#ifndef ESPSIM_WORKLOAD_LAZY_HH
#define ESPSIM_WORKLOAD_LAZY_HH

#include <cstdint>
#include <map>
#include <memory>

#include "trace/workload.hh"
#include "workload/generator.hh"

namespace espsim
{

/** Workload backed by on-demand generation with a bounded cache. */
class LazyWorkload : public Workload
{
  public:
    /** @p window traces are kept resident (>= 4 per the contract). */
    explicit LazyWorkload(AppProfile profile, std::size_t window = 8);

    const std::string &name() const override { return name_; }
    std::size_t numEvents() const override { return numEvents_; }
    const EventTrace &event(std::size_t idx) const override;
    std::vector<AddrRange> warmSet() const override;

    /** Traces currently materialised (tests / memory accounting). */
    std::size_t residentTraces() const { return cache_.size(); }
    /** Total events generated over the lifetime (cache misses). */
    std::uint64_t generations() const { return generations_; }

  private:
    SyntheticGenerator generator_;
    std::string name_;
    std::size_t numEvents_;
    std::size_t window_;

    mutable std::map<std::size_t, std::unique_ptr<EventTrace>> cache_;
    mutable std::uint64_t generations_ = 0;
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_LAZY_HH
