/**
 * @file
 * Memory-bounded lazy workload: events are generated on demand and a
 * small window is cached, instead of materialising the whole stream.
 *
 * Since the streaming core landed this is a thin adapter — the cache,
 * per-reader pinning and eviction all live in StreamingWorkload; a
 * LazyWorkload is simply a StreamingWorkload over a GeneratorSource
 * (the synthetic browser-profile generator). The name survives because
 * it is the established spelling for "a browser profile replayed in
 * bounded memory" throughout the tests and docs.
 */

#ifndef ESPSIM_WORKLOAD_LAZY_HH
#define ESPSIM_WORKLOAD_LAZY_HH

#include <memory>
#include <utility>

#include "workload/streaming.hh"

namespace espsim
{

/** Workload backed by on-demand generation with a bounded cache. */
class LazyWorkload : public StreamingWorkload
{
  public:
    /** @p window traces are kept resident (>= 4 per the contract). */
    explicit LazyWorkload(AppProfile profile, std::size_t window = 8)
        : StreamingWorkload(
              std::make_unique<GeneratorSource>(std::move(profile)),
              window)
    {
    }
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_LAZY_HH
