#include "workload/multi_queue.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace espsim
{

InterleavedWorkload::InterleavedWorkload(
    std::string name, std::vector<std::unique_ptr<Workload>> queues,
    const MultiQueueConfig &config)
    : name_(std::move(name)), queues_(std::move(queues))
{
    if (queues_.empty())
        fatal("InterleavedWorkload needs at least one queue");

    Rng rng(config.seed);

    // Weighted round-robin merge: queues with more remaining events
    // are proportionally more likely to be picked, which keeps the
    // interleave fine grained without starving short queues.
    std::vector<std::size_t> next(queues_.size(), 0);
    std::size_t remaining = 0;
    for (const auto &q : queues_)
        remaining += q->numEvents();
    order_.reserve(remaining);
    while (remaining > 0) {
        std::size_t pick = rng.below(remaining);
        for (unsigned q = 0; q < queues_.size(); ++q) {
            const std::size_t left = queues_[q]->numEvents() - next[q];
            if (pick < left) {
                Slot slot;
                slot.queue = q;
                slot.queueIdx = next[q]++;
                order_.push_back(slot);
                break;
            }
            pick -= left;
        }
        --remaining;
    }

    // The runtime's dispatch predictions follow this intended order;
    // barrier reorderings then swap adjacent dispatches *after* the
    // prediction was made, so the affected slot's prediction is wrong
    // (§4.5's synchronous-barrier example).
    const std::size_t n = order_.size();
    for (std::size_t i = 0; i < n; ++i) {
        order_[i].predicted1 = i + 1;
        order_[i].predicted2 = i + 2;
    }
    for (std::size_t i = 0; i + 2 < n; ++i) {
        if (rng.chance(config.barrierRate)) {
            std::swap(order_[i + 1], order_[i + 2]);
            // The runtime believed the event now sitting at i+2 would
            // run first.
            order_[i].predicted1 = i + 2;
            order_[i].predicted2 = i + 1;
            // Restore the swapped slots' own forward predictions.
            order_[i + 1].predicted1 = i + 2;
            order_[i + 1].predicted2 = i + 3;
            order_[i + 2].predicted1 = i + 3;
            order_[i + 2].predicted2 = i + 4;
        }
    }

    // Union of the queues' warm sets.
    for (const auto &q : queues_) {
        const auto ranges = q->warmSet();
        warmSet_.insert(warmSet_.end(), ranges.begin(), ranges.end());
    }
}

const EventTrace &
InterleavedWorkload::event(std::size_t idx) const
{
    if (idx >= order_.size())
        panic("interleaved workload: event %zu out of range %zu", idx,
              order_.size());
    const Slot &slot = order_[idx];
    return queues_[slot.queue]->event(slot.queueIdx);
}

std::size_t
InterleavedWorkload::predictedNext(std::size_t current,
                                   unsigned ahead) const
{
    if (current >= order_.size())
        return current + ahead;
    const Slot &slot = order_[current];
    switch (ahead) {
      case 1:
        return slot.predicted1;
      case 2:
        return slot.predicted2;
      default:
        return current + ahead;
    }
}

unsigned
InterleavedWorkload::queueOf(std::size_t idx) const
{
    if (idx >= order_.size())
        panic("queueOf: event %zu out of range", idx);
    return order_[idx].queue;
}

double
InterleavedWorkload::dispatchPredictionAccuracy() const
{
    if (order_.size() < 3)
        return 1.0;
    std::size_t correct = 0, total = 0;
    for (std::size_t i = 0; i + 2 < order_.size(); ++i) {
        total += 2;
        correct += order_[i].predicted1 == i + 1;
        correct += order_[i].predicted2 == i + 2;
    }
    return static_cast<double>(correct) / static_cast<double>(total);
}

} // namespace espsim
