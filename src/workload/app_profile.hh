/**
 * @file
 * Per-application workload profiles.
 *
 * The paper drives its evaluation with instruction traces of seven live
 * Web 2.0 sites captured from an instrumented Chromium/V8 (Figure 6).
 * Those traces are not reproducible offline, so each site is replaced
 * by a calibrated profile for the synthetic generator. A profile fixes
 * the structural properties ESP exploits (or suffers from): event count
 * and length, static code footprint, shared-runtime locality, branch
 * behaviour mix, data-access mix, and the inter-event dependence rate.
 */

#ifndef ESPSIM_WORKLOAD_APP_PROFILE_HH
#define ESPSIM_WORKLOAD_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace espsim
{

/** Tunable description of one asynchronous application. */
struct AppProfile
{
    std::string name;
    /** "Actions performed" column of the paper's Figure 6. */
    std::string description;

    /** Master seed; everything about the workload derives from it. */
    std::uint64_t seed = 1;

    // --- Scale (the paper's counts, divided by ~an order of magnitude
    // --- so every figure regenerates in seconds; ratios preserved).
    std::size_t numEvents = 100;
    double avgEventLen = 4000;   //!< mean instructions per event
    std::size_t minEventLen = 300;

    // --- Static code structure.
    unsigned numHandlerTypes = 32;    //!< distinct callback functions
    unsigned hotRegionsPerHandler = 12;//!< call-neighbourhood span, regions
    unsigned blocksPerRegion = 16;    //!< region size in 64 B blocks
    unsigned codeRegionPool = 1024;   //!< warm app code image, regions
    /** Instructions between dispatch re-basings of the code walk. */
    unsigned phasePeriod = 600;
    /** Code windows an event cycles through (bounds its footprint). */
    unsigned windowsPerEvent = 12;
    double sharedCodeFraction = 0.30; //!< calls landing in the runtime
    unsigned sharedCodeBlocks = 192;  //!< shared runtime size (blocks)
    double coldCodeFraction = 0.11;   //!< calls landing in fresh code

    // --- Instruction mix.
    double loadFrac = 0.26;
    double storeFrac = 0.11;
    double avgBasicBlockLen = 6.0;    //!< non-branch ops per block
    double callFrac = 0.22;           //!< blocks ending in a call
    double returnFrac = 0.18;         //!< blocks ending in a return
    double indirectFrac = 0.06;       //!< branches that are indirect
    double loopFrac = 0.10;           //!< blocks that are loop bodies
    double fpFrac = 0.02;             //!< ALU ops that are FP

    // --- Branch behaviour (fractions of conditional-branch PCs).
    double biasedBranchFrac = 0.74;
    double correlatedBranchFrac = 0.10; //!< remainder is random
    double branchBias = 0.94;           //!< bias of biased branches
    unsigned maxCallDepth = 14;         //!< bounded by the 16-deep RAS

    // --- Data-access mix (fractions of memory ops; must sum to <= 1,
    // --- remainder treated as stack accesses).
    double argFrac = 0.10;        //!< event argument object
    double sharedHeapFrac = 0.24; //!< app-wide heap, skewed reuse
    double allocFrac = 0.10;      //!< fresh per-event allocations
    double coldDataFrac = 0.004;  //!< streaming, never-reused data
    unsigned sharedHeapBlocks = 12288;   //!< shared heap size (blocks)
    /** Fraction of shared-heap accesses landing in the hot window. */
    double sharedHotFrac = 0.94;
    unsigned sharedHotBlocks = 192;      //!< hot-window size (blocks)
    /** Chance a memory op re-touches the previous data block. */
    double dataRepeatFrac = 0.50;
    unsigned allocBlocksPerEvent = 8;    //!< fresh blocks per event

    // --- Inter-event dependence (drives speculation divergence).
    double dependencyRate = 0.02;

    // --- Paper's Figure 6 reference values, for the fig06 table.
    double paperEvents = 0;
    double paperInstMillions = 0;

    /** The seven-site suite of the paper's Figure 6. */
    static std::vector<AppProfile> webSuite();

    /** Look up one suite profile by name (fatal if unknown). */
    static AppProfile byName(const std::string &name);

    /** Tiny profile for fast unit tests. */
    static AppProfile testProfile();
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_APP_PROFILE_HH
