/**
 * @file
 * Streaming workload core: events are produced on demand by an
 * EventSource and retired once the replay window moves past them, so
 * multi-million-event runs hold only a bounded sliding window of
 * traces resident — peak RSS is flat in the stream length.
 *
 * This generalises the LazyWorkload cache (which is now a thin adapter
 * over a SyntheticGenerator-backed source): any deterministic
 * id -> EventTrace function can feed the simulator, including the
 * request-serving profiles in src/server/.
 *
 * Retired traces are recycled through a small free list: the
 * EventTrace (and its OpSequence arrays) is move-assigned into, so in
 * steady state the per-event allocations are only what trace
 * generation itself needs beyond the recycled capacity — the
 * window-advance boundary is the only place the streaming loop
 * allocates (see tests/test_streaming.cc for the ESPSIM_ALLOC_COUNTER
 * assertions).
 *
 * Concurrency contract is identical to the old LazyWorkload: safe to
 * share across concurrently replaying simulators; the cache is
 * mutex-guarded and each reader thread pins its recent window, so
 * eviction by a fast thread never invalidates a reference a lagging
 * thread still holds. The Workload reference-validity contract
 * (valid until idx + 3 is requested) is honoured per calling thread.
 */

#ifndef ESPSIM_WORKLOAD_STREAMING_HH
#define ESPSIM_WORKLOAD_STREAMING_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "trace/workload.hh"
#include "workload/generator.hh"

namespace espsim
{

/**
 * A deterministic event-trace producer: makeEvent(id) must return a
 * bit-identical trace for the same id every time it is called (the
 * streaming cache regenerates evicted events on re-request, e.g. when
 * a second simulator replays the same shared workload).
 */
class EventSource
{
  public:
    virtual ~EventSource() = default;

    /** Stream name (appears in every report). */
    virtual const std::string &name() const = 0;

    /** Total number of events in the stream. */
    virtual std::size_t numEvents() const = 0;

    /** Generate the @p id-th event trace. */
    virtual EventTrace makeEvent(std::uint64_t id) const = 0;

    /** LLC-resident ranges at session start (Workload::warmSet). */
    virtual std::vector<AddrRange> warmSet() const { return {}; }
};

/** EventSource over the synthetic browser-profile generator. */
class GeneratorSource : public EventSource
{
  public:
    explicit GeneratorSource(AppProfile profile)
        : generator_(std::move(profile)),
          name_(generator_.profile().name)
    {
    }

    const std::string &name() const override { return name_; }
    std::size_t numEvents() const override
    {
        return generator_.profile().numEvents;
    }
    EventTrace makeEvent(std::uint64_t id) const override
    {
        return generator_.generateEvent(id);
    }
    std::vector<AddrRange> warmSet() const override
    {
        return generator_.warmSet();
    }

  private:
    SyntheticGenerator generator_;
    std::string name_;
};

/** Workload over an EventSource with a bounded sliding window. */
class StreamingWorkload : public Workload
{
  public:
    /** @p window traces are kept resident (>= 4 per the contract). */
    explicit StreamingWorkload(std::unique_ptr<const EventSource> source,
                               std::size_t window = 8);

    const std::string &name() const override { return name_; }
    std::size_t numEvents() const override { return numEvents_; }
    const EventTrace &event(std::size_t idx) const override;
    std::vector<AddrRange> warmSet() const override;

    /** Traces currently materialised (tests / memory accounting). */
    std::size_t residentTraces() const;
    /** Total events generated over the lifetime (cache misses). */
    std::uint64_t generations() const;
    /** Generations that reused a retired trace's storage. */
    std::uint64_t recycled() const;

    const EventSource &source() const { return *source_; }

  private:
    std::unique_ptr<const EventSource> source_;
    std::string name_;
    std::size_t numEvents_;
    std::size_t window_;

    /** One cached trace, keyed by event index. */
    using Entry = std::pair<std::size_t, std::shared_ptr<EventTrace>>;

    mutable std::mutex mutex_;
    /** Sorted by event index; binary-searched. The window is small
     *  (a handful of entries per reader), so a flat vector beats a
     *  node-per-entry map. */
    mutable std::vector<Entry> cache_;
    /**
     * Traces handed to each reader thread recently, keyed by event
     * index (sorted). A pin keeps its trace alive (shared_ptr) even
     * after cache eviction, and is released only once the thread
     * requests an index window_ ahead — so returned references honour
     * the validity contract no matter how many event() calls the
     * thread makes in between (ESP re-requests its lookahead events on
     * every stall episode).
     */
    struct PinWindow
    {
        std::thread::id tid;
        std::vector<Entry> pins; //!< sorted by event index
    };
    mutable std::vector<PinWindow> pins_;
    /**
     * Retired traces awaiting reuse. Only traces whose shared_ptr is
     * unique land here, so move-assigning the next generated event
     * into one can never mutate a trace a reader still references.
     */
    mutable std::vector<std::shared_ptr<EventTrace>> freeList_;
    mutable std::uint64_t generations_ = 0;
    mutable std::uint64_t recycled_ = 0;

    /** Sorted-vector lower bound on the event-index key. */
    static std::vector<Entry>::iterator
    findAt(std::vector<Entry> &entries, std::size_t idx);
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_STREAMING_HH
