#include "workload/lazy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace espsim
{

LazyWorkload::LazyWorkload(AppProfile profile, std::size_t window)
    : generator_(std::move(profile)),
      name_(generator_.profile().name),
      numEvents_(generator_.profile().numEvents),
      window_(std::max<std::size_t>(window, 4))
{
}

std::vector<LazyWorkload::Entry>::iterator
LazyWorkload::findAt(std::vector<Entry> &entries, std::size_t idx)
{
    return std::lower_bound(
        entries.begin(), entries.end(), idx,
        [](const Entry &e, std::size_t i) { return e.first < i; });
}

const EventTrace &
LazyWorkload::event(std::size_t idx) const
{
    if (idx >= numEvents_)
        panic("lazy workload '%s': event %zu out of range %zu",
              name_.c_str(), idx, numEvents_);

    std::lock_guard<std::mutex> lock(mutex_);

    auto it = findAt(cache_, idx);
    if (it == cache_.end() || it->first != idx) {
        it = cache_.insert(
            it, {idx, std::make_shared<const EventTrace>(
                          generator_.generateEvent(idx))});
        ++generations_;
    }
    std::shared_ptr<const EventTrace> trace = it->second;

    // Pin the trace in the calling thread's recent window so the
    // returned reference outlives cache eviction by other readers.
    // Pins are keyed by index and dropped only once this thread has
    // moved window_ events past them; re-requesting a lookahead event
    // therefore never pushes an older, still-live reference out.
    const std::thread::id tid = std::this_thread::get_id();
    PinWindow *win = nullptr;
    for (PinWindow &w : pins_) {
        if (w.tid == tid) {
            win = &w;
            break;
        }
    }
    if (!win) {
        pins_.push_back(PinWindow{tid, {}});
        win = &pins_.back();
    }
    auto pin = findAt(win->pins, idx);
    if (pin == win->pins.end() || pin->first != idx)
        win->pins.insert(pin, {idx, trace});
    else
        pin->second = trace;
    std::size_t drop = 0;
    while (drop < win->pins.size() &&
           win->pins[drop].first + window_ <= idx + 1) {
        ++drop;
    }
    win->pins.erase(win->pins.begin(), win->pins.begin() + drop);

    // Evict traces far behind the requested index; references to
    // events in [idx - 1, idx + window) stay valid, which covers the
    // simulator's lookahead contract (idx + 3). Entries pinned by a
    // (possibly lagging) reader are skipped, so the cache is bounded
    // by one window per reader thread plus the caller's live window.
    const std::size_t budget = window_ * pins_.size();
    for (std::size_t v = 0; cache_.size() > budget && v < cache_.size();) {
        if (cache_[v].first + window_ > idx + 1)
            break; // inside the caller's live window (and beyond)
        if (cache_[v].second.use_count() > 1)
            ++v; // another reader still holds it pinned
        else
            cache_.erase(cache_.begin() + v);
    }

    return *trace;
}

std::size_t
LazyWorkload::residentTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::uint64_t
LazyWorkload::generations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generations_;
}

std::vector<AddrRange>
LazyWorkload::warmSet() const
{
    return generator_.warmSet();
}

} // namespace espsim
