#include "workload/lazy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace espsim
{

LazyWorkload::LazyWorkload(AppProfile profile, std::size_t window)
    : generator_(std::move(profile)),
      name_(generator_.profile().name),
      numEvents_(generator_.profile().numEvents),
      window_(std::max<std::size_t>(window, 4))
{
}

const EventTrace &
LazyWorkload::event(std::size_t idx) const
{
    if (idx >= numEvents_)
        panic("lazy workload '%s': event %zu out of range %zu",
              name_.c_str(), idx, numEvents_);

    auto it = cache_.find(idx);
    if (it == cache_.end()) {
        it = cache_
                 .emplace(idx, std::make_unique<EventTrace>(
                                   generator_.generateEvent(idx)))
                 .first;
        ++generations_;
    }

    // Evict traces far behind the requested index; references to
    // events in [idx - 1, idx + window) stay valid, which covers the
    // simulator's lookahead contract (idx + 3).
    while (cache_.size() > window_) {
        auto oldest = cache_.begin();
        if (oldest->first + window_ > idx + 1)
            break; // everything resident is still in the live window
        cache_.erase(oldest);
    }

    return *it->second;
}

std::vector<AddrRange>
LazyWorkload::warmSet() const
{
    return generator_.warmSet();
}

} // namespace espsim
