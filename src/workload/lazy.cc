#include "workload/lazy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace espsim
{

LazyWorkload::LazyWorkload(AppProfile profile, std::size_t window)
    : generator_(std::move(profile)),
      name_(generator_.profile().name),
      numEvents_(generator_.profile().numEvents),
      window_(std::max<std::size_t>(window, 4))
{
}

const EventTrace &
LazyWorkload::event(std::size_t idx) const
{
    if (idx >= numEvents_)
        panic("lazy workload '%s': event %zu out of range %zu",
              name_.c_str(), idx, numEvents_);

    std::lock_guard<std::mutex> lock(mutex_);

    auto it = cache_.find(idx);
    if (it == cache_.end()) {
        it = cache_
                 .emplace(idx, std::make_shared<const EventTrace>(
                                   generator_.generateEvent(idx)))
                 .first;
        ++generations_;
    }
    std::shared_ptr<const EventTrace> trace = it->second;

    // Pin the trace in the calling thread's recent window so the
    // returned reference outlives cache eviction by other readers.
    // Pins are keyed by index and dropped only once this thread has
    // moved window_ events past them; re-requesting a lookahead event
    // therefore never pushes an older, still-live reference out.
    auto &pins = pins_[std::this_thread::get_id()];
    pins[idx] = trace;
    for (auto pin = pins.begin(); pin != pins.end();) {
        if (pin->first + window_ > idx + 1)
            break;
        pin = pins.erase(pin);
    }

    // Evict traces far behind the requested index; references to
    // events in [idx - 1, idx + window) stay valid, which covers the
    // simulator's lookahead contract (idx + 3). Entries pinned by a
    // (possibly lagging) reader are skipped, so the cache is bounded
    // by one window per reader thread plus the caller's live window.
    const std::size_t budget = window_ * pins_.size();
    for (auto victim = cache_.begin();
         cache_.size() > budget && victim != cache_.end();) {
        if (victim->first + window_ > idx + 1)
            break; // inside the caller's live window (and beyond)
        if (victim->second.use_count() > 1)
            ++victim; // another reader still holds it pinned
        else
            victim = cache_.erase(victim);
    }

    return *trace;
}

std::size_t
LazyWorkload::residentTraces() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

std::uint64_t
LazyWorkload::generations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generations_;
}

std::vector<AddrRange>
LazyWorkload::warmSet() const
{
    return generator_.warmSet();
}

} // namespace espsim
