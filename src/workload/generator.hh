/**
 * @file
 * Synthetic asynchronous-program trace generator.
 *
 * Produces, deterministically from an AppProfile seed, the event-trace
 * stream of an asynchronous application: short varied events drawn from
 * a set of handler types, random-walking a large static code image
 * (hot handler regions + a shared runtime + continually-touched fresh
 * code, which yields the compulsory LLC misses ESP feeds on), with a
 * calibrated mix of loads/stores/branches and a small rate of
 * read-after-write dependences between adjacent events (which make
 * speculative pre-execution diverge).
 *
 * Every event regenerates bit-identically from (profile.seed, eventId),
 * which is what lets ESP's pre-execution observe "the same event" the
 * normal execution will later run — exactly the property the paper got
 * from forking off a second Chromium renderer.
 */

#ifndef ESPSIM_WORKLOAD_GENERATOR_HH
#define ESPSIM_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <memory>

#include "trace/workload.hh"
#include "workload/app_profile.hh"

namespace espsim
{

/** Simulated virtual-address-space layout used by generated traces. */
namespace layout
{
/** Shared runtime/JS-engine code (hot across all events). */
constexpr Addr sharedCodeBase = 0x1000'0000;
/** Application code image (handler regions live here). */
constexpr Addr appCodeBase = 0x2000'0000;
/** Call stack (grows down). */
constexpr Addr stackBase = 0x7fff'0000;
/** Event argument objects (one 4 KB slot per event). */
constexpr Addr argObjectBase = 0x9000'0000;
/** Per-event fresh allocations (bump allocated). */
constexpr Addr allocBase = 0xa000'0000;
/** Application shared heap. */
constexpr Addr sharedHeapBase = 0xc000'0000;
/** Key/value store heap (request-serving profiles, src/server). */
constexpr Addr kvHeapBase = 0xd000'0000;
/** Streaming / never-reused data. */
constexpr Addr coldDataBase = 0x1'0000'0000;
} // namespace layout

/**
 * External shaping of one generated event. Request-serving profiles
 * (src/server) pick the handler (GET/SET/DEL op, HTTP route), the
 * length class and the key's value object per request, then delegate
 * the instruction-level walk to the synthetic generator. Unshaped
 * generation is untouched: the browser profiles' random streams (and
 * thus every committed golden artifact) are bit-identical with or
 * without this struct existing.
 */
struct EventShape
{
    /** Handler type to run (must be < profile.numHandlerTypes). */
    std::uint32_t handler = 0;
    /** Target instruction count (0 = draw from the profile). */
    std::size_t targetLen = 0;
    /** Base of the value object this request touches (0 = none). */
    Addr keyRegion = 0;
    /** Size of the value object in bytes. */
    std::size_t keyBytes = 0;
    /** Fraction of memory ops redirected onto the value object. */
    double keyFrac = 0.0;
};

/** Deterministic generator of an application's event stream. */
class SyntheticGenerator
{
  public:
    explicit SyntheticGenerator(AppProfile profile);

    /** The profile driving this generator. */
    const AppProfile &profile() const { return profile_; }

    /** Generate the complete workload (profile.numEvents events). */
    std::unique_ptr<InMemoryWorkload> generate() const;

    /**
     * Generate the trace of one event. Bit-identical for the same
     * (profile.seed, id) pair.
     */
    EventTrace generateEvent(std::uint64_t id) const;

    /**
     * Generate one event with externally chosen handler / length /
     * key-value footprint. Bit-identical for the same
     * (profile.seed, id, shape) triple.
     */
    EventTrace generateEvent(std::uint64_t id,
                             const EventShape &shape) const;

    /**
     * The application's standing memory image: shared runtime code,
     * every handler's hot code regions, and the shared heap. Installed
     * as the workload's warm set (resident in the LLC at session
     * start, like the long-running browser the paper traces).
     */
    std::vector<AddrRange> warmSet() const;

  private:
    AppProfile profile_;

    EventTrace generateShaped(std::uint64_t id,
                              const EventShape *shape) const;
};

} // namespace espsim

#endif // ESPSIM_WORKLOAD_GENERATOR_HH
