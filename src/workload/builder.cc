#include "workload/builder.hh"

#include "common/logging.hh"

namespace espsim
{

EventTrace &
WorkloadBuilder::current()
{
    if (!open_)
        fatal("WorkloadBuilder: add ops after beginEvent()");
    return events_.back();
}

WorkloadBuilder &
WorkloadBuilder::beginEvent(Addr handler_pc, Addr arg_object)
{
    EventTrace trace;
    trace.id = events_.size();
    trace.handlerPc = handler_pc;
    trace.argObjectAddr = arg_object;
    events_.push_back(std::move(trace));
    open_ = true;
    return *this;
}

WorkloadBuilder &
WorkloadBuilder::op(const MicroOp &op)
{
    current().ops.push_back(op);
    return *this;
}

WorkloadBuilder &
WorkloadBuilder::alu(Addr pc)
{
    MicroOp o;
    o.pc = pc;
    o.setType(OpType::IntAlu);
    o.dest = 1;
    return op(o);
}

WorkloadBuilder &
WorkloadBuilder::aluBlock(Addr pc, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        alu(pc + 4 * i);
    return *this;
}

WorkloadBuilder &
WorkloadBuilder::load(Addr pc, Addr addr, std::uint8_t dest)
{
    MicroOp o;
    o.pc = pc;
    o.setType(OpType::Load);
    o.memAddr = addr;
    o.dest = dest;
    return op(o);
}

WorkloadBuilder &
WorkloadBuilder::store(Addr pc, Addr addr)
{
    MicroOp o;
    o.pc = pc;
    o.setType(OpType::Store);
    o.memAddr = addr;
    o.srcA = 1;
    return op(o);
}

WorkloadBuilder &
WorkloadBuilder::branch(Addr pc, bool taken, Addr target)
{
    MicroOp o;
    o.pc = pc;
    o.setType(OpType::BranchCond);
    o.setTaken(taken);
    o.setBranchTarget(taken ? target : 0);
    return op(o);
}

WorkloadBuilder &
WorkloadBuilder::call(Addr pc, Addr target)
{
    MicroOp o;
    o.pc = pc;
    o.setType(OpType::Call);
    o.setTaken(true);
    o.setBranchTarget(target);
    return op(o);
}

WorkloadBuilder &
WorkloadBuilder::ret(Addr pc, Addr target)
{
    MicroOp o;
    o.pc = pc;
    o.setType(OpType::Return);
    o.setTaken(true);
    o.setBranchTarget(target);
    return op(o);
}

WorkloadBuilder &
WorkloadBuilder::dependsOnPrevious(std::size_t divergence_point,
                                   OpSequence diverged_tail)
{
    EventTrace &trace = current();
    if (trace.id == 0)
        fatal("WorkloadBuilder: the first event has no predecessor");
    if (divergence_point >= trace.ops.size())
        fatal("WorkloadBuilder: divergence point %zu past event end %zu",
              divergence_point, trace.ops.size());
    trace.divergencePoint = divergence_point;
    trace.divergedTail = std::move(diverged_tail);
    return *this;
}

std::size_t
WorkloadBuilder::currentEventSize() const
{
    return open_ ? events_.back().ops.size() : 0;
}

std::unique_ptr<InMemoryWorkload>
WorkloadBuilder::build(std::string name)
{
    if (events_.empty())
        fatal("WorkloadBuilder: build() with no events");
    open_ = false;
    return std::make_unique<InMemoryWorkload>(std::move(name),
                                              std::move(events_));
}

} // namespace espsim
