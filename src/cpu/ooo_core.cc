#include "cpu/ooo_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/pacer.hh"
#include "report/interval.hh"
#include "report/spans.hh"
#include "report/telemetry.hh"

namespace espsim
{

const char *
cycleBucketName(CycleBucket bucket)
{
    switch (bucket) {
      case CycleBucket::Retiring: return "retiring";
      case CycleBucket::FrontendBubble: return "frontend_bubble";
      case CycleBucket::IcacheMiss: return "icache_miss";
      case CycleBucket::DcacheMiss: return "dcache_miss";
      case CycleBucket::LsqFull: return "lsq_full";
      case CycleBucket::MispredictRedirect: return "mispredict_redirect";
      case CycleBucket::Drain: return "drain";
      case CycleBucket::LooperOverhead: return "looper_overhead";
      case CycleBucket::EspPreExec: return "esp_pre_exec";
      case CycleBucket::Runahead: return "runahead";
      case CycleBucket::Idle: return "idle";
    }
    panic("cycleBucketName: bad bucket %u",
          static_cast<unsigned>(bucket));
}

OoOCore::OoOCore(const CoreConfig &config, MemoryHierarchy &mem,
                 PentiumMPredictor &bp, const PrefetcherConfig &prefetch,
                 CoreHooks &hooks)
    : config_(config), mem_(mem), bp_(bp), hooks_(hooks),
      prefetchCfg_(prefetch)
{
    // The pipeline queues are bounded by construction; size their
    // rings once here so the run loop never allocates.
    rob_.reset(config_.robSize);
    lsq_.reset(config_.lsqSize);
    specBucket_ = hooks_.engine() == SpecEngine::Runahead
        ? CycleBucket::Runahead
        : CycleBucket::EspPreExec;
}

void
OoOCore::charge(CycleBucket bucket, Cycle cycles)
{
    stats_.bucketCycles[static_cast<std::size_t>(bucket)] += cycles;
}

void
OoOCore::chargeStall(CycleBucket bucket, Cycle cycles)
{
    // Re-charge the portion of the stall shadow the speculation engine
    // reported consumed (data-miss shadows are reported at detection
    // but materialise later, at the ROB head / LSQ / drain).
    const Cycle spec = std::min(pendingSpecCycles_, cycles);
    pendingSpecCycles_ -= spec;
    charge(specBucket_, spec);
    charge(bucket, cycles - spec);
}

void
OoOCore::registerStats(StatRegistry &reg,
                       const std::string &prefix) const
{
    reg.registerScalar(prefix + "cycles", &stats_.cycles);
    reg.registerScalar(prefix + "instructions", &stats_.instructions);
    reg.registerScalar(prefix + "events", &stats_.events);
    reg.registerScalar(prefix + "branches", &stats_.branches);
    reg.registerScalar(prefix + "mispredicts", &stats_.mispredicts);
    reg.registerScalar(prefix + "btb_misses", &stats_.btbMisses);
    reg.registerScalar(prefix + "loads", &stats_.loads);
    reg.registerScalar(prefix + "stores", &stats_.stores);
    reg.registerScalar(prefix + "llc_misses_instr",
                       &stats_.llcMissesInstr);
    reg.registerScalar(prefix + "llc_misses_data",
                       &stats_.llcMissesData);
    reg.registerScalar(prefix + "stall_cycles.icache",
                       &stats_.icacheStallCycles);
    reg.registerScalar(prefix + "stall_cycles.branch",
                       &stats_.branchStallCycles);
    reg.registerScalar(prefix + "stall_cycles.rob",
                       &stats_.robStallCycles);
    reg.registerScalar(prefix + "stall_cycles.lsq",
                       &stats_.lsqStallCycles);
    reg.registerScalar(prefix + "stall_windows",
                       &stats_.stallWindows);
    reg.registerDerived(prefix + "stride.dropped_wraps", [this] {
        return static_cast<double>(strideData_.droppedWraps());
    });
    reg.registerDerived(prefix + "ipc",
                        [this] { return stats_.ipc(); });
    for (unsigned b = 0; b < numCycleBuckets; ++b) {
        reg.registerScalar(prefix + "cycle_bucket." +
                               cycleBucketName(static_cast<CycleBucket>(b)),
                           &stats_.bucketCycles[b]);
    }
}

void
OoOCore::advanceSlot(CycleBucket bucket)
{
    if (++slotInCycle_ >= config_.width) {
        slotInCycle_ = 0;
        ++fetchCycle_;
        charge(bucket, 1);
    }
}

void
OoOCore::retireForSpace(const MicroOp &next_op)
{
    if (rob_.size() < config_.robSize)
        return;
    const RobEntry head = rob_.front();
    rob_.pop_front();
    const Cycle retire_at = std::max(head.complete, lastRetire_);
    lastRetire_ = retire_at;
    if (retire_at > fetchCycle_) {
        const Cycle idle = retire_at - fetchCycle_;
        stats_.robStallCycles += idle;
        chargeStall(CycleBucket::DcacheMiss, idle);
        if (timeline_) {
            timeline_->recordStall(TimelineStall::DataMiss, fetchCycle_,
                                   idle);
        }
        (void)next_op;
        fetchCycle_ = retire_at;
        slotInCycle_ = 0;
    }
}

void
OoOCore::processOp(const MicroOp &op)
{
    retireForSpace(op);

    // --- Fetch: access the I-cache on block transitions. ------------
    const Addr iblock = blockAlign(op.pc);
    if (iblock != curFetchBlock_) {
        curFetchBlock_ = iblock;
        const AccessResult fetch = mem_.accessInstr(op.pc, fetchCycle_);
        if (prefetchCfg_.nextLineInstr)
            nlInstr_.notifyAccess(mem_, op.pc, fetchCycle_);
        const Cycle l1_lat = mem_.config().l1i.hitLatency;
        const Cycle hidden = l1_lat + config_.fetchQueueHide;
        if (fetch.latency > hidden) {
            const Cycle bubble = fetch.latency - hidden;
            stats_.icacheStallCycles += bubble;
            if (timeline_) {
                timeline_->recordStall(TimelineStall::InstrMiss,
                                       fetchCycle_, bubble);
            }
            if (fetch.llcMiss())
                ++stats_.llcMissesInstr;
            if (bubble >= config_.stallReportThreshold) {
                ++stats_.stallWindows;
                StallContext ctx;
                ctx.now = fetchCycle_;
                ctx.idleCycles = bubble;
                ctx.kind = StallKind::InstrLlcMiss;
                ctx.triggerOpIdx = curOpIdx_;
                pendingSpecCycles_ +=
                    std::min(hooks_.onStall(ctx), bubble);
            }
            chargeStall(CycleBucket::IcacheMiss, bubble);
            fetchCycle_ += bubble;
            slotInCycle_ = 0;
        }
    }

    // Dependency-limited issue: a consumer of the immediately
    // preceding producer can't issue in the same slot, and loads add a
    // load-to-use slot — this keeps the no-stall IPC of real code
    // (~2-2.5) rather than the fetch-width bound.
    if ((op.srcA != noReg && op.srcA == lastDest_) ||
        (op.srcB != noReg && op.srcB == lastDest_)) {
        advanceSlot(CycleBucket::FrontendBubble);
        advanceSlot(CycleBucket::FrontendBubble);
        advanceSlot(CycleBucket::FrontendBubble);
    }
    if (op.isLoad()) {
        advanceSlot(CycleBucket::FrontendBubble);
        advanceSlot(CycleBucket::FrontendBubble);
    }
    lastDest_ = op.dest;

    const Cycle dispatch = fetchCycle_;
    Cycle complete = dispatch + config_.pipelineDepth;
    RobEntry entry;

    switch (op.type()) {
      case OpType::IntAlu:
        break;
      case OpType::FpAlu:
        complete += config_.fpExtraLatency;
        break;
      case OpType::Load:
      case OpType::Store: {
        // LSQ occupancy: wait for the oldest memory op to complete
        // when all 16 slots are busy. A long-latency LLC miss holding
        // the LSQ full is the same idle-window opportunity as one at
        // the head of the ROB, so it is reported to the stall engine.
        while (lsq_.size() >= config_.lsqSize) {
            const LsqEntry oldest = lsq_.front();
            lsq_.pop_front();
            if (oldest.complete > fetchCycle_) {
                const Cycle wait = oldest.complete - fetchCycle_;
                stats_.lsqStallCycles += wait;
                chargeStall(CycleBucket::LsqFull, wait);
                if (timeline_) {
                    timeline_->recordStall(TimelineStall::LsqFull,
                                           fetchCycle_, wait);
                }
                fetchCycle_ = oldest.complete;
                slotInCycle_ = 0;
            }
        }
        const bool is_store = op.isStore();
        const AccessResult res =
            mem_.accessData(op.memAddr, is_store, fetchCycle_);
        if (is_store) {
            ++stats_.stores;
            // Stores retire without waiting for the fill.
            complete = dispatch + config_.pipelineDepth;
        } else {
            ++stats_.loads;
            const Cycle l1_lat = mem_.config().l1d.hitLatency;
            complete = dispatch + config_.pipelineDepth + res.latency -
                l1_lat;
            if (res.llcMiss()) {
                ++stats_.llcMissesData;
                entry.llcMissLoad = true;
                entry.llcMissDest = op.dest;
            }
            // The paper's ESP/runahead trigger: a long-latency miss
            // will block the ROB head for roughly its fill time; the
            // speculation engine gets that shadow as budget.
            const Cycle shadow =
                res.latency > l1_lat ? res.latency - l1_lat : 0;
            if (shadow >= config_.stallReportThreshold) {
                ++stats_.stallWindows;
                StallContext sctx;
                sctx.now = fetchCycle_;
                sctx.idleCycles = shadow;
                sctx.kind = StallKind::DataLlcMiss;
                sctx.triggerOpIdx = curOpIdx_;
                sctx.missDest = op.dest;
                pendingSpecCycles_ +=
                    std::min(hooks_.onStall(sctx), shadow);
            }
            if (prefetchCfg_.nextLineData)
                nlData_.notifyAccess(mem_, op.memAddr, fetchCycle_);
            if (prefetchCfg_.strideData) {
                strideData_.notifyAccess(mem_, op.pc, op.memAddr,
                                         fetchCycle_);
            }
        }
        // Only in-flight misses occupy modeled LSQ/MSHR slots; hits
        // complete within the pipeline and release immediately.
        if (res.latency > mem_.config().l1d.hitLatency) {
            LsqEntry lentry;
            lentry.complete = complete;
            lentry.llcMissLoad = entry.llcMissLoad;
            lentry.llcMissDest = entry.llcMissDest;
            lsq_.push_back(lentry);
        }
        break;
      }
      case OpType::BranchCond:
      case OpType::BranchDirect:
      case OpType::BranchIndirect:
      case OpType::Call:
      case OpType::Return: {
        ++stats_.branches;
        if (!config_.perfectBranch) {
            const BranchResult res = bp_.executeBranch(op);
            if (res == BranchResult::Mispredict) {
                ++stats_.mispredicts;
                stats_.branchStallCycles += config_.mispredictPenalty;
                if (timeline_) {
                    timeline_->recordStall(TimelineStall::Mispredict,
                                           dispatch,
                                           config_.mispredictPenalty);
                }
                const Cycle redirect = dispatch +
                    config_.mispredictPenalty;
                if (redirect > fetchCycle_) {
                    charge(CycleBucket::MispredictRedirect,
                           redirect - fetchCycle_);
                    fetchCycle_ = redirect;
                }
                slotInCycle_ = 0;
            } else if (res == BranchResult::BtbMiss) {
                ++stats_.btbMisses;
                stats_.branchStallCycles += config_.btbMissPenalty;
                if (timeline_) {
                    timeline_->recordStall(TimelineStall::BtbMiss,
                                           fetchCycle_,
                                           config_.btbMissPenalty);
                }
                charge(CycleBucket::MispredictRedirect,
                       config_.btbMissPenalty);
                fetchCycle_ += config_.btbMissPenalty;
                slotInCycle_ = 0;
            }
        }
        break;
      }
    }

    entry.complete = complete;
    rob_.push_back(entry);
    ++stats_.instructions;
    advanceSlot();
}

void
OoOCore::drainRob()
{
    Cycle last = fetchCycle_;
    bool miss_pending = false;
    std::uint8_t miss_dest = noReg;
    for (std::size_t k = 0; k < rob_.size(); ++k) {
        const RobEntry &e = rob_.at(k);
        last = std::max(last, e.complete);
        if (e.llcMissLoad && e.complete > fetchCycle_) {
            miss_pending = true;
            miss_dest = e.llcMissDest;
        }
    }
    // The drain just accounts remaining completion time; outstanding
    // misses were already reported to the engine at detection time.
    if (miss_pending && last > fetchCycle_) {
        stats_.robStallCycles += last - fetchCycle_;
        chargeStall(CycleBucket::DcacheMiss, last - fetchCycle_);
        if (timeline_) {
            timeline_->recordStall(TimelineStall::DataMiss, fetchCycle_,
                                   last - fetchCycle_);
        }
    } else if (last > fetchCycle_) {
        charge(CycleBucket::Drain, last - fetchCycle_);
    }
    (void)miss_dest;
    rob_.clear();
    lsq_.clear();
    fetchCycle_ = std::max(fetchCycle_, last);
    slotInCycle_ = 0;
    lastRetire_ = std::max(lastRetire_, fetchCycle_);
}

void
OoOCore::executeLooperOverhead()
{
    // The looper thread's dequeue/bookkeeping instructions (§3.6):
    // hot code, no misses; they just advance time — and give ESP its
    // pre-event prefetch window.
    const Cycle gap =
        (config_.looperOverheadInstr + config_.width - 1) / config_.width;
    charge(CycleBucket::LooperOverhead, gap);
    fetchCycle_ += gap;
    slotInCycle_ = 0;
    stats_.instructions += config_.looperOverheadInstr;
}

void
OoOCore::run(const Workload &workload)
{
    std::array<PrefetchSourceStats, numPrefetchSources> pf_life_start{};
    for (std::size_t idx = 0; idx < workload.numEvents(); ++idx) {
        const CycleBucketArray buckets_at_start = stats_.bucketCycles;
        const PrefetchIssueCounts pf_at_start =
            mem_.prefetchIssuedBySource();
        // Span window opens before any idle charge: the span's bucket
        // deltas cover every cycle the clock advances until retire,
        // so Σ span buckets == retire - span_start by construction.
        const Cycle span_start = fetchCycle_;
        if (spanSink_) {
            for (unsigned s = 0; s < numPrefetchSources; ++s) {
                pf_life_start[s] = mem_.prefetchLifecycle(
                    static_cast<PrefetchSource>(s));
            }
        }
        Cycle queued_at = fetchCycle_;
        if (pacer_) {
            queued_at = pacer_->eventArrival(idx, fetchCycle_);
            if (queued_at > fetchCycle_) {
                // The queue is empty until the event arrives: the
                // core idles, and those cycles get their own bucket
                // so Σ buckets == cycles still closes.
                charge(CycleBucket::Idle, queued_at - fetchCycle_);
                fetchCycle_ = queued_at;
                slotInCycle_ = 0;
            }
        }
        if (timeline_)
            timeline_->eventQueued(idx, queued_at);
        // The hook fires before the looper-gap instructions so the ESP
        // list prefetcher gets its ~70-instruction head start (§3.6).
        hooks_.onEventStart(idx, fetchCycle_);
        executeLooperOverhead();
        const Cycle dispatched_at = fetchCycle_;
        if (timeline_)
            timeline_->eventDispatched(idx, dispatched_at);
        if (pacer_)
            pacer_->eventDispatched(idx, dispatched_at);
        const InstCount instr_at_dispatch = stats_.instructions;
        const EventTrace &event = workload.event(idx);
        if (pacer_)
            pacer_->eventHandlerType(idx, event.handlerType);
        curFetchBlock_ = ~Addr{0};
        // Assemble ops by value from the SoA lanes; skip the per-op
        // virtual hook when the engine declared itself passive for
        // this event (the answer only changes at event boundaries).
        const OpSequence &ops = event.ops;
        const std::size_t num_ops = ops.size();
        const bool per_op = hooks_.perOpActive();
        for (std::size_t i = 0; i < num_ops; ++i) {
            curOpIdx_ = i;
            const MicroOp op = ops[i];
            if (per_op)
                hooks_.beforeOp(i, op, fetchCycle_);
            processOp(op);
        }
        drainRob();
        // A stall shadow never extends past the event-end drain; drop
        // any engine-consumed cycles whose stall never materialised so
        // they cannot leak attribution into the next event.
        pendingSpecCycles_ = 0;
        ++stats_.events;
        // Keep the cycles counter live at retire boundaries so a
        // mid-run counter snapshot (interval sampling) is consistent
        // with the rest of the stat surface.
        stats_.cycles = fetchCycle_;
        hooks_.onEventEnd(idx, fetchCycle_);

        // Per-event-type (handler) cycle attribution.
        CycleBucketArray delta{};
        for (unsigned b = 0; b < numCycleBuckets; ++b)
            delta[b] = stats_.bucketCycles[b] - buckets_at_start[b];
        HandlerAccounting &acct =
            stats_.handlerAccounting[event.handlerType];
        ++acct.events;
        for (unsigned b = 0; b < numCycleBuckets; ++b)
            acct.buckets[b] += delta[b];

        if (timeline_) {
            timeline_->eventRetired(idx, fetchCycle_,
                                    stats_.instructions -
                                        instr_at_dispatch);
            std::vector<std::pair<std::string, Cycle>> bucket_args;
            for (unsigned b = 0; b < numCycleBuckets; ++b) {
                bucket_args.emplace_back(
                    cycleBucketName(static_cast<CycleBucket>(b)),
                    delta[b]);
            }
            timeline_->eventCycleBuckets(idx, std::move(bucket_args));
            const PrefetchIssueCounts pf_now =
                mem_.prefetchIssuedBySource();
            std::vector<std::pair<std::string, std::uint64_t>> pf_args;
            for (unsigned s = 0; s < numPrefetchSources; ++s) {
                pf_args.emplace_back(
                    prefetchSourceName(static_cast<PrefetchSource>(s)),
                    pf_now[s] - pf_at_start[s]);
            }
            timeline_->eventPrefetchTallies(idx, std::move(pf_args));
        }
        if (spanSink_) {
            RequestSpan span;
            span.index = idx;
            span.handlerType = event.handlerType;
            span.startCycle = span_start;
            span.arrival = queued_at;
            span.dispatch = dispatched_at;
            span.retire = fetchCycle_;
            span.instructions = stats_.instructions - instr_at_dispatch;
            span.buckets = delta;
            for (unsigned s = 0; s < numPrefetchSources; ++s) {
                const PrefetchSourceStats end = mem_.prefetchLifecycle(
                    static_cast<PrefetchSource>(s));
                span.prefetch[s] = SpanPrefetchDelta{
                    end.issued - pf_life_start[s].issued,
                    end.timely - pf_life_start[s].timely,
                    end.late - pf_life_start[s].late,
                    end.harmful - pf_life_start[s].harmful};
            }
            spanSink_->onSpan(span);
        }
        if (pacer_)
            pacer_->eventRetired(idx, fetchCycle_);
        if (sampler_)
            sampler_->onEventRetired(stats_.events, fetchCycle_);
        if (telemetry_)
            telemetry_->onEventRetired(stats_.events, fetchCycle_);
    }
    stats_.cycles = fetchCycle_;
    if (stats_.bucketSum() != stats_.cycles) {
        panic("cycle-accounting invariant violated: buckets sum to "
              "%llu but the core ran %llu cycles",
              static_cast<unsigned long long>(stats_.bucketSum()),
              static_cast<unsigned long long>(stats_.cycles));
    }
}

} // namespace espsim
