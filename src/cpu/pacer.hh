/**
 * @file
 * Event pacing: an external arrival discipline for the core's event
 * loop.
 *
 * Without a pacer the core replays events back-to-back (the paper's
 * saturated-looper setup — the queue never runs dry). A pacer models a
 * *server* instead: events arrive by an open-loop (Poisson, bursty) or
 * closed-loop (fixed concurrency + think time) process, the core idles
 * when the queue is empty, and per-event queue/service/total latency
 * becomes measurable. Idle cycles are charged to their own cycle
 * bucket so accounting closure (sum of buckets == cycles) still holds.
 *
 * Implementations live in src/server/; the core only sees this
 * interface so the cpu layer stays free of workload policy.
 */

#ifndef ESPSIM_CPU_PACER_HH
#define ESPSIM_CPU_PACER_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace espsim
{

class StatRegistry;

/** Arrival discipline + latency probe for the core's event loop. */
class EventPacer
{
  public:
    virtual ~EventPacer() = default;

    /**
     * Cycle at which event @p idx arrives in the queue. Called exactly
     * once per event, in dispatch order, with @p now the cycle the
     * core became free. Returns may lie in the past (the event queued
     * while the core was busy) or the future (the core idles until
     * then).
     */
    virtual Cycle eventArrival(std::size_t idx, Cycle now) = 0;

    /** Event @p idx began dispatch (post looper overhead). */
    virtual void eventDispatched(std::size_t idx, Cycle now)
    {
        (void)idx;
        (void)now;
    }

    /** Event @p idx retired; @p now is its completion cycle. */
    virtual void eventRetired(std::size_t idx, Cycle now)
    {
        (void)idx;
        (void)now;
    }

    /**
     * The core resolved event @p idx's static handler id (called
     * between eventDispatched and eventRetired). Lets a pacer keep
     * per-handler latency breakdowns without knowing the trace format.
     */
    virtual void eventHandlerType(std::size_t idx,
                                  std::uint32_t handler_type)
    {
        (void)idx;
        (void)handler_type;
    }

    /**
     * Register pacer-owned stats (per-handler latency quantiles etc.)
     * under @p prefix. The simulator calls this after the run, right
     * before the registry snapshot.
     */
    virtual void registerStats(StatRegistry &reg,
                               const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }
};

} // namespace espsim

#endif // ESPSIM_CPU_PACER_HH
