/**
 * @file
 * Trace-driven out-of-order core timing model.
 *
 * Configuration follows the paper's Figure 7 (a Samsung Exynos
 * 5250-class core): 4-wide, 96-entry ROB, 16-entry LSQ, 15-cycle
 * mispredict penalty, Pentium M branch predictor, next-line/stride
 * prefetchers.
 *
 * The model is the classic in-order-retire approximation of an OoO
 * pipeline: instructions are fetched at `width` per cycle (stalling on
 * I-cache misses and branch redirects), receive a completion time from
 * their latency class, and retire in order through a 96-entry window —
 * so independent long-latency loads naturally overlap (MLP), and a
 * load miss that reaches the head of the full ROB freezes fetch. That
 * freeze is the idle window ESP and runahead consume, delivered to an
 * attached CoreHooks engine via onStall().
 */

#ifndef ESPSIM_CPU_OOO_CORE_HH
#define ESPSIM_CPU_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "branch/pentium_m.hh"
#include "common/ring_buffer.hh"
#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "cpu/hooks.hh"
#include "prefetch/next_line.hh"
#include "prefetch/stride.hh"
#include "report/stat_registry.hh"
#include "report/timeline.hh"
#include "trace/workload.hh"

namespace espsim
{

class IntervalSampler;
class EventPacer;
class SpanSink;
class TelemetrySnapshotter;

/** Core pipeline parameters (defaults = paper Figure 7). */
struct CoreConfig
{
    unsigned width = 4;
    unsigned robSize = 96;
    unsigned lsqSize = 16;
    Cycle mispredictPenalty = 15;
    Cycle btbMissPenalty = 6;
    Cycle pipelineDepth = 8;  //!< fetch-to-complete for simple ops
    Cycle fpExtraLatency = 4;
    /** Idealise branch prediction (Figure 3 potential study). */
    bool perfectBranch = false;
    /** Extraneous looper-thread instructions between events (§3.6). */
    unsigned looperOverheadInstr = 70;
    /** Minimum idle window worth reporting to the stall engine. The
     *  paper triggers on LLC misses only; at our ~10x-scaled-down
     *  workload size, L2-hit shadows must also grant pre-execution
     *  budget to keep the budget-per-event-instruction ratio of the
     *  paper's machine (see DESIGN.md, substitution table). */
    Cycle stallReportThreshold = 18;
    /** I-miss latency hidden by the fetch queue / decoupled front end. */
    Cycle fetchQueueHide = 2;
};

/** Which baseline prefetchers are armed. */
struct PrefetcherConfig
{
    bool nextLineInstr = false;
    bool nextLineData = false;
    bool strideData = false;
};

/**
 * Top-down cycle-accounting buckets (paper Figures 4-5 taxonomy).
 *
 * Every cycle the core's clock advances is charged to **exactly one**
 * bucket at the moment it is spent, so `Σ buckets == total cycles`
 * holds by construction; OoOCore::run() fatals if the invariant is
 * ever violated. Stall shadows that an attached speculation engine
 * reported as consumed (the onStall() return value) are re-charged
 * from the stall bucket to EspPreExec / Runahead, making "how much of
 * the memory stall did speculation convert into useful pre-execution"
 * a first-class statistic.
 */
enum class CycleBucket : std::uint8_t
{
    Retiring = 0,       //!< issue slots retiring useful instructions
    FrontendBubble,     //!< dependency / load-to-use issue gaps
    IcacheMiss,         //!< fetch bubbles beyond the hidden L1 latency
    DcacheMiss,         //!< data-miss waits at the head of the ROB
    LsqFull,            //!< oldest memory op blocking a full LSQ
    MispredictRedirect, //!< mispredict flushes + BTB-miss refetches
    Drain,              //!< event-end pipeline drain (no miss pending)
    LooperOverhead,     //!< inter-event looper-thread instructions
    EspPreExec,         //!< stall shadow consumed by ESP pre-execution
    Runahead,           //!< stall shadow consumed by runahead
    Idle,               //!< empty event queue (paced/server runs only)
};

constexpr unsigned numCycleBuckets = 11;

/** Stable snake_case stat-name token for @p bucket. */
const char *cycleBucketName(CycleBucket bucket);

/** Per-bucket cycle totals; one accumulator, one per handler type. */
using CycleBucketArray = std::array<Cycle, numCycleBuckets>;

/** Accounting for one event-handler type (per-event-type breakdown). */
struct HandlerAccounting
{
    std::uint64_t events = 0;
    CycleBucketArray buckets{};

    Cycle
    cycles() const
    {
        Cycle sum = 0;
        for (const Cycle c : buckets)
            sum += c;
        return sum;
    }
};

/**
 * Flat sorted handlerType → HandlerAccounting table.
 *
 * Handler-type populations are small (a handful per workload), so a
 * sorted vector with binary search beats a node-based map on the
 * per-event accounting path and iterates in the same key order the
 * stat registration relies on.
 */
class HandlerAccountingTable
{
  public:
    using Entry = std::pair<std::uint32_t, HandlerAccounting>;

    /** Find-or-insert accounting for @p type. */
    HandlerAccounting &
    operator[](std::uint32_t type)
    {
        auto it = lowerBound(type);
        if (it == entries_.end() || it->first != type)
            it = entries_.insert(it, Entry{type, HandlerAccounting{}});
        return it->second;
    }

    /** Accounting for @p type; the caller guarantees presence. */
    const HandlerAccounting &
    at(std::uint32_t type) const
    {
        auto it = const_cast<HandlerAccountingTable *>(this)
                      ->lowerBound(type);
        return it->second;
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    std::vector<Entry>::const_iterator begin() const
    {
        return entries_.begin();
    }
    std::vector<Entry>::const_iterator end() const
    {
        return entries_.end();
    }

  private:
    std::vector<Entry>::iterator
    lowerBound(std::uint32_t type)
    {
        auto lo = entries_.begin();
        auto hi = entries_.end();
        while (lo != hi) {
            auto mid = lo + (hi - lo) / 2;
            if (mid->first < type)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::vector<Entry> entries_;
};

/** Cycle/instruction counters the core accumulates over a run. */
struct CoreStats
{
    Cycle cycles = 0;
    InstCount instructions = 0;
    std::uint64_t events = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t llcMissesInstr = 0;
    std::uint64_t llcMissesData = 0;
    Cycle icacheStallCycles = 0;
    Cycle branchStallCycles = 0;
    Cycle robStallCycles = 0; //!< head-of-ROB data-miss waits
    Cycle lsqStallCycles = 0;
    std::uint64_t stallWindows = 0; //!< onStall() deliveries

    /** Top-down attribution: where every cycle went (sums to cycles). */
    CycleBucketArray bucketCycles{};
    /** The same buckets broken down per event-handler type. */
    HandlerAccountingTable handlerAccounting;

    Cycle
    bucketSum() const
    {
        Cycle sum = 0;
        for (const Cycle c : bucketCycles)
            sum += c;
        return sum;
    }

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                static_cast<double>(cycles);
    }
};

/** The timing core. Owns no components; wires externally-owned ones. */
class OoOCore
{
  public:
    OoOCore(const CoreConfig &config, MemoryHierarchy &mem,
            PentiumMPredictor &bp, const PrefetcherConfig &prefetch,
            CoreHooks &hooks);

    /** Execute a whole workload (all events, in order). */
    void run(const Workload &workload);

    const CoreStats &stats() const { return stats_; }

    /** Register every core counter (and derived IPC) by name. */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Attach an opt-in per-event timeline sink (nullptr detaches). */
    void setTimeline(EventTimeline *timeline) { timeline_ = timeline; }

    /**
     * Attach an opt-in interval sampler (nullptr detaches); it is
     * invoked at every event-retire boundary — the only points where
     * the registered stat surface is consistent mid-run.
     */
    void setSampler(IntervalSampler *sampler) { sampler_ = sampler; }

    /**
     * Attach an opt-in event pacer (nullptr detaches): arrivals gate
     * event dispatch, queue-empty time is charged to the Idle bucket,
     * and the pacer observes dispatch/retire timestamps (the serve
     * path's latency probe).
     */
    void setPacer(EventPacer *pacer) { pacer_ = pacer; }

    /**
     * Attach an opt-in per-request span sink (nullptr detaches): each
     * retired event delivers one RequestSpan carrying its cycle-bucket
     * deltas and per-source prefetch lifecycle deltas, closing exactly
     * against the accounting invariant (Σ span buckets == the cycles
     * the clock advanced while the span was current). See
     * report/spans.hh.
     */
    void setSpanSink(SpanSink *sink) { spanSink_ = sink; }

    /**
     * Attach an opt-in live-telemetry snapshotter (nullptr detaches);
     * like the interval sampler it observes only event-retire
     * boundaries, publishing absolute counter snapshots into the
     * telemetry plane. See report/telemetry.hh.
     */
    void
    setTelemetry(TelemetrySnapshotter *telemetry)
    {
        telemetry_ = telemetry;
    }

    /** Current-fetch-cycle accessor for hooks/tests. */
    Cycle now() const { return fetchCycle_; }

  private:
    struct RobEntry
    {
        Cycle complete = 0;
        std::uint8_t llcMissDest = noReg; //!< valid when LLC-miss load
        bool llcMissLoad = false;
    };

    const CoreConfig config_;
    MemoryHierarchy &mem_;
    PentiumMPredictor &bp_;
    CoreHooks &hooks_;

    NextLineInstrPrefetcher nlInstr_;
    DcuPrefetcher nlData_;
    StridePrefetcher strideData_;
    PrefetcherConfig prefetchCfg_;

    CoreStats stats_;
    EventTimeline *timeline_ = nullptr;
    IntervalSampler *sampler_ = nullptr;
    EventPacer *pacer_ = nullptr;
    SpanSink *spanSink_ = nullptr;
    TelemetrySnapshotter *telemetry_ = nullptr;

    // Pipeline state.
    Cycle fetchCycle_ = 0;
    unsigned slotInCycle_ = 0;
    Addr curFetchBlock_ = ~Addr{0};
    struct LsqEntry
    {
        Cycle complete = 0;
        std::uint8_t llcMissDest = noReg;
        bool llcMissLoad = false;
    };

    FixedRing<RobEntry> rob_;
    FixedRing<LsqEntry> lsq_;
    Cycle lastRetire_ = 0;
    std::size_t curOpIdx_ = 0;
    std::uint8_t lastDest_ = noReg; //!< dependency-issue modeling

    /** Accounting bucket for consumed stall shadow (engine kind). */
    CycleBucket specBucket_ = CycleBucket::EspPreExec;
    /** Shadow cycles the engine reported consumed but whose stall has
     *  not yet materialised (data-miss shadows surface later, at the
     *  ROB head / LSQ / drain). */
    Cycle pendingSpecCycles_ = 0;

    void charge(CycleBucket bucket, Cycle cycles);
    /** Charge @p cycles of stall: the engine-consumed portion goes to
     *  the speculation bucket, the remainder to @p bucket. */
    void chargeStall(CycleBucket bucket, Cycle cycles);
    void processOp(const MicroOp &op);
    void retireForSpace(const MicroOp &next_op);
    void drainRob();
    void advanceSlot(CycleBucket bucket = CycleBucket::Retiring);
    void executeLooperOverhead();
};

} // namespace espsim

#endif // ESPSIM_CPU_OOO_CORE_HH
