/**
 * @file
 * Runahead execution (Dundas & Mudge; Mutlu et al.) — the paper's main
 * comparison point.
 *
 * On a data LLC miss that blocks the head of the ROB, runahead keeps
 * executing *the same event's* subsequent instructions in a scratch
 * mode: loads with valid (miss-independent) addresses warm the data
 * cache, the branch predictor keeps training, and everything is thrown
 * away when the miss returns. Two structural limits — it cannot run
 * ahead past an instruction-cache LLC miss, and it can only follow the
 * predicted path once a miss-dependent branch is reached — are exactly
 * the gaps ESP exploits (paper §1, §6.1).
 */

#ifndef ESPSIM_CPU_RUNAHEAD_HH
#define ESPSIM_CPU_RUNAHEAD_HH

#include <cstdint>

#include "branch/pentium_m.hh"
#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "cpu/hooks.hh"
#include "report/stat_registry.hh"
#include "trace/workload.hh"

namespace espsim
{

/** Runahead engine configuration. */
struct RunaheadConfig
{
    /** Warm the data cache with valid-address loads. */
    bool warmData = true;
    /** Keep training the branch predictor in runahead mode. */
    bool trainBranchPredictor = true;
    /** Warm the instruction cache along the runahead path. */
    bool warmInstr = true;
    Cycle mispredictPenalty = 15;
};

/** Counters the runahead engine accumulates. */
struct RunaheadStats
{
    std::uint64_t entries = 0;          //!< runahead episodes
    InstCount instructions = 0;         //!< pseudo-retired in runahead
    std::uint64_t stoppedOnInstrMiss = 0;
    std::uint64_t stoppedOnWrongPath = 0;
    std::uint64_t invalidOps = 0;       //!< miss-dependent, skipped
};

/** Runahead execution engine; plugs into OoOCore's stall hook. */
class RunaheadEngine : public CoreHooks
{
  public:
    RunaheadEngine(const RunaheadConfig &config, MemoryHierarchy &mem,
                   PentiumMPredictor &bp, const Workload &workload,
                   unsigned core_width = 4);

    void onEventStart(std::size_t event_idx, Cycle now) override;
    Cycle onStall(const StallContext &ctx) override;
    SpecEngine engine() const override { return SpecEngine::Runahead; }

    const RunaheadStats &stats() const { return stats_; }

    /** Register every runahead counter by name (canonical surface). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    /** Snapshot all counters into @p out (view over the registry). */
    void report(StatGroup &out, const std::string &prefix) const;

  private:
    const RunaheadConfig config_;
    MemoryHierarchy &mem_;
    PentiumMPredictor &bp_;
    const Workload &workload_;
    const unsigned width_;

    std::size_t curEventIdx_ = 0;
    /** High-water mark of ops already covered by an earlier episode in
     *  this event; re-walking them would double-train the predictor's
     *  non-idempotent structures and re-touch warm blocks. */
    std::size_t coveredOpIdx_ = 0;
    RunaheadStats stats_;
};

} // namespace espsim

#endif // ESPSIM_CPU_RUNAHEAD_HH
