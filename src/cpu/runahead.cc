#include "cpu/runahead.hh"

#include <algorithm>

namespace espsim
{

RunaheadEngine::RunaheadEngine(const RunaheadConfig &config,
                               MemoryHierarchy &mem,
                               PentiumMPredictor &bp,
                               const Workload &workload,
                               unsigned core_width)
    : config_(config), mem_(mem), bp_(bp), workload_(workload),
      width_(core_width)
{
}

void
RunaheadEngine::onEventStart(std::size_t event_idx, Cycle now)
{
    (void)now;
    curEventIdx_ = event_idx;
    coveredOpIdx_ = 0;
}

Cycle
RunaheadEngine::onStall(const StallContext &ctx)
{
    // Runahead is only entered on *data* LLC misses; an instruction
    // miss leaves nothing to pre-execute.
    if (ctx.kind != StallKind::DataLlcMiss)
        return 0;
    if (curEventIdx_ >= workload_.numEvents())
        return 0;

    const EventTrace &ev = workload_.event(curEventIdx_);
    // Resume past ground already covered by an earlier, overlapping
    // episode; runahead re-execution of those ops is architecturally
    // idempotent (blocks warm, counters saturated).
    std::size_t pos = std::max(ctx.triggerOpIdx, coveredOpIdx_);
    if (pos >= ev.ops.size())
        return 0;
    ++stats_.entries;
    std::uint64_t budget_q =
        static_cast<std::uint64_t>(ctx.idleCycles) * width_;
    std::uint64_t spent = 0;

    // Registers poisoned by the missing load (INV bits).
    std::uint32_t invalid = 0;
    if (ctx.missDest != noReg && ctx.missDest < numArchRegs)
        invalid |= 1u << ctx.missDest;

    // Runahead state is architecturally discarded on exit; checkpoint
    // the branch context (tables keep their training — that is the
    // point of the full-runahead variant).
    const BpContext saved_ctx = bp_.context();

    mem_.setStatCounting(false);
    Addr cur_block = ~Addr{0};

    while (pos < ev.ops.size() && spent < budget_q) {
        const MicroOp &op = ev.ops[pos];
        spent += 1;

        // Instruction fetch along the runahead path.
        const Addr iblk = blockAlign(op.pc);
        if (iblk != cur_block) {
            cur_block = iblk;
            if (config_.warmInstr) {
                const AccessResult res = mem_.accessInstr(op.pc, ctx.now);
                if (res.llcMiss()) {
                    // Runahead cannot jump over an I-cache LLC miss.
                    ++stats_.stoppedOnInstrMiss;
                    break;
                }
                const Cycle l1_lat = mem_.config().l1i.hitLatency;
                if (res.latency > l1_lat)
                    spent += (res.latency - l1_lat) * width_;
            } else if (mem_.probeInstr(op.pc).llcMiss()) {
                ++stats_.stoppedOnInstrMiss;
                break;
            }
        }

        const bool src_valid =
            (op.srcA == noReg || !(invalid & (1u << (op.srcA % 32)))) &&
            (op.srcB == noReg || !(invalid & (1u << (op.srcB % 32))));

        if (op.isBranchOp()) {
            if (!src_valid && op.type() == OpType::BranchCond) {
                // Outcome unknown: runahead follows the predicted path;
                // if that disagrees with the real path, it has diverged
                // and everything further is wrong-path.
                const BranchPrediction pred = bp_.predictOnly(op);
                if (pred.taken != op.taken()) {
                    ++stats_.stoppedOnWrongPath;
                    break;
                }
            }
            if (config_.trainBranchPredictor) {
                const BranchResult res = bp_.executeBranch(op, false);
                if (res == BranchResult::Mispredict)
                    spent += config_.mispredictPenalty * width_;
            }
        } else if (op.isMemoryOp()) {
            if (op.isLoad()) {
                if (src_valid && config_.warmData) {
                    const AccessResult res =
                        mem_.accessData(op.memAddr, false, ctx.now);
                    const Cycle l1_lat = mem_.config().l1d.hitLatency;
                    if (res.latency > l1_lat)
                        spent += (res.latency - l1_lat) * width_ / 4;
                }
                if (op.dest != noReg) {
                    if (src_valid)
                        invalid &= ~(1u << (op.dest % 32));
                    else
                        invalid |= 1u << (op.dest % 32);
                }
                if (!src_valid)
                    ++stats_.invalidOps;
            }
            // Stores are dropped in runahead mode (no memory update).
        } else if (op.dest != noReg) {
            // ALU ops propagate INV bits through the register file.
            if (src_valid)
                invalid &= ~(1u << (op.dest % 32));
            else
                invalid |= 1u << (op.dest % 32);
            if (!src_valid)
                ++stats_.invalidOps;
        }

        ++stats_.instructions;
        ++pos;
    }

    mem_.setStatCounting(true);
    // Architectural runahead state is squashed; restore the context.
    bp_.swapContext(saved_ctx);
    coveredOpIdx_ = std::max(coveredOpIdx_, pos);
    // Report the consumed shadow so the core's cycle attributor can
    // move it from the stall bucket into the runahead bucket.
    return std::min<Cycle>(spent / width_, ctx.idleCycles);
}

void
RunaheadEngine::registerStats(StatRegistry &reg,
                              const std::string &prefix) const
{
    reg.registerScalar(prefix + "entries", &stats_.entries);
    reg.registerScalar(prefix + "instructions", &stats_.instructions);
    reg.registerScalar(prefix + "stopped_on_instr_miss",
                       &stats_.stoppedOnInstrMiss);
    reg.registerScalar(prefix + "stopped_on_wrong_path",
                       &stats_.stoppedOnWrongPath);
    reg.registerScalar(prefix + "invalid_ops", &stats_.invalidOps);
}

void
RunaheadEngine::report(StatGroup &out, const std::string &prefix) const
{
    StatRegistry reg;
    registerStats(reg, prefix);
    const StatGroup snap = reg.snapshot();
    for (const auto &[name, value] : snap.values())
        out.set(name, value);
}

} // namespace espsim
