/**
 * @file
 * Observation/intervention points the OoO core exposes to speculation
 * engines (ESP, runahead).
 *
 * The core calls onStall() when it detects the situation the paper
 * keys on: a long-latency LLC miss has reached the head of the ROB (or
 * has frozen instruction fetch) and the core will sit idle for a known
 * number of cycles. The engine may spend those cycles pre-executing.
 */

#ifndef ESPSIM_CPU_HOOKS_HH
#define ESPSIM_CPU_HOOKS_HH

#include <cstddef>

#include "common/types.hh"
#include "trace/micro_op.hh"

namespace espsim
{

/** What blocked the core. */
enum class StallKind
{
    InstrLlcMiss, //!< instruction fetch missed in the LLC
    DataLlcMiss,  //!< load at ROB head missed in the LLC
};

/** Which speculation engine (if any) is attached to the core's stall
 *  hook; the cycle attributor charges consumed stall shadow to the
 *  matching accounting bucket. */
enum class SpecEngine : std::uint8_t
{
    None,
    Esp,
    Runahead,
};

/** Description of one idle window. */
struct StallContext
{
    Cycle now = 0;        //!< cycle the idle window begins
    Cycle idleCycles = 0; //!< its length
    StallKind kind = StallKind::DataLlcMiss;
    std::size_t triggerOpIdx = 0; //!< current-event op index at stall
    /** Destination register of the blocking LLC-miss load (noReg for
     *  instruction-side stalls); runahead seeds its invalid set here. */
    std::uint8_t missDest = noReg;
};

/** Callbacks from the core; default implementation does nothing. */
class CoreHooks
{
  public:
    virtual ~CoreHooks() = default;

    /** A new event is about to execute (after looper overhead). */
    virtual void
    onEventStart(std::size_t event_idx, Cycle now)
    {
        (void)event_idx;
        (void)now;
    }

    /** The current event finished. */
    virtual void
    onEventEnd(std::size_t event_idx, Cycle now)
    {
        (void)event_idx;
        (void)now;
    }

    /**
     * Whether beforeOp() needs to observe the current event's ops.
     * The core asks once per event (between onEventStart and the
     * first op) and skips the per-op virtual call entirely when the
     * answer is false — the common case for passive engines. An
     * engine whose answer can change only does so at event
     * boundaries, so the once-per-event sample is exact.
     */
    virtual bool perOpActive() const { return false; }

    /** Called before each op of the current event executes (only when
     *  perOpActive() returned true for this event). */
    virtual void
    beforeOp(std::size_t op_idx, const MicroOp &op, Cycle now)
    {
        (void)op_idx;
        (void)op;
        (void)now;
    }

    /**
     * The core idles; the engine may use the window.
     * @return cycles of the idle shadow the engine spent pre-executing
     * (0 when unused); the core's cycle attributor re-charges that
     * portion of the stall to the engine's accounting bucket.
     */
    virtual Cycle
    onStall(const StallContext &ctx)
    {
        (void)ctx;
        return 0;
    }

    /** Which engine this hook implements (accounting attribution). */
    virtual SpecEngine
    engine() const
    {
        return SpecEngine::None;
    }
};

} // namespace espsim

#endif // ESPSIM_CPU_HOOKS_HH
