#include "branch/pentium_m.hh"

#include "common/logging.hh"

namespace espsim
{

namespace
{

std::uint64_t
hashMix(std::uint64_t v)
{
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31);
}

} // namespace

PentiumMPredictor::PentiumMPredictor(const BranchPredictorConfig &config)
    : config_(config), global_(config.globalEntries),
      local_(config.localEntries, 1), btb_(config.btbEntries),
      ibtb_(config.ibtbEntries), loop_(config.loopEntries)
{
    if (config_.globalEntries == 0 || config_.localEntries == 0 ||
        config_.btbEntries == 0 || config_.ibtbEntries == 0) {
        fatal("branch predictor tables must be non-empty");
    }
}

std::size_t
PentiumMPredictor::globalIndex(const Pir &pir, Addr pc) const
{
    return static_cast<std::size_t>(
        hashMix(pir.value() ^ (pc >> 2)) % config_.globalEntries);
}

std::uint16_t
PentiumMPredictor::globalTag(const Pir &pir, Addr pc) const
{
    return static_cast<std::uint16_t>(
        hashMix((pc >> 2) * 31 + pir.value()) & 0xff);
}

std::size_t
PentiumMPredictor::localIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) % config_.localEntries);
}

std::size_t
PentiumMPredictor::btbIndex(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) % config_.btbEntries);
}

std::uint32_t
PentiumMPredictor::btbTag(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) / config_.btbEntries) &
        0xfffff;
}

std::size_t
PentiumMPredictor::ibtbIndex(const Pir &pir, Addr pc) const
{
    return static_cast<std::size_t>(
        hashMix(pir.value() * 7 ^ (pc >> 2)) % config_.ibtbEntries);
}

std::uint32_t
PentiumMPredictor::ibtbTag(const Pir &pir, Addr pc) const
{
    return static_cast<std::uint32_t>(
        hashMix((pc >> 2) ^ (pir.value() << 5)) & 0x3ff);
}

void
PentiumMPredictor::bumpCounter(std::uint8_t &counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else if (counter > 0) {
        --counter;
    }
}

bool
PentiumMPredictor::predictDirection(const BpContext &ctx, Addr pc) const
{
    if (auto loop_pred = loop_.predict(pc))
        return *loop_pred;
    const GlobalEntry &g = global_[globalIndex(ctx.pir, pc)];
    if (g.valid && g.tag == globalTag(ctx.pir, pc))
        return g.counter >= 2;
    return local_[localIndex(pc)] >= 2;
}

BranchPrediction
PentiumMPredictor::predict(const BpContext &ctx, const MicroOp &op) const
{
    BranchPrediction pred;
    switch (op.type) {
      case OpType::BranchCond: {
        pred.taken = predictDirection(ctx, op.pc);
        if (pred.taken) {
            const TargetEntry &e = btb_[btbIndex(op.pc)];
            if (e.valid && e.tag == btbTag(op.pc))
                pred.target = e.target;
        }
        break;
      }
      case OpType::BranchDirect:
      case OpType::Call: {
        pred.taken = true;
        const TargetEntry &e = btb_[btbIndex(op.pc)];
        if (e.valid && e.tag == btbTag(op.pc))
            pred.target = e.target;
        break;
      }
      case OpType::Return: {
        pred.taken = true;
        if (!ctx.ras.empty())
            pred.target = ctx.ras.back();
        break;
      }
      case OpType::BranchIndirect: {
        pred.taken = true;
        const TargetEntry &ie = ibtb_[ibtbIndex(ctx.pir, op.pc)];
        if (ie.valid && ie.tag == ibtbTag(ctx.pir, op.pc)) {
            pred.target = ie.target;
        } else {
            const TargetEntry &e = btb_[btbIndex(op.pc)];
            if (e.valid && e.tag == btbTag(op.pc))
                pred.target = e.target;
        }
        break;
      }
      default:
        panic("predict() called on a non-branch op");
    }
    return pred;
}

void
PentiumMPredictor::updateDirection(BpContext &ctx, Addr pc, bool taken,
                                   bool final_pred_wrong,
                                   bool architectural)
{
    // The loop predictor's trip counters are not idempotent: a branch
    // instance must be counted exactly once, by its architectural
    // execution. Speculative pre-execution (ESP modes, runahead) and
    // ahead-of-time B-list training skip it.
    if (architectural)
        loop_.update(pc, taken);
    bumpCounter(local_[localIndex(pc)], taken);
    GlobalEntry &g = global_[globalIndex(ctx.pir, pc)];
    const std::uint16_t tag = globalTag(ctx.pir, pc);
    if (g.valid && g.tag == tag) {
        bumpCounter(g.counter, taken);
    } else if (final_pred_wrong) {
        // Allocate on a misprediction, like the Pentium M's
        // mispredict-driven global allocation.
        g.valid = true;
        g.tag = tag;
        g.counter = taken ? 2 : 1;
    }
}

void
PentiumMPredictor::updateTargets(BpContext &ctx, const MicroOp &op)
{
    switch (op.type) {
      case OpType::BranchCond:
        if (op.taken) {
            TargetEntry &e = btb_[btbIndex(op.pc)];
            e.valid = true;
            e.tag = btbTag(op.pc);
            e.target = op.branchTarget;
        }
        break;
      case OpType::BranchDirect:
      case OpType::Call: {
        TargetEntry &e = btb_[btbIndex(op.pc)];
        e.valid = true;
        e.tag = btbTag(op.pc);
        e.target = op.branchTarget;
        if (op.type == OpType::Call) {
            if (ctx.ras.size() >= config_.rasDepth)
                ctx.ras.erase(ctx.ras.begin());
            ctx.ras.push_back(op.pc + 4);
        }
        break;
      }
      case OpType::Return:
        if (!ctx.ras.empty())
            ctx.ras.pop_back();
        break;
      case OpType::BranchIndirect: {
        TargetEntry &ie = ibtb_[ibtbIndex(ctx.pir, op.pc)];
        ie.valid = true;
        ie.tag = ibtbTag(ctx.pir, op.pc);
        ie.target = op.branchTarget;
        TargetEntry &e = btb_[btbIndex(op.pc)];
        e.valid = true;
        e.tag = btbTag(op.pc);
        e.target = op.branchTarget;
        break;
      }
      default:
        panic("updateTargets() called on a non-branch op");
    }
    if (op.taken)
        ctx.pir.update(op.pc, op.branchTarget);
}

BranchPrediction
PentiumMPredictor::predictOnly(const MicroOp &op) const
{
    return predict(ctx_, op);
}

BranchResult
PentiumMPredictor::executeBranch(const MicroOp &op, bool count_stats)
{
    if (count_stats)
        ++stat_branches_;
    const BranchPrediction pred = predict(ctx_, op);

    BranchResult result = BranchResult::Correct;
    switch (op.type) {
      case OpType::BranchCond:
        if (pred.taken != op.taken)
            result = BranchResult::Mispredict;
        else if (op.taken && pred.target != op.branchTarget)
            result = BranchResult::BtbMiss;
        break;
      case OpType::BranchDirect:
      case OpType::Call:
        if (pred.target != op.branchTarget)
            result = BranchResult::BtbMiss;
        break;
      case OpType::Return:
      case OpType::BranchIndirect:
        if (pred.target != op.branchTarget)
            result = BranchResult::Mispredict;
        break;
      default:
        panic("executeBranch() called on a non-branch op");
    }

    if (count_stats) {
        if (result == BranchResult::Mispredict)
            ++stat_mispredicts_;
        else if (result == BranchResult::BtbMiss)
            ++stat_btb_miss_;
    }

    if (op.type == OpType::BranchCond) {
        updateDirection(ctx_, op.pc, op.taken,
                        result == BranchResult::Mispredict, count_stats);
    }
    updateTargets(ctx_, op);
    return result;
}

void
PentiumMPredictor::train(BpContext &train_ctx, Addr pc, OpType type,
                         bool taken, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.type = type;
    op.taken = taken;
    op.branchTarget = taken ? target : 0;

    if (type == OpType::BranchCond) {
        const bool would_predict = predictDirection(train_ctx, pc);
        updateDirection(train_ctx, pc, taken, would_predict != taken,
                        false);
    }
    updateTargets(train_ctx, op);
}

BpContext
PentiumMPredictor::swapContext(BpContext ctx)
{
    BpContext old = std::move(ctx_);
    ctx_ = std::move(ctx);
    return old;
}

void
PentiumMPredictor::copyTablesFrom(const PentiumMPredictor &other)
{
    global_ = other.global_;
    local_ = other.local_;
    btb_ = other.btb_;
    ibtb_ = other.ibtb_;
    loop_ = other.loop_;
}

void
PentiumMPredictor::registerStats(StatRegistry &reg,
                                 const std::string &prefix) const
{
    reg.registerScalar(prefix + "branches", &stat_branches_);
    reg.registerScalar(prefix + "mispredicts", &stat_mispredicts_);
    reg.registerScalar(prefix + "btb_misses", &stat_btb_miss_);
    reg.registerDerived(prefix + "mispredict_rate",
                        [this] { return mispredictRate(); });
}

} // namespace espsim
