#include "branch/pentium_m.hh"

#include "common/logging.hh"

namespace espsim
{

PentiumMPredictor::PentiumMPredictor(const BranchPredictorConfig &config)
    : config_(config), global_(config.globalEntries),
      local_(config.localEntries, 1), btb_(config.btbEntries),
      ibtb_(config.ibtbEntries), loop_(config.loopEntries)
{
    if (config_.globalEntries == 0 || config_.localEntries == 0 ||
        config_.btbEntries == 0 || config_.ibtbEntries == 0) {
        fatal("branch predictor tables must be non-empty");
    }
}

void
PentiumMPredictor::train(BpContext &train_ctx, Addr pc, OpType type,
                         bool taken, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.setType(type);
    op.setTaken(taken);
    op.setBranchTarget(taken ? target : 0);

    if (type == OpType::BranchCond) {
        const bool would_predict = predictDirection(train_ctx, pc);
        updateDirection(train_ctx, pc, taken, would_predict != taken,
                        false);
    }
    updateTargets(train_ctx, op);
}

BpContext
PentiumMPredictor::swapContext(BpContext ctx)
{
    BpContext old = std::move(ctx_);
    ctx_ = std::move(ctx);
    return old;
}

void
PentiumMPredictor::copyTablesFrom(const PentiumMPredictor &other)
{
    global_ = other.global_;
    local_ = other.local_;
    btb_ = other.btb_;
    ibtb_ = other.ibtb_;
    loop_ = other.loop_;
}

void
PentiumMPredictor::registerStats(StatRegistry &reg,
                                 const std::string &prefix) const
{
    reg.registerScalar(prefix + "branches", &stat_branches_);
    reg.registerScalar(prefix + "mispredicts", &stat_mispredicts_);
    reg.registerScalar(prefix + "btb_misses", &stat_btb_miss_);
    reg.registerDerived(prefix + "mispredict_rate",
                        [this] { return mispredictRate(); });
}

} // namespace espsim
