/**
 * @file
 * Path Information Register (PIR) of the Pentium M front end.
 *
 * The PIR folds the recent *taken-branch path* (branch PC and target
 * bits) into a small register that indexes the global predictor and
 * the indirect-target BTB. Replicating just this register per ESP
 * execution context is the paper's winning branch-predictor design
 * point (§4.3, Figure 12), so it is a first-class object here.
 */

#ifndef ESPSIM_BRANCH_PIR_HH
#define ESPSIM_BRANCH_PIR_HH

#include <cstdint>

#include "common/types.hh"

namespace espsim
{

/** 15-bit path-history register. */
class Pir
{
  public:
    /** Fold a retired taken branch (pc, target) into the path. */
    void
    update(Addr pc, Addr target)
    {
        // Per the Uzelac/Milenkovic reverse engineering, the PIR mixes
        // shifted branch-address bits with target bits. The address
        // bits are folded so well-aligned PCs still contribute.
        const auto pcf = static_cast<std::uint32_t>(
            ((pc >> 2) ^ (pc >> 11)) & 0x1ff);
        const auto tgf = static_cast<std::uint32_t>(
            ((target >> 2) ^ (target >> 9)) & 0xf);
        value_ = ((value_ << 2) ^ pcf ^ tgf) & mask;
    }

    std::uint32_t value() const { return value_; }
    void reset() { value_ = 0; }

    bool operator==(const Pir &other) const = default;

    static constexpr std::uint32_t mask = (1u << 15) - 1;

  private:
    std::uint32_t value_ = 0;
};

} // namespace espsim

#endif // ESPSIM_BRANCH_PIR_HH
