/**
 * @file
 * Loop branch predictor (256 entries in the Pentium M, Figure 7).
 *
 * Learns branches with a constant trip count: a branch observed taken
 * N-1 times then not-taken, repeatedly, is predicted not-taken exactly
 * on its N-th execution once confidence is established.
 */

#ifndef ESPSIM_BRANCH_LOOP_PREDICTOR_HH
#define ESPSIM_BRANCH_LOOP_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/** Trip-count loop predictor. */
class LoopPredictor
{
  public:
    explicit LoopPredictor(std::size_t entries = 256);

    /**
     * Confident prediction for the branch at @p pc, or nullopt when
     * this branch isn't a recognised loop.
     */
    std::optional<bool> predict(Addr pc) const;

    /** Observe the actual direction of the branch at @p pc. */
    void update(Addr pc, bool taken);

    void reset();

  private:
    struct Entry
    {
        std::uint32_t tag = 0;
        std::uint32_t current = 0; //!< takens since last not-taken
        std::uint32_t limit = 0;   //!< learned trip count
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;

    std::size_t indexOf(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;
};

} // namespace espsim

#endif // ESPSIM_BRANCH_LOOP_PREDICTOR_HH
