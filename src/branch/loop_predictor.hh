/**
 * @file
 * Loop branch predictor (256 entries in the Pentium M, Figure 7).
 *
 * Learns branches with a constant trip count: a branch observed taken
 * N-1 times then not-taken, repeatedly, is predicted not-taken exactly
 * on its N-th execution once confidence is established.
 */

#ifndef ESPSIM_BRANCH_LOOP_PREDICTOR_HH
#define ESPSIM_BRANCH_LOOP_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/** Trip-count loop predictor. */
class LoopPredictor
{
  public:
    explicit LoopPredictor(std::size_t entries = 256);

    /**
     * Confident prediction for the branch at @p pc, or nullopt when
     * this branch isn't a recognised loop.
     */
    std::optional<bool>
    predict(Addr pc) const
    {
        const Entry &e = entries_[indexOf(pc)];
        if (!e.valid || e.tag != tagOf(pc) || e.confidence < 2 ||
            e.limit == 0) {
            return std::nullopt;
        }
        // Predict not-taken exactly when the learned trip count is
        // reached.
        return e.current + 1 < e.limit;
    }

    /** Observe the actual direction of the branch at @p pc. */
    void
    update(Addr pc, bool taken)
    {
        Entry &e = entries_[indexOf(pc)];
        const std::uint32_t tag = tagOf(pc);
        if (!e.valid || e.tag != tag) {
            // Allocate only on a not-taken outcome (potential loop
            // exit); this filters never-exiting branches out of the
            // small table.
            if (!taken) {
                e = Entry{};
                e.tag = tag;
                e.valid = true;
            }
            return;
        }
        if (taken) {
            ++e.current;
            if (e.current > 4096) {
                // Not a loop we can track; drop it.
                e.valid = false;
            }
            return;
        }
        const std::uint32_t trip = e.current + 1;
        if (trip == e.limit) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.limit = trip;
            e.confidence = 0;
        }
        e.current = 0;
    }

    void reset();

  private:
    struct Entry
    {
        std::uint32_t tag = 0;
        std::uint32_t current = 0; //!< takens since last not-taken
        std::uint32_t limit = 0;   //!< learned trip count
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;

    std::size_t
    indexOf(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) % entries_.size());
    }

    std::uint32_t
    tagOf(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc >> 2) / entries_.size()) &
            0xffff;
    }
};

} // namespace espsim

#endif // ESPSIM_BRANCH_LOOP_PREDICTOR_HH
