/**
 * @file
 * Pentium M-style branch predictor, sized per the paper's Figure 7:
 * 2k-entry tagged global predictor (PIR-indexed), 4k-entry local
 * predictor, 2k-entry BTB, 256-entry indirect BTB (PIR-indexed),
 * 256-entry loop predictor, and a 16-deep return address stack.
 *
 * The predictor separates *context* (PIR + RAS — cheap, replicated per
 * ESP execution mode) from *tables* (shared across modes in the final
 * ESP design). BpContext snapshots support the mode switching of §4.3.
 */

#ifndef ESPSIM_BRANCH_PENTIUM_M_HH
#define ESPSIM_BRANCH_PENTIUM_M_HH

#include <cstdint>
#include <vector>

#include "branch/loop_predictor.hh"
#include "branch/pir.hh"
#include "common/stats.hh"
#include "report/stat_registry.hh"
#include "trace/micro_op.hh"

namespace espsim
{

/** Table sizing knobs (defaults = paper Figure 7). */
struct BranchPredictorConfig
{
    std::size_t globalEntries = 2048;
    std::size_t localEntries = 4096;
    std::size_t btbEntries = 2048;
    std::size_t ibtbEntries = 256;
    std::size_t loopEntries = 256;
    unsigned rasDepth = 16;
};

/** A prediction: direction plus (0 = unknown) target. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;
};

/** Outcome of executing one branch against the predictor. */
enum class BranchResult
{
    Correct,    //!< direction and target both right
    BtbMiss,    //!< direction right, target unknown/stale (short bubble)
    Mispredict, //!< wrong direction or wrong indirect/return target
};

/** The replicable per-execution-context predictor state. */
struct BpContext
{
    Pir pir;
    std::vector<Addr> ras;

    void
    clear()
    {
        pir.reset();
        ras.clear();
    }
};

/** Pentium M composite predictor. */
class PentiumMPredictor
{
  public:
    explicit PentiumMPredictor(
        const BranchPredictorConfig &config = BranchPredictorConfig{});

    /**
     * Predict, compare against the op's actual outcome, and update all
     * structures. ESP-mode pre-executions pass @p count_stats = false
     * so speculative branches don't pollute the mispredict-rate stats.
     */
    BranchResult executeBranch(const MicroOp &op,
                               bool count_stats = true);

    /**
     * What would be predicted right now, with no state change. Used by
     * the runahead engine to detect wrong-path divergence on branches
     * whose outcome depends on the missing load.
     */
    BranchPrediction predictOnly(const MicroOp &op) const;

    /**
     * Pre-train the tables with a known future outcome (ESP B-list
     * path). Uses @p train_ctx as the path context — the trainer owns
     * a PIR that replays the recorded path — and does not count stats.
     */
    void train(BpContext &train_ctx, Addr pc, OpType type, bool taken,
               Addr target);

    /** Swap in another execution context (returns the previous one). */
    BpContext swapContext(BpContext ctx);

    /** Current context access (tests / controller). */
    const BpContext &context() const { return ctx_; }
    void clearRas() { ctx_.ras.clear(); }

    /** Full-table snapshot support (the Fig. 12 "separate tables"
     *  design replicates the entire predictor per mode). */
    PentiumMPredictor clone() const { return *this; }
    void copyTablesFrom(const PentiumMPredictor &other);

    // --- statistics (conditional + indirect + return predictions) ---

    /** Register predictor counters by name (canonical surface). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    std::uint64_t branches() const { return stat_branches_; }
    std::uint64_t mispredicts() const { return stat_mispredicts_; }
    /** Mispredicts whose direction was right but the BTB had no/old
     *  target for a taken direct branch (cheaper front-end bubble). */
    std::uint64_t btbMisses() const { return stat_btb_miss_; }
    void
    clearStats()
    {
        stat_branches_ = stat_mispredicts_ = stat_btb_miss_ = 0;
    }

    double
    mispredictRate() const
    {
        return stat_branches_ == 0
            ? 0.0
            : static_cast<double>(stat_mispredicts_) /
                static_cast<double>(stat_branches_);
    }

  private:
    BranchPredictorConfig config_;
    BpContext ctx_;

    struct GlobalEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t counter = 0; //!< 2-bit saturating
        bool valid = false;
    };
    struct TargetEntry
    {
        std::uint32_t tag = 0;
        Addr target = 0;
        bool valid = false;
    };

    std::vector<GlobalEntry> global_;
    std::vector<std::uint8_t> local_; //!< 2-bit counters
    std::vector<TargetEntry> btb_;
    std::vector<TargetEntry> ibtb_;
    LoopPredictor loop_;

    std::uint64_t stat_branches_ = 0;
    std::uint64_t stat_mispredicts_ = 0;
    std::uint64_t stat_btb_miss_ = 0;

    // --- helpers ---------------------------------------------------
    std::size_t globalIndex(const Pir &pir, Addr pc) const;
    std::uint16_t globalTag(const Pir &pir, Addr pc) const;
    std::size_t localIndex(Addr pc) const;
    std::size_t btbIndex(Addr pc) const;
    std::uint32_t btbTag(Addr pc) const;
    std::size_t ibtbIndex(const Pir &pir, Addr pc) const;
    std::uint32_t ibtbTag(const Pir &pir, Addr pc) const;

    bool predictDirection(const BpContext &ctx, Addr pc) const;
    void updateDirection(BpContext &ctx, Addr pc, bool taken,
                         bool final_pred_wrong, bool architectural);
    void updateTargets(BpContext &ctx, const MicroOp &op);
    BranchPrediction predict(const BpContext &ctx,
                             const MicroOp &op) const;
    static void bumpCounter(std::uint8_t &counter, bool taken);
};

} // namespace espsim

#endif // ESPSIM_BRANCH_PENTIUM_M_HH
