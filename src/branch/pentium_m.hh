/**
 * @file
 * Pentium M-style branch predictor, sized per the paper's Figure 7:
 * 2k-entry tagged global predictor (PIR-indexed), 4k-entry local
 * predictor, 2k-entry BTB, 256-entry indirect BTB (PIR-indexed),
 * 256-entry loop predictor, and a 16-deep return address stack.
 *
 * The predictor separates *context* (PIR + RAS — cheap, replicated per
 * ESP execution mode) from *tables* (shared across modes in the final
 * ESP design). BpContext snapshots support the mode switching of §4.3.
 */

#ifndef ESPSIM_BRANCH_PENTIUM_M_HH
#define ESPSIM_BRANCH_PENTIUM_M_HH

#include <cstdint>
#include <vector>

#include "branch/loop_predictor.hh"
#include "branch/pir.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "report/stat_registry.hh"
#include "trace/micro_op.hh"

namespace espsim
{

/** Table sizing knobs (defaults = paper Figure 7). */
struct BranchPredictorConfig
{
    std::size_t globalEntries = 2048;
    std::size_t localEntries = 4096;
    std::size_t btbEntries = 2048;
    std::size_t ibtbEntries = 256;
    std::size_t loopEntries = 256;
    unsigned rasDepth = 16;
};

/** A prediction: direction plus (0 = unknown) target. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;
};

/** Outcome of executing one branch against the predictor. */
enum class BranchResult
{
    Correct,    //!< direction and target both right
    BtbMiss,    //!< direction right, target unknown/stale (short bubble)
    Mispredict, //!< wrong direction or wrong indirect/return target
};

/** The replicable per-execution-context predictor state. */
struct BpContext
{
    Pir pir;
    std::vector<Addr> ras;

    void
    clear()
    {
        pir.reset();
        ras.clear();
    }
};

/** Pentium M composite predictor. */
class PentiumMPredictor
{
  public:
    explicit PentiumMPredictor(
        const BranchPredictorConfig &config = BranchPredictorConfig{});

    /**
     * Predict, compare against the op's actual outcome, and update all
     * structures. ESP-mode pre-executions pass @p count_stats = false
     * so speculative branches don't pollute the mispredict-rate stats.
     * Inline (with the whole predict/update chain below): both the
     * normal pipeline and the spec pre-execution loop execute one of
     * these per branch op.
     */
    BranchResult
    executeBranch(const MicroOp &op, bool count_stats = true)
    {
        if (count_stats)
            ++stat_branches_;
        const BranchPrediction pred = predict(ctx_, op);

        BranchResult result = BranchResult::Correct;
        switch (op.type()) {
          case OpType::BranchCond:
            if (pred.taken != op.taken())
                result = BranchResult::Mispredict;
            else if (op.taken() && pred.target != op.branchTarget())
                result = BranchResult::BtbMiss;
            break;
          case OpType::BranchDirect:
          case OpType::Call:
            if (pred.target != op.branchTarget())
                result = BranchResult::BtbMiss;
            break;
          case OpType::Return:
          case OpType::BranchIndirect:
            if (pred.target != op.branchTarget())
                result = BranchResult::Mispredict;
            break;
          default:
            panic("executeBranch() called on a non-branch op");
        }

        if (count_stats) {
            if (result == BranchResult::Mispredict)
                ++stat_mispredicts_;
            else if (result == BranchResult::BtbMiss)
                ++stat_btb_miss_;
        }

        if (op.type() == OpType::BranchCond) {
            updateDirection(ctx_, op.pc, op.taken(),
                            result == BranchResult::Mispredict,
                            count_stats);
        }
        updateTargets(ctx_, op);
        return result;
    }

    /**
     * What would be predicted right now, with no state change. Used by
     * the runahead engine to detect wrong-path divergence on branches
     * whose outcome depends on the missing load.
     */
    BranchPrediction predictOnly(const MicroOp &op) const
    {
        return predict(ctx_, op);
    }

    /**
     * Pre-train the tables with a known future outcome (ESP B-list
     * path). Uses @p train_ctx as the path context — the trainer owns
     * a PIR that replays the recorded path — and does not count stats.
     */
    void train(BpContext &train_ctx, Addr pc, OpType type, bool taken,
               Addr target);

    /** Swap in another execution context (returns the previous one). */
    BpContext swapContext(BpContext ctx);

    /** Current context access (tests / controller). */
    const BpContext &context() const { return ctx_; }
    void clearRas() { ctx_.ras.clear(); }

    /** Full-table snapshot support (the Fig. 12 "separate tables"
     *  design replicates the entire predictor per mode). */
    PentiumMPredictor clone() const { return *this; }
    void copyTablesFrom(const PentiumMPredictor &other);

    // --- statistics (conditional + indirect + return predictions) ---

    /** Register predictor counters by name (canonical surface). */
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const;

    std::uint64_t branches() const { return stat_branches_; }
    std::uint64_t mispredicts() const { return stat_mispredicts_; }
    /** Mispredicts whose direction was right but the BTB had no/old
     *  target for a taken direct branch (cheaper front-end bubble). */
    std::uint64_t btbMisses() const { return stat_btb_miss_; }
    void
    clearStats()
    {
        stat_branches_ = stat_mispredicts_ = stat_btb_miss_ = 0;
    }

    double
    mispredictRate() const
    {
        return stat_branches_ == 0
            ? 0.0
            : static_cast<double>(stat_mispredicts_) /
                static_cast<double>(stat_branches_);
    }

  private:
    BranchPredictorConfig config_;
    BpContext ctx_;

    struct GlobalEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t counter = 0; //!< 2-bit saturating
        bool valid = false;
    };
    struct TargetEntry
    {
        std::uint32_t tag = 0;
        Addr target = 0;
        bool valid = false;
    };

    std::vector<GlobalEntry> global_;
    std::vector<std::uint8_t> local_; //!< 2-bit counters
    std::vector<TargetEntry> btb_;
    std::vector<TargetEntry> ibtb_;
    LoopPredictor loop_;

    std::uint64_t stat_branches_ = 0;
    std::uint64_t stat_mispredicts_ = 0;
    std::uint64_t stat_btb_miss_ = 0;

    // --- helpers ---------------------------------------------------
    static std::uint64_t
    hashMix(std::uint64_t v)
    {
        v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
        v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
        return v ^ (v >> 31);
    }

    std::size_t
    globalIndex(const Pir &pir, Addr pc) const
    {
        return static_cast<std::size_t>(
            hashMix(pir.value() ^ (pc >> 2)) % config_.globalEntries);
    }

    std::uint16_t
    globalTag(const Pir &pir, Addr pc) const
    {
        return static_cast<std::uint16_t>(
            hashMix((pc >> 2) * 31 + pir.value()) & 0xff);
    }

    std::size_t
    localIndex(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) %
                                        config_.localEntries);
    }

    std::size_t
    btbIndex(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> 2) % config_.btbEntries);
    }

    std::uint32_t
    btbTag(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc >> 2) /
                                          config_.btbEntries) &
            0xfffff;
    }

    std::size_t
    ibtbIndex(const Pir &pir, Addr pc) const
    {
        return static_cast<std::size_t>(
            hashMix(pir.value() * 7 ^ (pc >> 2)) % config_.ibtbEntries);
    }

    std::uint32_t
    ibtbTag(const Pir &pir, Addr pc) const
    {
        return static_cast<std::uint32_t>(
            hashMix((pc >> 2) ^ (pir.value() << 5)) & 0x3ff);
    }

    static void
    bumpCounter(std::uint8_t &counter, bool taken)
    {
        if (taken) {
            if (counter < 3)
                ++counter;
        } else if (counter > 0) {
            --counter;
        }
    }

    bool
    predictDirection(const BpContext &ctx, Addr pc) const
    {
        if (auto loop_pred = loop_.predict(pc))
            return *loop_pred;
        const GlobalEntry &g = global_[globalIndex(ctx.pir, pc)];
        if (g.valid && g.tag == globalTag(ctx.pir, pc))
            return g.counter >= 2;
        return local_[localIndex(pc)] >= 2;
    }

    void
    updateDirection(BpContext &ctx, Addr pc, bool taken,
                    bool final_pred_wrong, bool architectural)
    {
        // The loop predictor's trip counters are not idempotent: a
        // branch instance must be counted exactly once, by its
        // architectural execution. Speculative pre-execution (ESP
        // modes, runahead) and ahead-of-time B-list training skip it.
        if (architectural)
            loop_.update(pc, taken);
        bumpCounter(local_[localIndex(pc)], taken);
        GlobalEntry &g = global_[globalIndex(ctx.pir, pc)];
        const std::uint16_t tag = globalTag(ctx.pir, pc);
        if (g.valid && g.tag == tag) {
            bumpCounter(g.counter, taken);
        } else if (final_pred_wrong) {
            // Allocate on a misprediction, like the Pentium M's
            // mispredict-driven global allocation.
            g.valid = true;
            g.tag = tag;
            g.counter = taken ? 2 : 1;
        }
    }

    void
    updateTargets(BpContext &ctx, const MicroOp &op)
    {
        switch (op.type()) {
          case OpType::BranchCond:
            if (op.taken()) {
                TargetEntry &e = btb_[btbIndex(op.pc)];
                e.valid = true;
                e.tag = btbTag(op.pc);
                e.target = op.branchTarget();
            }
            break;
          case OpType::BranchDirect:
          case OpType::Call: {
            TargetEntry &e = btb_[btbIndex(op.pc)];
            e.valid = true;
            e.tag = btbTag(op.pc);
            e.target = op.branchTarget();
            if (op.type() == OpType::Call) {
                if (ctx.ras.size() >= config_.rasDepth)
                    ctx.ras.erase(ctx.ras.begin());
                ctx.ras.push_back(op.pc + 4);
            }
            break;
          }
          case OpType::Return:
            if (!ctx.ras.empty())
                ctx.ras.pop_back();
            break;
          case OpType::BranchIndirect: {
            TargetEntry &ie = ibtb_[ibtbIndex(ctx.pir, op.pc)];
            ie.valid = true;
            ie.tag = ibtbTag(ctx.pir, op.pc);
            ie.target = op.branchTarget();
            TargetEntry &e = btb_[btbIndex(op.pc)];
            e.valid = true;
            e.tag = btbTag(op.pc);
            e.target = op.branchTarget();
            break;
          }
          default:
            panic("updateTargets() called on a non-branch op");
        }
        if (op.taken())
            ctx.pir.update(op.pc, op.branchTarget());
    }

    BranchPrediction
    predict(const BpContext &ctx, const MicroOp &op) const
    {
        BranchPrediction pred;
        switch (op.type()) {
          case OpType::BranchCond: {
            pred.taken = predictDirection(ctx, op.pc);
            if (pred.taken) {
                const TargetEntry &e = btb_[btbIndex(op.pc)];
                if (e.valid && e.tag == btbTag(op.pc))
                    pred.target = e.target;
            }
            break;
          }
          case OpType::BranchDirect:
          case OpType::Call: {
            pred.taken = true;
            const TargetEntry &e = btb_[btbIndex(op.pc)];
            if (e.valid && e.tag == btbTag(op.pc))
                pred.target = e.target;
            break;
          }
          case OpType::Return: {
            pred.taken = true;
            if (!ctx.ras.empty())
                pred.target = ctx.ras.back();
            break;
          }
          case OpType::BranchIndirect: {
            pred.taken = true;
            const TargetEntry &ie = ibtb_[ibtbIndex(ctx.pir, op.pc)];
            if (ie.valid && ie.tag == ibtbTag(ctx.pir, op.pc)) {
                pred.target = ie.target;
            } else {
                const TargetEntry &e = btb_[btbIndex(op.pc)];
                if (e.valid && e.tag == btbTag(op.pc))
                    pred.target = e.target;
            }
            break;
          }
          default:
            panic("predict() called on a non-branch op");
        }
        return pred;
    }
};

} // namespace espsim

#endif // ESPSIM_BRANCH_PENTIUM_M_HH
