#include "branch/loop_predictor.hh"

namespace espsim
{

LoopPredictor::LoopPredictor(std::size_t entries) : entries_(entries)
{
}

void
LoopPredictor::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
}

} // namespace espsim
