#include "branch/loop_predictor.hh"

namespace espsim
{

LoopPredictor::LoopPredictor(std::size_t entries) : entries_(entries)
{
}

std::size_t
LoopPredictor::indexOf(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) % entries_.size());
}

std::uint32_t
LoopPredictor::tagOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) / entries_.size()) &
        0xffff;
}

std::optional<bool>
LoopPredictor::predict(Addr pc) const
{
    const Entry &e = entries_[indexOf(pc)];
    if (!e.valid || e.tag != tagOf(pc) || e.confidence < 2 ||
        e.limit == 0) {
        return std::nullopt;
    }
    // Predict not-taken exactly when the learned trip count is reached.
    return e.current + 1 < e.limit;
}

void
LoopPredictor::update(Addr pc, bool taken)
{
    Entry &e = entries_[indexOf(pc)];
    const std::uint32_t tag = tagOf(pc);
    if (!e.valid || e.tag != tag) {
        // Allocate only on a not-taken outcome (potential loop exit);
        // this filters never-exiting branches out of the small table.
        if (!taken) {
            e = Entry{};
            e.tag = tag;
            e.valid = true;
        }
        return;
    }
    if (taken) {
        ++e.current;
        if (e.current > 4096) {
            // Not a loop we can track; drop it.
            e.valid = false;
        }
        return;
    }
    const std::uint32_t trip = e.current + 1;
    if (trip == e.limit) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.limit = trip;
        e.confidence = 0;
    }
    e.current = 0;
}

void
LoopPredictor::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
}

} // namespace espsim
