/**
 * @file
 * Dynamic instruction trace of one asynchronous event, plus the
 * metadata ESP needs: handler identity, the event-argument object
 * address, and the inter-event dependence that makes speculative
 * pre-execution of this event diverge.
 */

#ifndef ESPSIM_TRACE_EVENT_TRACE_HH
#define ESPSIM_TRACE_EVENT_TRACE_HH

#include <cstdint>
#include <limits>

#include "common/logging.hh"
#include "trace/micro_op.hh"
#include "trace/op_sequence.hh"

namespace espsim
{

/** Sentinel: event has no divergence point / no producer. */
constexpr std::size_t noDivergence = std::numeric_limits<std::size_t>::max();

/**
 * The recorded execution of one event handler.
 *
 * Two views of the same event exist conceptually:
 *  - the *normal* view: what the event does when executed in program
 *    order (ops[0..size));
 *  - the *speculative* view: what a pre-execution that jumped over
 *    not-yet-committed earlier events observes. For independent events
 *    the views are identical. For an event with a read-after-write
 *    dependence on a skipped event, the speculative view matches the
 *    normal view up to @ref divergencePoint and is perturbed after it
 *    (wrong values steer wrong paths). The perturbed tail is stored in
 *    @ref divergedTail.
 */
class EventTrace
{
  public:
    /** Monotonic event sequence number within the workload. */
    std::uint64_t id = 0;

    /** Static handler type (which callback function ran). */
    std::uint32_t handlerType = 0;

    /** Starting instruction address of the handler. */
    Addr handlerPc = 0;

    /** Address of the argument object passed to the handler (§4.1). */
    Addr argObjectAddr = 0;

    /** Normal-view dynamic instruction stream (SoA layout). */
    OpSequence ops;

    /**
     * Index of the first op whose behaviour depends on a value written
     * by an earlier (potentially skipped) event; noDivergence when the
     * event is independent.
     */
    std::size_t divergencePoint = noDivergence;

    /**
     * Speculative-view replacement for ops[divergencePoint..): the
     * wrong path a pre-execution follows. Empty for independent
     * events. May be shorter than the real tail (models pre-executions
     * that veer off and fail to complete).
     */
    OpSequence divergedTail;

    std::size_t size() const { return ops.size(); }
    bool independent() const { return divergencePoint == noDivergence; }

    /**
     * Number of ops visible in the speculative view (normal prefix +
     * diverged tail).
     */
    std::size_t
    speculativeSize() const
    {
        if (independent())
            return ops.size();
        return divergencePoint + divergedTail.size();
    }

    /**
     * Op at index @p idx as seen by a speculative pre-execution,
     * assembled by value from the SoA storage. Inline: the spec
     * pre-execution loop calls this once per op.
     * @pre idx < speculativeSize()
     */
    MicroOp
    speculativeOp(std::size_t idx) const
    {
        if (independent() || idx < divergencePoint) {
            if (idx >= ops.size())
                panic("speculativeOp index %zu out of range %zu", idx,
                      ops.size());
            return ops[idx];
        }
        const std::size_t tail_idx = idx - divergencePoint;
        if (tail_idx >= divergedTail.size())
            panic("speculativeOp tail index %zu out of range %zu",
                  tail_idx, divergedTail.size());
        return divergedTail[tail_idx];
    }

    /**
     * Fraction of speculative-view ops identical to the normal view
     * (the paper reports > 99% match).
     */
    double speculativeMatchFraction() const;
};

} // namespace espsim

#endif // ESPSIM_TRACE_EVENT_TRACE_HH
