/**
 * @file
 * A workload is an ordered sequence of event traces — the stream an
 * asynchronous program's looper thread would dequeue and execute.
 *
 * The simulator only ever looks at the current event and the next two
 * (the events visible in ESP's 2-entry hardware event queue), so
 * implementations may generate traces lazily; InMemoryWorkload is the
 * eager implementation produced by the synthetic generator.
 */

#ifndef ESPSIM_TRACE_WORKLOAD_HH
#define ESPSIM_TRACE_WORKLOAD_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "trace/event_trace.hh"

namespace espsim
{

/** Half-open byte range [first, second) of the address space. */
using AddrRange = std::pair<Addr, Addr>;

/** Abstract ordered stream of event traces. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Human-readable name (appears in every report). */
    virtual const std::string &name() const = 0;

    /** Number of events in the stream. */
    virtual std::size_t numEvents() const = 0;

    /**
     * Trace of the @p idx-th event. The reference stays valid at least
     * until event idx+3 is requested (the simulator's lookahead span).
     * @pre idx < numEvents()
     */
    virtual const EventTrace &event(std::size_t idx) const = 0;

    /**
     * Address ranges resident in the LLC when the session begins (the
     * paper traces a browser that has been running; compulsory misses
     * on the application's standing code/heap image are not part of
     * the measured region). The simulator pre-warms the L2 with these.
     */
    virtual std::vector<AddrRange> warmSet() const { return {}; }

    /**
     * The software runtime's prediction of which event runs @p ahead
     * dispatches after event @p current (paper §4.5). For the common
     * single-queue looper this is exact (current + ahead); multi-queue
     * systems (InterleavedWorkload) may mispredict, in which case ESP's
     * incorrect-prediction bit discards the stale hints at promotion.
     */
    virtual std::size_t
    predictedNext(std::size_t current, unsigned ahead) const
    {
        return current + ahead;
    }

    /** Total normal-view instructions across all events. */
    InstCount totalInstructions() const;

    /** Fraction of events that are independent of their predecessors. */
    double independentEventFraction() const;
};

/** Workload with every trace materialised up front. */
class InMemoryWorkload : public Workload
{
  public:
    InMemoryWorkload(std::string name, std::vector<EventTrace> events);

    const std::string &name() const override { return name_; }
    std::size_t numEvents() const override { return events_.size(); }
    const EventTrace &event(std::size_t idx) const override;

    std::vector<AddrRange> warmSet() const override { return warmSet_; }
    void setWarmSet(std::vector<AddrRange> ranges)
    {
        warmSet_ = std::move(ranges);
    }

  private:
    std::string name_;
    std::vector<EventTrace> events_;
    std::vector<AddrRange> warmSet_;
};

} // namespace espsim

#endif // ESPSIM_TRACE_WORKLOAD_HH
