#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "common/logging.hh"

namespace espsim
{

namespace
{

constexpr char magic[4] = {'E', 'S', 'P', 'W'};

/** Hard caps so malformed files can't trigger huge allocations. */
constexpr std::uint64_t maxEvents = 1u << 24;
constexpr std::uint64_t maxOpsPerEvent = 1u << 28;
constexpr std::uint64_t maxWarmRanges = 1u << 20;
constexpr std::uint64_t maxNameLength = 1u << 16;

template <typename T>
void
put(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
get(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(in);
}

void
putOp(std::ostream &out, const MicroOp &op)
{
    put<std::uint64_t>(out, op.pc);
    put<std::uint64_t>(out, op.memAddr);
    put<std::uint64_t>(out, op.branchTarget());
    put<std::uint8_t>(out, static_cast<std::uint8_t>(op.type()));
    put<std::uint8_t>(out, op.taken() ? 1 : 0);
    put<std::uint8_t>(out, op.srcA);
    put<std::uint8_t>(out, op.srcB);
    put<std::uint8_t>(out, op.dest);
}

bool
getOp(std::istream &in, MicroOp &op)
{
    std::uint64_t pc, mem, tgt;
    std::uint8_t type, taken, a, b, d;
    if (!get(in, pc) || !get(in, mem) || !get(in, tgt) ||
        !get(in, type) || !get(in, taken) || !get(in, a) ||
        !get(in, b) || !get(in, d)) {
        return false;
    }
    if (type > static_cast<std::uint8_t>(OpType::Return))
        return false;
    // The packed MicroOp layout stores branch targets in 32 bits;
    // reject rather than truncate a file claiming a wider target.
    if (tgt >> 32)
        return false;
    op.pc = pc;
    op.memAddr = mem;
    op.setBranchTarget(tgt);
    op.setType(static_cast<OpType>(type));
    op.setTaken(taken != 0);
    op.srcA = a;
    op.srcB = b;
    op.dest = d;
    return true;
}

} // namespace

bool
writeWorkload(std::ostream &out, const Workload &workload)
{
    out.write(magic, sizeof(magic));
    put<std::uint32_t>(out, traceFormatVersion);
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(workload.numEvents()));
    const auto warm = workload.warmSet();
    put<std::uint32_t>(out, static_cast<std::uint32_t>(warm.size()));
    const std::string &name = workload.name();
    put<std::uint64_t>(out, name.size());
    out.write(name.data(), static_cast<std::streamsize>(name.size()));

    for (const AddrRange &range : warm) {
        put<std::uint64_t>(out, range.first);
        put<std::uint64_t>(out, range.second);
    }

    for (std::size_t i = 0; i < workload.numEvents(); ++i) {
        const EventTrace &ev = workload.event(i);
        put<std::uint64_t>(out, ev.id);
        put<std::uint32_t>(out, ev.handlerType);
        put<std::uint64_t>(out, ev.handlerPc);
        put<std::uint64_t>(out, ev.argObjectAddr);
        put<std::uint64_t>(out,
                           ev.independent()
                               ? std::numeric_limits<std::uint64_t>::max()
                               : ev.divergencePoint);
        put<std::uint64_t>(out, ev.ops.size());
        put<std::uint64_t>(out, ev.divergedTail.size());
        for (const MicroOp &op : ev.ops)
            putOp(out, op);
        for (const MicroOp &op : ev.divergedTail)
            putOp(out, op);
    }
    return static_cast<bool>(out);
}

std::unique_ptr<InMemoryWorkload>
readWorkload(std::istream &in)
{
    char m[4];
    in.read(m, sizeof(m));
    if (!in || std::memcmp(m, magic, sizeof(magic)) != 0)
        return nullptr;
    std::uint32_t version, num_events, num_warm;
    std::uint64_t name_len;
    if (!get(in, version) || version != traceFormatVersion)
        return nullptr;
    if (!get(in, num_events) || num_events > maxEvents)
        return nullptr;
    if (!get(in, num_warm) || num_warm > maxWarmRanges)
        return nullptr;
    if (!get(in, name_len) || name_len > maxNameLength)
        return nullptr;
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in)
        return nullptr;

    std::vector<AddrRange> warm;
    warm.reserve(num_warm);
    for (std::uint32_t i = 0; i < num_warm; ++i) {
        std::uint64_t begin, end;
        if (!get(in, begin) || !get(in, end) || end < begin)
            return nullptr;
        warm.emplace_back(begin, end);
    }

    std::vector<EventTrace> events;
    events.reserve(num_events);
    for (std::uint32_t i = 0; i < num_events; ++i) {
        EventTrace ev;
        std::uint64_t divergence, num_ops, num_tail;
        std::uint32_t handler;
        if (!get(in, ev.id) || !get(in, handler) ||
            !get(in, ev.handlerPc) || !get(in, ev.argObjectAddr) ||
            !get(in, divergence) || !get(in, num_ops) ||
            !get(in, num_tail)) {
            return nullptr;
        }
        ev.handlerType = handler;
        if (num_ops > maxOpsPerEvent || num_tail > maxOpsPerEvent)
            return nullptr;
        if (divergence != std::numeric_limits<std::uint64_t>::max()) {
            if (divergence >= num_ops)
                return nullptr;
            ev.divergencePoint = static_cast<std::size_t>(divergence);
        }
        ev.ops.reserve(static_cast<std::size_t>(num_ops));
        for (std::uint64_t k = 0; k < num_ops; ++k) {
            MicroOp op;
            if (!getOp(in, op))
                return nullptr;
            ev.ops.push_back(op);
        }
        ev.divergedTail.reserve(static_cast<std::size_t>(num_tail));
        for (std::uint64_t k = 0; k < num_tail; ++k) {
            MicroOp op;
            if (!getOp(in, op))
                return nullptr;
            ev.divergedTail.push_back(op);
        }
        events.push_back(std::move(ev));
    }

    auto workload = std::make_unique<InMemoryWorkload>(
        std::move(name), std::move(events));
    workload->setWarmSet(std::move(warm));
    return workload;
}

bool
saveWorkload(const std::string &path, const Workload &workload)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    return writeWorkload(out, workload);
}

std::unique_ptr<InMemoryWorkload>
loadWorkload(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '%s' for reading", path.c_str());
    return readWorkload(in);
}

} // namespace espsim
