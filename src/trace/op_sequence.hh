/**
 * @file
 * Structure-of-arrays storage for a dynamic instruction stream.
 *
 * The decode/issue loop touches every op's pc and metadata but only a
 * memory op's effective address. Storing an event's ops as three
 * parallel 64-bit lanes (pc / memAddr / packed meta) lets that loop
 * stream two dense arrays and pick from the third on demand, instead
 * of striding through 24-byte records; it also keeps each lane
 * trivially prefetchable. MicroOp remains the exchange currency:
 * operator[] assembles one by value, and const-reference bindings at
 * existing call sites keep working through lifetime extension.
 */

#ifndef ESPSIM_TRACE_OP_SEQUENCE_HH
#define ESPSIM_TRACE_OP_SEQUENCE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <vector>

#include "trace/micro_op.hh"

namespace espsim
{

/** SoA container of MicroOps with vector-like surface. */
class OpSequence
{
  public:
    OpSequence() = default;

    OpSequence(std::initializer_list<MicroOp> ops)
    {
        reserve(ops.size());
        for (const MicroOp &op : ops)
            push_back(op);
    }

    std::size_t size() const { return pc_.size(); }
    bool empty() const { return pc_.empty(); }

    void
    reserve(std::size_t n)
    {
        pc_.reserve(n);
        mem_.reserve(n);
        meta_.reserve(n);
    }

    void
    clear()
    {
        pc_.clear();
        mem_.clear();
        meta_.clear();
    }

    void
    push_back(const MicroOp &op)
    {
        pc_.push_back(op.pc);
        mem_.push_back(op.memAddr);
        meta_.push_back(op.metaLane());
    }

    /** Assemble the op at @p i by value. */
    MicroOp
    operator[](std::size_t i) const
    {
        assert(i < size());
        return MicroOp::fromLanes(pc_[i], mem_[i], meta_[i]);
    }

    /** Overwrite the op at @p i. */
    void
    set(std::size_t i, const MicroOp &op)
    {
        assert(i < size());
        pc_[i] = op.pc;
        mem_[i] = op.memAddr;
        meta_[i] = op.metaLane();
    }

    /** @name Lane accessors for the hot decode/issue loop. @{ */
    Addr pc(std::size_t i) const { return pc_[i]; }
    Addr memAddr(std::size_t i) const { return mem_[i]; }
    std::uint64_t metaLane(std::size_t i) const { return meta_[i]; }
    const Addr *pcLane() const { return pc_.data(); }
    const Addr *memLane() const { return mem_.data(); }
    const std::uint64_t *metaLaneData() const { return meta_.data(); }
    /** @} */

    /** Input iterator yielding MicroOps by value (range-for support;
     *  `const MicroOp &` bindings live through lifetime extension). */
    class const_iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = MicroOp;
        using difference_type = std::ptrdiff_t;
        using pointer = const MicroOp *;
        using reference = MicroOp;

        const_iterator(const OpSequence *seq, std::size_t i)
            : seq_(seq), i_(i)
        {
        }

        MicroOp operator*() const { return (*seq_)[i_]; }

        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return i_ == other.i_;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return i_ != other.i_;
        }

      private:
        const OpSequence *seq_;
        std::size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }

  private:
    std::vector<Addr> pc_;
    std::vector<Addr> mem_;
    std::vector<std::uint64_t> meta_;
};

} // namespace espsim

#endif // ESPSIM_TRACE_OP_SEQUENCE_HH
