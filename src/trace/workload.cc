#include "trace/workload.hh"

#include "common/logging.hh"

namespace espsim
{

InstCount
Workload::totalInstructions() const
{
    InstCount total = 0;
    for (std::size_t i = 0; i < numEvents(); ++i)
        total += event(i).size();
    return total;
}

double
Workload::independentEventFraction() const
{
    if (numEvents() == 0)
        return 1.0;
    std::size_t independent = 0;
    for (std::size_t i = 0; i < numEvents(); ++i) {
        if (event(i).independent())
            ++independent;
    }
    return static_cast<double>(independent) /
        static_cast<double>(numEvents());
}

InMemoryWorkload::InMemoryWorkload(std::string name,
                                   std::vector<EventTrace> events)
    : name_(std::move(name)), events_(std::move(events))
{
}

const EventTrace &
InMemoryWorkload::event(std::size_t idx) const
{
    if (idx >= events_.size())
        panic("workload '%s': event %zu out of range %zu", name_.c_str(),
              idx, events_.size());
    return events_[idx];
}

} // namespace espsim
