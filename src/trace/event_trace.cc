#include "trace/event_trace.hh"

namespace espsim
{

double
EventTrace::speculativeMatchFraction() const
{
    if (independent())
        return 1.0;
    const std::size_t spec = speculativeSize();
    if (spec == 0)
        return 1.0;
    return static_cast<double>(divergencePoint) /
        static_cast<double>(spec);
}

} // namespace espsim
