#include "trace/event_trace.hh"

#include "common/logging.hh"

namespace espsim
{

std::size_t
EventTrace::speculativeSize() const
{
    if (independent())
        return ops.size();
    return divergencePoint + divergedTail.size();
}

const MicroOp &
EventTrace::speculativeOp(std::size_t idx) const
{
    if (independent() || idx < divergencePoint) {
        if (idx >= ops.size())
            panic("speculativeOp index %zu out of range %zu", idx,
                  ops.size());
        return ops[idx];
    }
    const std::size_t tail_idx = idx - divergencePoint;
    if (tail_idx >= divergedTail.size())
        panic("speculativeOp tail index %zu out of range %zu", tail_idx,
              divergedTail.size());
    return divergedTail[tail_idx];
}

double
EventTrace::speculativeMatchFraction() const
{
    if (independent())
        return 1.0;
    const std::size_t spec = speculativeSize();
    if (spec == 0)
        return 1.0;
    return static_cast<double>(divergencePoint) /
        static_cast<double>(spec);
}

} // namespace espsim
