/**
 * @file
 * The unit of work in the trace-driven timing model.
 *
 * A MicroOp carries everything the core, caches, branch predictor, and
 * the ESP/runahead speculation engines need: program counter, memory
 * address, control-flow outcome, and register operands (the latter let
 * runahead track which instructions are invalid after a missing load).
 *
 * The struct is packed to 24 bytes so the decode/issue loop streams
 * three cache lines per eight ops instead of four: the branch target
 * lives in 32 bits (every code address the workload layout can emit —
 * generator.hh bases — fits; the setter checks), and the op type
 * shares a byte with the taken flag. Only `pc`, `memAddr` and the
 * register ids remain directly-addressable fields; type, taken and
 * branchTarget go through accessors.
 */

#ifndef ESPSIM_TRACE_MICRO_OP_HH
#define ESPSIM_TRACE_MICRO_OP_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace espsim
{

/** Number of architectural registers modeled for dependence tracking. */
constexpr unsigned numArchRegs = 32;

/** Register id meaning "no operand". */
constexpr std::uint8_t noReg = 0xff;

/** One dynamic instruction of an event's execution trace. */
struct MicroOp
{
    /** Instruction address. */
    Addr pc = 0;

    /** Effective address for loads/stores; 0 otherwise. */
    Addr memAddr = 0;

  private:
    /** Next PC of a taken branch, truncated to 32 bits (checked). */
    std::uint32_t target32_ = 0;

    /** Operation class in the low 7 bits, taken flag in bit 7. */
    std::uint8_t typeTaken_ = 0;

    static constexpr std::uint8_t takenBit = 0x80;

  public:
    /** Source register operands (noReg if unused). */
    std::uint8_t srcA = noReg;
    std::uint8_t srcB = noReg;

    /** Destination register (noReg if none). */
    std::uint8_t dest = noReg;

    /** Operation class. */
    OpType
    type() const
    {
        return static_cast<OpType>(typeTaken_ & ~takenBit);
    }

    void
    setType(OpType type)
    {
        typeTaken_ = static_cast<std::uint8_t>(
            (typeTaken_ & takenBit) | static_cast<std::uint8_t>(type));
    }

    /** Actual direction of a conditional branch (true for all taken
     *  control transfers). */
    bool taken() const { return (typeTaken_ & takenBit) != 0; }

    void
    setTaken(bool taken)
    {
        typeTaken_ = static_cast<std::uint8_t>(
            taken ? (typeTaken_ | takenBit) : (typeTaken_ & ~takenBit));
    }

    /** Next PC actually followed by a taken branch; 0 otherwise. */
    Addr branchTarget() const { return target32_; }

    void
    setBranchTarget(Addr target)
    {
        if (target >> 32) {
            panic("MicroOp: branch target %#llx exceeds the 32-bit "
                  "code address space the packed layout assumes",
                  static_cast<unsigned long long>(target));
        }
        target32_ = static_cast<std::uint32_t>(target);
    }

    bool isBranchOp() const { return isBranch(type()); }
    bool isMemoryOp() const { return isMemory(type()); }
    bool isLoad() const { return type() == OpType::Load; }
    bool isStore() const { return type() == OpType::Store; }

    /** @name SoA transport
     * OpSequence (op_sequence.hh) stores ops as three parallel 64-bit
     * lanes: pc, memAddr, and this packed metadata word.
     * @{ */
    std::uint64_t
    metaLane() const
    {
        return std::uint64_t{target32_} |
            (std::uint64_t{typeTaken_} << 32) |
            (std::uint64_t{srcA} << 40) | (std::uint64_t{srcB} << 48) |
            (std::uint64_t{dest} << 56);
    }

    static MicroOp
    fromLanes(Addr pc, Addr mem_addr, std::uint64_t meta)
    {
        MicroOp op;
        op.pc = pc;
        op.memAddr = mem_addr;
        op.target32_ = static_cast<std::uint32_t>(meta);
        op.typeTaken_ = static_cast<std::uint8_t>(meta >> 32);
        op.srcA = static_cast<std::uint8_t>(meta >> 40);
        op.srcB = static_cast<std::uint8_t>(meta >> 48);
        op.dest = static_cast<std::uint8_t>(meta >> 56);
        return op;
    }
    /** @} */
};

static_assert(sizeof(MicroOp) == 24,
              "MicroOp must stay in its packed 24-byte layout");

} // namespace espsim

#endif // ESPSIM_TRACE_MICRO_OP_HH
