/**
 * @file
 * The unit of work in the trace-driven timing model.
 *
 * A MicroOp carries everything the core, caches, branch predictor, and
 * the ESP/runahead speculation engines need: program counter, memory
 * address, control-flow outcome, and register operands (the latter let
 * runahead track which instructions are invalid after a missing load).
 */

#ifndef ESPSIM_TRACE_MICRO_OP_HH
#define ESPSIM_TRACE_MICRO_OP_HH

#include <cstdint>

#include "common/types.hh"

namespace espsim
{

/** Number of architectural registers modeled for dependence tracking. */
constexpr unsigned numArchRegs = 32;

/** Register id meaning "no operand". */
constexpr std::uint8_t noReg = 0xff;

/** One dynamic instruction of an event's execution trace. */
struct MicroOp
{
    /** Instruction address. */
    Addr pc = 0;

    /** Effective address for loads/stores; 0 otherwise. */
    Addr memAddr = 0;

    /** Next PC actually followed by a taken branch; 0 otherwise. */
    Addr branchTarget = 0;

    /** Operation class. */
    OpType type = OpType::IntAlu;

    /** Actual direction of a conditional branch (true for all taken
     *  control transfers). */
    bool taken = false;

    /** Source register operands (noReg if unused). */
    std::uint8_t srcA = noReg;
    std::uint8_t srcB = noReg;

    /** Destination register (noReg if none). */
    std::uint8_t dest = noReg;

    bool isBranchOp() const { return isBranch(type); }
    bool isMemoryOp() const { return isMemory(type); }
    bool isLoad() const { return type == OpType::Load; }
    bool isStore() const { return type == OpType::Store; }
};

} // namespace espsim

#endif // ESPSIM_TRACE_MICRO_OP_HH
