/**
 * @file
 * Workload (de)serialization — the adoption path for users with real
 * traces: capture an asynchronous program once (e.g., via a Pin/DynamoRIO
 * tool that tags event boundaries), write it in this format, and replay
 * it through every simulator configuration.
 *
 * Format (little-endian, versioned):
 *   header   : magic "ESPW", u32 version, u32 event count,
 *              u32 warm-range count, u64 name length + bytes
 *   warm set : per range, u64 begin, u64 end
 *   events   : per event, u64 id, u32 handlerType, u64 handlerPc,
 *              u64 argObjectAddr, u64 divergencePoint (max = none),
 *              u64 opCount, u64 tailOpCount, then packed ops
 *   op       : u64 pc, u64 memAddr, u64 branchTarget, u8 type,
 *              u8 taken, u8 srcA, u8 srcB, u8 dest (37 bytes)
 */

#ifndef ESPSIM_TRACE_TRACE_IO_HH
#define ESPSIM_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/workload.hh"

namespace espsim
{

/** Current on-disk format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Serialize @p workload to @p out. @return false on I/O error. */
bool writeWorkload(std::ostream &out, const Workload &workload);

/** Serialize to @p path (fatal on open failure, false on write error). */
bool saveWorkload(const std::string &path, const Workload &workload);

/**
 * Deserialize a workload. Returns nullptr on malformed input (bad
 * magic, unsupported version, truncation, or implausible sizes).
 */
std::unique_ptr<InMemoryWorkload> readWorkload(std::istream &in);

/** Deserialize from @p path (fatal on open failure). */
std::unique_ptr<InMemoryWorkload> loadWorkload(const std::string &path);

} // namespace espsim

#endif // ESPSIM_TRACE_TRACE_IO_HH
