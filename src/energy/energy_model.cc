#include "energy/energy_model.hh"

namespace espsim
{

EnergyBreakdown
EnergyModel::compute(const EnergyInputs &in) const
{
    EnergyBreakdown out;

    out.staticEnergy =
        config_.staticPerCycle * static_cast<double>(in.cycles);

    out.mispredictEnergy =
        config_.mispredictWork * static_cast<double>(in.mispredicts);

    double dynamic = 0.0;
    dynamic += config_.instrDynamic *
        static_cast<double>(in.instructions);
    dynamic += config_.bpAccess * static_cast<double>(in.branches);
    dynamic += config_.l1Access * static_cast<double>(in.l1Accesses);
    dynamic += config_.l2Access * static_cast<double>(in.l2Accesses);
    dynamic += config_.memAccess * static_cast<double>(in.memAccesses);
    // Speculative pre-execution re-runs the pipeline but hits the
    // small cachelets instead of the L1s.
    dynamic += (config_.instrDynamic + config_.cacheletAccess) *
        static_cast<double>(in.speculativeInstrs);
    dynamic +=
        config_.cacheletAccess * static_cast<double>(in.cacheletAccesses);
    dynamic += config_.listEntry * static_cast<double>(in.listEntries);
    out.restDynamic = dynamic;

    return out;
}

} // namespace espsim
