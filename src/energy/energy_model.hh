/**
 * @file
 * Event-based energy model standing in for McPAT 1.2 + CACTI 5.3
 * (paper §5, Figure 14).
 *
 * Energy = static leakage x cycles
 *        + per-event dynamic energies (instructions, cache accesses at
 *          each level, predictor accesses, wasted wrong-path work on
 *          mispredicts)
 *        + ESP additions (cachelet and list accesses, pre-executed
 *          instructions).
 *
 * Units are arbitrary (pJ-like); the paper's Figure 14 reports energy
 * *relative to NL*, which is what the fig14 bench reproduces, so only
 * the composition matters, not the absolute scale.
 */

#ifndef ESPSIM_ENERGY_ENERGY_MODEL_HH
#define ESPSIM_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace espsim
{

/** Per-event energy coefficients (32 nm-ish relative magnitudes). */
struct EnergyConfig
{
    double instrDynamic = 13.0;   //!< fetch+rename+issue+execute per op
    double l1Access = 3.5;
    double l2Access = 16.0;
    double memAccess = 110.0;
    double bpAccess = 1.0;        //!< per predicted branch
    /** Wasted wrong-path work per mispredict (flush depth x width x
     *  partial issue). */
    double mispredictWork = 160.0;
    double cacheletAccess = 0.8;  //!< 6 KB L0 is cheaper than L1
    double listEntry = 0.4;       //!< compressed list read or write
    double staticPerCycle = 16.0; //!< whole-core leakage per cycle
};

/** Raw activity counts the model converts to energy. */
struct EnergyInputs
{
    Cycle cycles = 0;
    InstCount instructions = 0;      //!< committed, normal mode
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l1Accesses = 0;    //!< I + D demand
    std::uint64_t l2Accesses = 0;    //!< L1 misses + prefetch probes
    std::uint64_t memAccesses = 0;   //!< LLC misses
    InstCount speculativeInstrs = 0; //!< ESP pre-exec or runahead
    std::uint64_t cacheletAccesses = 0;
    std::uint64_t listEntries = 0;   //!< records written + replayed
};

/** Energy decomposition matching Figure 14's stacking. */
struct EnergyBreakdown
{
    double staticEnergy = 0;
    double mispredictEnergy = 0;
    double restDynamic = 0;

    double
    total() const
    {
        return staticEnergy + mispredictEnergy + restDynamic;
    }
};

/** The model: pure function of inputs and coefficients. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyConfig &config = EnergyConfig{})
        : config_(config)
    {
    }

    const EnergyConfig &config() const { return config_; }

    EnergyBreakdown compute(const EnergyInputs &in) const;

  private:
    EnergyConfig config_;
};

} // namespace espsim

#endif // ESPSIM_ENERGY_ENERGY_MODEL_HH
