/**
 * @file
 * Debug-only global allocation counter.
 *
 * Compiled in only when the build defines ESPSIM_ALLOC_COUNTER
 * (`cmake -DESPSIM_ALLOC_COUNTER=ON`): the replacement operator
 * new/delete in alloc_counter.cc then count every heap allocation, so
 * tests can assert the steady-state simulation loop performs none
 * (docs/PERFORMANCE.md, "zero-allocation invariant"). In normal
 * builds the hook vanishes and allocCount() reports 0.
 */

#ifndef ESPSIM_COMMON_ALLOC_COUNTER_HH
#define ESPSIM_COMMON_ALLOC_COUNTER_HH

#include <cstdint>

namespace espsim
{

/** Total operator-new calls so far (0 when the hook is compiled out). */
std::uint64_t allocCount();

/** Whether the counting hook is compiled into this build. */
bool allocCounterActive();

} // namespace espsim

#endif // ESPSIM_COMMON_ALLOC_COUNTER_HH
