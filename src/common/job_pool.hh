/**
 * @file
 * Fixed-size thread pool for embarrassingly parallel simulation jobs.
 *
 * Deliberately minimal — no work stealing, no futures. Callers submit
 * closures that write results into pre-allocated slots and then wait()
 * for the pool to drain; result order is fixed by the slots, not by
 * scheduling, which is what keeps parallel sweeps bit-deterministic.
 *
 * A pool sized at one thread runs every job inline on the submitting
 * thread: jobs=1 is byte-for-byte the old serial behaviour, with no
 * threads created at all.
 *
 * Exception contract: a throwing job never terminates the process and
 * never corrupts the in-flight accounting. The pool captures the
 * *first* exception any job throws (later ones are counted and
 * dropped), keeps draining the remaining jobs, and rethrows the
 * captured exception from the next wait(). The inline (jobs=1) path
 * follows the same contract so callers see identical behaviour at any
 * thread count. After wait() rethrows, the pool is clean and reusable.
 */

#ifndef ESPSIM_COMMON_JOB_POOL_HH
#define ESPSIM_COMMON_JOB_POOL_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace espsim
{

/**
 * Host-side utilization counters for one pool, accumulated since
 * construction. Wall time spans first submit to last job completion;
 * busy time sums per-job wall times across workers, so busyFraction()
 * reads as "how much of the pool's capacity did the sweep keep fed".
 */
struct JobPoolUsage
{
    std::size_t jobsCompleted = 0;
    /** Deepest the queue ever got (0 for inline pools). */
    std::size_t queueDepthHighWater = 0;
    double busyMs = 0;
    double wallMs = 0;
    unsigned threads = 1;

    double
    busyFraction() const
    {
        return wallMs <= 0.0
            ? 0.0
            : busyMs / (wallMs * static_cast<double>(threads));
    }

    double
    jobsPerSec() const
    {
        return wallMs <= 0.0
            ? 0.0
            : static_cast<double>(jobsCompleted) * 1000.0 / wallMs;
    }
};

/** Fixed thread pool; see file comment for the determinism contract. */
class JobPool
{
  public:
    /** @p threads workers; 0 picks defaultJobs(), 1 runs inline. */
    explicit JobPool(unsigned threads = 0);

    /** Drains remaining jobs, then joins the workers. A still-pending
     *  job exception cannot propagate from a destructor; it is
     *  reported with warn() and swallowed. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** Enqueue a job. Inline pools execute it before returning (a
     *  throwing inline job is captured, not propagated — see wait). */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished, then rethrow the
     * first exception any of them threw (if any). The pool stays
     * usable after the rethrow.
     */
    void wait();

    /** Degree of parallelism this pool runs at (>= 1). */
    unsigned threadCount() const { return threads_; }

    /**
     * Soft per-job timeout: jobs whose wall time exceeds @p timeout
     * get a warn() naming the overrun when they finish (detection is
     * post-hoc — the job is never killed). Zero (default) disables.
     */
    void setSoftTimeout(std::chrono::milliseconds timeout);

    /** Jobs that threw beyond the first captured exception. */
    std::size_t droppedExceptions() const;

    /** Utilization counters accumulated since construction. */
    JobPoolUsage usage() const;

    /**
     * The sweep-wide default degree of parallelism: the ESPSIM_JOBS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (1 if unknown).
     */
    static unsigned defaultJobs();

  private:
    void workerLoop();
    /** Run @p job guarded: capture its exception, time it. */
    void runGuarded(std::function<void()> &job);
    /** Block until the queue is empty and nothing is in flight. */
    void drain();

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_; //!< workers: job ready / stop
    std::condition_variable done_cv_; //!< wait(): pool drained
    std::deque<std::function<void()>> queue_;
    std::size_t inflight_ = 0; //!< jobs popped but not yet finished
    bool stop_ = false;

    std::exception_ptr firstError_;   //!< first job exception, if any
    std::size_t droppedErrors_ = 0;   //!< throws after the first
    std::chrono::milliseconds softTimeout_{0};

    // Utilization accounting (all guarded by mutex_).
    std::size_t jobsCompleted_ = 0;
    std::size_t queueHighWater_ = 0;
    double busyMs_ = 0;
    bool sawWork_ = false;
    std::chrono::steady_clock::time_point firstSubmit_;
    std::chrono::steady_clock::time_point lastDone_;
};

} // namespace espsim

#endif // ESPSIM_COMMON_JOB_POOL_HH
