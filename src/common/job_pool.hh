/**
 * @file
 * Fixed-size thread pool for embarrassingly parallel simulation jobs.
 *
 * Deliberately minimal — no work stealing, no futures. Callers submit
 * closures that write results into pre-allocated slots and then wait()
 * for the pool to drain; result order is fixed by the slots, not by
 * scheduling, which is what keeps parallel sweeps bit-deterministic.
 *
 * A pool sized at one thread runs every job inline on the submitting
 * thread: jobs=1 is byte-for-byte the old serial behaviour, with no
 * threads created at all.
 */

#ifndef ESPSIM_COMMON_JOB_POOL_HH
#define ESPSIM_COMMON_JOB_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace espsim
{

/** Fixed thread pool; see file comment for the determinism contract. */
class JobPool
{
  public:
    /** @p threads workers; 0 picks defaultJobs(), 1 runs inline. */
    explicit JobPool(unsigned threads = 0);

    /** Drains remaining jobs (wait()), then joins the workers. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** Enqueue a job. Inline pools execute it before returning. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** Degree of parallelism this pool runs at (>= 1). */
    unsigned threadCount() const { return threads_; }

    /**
     * The sweep-wide default degree of parallelism: the ESPSIM_JOBS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (1 if unknown).
     */
    static unsigned defaultJobs();

  private:
    void workerLoop();

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_; //!< workers: job ready / stop
    std::condition_variable done_cv_; //!< wait(): pool drained
    std::deque<std::function<void()>> queue_;
    std::size_t inflight_ = 0; //!< jobs popped but not yet finished
    bool stop_ = false;
};

} // namespace espsim

#endif // ESPSIM_COMMON_JOB_POOL_HH
