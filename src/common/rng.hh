/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The synthetic workload generator must be exactly reproducible from a
 * seed (the same event must regenerate bit-identically when ESP
 * pre-executes it), so we use a self-contained xorshift128+ generator
 * rather than std::mt19937, whose distributions are not guaranteed to
 * be identical across standard library implementations.
 */

#ifndef ESPSIM_COMMON_RNG_HH
#define ESPSIM_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace espsim
{

/** xorshift128+ deterministic PRNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialise the state from a seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread low-entropy seeds over the state.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        s0 = next();
        s1 = next();
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        if (hi < lo)
            panic("Rng::range called with hi < lo");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return real() < p; }

    /**
     * Geometric-ish integer: mean approximately @p mean, minimum
     * @p floor. Used for basic-block lengths and run lengths.
     */
    std::uint64_t
    geometric(double mean, std::uint64_t floor = 1)
    {
        if (mean <= static_cast<double>(floor))
            return floor;
        std::uint64_t value = floor;
        const double p = 1.0 / (mean - static_cast<double>(floor) + 1.0);
        while (!chance(p) && value < floor + 64 * 1024)
            ++value;
        return value;
    }

    /**
     * Zipf-like skewed pick from [0, n): low indices are much more
     * likely. Cheap approximation (squared uniform) adequate for
     * hot/cold code and data selection.
     */
    std::uint64_t
    skewed(std::uint64_t n)
    {
        const double u = real();
        return static_cast<std::uint64_t>(u * u * static_cast<double>(n));
    }

  private:
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
};

} // namespace espsim

#endif // ESPSIM_COMMON_RNG_HH
