/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * configuration errors (clean exit); warn()/inform() report conditions
 * without stopping the simulation.
 */

#ifndef ESPSIM_COMMON_LOGGING_HH
#define ESPSIM_COMMON_LOGGING_HH

#include <cstdarg>

namespace espsim
{

/** Report an internal simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a normal status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace espsim

#endif // ESPSIM_COMMON_LOGGING_HH
