/**
 * @file
 * Fixed-capacity ring buffer for the core's hot pipeline queues.
 *
 * `std::deque` allocates node blocks and indirects through a segment
 * map on every access; the ROB and LSQ are bounded by construction
 * (96 / 16 entries), so a flat power-of-two ring with head/tail
 * counters keeps every entry in one contiguous allocation made once
 * at attach time — the steady-state loop never touches the heap.
 */

#ifndef ESPSIM_COMMON_RING_BUFFER_HH
#define ESPSIM_COMMON_RING_BUFFER_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace espsim
{

/**
 * Bounded FIFO over a contiguous power-of-two store.
 *
 * The caller guarantees occupancy never exceeds the capacity given to
 * reset() (the core pops before pushing when full); this is asserted
 * in debug builds rather than checked on the hot path.
 */
template <typename T>
class FixedRing
{
  public:
    explicit FixedRing(std::size_t capacity = 0) { reset(capacity); }

    /** Size the store for @p capacity entries (rounded up to a power
     *  of two) and drop all contents. Allocates; call once at setup. */
    void
    reset(std::size_t capacity)
    {
        std::size_t pow2 = 1;
        while (pow2 < capacity)
            pow2 <<= 1;
        store_.assign(pow2, T{});
        mask_ = pow2 - 1;
        head_ = tail_ = 0;
    }

    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return tail_ - head_; }
    std::size_t capacity() const { return mask_ + 1; }

    void
    push_back(const T &value)
    {
        assert(size() <= mask_ && "FixedRing overflow");
        store_[tail_ & mask_] = value;
        ++tail_;
    }

    const T &
    front() const
    {
        assert(!empty());
        return store_[head_ & mask_];
    }

    void
    pop_front()
    {
        assert(!empty());
        ++head_;
    }

    /** @p i-th oldest entry (0 = front). */
    const T &
    at(std::size_t i) const
    {
        assert(i < size());
        return store_[(head_ + i) & mask_];
    }

    void clear() { head_ = tail_ = 0; }

  private:
    std::vector<T> store_;
    std::size_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace espsim

#endif // ESPSIM_COMMON_RING_BUFFER_HH
