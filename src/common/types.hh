/**
 * @file
 * Fundamental scalar types and address arithmetic used throughout the
 * ESP simulator.
 */

#ifndef ESPSIM_COMMON_TYPES_HH
#define ESPSIM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace espsim
{

/** Byte address in the simulated virtual address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Retired / executed instruction count. */
using InstCount = std::uint64_t;

/** Log2 of the cache block size used by every cache in the system. */
constexpr unsigned blockBits = 6;

/** Cache block size in bytes (64 B lines, per the paper's Figure 7). */
constexpr Addr blockBytes = Addr{1} << blockBits;

/** Round an address down to its cache-block base address. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~(blockBytes - 1);
}

/** Cache-block number of an address (address / 64). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> blockBits;
}

/** Kinds of micro-ops the trace-driven core understands. */
enum class OpType : std::uint8_t
{
    IntAlu,        //!< single-cycle integer operation
    FpAlu,         //!< multi-cycle floating point operation
    Load,          //!< memory read
    Store,         //!< memory write
    BranchCond,    //!< conditional direct branch
    BranchDirect,  //!< unconditional direct jump
    BranchIndirect,//!< indirect jump (switch, virtual call)
    Call,          //!< direct call (pushes return address)
    Return,        //!< return (pops return address)
};

/** True for every control-flow op type. */
constexpr bool
isBranch(OpType type)
{
    return type == OpType::BranchCond || type == OpType::BranchDirect ||
        type == OpType::BranchIndirect || type == OpType::Call ||
        type == OpType::Return;
}

/** True for loads and stores. */
constexpr bool
isMemory(OpType type)
{
    return type == OpType::Load || type == OpType::Store;
}

} // namespace espsim

#endif // ESPSIM_COMMON_TYPES_HH
