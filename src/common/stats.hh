/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components declare scalar counters against a StatGroup; the group can
 * be dumped as text or queried by name from tests and benchmark
 * harnesses. This mirrors (a small slice of) the gem5 stats package.
 */

#ifndef ESPSIM_COMMON_STATS_HH
#define ESPSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace espsim
{

/** A flat, ordered collection of named scalar statistics. */
class StatGroup
{
  public:
    /** Add @p delta to the counter called @p name (created on first use). */
    void
    add(const std::string &name, double delta = 1.0)
    {
        values_[name] += delta;
    }

    /** Overwrite the value of @p name. */
    void
    set(const std::string &name, double value)
    {
        values_[name] = value;
    }

    /** Value of @p name, or 0 if never touched. */
    double get(const std::string &name) const;

    /** True if the counter exists. */
    bool has(const std::string &name) const;

    /** Merge another group into this one (summing counters). */
    void merge(const StatGroup &other);

    /** Reset every counter to zero. */
    void clear() { values_.clear(); }

    /** Render as "name = value" lines, one per counter. */
    std::string dump(const std::string &prefix = "") const;

    /** Access for iteration. */
    const std::map<std::string, double> &values() const { return values_; }

  private:
    std::map<std::string, double> values_;
};

} // namespace espsim

#endif // ESPSIM_COMMON_STATS_HH
