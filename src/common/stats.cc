#include "common/stats.hh"

#include <sstream>

namespace espsim
{

double
StatGroup::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return values_.find(name) != values_.end();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[name, value] : other.values_)
        values_[name] += value;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream out;
    for (const auto &[name, value] : values_)
        out << prefix << name << " = " << value << "\n";
    return out.str();
}

} // namespace espsim
