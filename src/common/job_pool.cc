#include "common/job_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace espsim
{

JobPool::JobPool(unsigned threads)
    : threads_(threads == 0 ? defaultJobs() : threads)
{
    if (threads_ <= 1)
        return; // inline mode: no workers at all
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (firstError_) {
            // Can't rethrow from a destructor; the caller skipped the
            // wait() that would have surfaced this.
            warn("JobPool destroyed with an unretrieved job exception "
                 "(call wait() to propagate it)");
            firstError_ = nullptr;
        }
        if (workers_.empty())
            return;
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
JobPool::setSoftTimeout(std::chrono::milliseconds timeout)
{
    std::lock_guard<std::mutex> lock(mutex_);
    softTimeout_ = timeout;
}

std::size_t
JobPool::droppedExceptions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return droppedErrors_;
}

JobPoolUsage
JobPool::usage() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JobPoolUsage u;
    u.jobsCompleted = jobsCompleted_;
    u.queueDepthHighWater = queueHighWater_;
    u.busyMs = busyMs_;
    u.threads = threads_;
    if (sawWork_) {
        u.wallMs = std::chrono::duration<double, std::milli>(
                       lastDone_ - firstSubmit_)
                       .count();
    }
    return u;
}

void
JobPool::runGuarded(std::function<void()> &job)
{
    std::chrono::milliseconds timeout{0};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        timeout = softTimeout_;
    }
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    try {
        job();
    } catch (...) {
        error = std::current_exception();
    }
    const auto finish = std::chrono::steady_clock::now();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            finish - start);
    if (timeout.count() > 0 && elapsed > timeout) {
        warn("job ran %lld ms, exceeding the %lld ms soft timeout",
             static_cast<long long>(elapsed.count()),
             static_cast<long long>(timeout.count()));
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++jobsCompleted_;
        busyMs_ += std::chrono::duration<double, std::milli>(
                       finish - start)
                       .count();
        lastDone_ = finish;
        if (error) {
            if (firstError_)
                ++droppedErrors_;
            else
                firstError_ = error;
        }
    }
}

void
JobPool::submit(std::function<void()> job)
{
    if (workers_.empty()) {
        // jobs=1: execute in submission order, old serial path — but
        // under the same exception contract as the threaded pool.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!sawWork_) {
                sawWork_ = true;
                firstSubmit_ = std::chrono::steady_clock::now();
            }
        }
        runGuarded(job);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!sawWork_) {
            sawWork_ = true;
            firstSubmit_ = std::chrono::steady_clock::now();
        }
        queue_.push_back(std::move(job));
        queueHighWater_ = std::max(queueHighWater_, queue_.size());
    }
    work_cv_.notify_one();
}

void
JobPool::drain()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [this] { return queue_.empty() && inflight_ == 0; });
}

void
JobPool::wait()
{
    drain();
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
JobPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inflight_;
        }
        runGuarded(job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inflight_;
            if (queue_.empty() && inflight_ == 0)
                done_cv_.notify_all();
        }
    }
}

unsigned
JobPool::defaultJobs()
{
    if (const char *env = std::getenv("ESPSIM_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(std::min(v, 1024ul));
        warn("ignoring malformed ESPSIM_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace espsim
