#include "common/job_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace espsim
{

JobPool::JobPool(unsigned threads)
    : threads_(threads == 0 ? defaultJobs() : threads)
{
    if (threads_ <= 1)
        return; // inline mode: no workers at all
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    if (workers_.empty())
        return;
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
JobPool::submit(std::function<void()> job)
{
    if (workers_.empty()) {
        job(); // jobs=1: execute in submission order, old serial path
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void
JobPool::wait()
{
    if (workers_.empty())
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [this] { return queue_.empty() && inflight_ == 0; });
}

void
JobPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
            ++inflight_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inflight_;
            if (queue_.empty() && inflight_ == 0)
                done_cv_.notify_all();
        }
    }
}

unsigned
JobPool::defaultJobs()
{
    if (const char *env = std::getenv("ESPSIM_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(std::min(v, 1024ul));
        warn("ignoring malformed ESPSIM_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace espsim
