/**
 * @file
 * Open-addressed hash map/set keyed by block-aligned addresses.
 *
 * The prefetch trackers sit on the per-access path of the memory
 * hierarchy: every demand access probes (and often mutates) them.
 * `std::unordered_map` pays a heap node per entry, a div-based bucket
 * index, and pointer chasing per probe. Addresses are already
 * well-distributed after a Fibonacci multiply, so a linear-probing
 * table with backward-shift deletion keeps every probe inside one or
 * two cache lines and the steady-state loop allocation-free (the
 * store only grows, by doubling, and plateaus quickly).
 */

#ifndef ESPSIM_COMMON_ADDR_MAP_HH
#define ESPSIM_COMMON_ADDR_MAP_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/** Key telling an empty slot apart; never a valid block address. */
inline constexpr Addr addrMapEmptyKey = ~Addr{0};

/**
 * Linear-probing open-addressed map from Addr to @p V.
 *
 * Grows by doubling at 70% load; erase uses backward-shift (no
 * tombstones), so probe sequences stay short regardless of churn.
 */
template <typename V>
class AddrMap
{
  public:
    explicit AddrMap(std::size_t initial_capacity = 64)
    {
        rehash(roundPow2(initial_capacity));
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pointer to the value for @p key, or nullptr. Stable only until
     *  the next mutation. */
    V *
    find(Addr key)
    {
        std::size_t i = homeSlot(key);
        while (keys_[i] != addrMapEmptyKey) {
            if (keys_[i] == key)
                return &vals_[i];
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    const V *
    find(Addr key) const
    {
        return const_cast<AddrMap *>(this)->find(key);
    }

    bool contains(Addr key) const { return find(key) != nullptr; }

    /** Insert or overwrite; returns true when the key was new. */
    bool
    insertOrAssign(Addr key, const V &value)
    {
        assert(key != addrMapEmptyKey);
        if ((size_ + 1) * 10 > capacity() * 7)
            rehash(capacity() * 2);
        std::size_t i = homeSlot(key);
        while (keys_[i] != addrMapEmptyKey) {
            if (keys_[i] == key) {
                vals_[i] = value;
                return false;
            }
            i = (i + 1) & mask_;
        }
        keys_[i] = key;
        vals_[i] = value;
        ++size_;
        return true;
    }

    /** Remove @p key; returns true when it was present. */
    bool
    erase(Addr key)
    {
        std::size_t i = homeSlot(key);
        while (keys_[i] != key) {
            if (keys_[i] == addrMapEmptyKey)
                return false;
            i = (i + 1) & mask_;
        }
        // Backward-shift deletion: pull forward any entry whose probe
        // path runs through the vacated slot.
        std::size_t j = i;
        while (true) {
            j = (j + 1) & mask_;
            if (keys_[j] == addrMapEmptyKey)
                break;
            const std::size_t home = homeSlot(keys_[j]);
            if (((j - home) & mask_) >= ((j - i) & mask_)) {
                keys_[i] = keys_[j];
                vals_[i] = vals_[j];
                i = j;
            }
        }
        keys_[i] = addrMapEmptyKey;
        --size_;
        return true;
    }

    /** Drop all entries; keeps the store (no allocation). */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), addrMapEmptyKey);
        size_ = 0;
    }

    /** Visit every (key, value&); order is unspecified. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] != addrMapEmptyKey)
                fn(keys_[i], vals_[i]);
        }
    }

  private:
    static std::size_t
    roundPow2(std::size_t n)
    {
        std::size_t pow2 = 8;
        while (pow2 < n)
            pow2 <<= 1;
        return pow2;
    }

    std::size_t capacity() const { return mask_ + 1; }

    std::size_t
    homeSlot(Addr key) const
    {
        // Fibonacci hashing: block addresses share low zero bits, so
        // mix through the golden-ratio multiplier and take high bits.
        return static_cast<std::size_t>(
                   (key * 0x9E3779B97F4A7C15ull) >> 32) &
            mask_;
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Addr> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        keys_.assign(new_capacity, addrMapEmptyKey);
        vals_.assign(new_capacity, V{});
        mask_ = new_capacity - 1;
        size_ = 0;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] != addrMapEmptyKey)
                insertOrAssign(old_keys[i], old_vals[i]);
        }
    }

    std::vector<Addr> keys_;
    std::vector<V> vals_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/** Open-addressed set of block addresses (AddrMap with no payload). */
class AddrSet
{
  public:
    explicit AddrSet(std::size_t initial_capacity = 64)
        : map_(initial_capacity)
    {
    }

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    bool contains(Addr key) const { return map_.contains(key); }
    bool insert(Addr key) { return map_.insertOrAssign(key, 0); }
    bool erase(Addr key) { return map_.erase(key); }
    void clear() { map_.clear(); }

  private:
    AddrMap<char> map_;
};

} // namespace espsim

#endif // ESPSIM_COMMON_ADDR_MAP_HH
