#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace espsim
{

namespace
{

/** panic/fatal bypass the level gate: a dying process must say why. */
void
vreport(const char *prefix, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Warn, "warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Info, "info", fmt, args);
    va_end(args);
}

} // namespace espsim
