/**
 * @file
 * Sample accumulator with percentile queries, used for working-set
 * analysis (paper Figure 13) and distribution checks in tests.
 */

#ifndef ESPSIM_COMMON_HISTOGRAM_HH
#define ESPSIM_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <vector>

namespace espsim
{

/** Collects raw samples; answers max / mean / percentile queries. */
class SampleStat
{
  public:
    void record(double sample) { samples_.push_back(sample); }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Largest recorded sample (0 when empty). */
    double max() const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /**
     * Value at percentile @p pct in [0, 100], by nearest-rank on the
     * sorted samples (0 when empty).
     */
    double percentile(double pct) const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;

    void ensureSorted() const;
};

/**
 * Harmonic mean of a vector of positive values (paper uses HMean).
 * Non-positive values are excluded with a warn() naming the count (a
 * degraded error cell must not crash a whole figure); returns 0 when
 * the input is empty or every value was excluded.
 */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean of a vector of values. */
double arithmeticMean(const std::vector<double> &values);

} // namespace espsim

#endif // ESPSIM_COMMON_HISTOGRAM_HH
