/**
 * @file
 * Sample accumulator with percentile queries, used for working-set
 * analysis (paper Figure 13), tail-latency accounting (espsim serve)
 * and distribution checks in tests.
 */

#ifndef ESPSIM_COMMON_HISTOGRAM_HH
#define ESPSIM_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace espsim
{

/**
 * Collects samples; answers count / max / mean / percentile queries.
 *
 * Two storage modes:
 *  - buffered (default): every sample is kept, percentiles are exact.
 *  - reservoir (enableReservoir): a fixed-capacity uniform sample of
 *    the stream (Vitter's Algorithm R) bounds memory for million-event
 *    runs; count / mean / max stay exact (running accumulators), and
 *    percentiles become estimates over the reservoir. Replacement
 *    decisions come from a private seeded generator, so results are a
 *    pure function of (seed, sample stream).
 *
 * Below the capacity the reservoir holds the whole stream, so small-N
 * results are identical to the buffered path.
 */
class SampleStat
{
  public:
    void record(double sample);

    std::size_t count() const
    {
        return capacity_ ? static_cast<std::size_t>(count_)
                         : samples_.size();
    }
    bool empty() const { return count() == 0; }

    /** Largest recorded sample (0 when empty). */
    double max() const;

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /**
     * Value at percentile @p pct in [0, 100], by nearest-rank on the
     * sorted (retained) samples (0 when empty).
     */
    double percentile(double pct) const;

    /**
     * Switch to bounded-memory reservoir sampling. Must be called
     * before the first record(); @p capacity must be non-zero.
     */
    void enableReservoir(std::size_t capacity, std::uint64_t seed);
    bool reservoirEnabled() const { return capacity_ != 0; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;

    std::size_t capacity_ = 0;   //!< 0 = buffered mode
    std::uint64_t rngState_ = 0; //!< splitmix64 replacement draws
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;

    void ensureSorted() const;
};

/**
 * Harmonic mean of a vector of positive values (paper uses HMean).
 * Non-positive values are excluded with a warn() naming the count (a
 * degraded error cell must not crash a whole figure); returns 0 when
 * the input is empty or every value was excluded.
 */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean of a vector of values. */
double arithmeticMean(const std::vector<double> &values);

} // namespace espsim

#endif // ESPSIM_COMMON_HISTOGRAM_HH
