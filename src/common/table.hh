/**
 * @file
 * Plain-text table rendering for the benchmark harnesses, so every
 * figure/table of the paper prints as an aligned, diffable block.
 */

#ifndef ESPSIM_COMMON_TABLE_HH
#define ESPSIM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace espsim
{

/** Column-aligned text table with a title, header row, and data rows. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append a row of preformatted cells. */
    void row(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 2);

    /** Render the table (title, rule, header, rows). */
    std::string render() const;

    // Structured access for machine-readable exports (report/artifact).
    const std::string &title() const { return title_; }
    const std::vector<std::string> &headerCells() const
    {
        return header_;
    }
    const std::vector<std::vector<std::string>> &dataRows() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace espsim

#endif // ESPSIM_COMMON_TABLE_HH
