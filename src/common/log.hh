/**
 * @file
 * Tiny leveled logger behind the gem5-style reporting helpers.
 *
 * Every line of run chatter (progress, artifact notes, warnings) goes
 * through one global level gate, so noisy surfaces can be silenced
 * without touching call sites: `espsim bench` wall-times, for example,
 * must not be polluted by interleaved worker output.
 *
 * Levels, most to least severe: error > warn > info > debug. The
 * default is info. Two knobs select the threshold:
 *   - the ESPSIM_LOG environment variable ("error", "warn", "info",
 *     "debug"), read once on first use,
 *   - `--log-level <name>` on the espsim CLI (calls setLogLevel()).
 *
 * panic()/fatal() (common/logging.hh) always print — a dying process
 * must say why regardless of verbosity.
 */

#ifndef ESPSIM_COMMON_LOG_HH
#define ESPSIM_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace espsim
{

/** Severity threshold of one log line (and of the global gate). */
enum class LogLevel : int
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Stable lowercase token for @p level ("error", "warn", ...). */
const char *logLevelName(LogLevel level);

/** Parse a level token; @return false (and leave @p out) on unknown. */
bool parseLogLevel(const std::string &name, LogLevel &out);

/**
 * The current global threshold. First call resolves the ESPSIM_LOG
 * environment variable (malformed values keep the info default).
 */
LogLevel logLevel();

/** Override the global threshold (CLI --log-level). Thread-safe. */
void setLogLevel(LogLevel level);

/** Would a line at @p level print right now? */
bool logEnabled(LogLevel level);

/**
 * Print "prefix: message\n" to stderr iff @p level passes the gate.
 * @p prefix may be null for bare chatter lines (progress, "# wrote").
 */
void vlogLine(LogLevel level, const char *prefix, const char *fmt,
              std::va_list args);

/** printf-style bare chatter line (no prefix) gated at @p level. */
void logLine(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Debug-level report with a "debug: " prefix. */
void logDebug(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace espsim

#endif // ESPSIM_COMMON_LOG_HH
