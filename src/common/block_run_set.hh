/**
 * @file
 * Sorted run-encoded set of cache-block addresses.
 *
 * ESP's working-set tracking dedupes the block stream a pre-execution
 * touches. The stream has the same spatial structure the ESP address
 * lists exploit with run extension (sequential code blocks, strided
 * data), so a sorted vector of [start, start + blocks·64) runs covers
 * it in a handful of entries — membership is one binary search, no
 * per-access hashing, no per-entry heap nodes, and clear() retains
 * capacity so the steady-state loop stays allocation-free.
 */

#ifndef ESPSIM_COMMON_BLOCK_RUN_SET_HH
#define ESPSIM_COMMON_BLOCK_RUN_SET_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace espsim
{

/**
 * Set of block-aligned addresses stored as maximal runs, mirroring the
 * AddressList run-extension semantics (lists.hh): adjacent blocks
 * coalesce into one record.
 */
class BlockRunSet
{
  public:
    /** Add @p block (block-aligned); returns true when it was new. */
    bool
    insert(Addr block)
    {
        // First run strictly past the block, so `it - 1` is the only
        // run that can contain or left-extend to it.
        auto it = std::upper_bound(
            runs_.begin(), runs_.end(), block,
            [](Addr b, const Run &r) { return b < r.start; });
        if (it != runs_.begin()) {
            Run &prev = *(it - 1);
            if (block < prev.start + prev.blocks * blockBytes)
                return false; // already covered
            if (block == prev.start + prev.blocks * blockBytes) {
                ++prev.blocks; // run extension
                mergeWithNext(it - 1);
                ++size_;
                return true;
            }
        }
        if (it != runs_.end() && block + blockBytes == it->start) {
            it->start = block; // left-extend the following run
            ++it->blocks;
            ++size_;
            return true;
        }
        runs_.insert(it, Run{block, 1});
        ++size_;
        return true;
    }

    bool
    contains(Addr block) const
    {
        auto it = std::upper_bound(
            runs_.begin(), runs_.end(), block,
            [](Addr b, const Run &r) { return b < r.start; });
        if (it == runs_.begin())
            return false;
        const Run &prev = *(it - 1);
        return block < prev.start + prev.blocks * blockBytes;
    }

    /** Number of distinct blocks in the set. */
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Number of encoded runs (compression diagnostic). */
    std::size_t runCount() const { return runs_.size(); }

    /** Drop all blocks; retains storage capacity. */
    void
    clear()
    {
        runs_.clear();
        size_ = 0;
    }

  private:
    struct Run
    {
        Addr start = 0;          //!< first block address of the run
        std::uint32_t blocks = 0; //!< run length in blocks
    };

    /** Merge @p it with its successor when the extension made them
     *  adjacent. */
    void
    mergeWithNext(std::vector<Run>::iterator it)
    {
        auto next = it + 1;
        if (next != runs_.end() &&
            it->start + it->blocks * blockBytes == next->start) {
            it->blocks += next->blocks;
            runs_.erase(next);
        }
    }

    std::vector<Run> runs_;
    std::size_t size_ = 0;
};

} // namespace espsim

#endif // ESPSIM_COMMON_BLOCK_RUN_SET_HH
