#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace espsim
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size()) {
        panic("table '%s': row has %zu cells, header has %zu",
              title_.c_str(), cells.size(), header_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&widths](std::ostringstream &out,
                          const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << (i == 0 ? "" : "  ");
            // Left-align the first column (labels), right-align numbers.
            if (i == 0) {
                out << cells[i]
                    << std::string(widths[i] - cells[i].size(), ' ');
            } else {
                out << std::string(widths[i] - cells[i].size(), ' ')
                    << cells[i];
            }
        }
        out << "\n";
    };

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    if (!header_.empty())
        emit(out, header_);
    std::size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
    for (auto w : widths)
        total += w;
    out << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        emit(out, r);
    return out.str();
}

} // namespace espsim
