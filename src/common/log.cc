#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace espsim
{

namespace
{

/** -1 = not yet resolved from ESPSIM_LOG. */
std::atomic<int> g_level{-1};

int
resolveLevel()
{
    int level = static_cast<int>(LogLevel::Info);
    if (const char *env = std::getenv("ESPSIM_LOG")) {
        LogLevel parsed;
        if (parseLogLevel(env, parsed)) {
            level = static_cast<int>(parsed);
        } else if (*env) {
            std::fprintf(stderr,
                         "warn: ignoring malformed ESPSIM_LOG='%s' "
                         "(expected error|warn|info|debug)\n",
                         env);
        }
    }
    return level;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "unknown";
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    for (const LogLevel level :
         {LogLevel::Error, LogLevel::Warn, LogLevel::Info,
          LogLevel::Debug}) {
        if (name == logLevelName(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

LogLevel
logLevel()
{
    int level = g_level.load(std::memory_order_relaxed);
    if (level < 0) {
        level = resolveLevel();
        // Racing first calls resolve the same env value; last store
        // wins harmlessly.
        g_level.store(level, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

void
vlogLine(LogLevel level, const char *prefix, const char *fmt,
         std::va_list args)
{
    if (!logEnabled(level))
        return;
    if (prefix)
        std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

void
logLine(LogLevel level, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogLine(level, nullptr, fmt, args);
    va_end(args);
}

void
logDebug(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vlogLine(LogLevel::Debug, "debug", fmt, args);
    va_end(args);
}

} // namespace espsim
