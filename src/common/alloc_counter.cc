#include "common/alloc_counter.hh"

#include <atomic>
#include <cstdlib>
#include <new>

namespace
{

[[maybe_unused]] std::atomic<std::uint64_t> g_allocs{0};

} // namespace

namespace espsim
{

std::uint64_t
allocCount()
{
#ifdef ESPSIM_ALLOC_COUNTER
    return g_allocs.load(std::memory_order_relaxed);
#else
    return 0;
#endif
}

bool
allocCounterActive()
{
#ifdef ESPSIM_ALLOC_COUNTER
    return true;
#else
    return false;
#endif
}

} // namespace espsim

#ifdef ESPSIM_ALLOC_COUNTER

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#endif // ESPSIM_ALLOC_COUNTER
