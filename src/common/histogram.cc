#include "common/histogram.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace espsim
{

void
SampleStat::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleStat::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

double
SampleStat::mean() const
{
    if (samples_.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
SampleStat::percentile(double pct) const
{
    if (samples_.empty())
        return 0.0;
    if (pct < 0.0 || pct > 100.0)
        panic("percentile %f out of [0, 100]", pct);
    ensureSorted();
    const auto n = samples_.size();
    const double rank = pct / 100.0 * static_cast<double>(n - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return samples_[std::min(idx, n - 1)];
}

double
harmonicMean(const std::vector<double> &values)
{
    // The harmonic mean is only defined over positive values. A
    // degraded sweep can legally feed a zero (or negative) speedup
    // cell into an aggregate row; panicking here used to crash every
    // figure binary on such a cell. Instead, skip-with-warn: exclude
    // the offending values (counting them) and aggregate the rest.
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    std::size_t included = 0;
    std::size_t excluded = 0;
    for (double v : values) {
        if (v <= 0.0) {
            ++excluded;
            continue;
        }
        denom += 1.0 / v;
        ++included;
    }
    if (excluded > 0) {
        warn("harmonicMean: excluded %zu non-positive value%s of %zu",
             excluded, excluded == 1 ? "" : "s", values.size());
    }
    if (included == 0)
        return 0.0; // all excluded: degraded aggregate, not a crash
    return static_cast<double>(included) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    const double sum = std::accumulate(values.begin(), values.end(), 0.0);
    return sum / static_cast<double>(values.size());
}

} // namespace espsim
