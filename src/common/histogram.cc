#include "common/histogram.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace espsim
{

namespace
{

/** splitmix64 step: cheap, full-period, seed-deterministic. */
std::uint64_t
nextRandom(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
SampleStat::record(double sample)
{
    if (capacity_ == 0) {
        samples_.push_back(sample);
        sorted_ = false;
        return;
    }
    ++count_;
    sum_ += sample;
    if (count_ == 1 || sample > max_)
        max_ = sample;
    if (samples_.size() < capacity_) {
        samples_.push_back(sample);
        sorted_ = false;
        return;
    }
    // Algorithm R: the n-th sample replaces a uniformly chosen
    // resident one with probability capacity / n, keeping the
    // reservoir a uniform sample of the whole stream.
    const std::uint64_t j = nextRandom(rngState_) % count_;
    if (j < capacity_) {
        samples_[static_cast<std::size_t>(j)] = sample;
        sorted_ = false;
    }
}

void
SampleStat::enableReservoir(std::size_t capacity, std::uint64_t seed)
{
    if (capacity == 0)
        panic("SampleStat reservoir capacity must be non-zero");
    if (!samples_.empty())
        panic("enableReservoir after %zu samples were recorded",
              samples_.size());
    capacity_ = capacity;
    rngState_ = seed;
    samples_.reserve(capacity);
}

void
SampleStat::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleStat::max() const
{
    if (capacity_ != 0)
        return count_ ? max_ : 0.0;
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return samples_.back();
}

double
SampleStat::mean() const
{
    if (capacity_ != 0)
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    if (samples_.empty())
        return 0.0;
    const double sum =
        std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

double
SampleStat::percentile(double pct) const
{
    if (samples_.empty())
        return 0.0;
    if (pct < 0.0 || pct > 100.0)
        panic("percentile %f out of [0, 100]", pct);
    ensureSorted();
    const auto n = samples_.size();
    const double rank = pct / 100.0 * static_cast<double>(n - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return samples_[std::min(idx, n - 1)];
}

double
harmonicMean(const std::vector<double> &values)
{
    // The harmonic mean is only defined over positive values. A
    // degraded sweep can legally feed a zero (or negative) speedup
    // cell into an aggregate row; panicking here used to crash every
    // figure binary on such a cell. Instead, skip-with-warn: exclude
    // the offending values (counting them) and aggregate the rest.
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    std::size_t included = 0;
    std::size_t excluded = 0;
    for (double v : values) {
        if (v <= 0.0) {
            ++excluded;
            continue;
        }
        denom += 1.0 / v;
        ++included;
    }
    if (excluded > 0) {
        warn("harmonicMean: excluded %zu non-positive value%s of %zu",
             excluded, excluded == 1 ? "" : "s", values.size());
    }
    if (included == 0)
        return 0.0; // all excluded: degraded aggregate, not a crash
    return static_cast<double>(included) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    const double sum = std::accumulate(values.begin(), values.end(), 0.0);
    return sum / static_cast<double>(values.size());
}

} // namespace espsim
