/**
 * @file
 * Bump allocator for transient per-event state.
 *
 * Speculation engines stage short-lived arrays at every event boundary
 * (promoted list records, drain queues). Allocating those from the
 * general heap puts malloc/free on the steady-state path; an arena
 * hands out space by bumping a pointer into a retained block and
 * recycles everything with a single reset() at the next boundary.
 * Capacity only ever grows, so after the first few events the loop
 * performs zero heap allocations — an invariant the debug-only
 * allocation counter (common/alloc_counter.hh) can assert.
 */

#ifndef ESPSIM_COMMON_ARENA_HH
#define ESPSIM_COMMON_ARENA_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace espsim
{

/**
 * Per-event bump arena.
 *
 * Spans handed out stay valid until reset(): when the current chunk
 * fills up, a larger chunk is chained on rather than moving live
 * data. reset() reclaims all space in O(1) and coalesces the chain
 * into one right-sized chunk, so growth settles after warmup.
 *
 * Only trivially-destructible types may live here: reset() reclaims
 * space without running destructors.
 */
class EventArena
{
  public:
    explicit EventArena(std::size_t initial_bytes = 4096)
    {
        chunks_.push_back(Chunk{
            std::make_unique<std::byte[]>(initial_bytes), initial_bytes});
    }

    /** Uninitialised space for @p count objects of T, aligned. */
    template <typename T>
    T *
    allocate(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        const std::size_t bytes = count * sizeof(T);
        Chunk &cur = chunks_.back();
        std::size_t offset = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
        if (offset + bytes > cur.size) {
            addChunk(bytes);
            offset = 0;
        }
        Chunk &chunk = chunks_.back();
        used_ = offset + bytes;
        peak_ = totalUsed() > peak_ ? totalUsed() : peak_;
        return reinterpret_cast<T *>(chunk.data.get() + offset);
    }

    /** Copy @p count objects of T into the arena. */
    template <typename T>
    T *
    copy(const T *src, std::size_t count)
    {
        T *dst = allocate<T>(count);
        if (count > 0)
            std::memcpy(dst, src, count * sizeof(T));
        return dst;
    }

    /**
     * Reclaim everything handed out since the last reset. When the
     * event overflowed into extra chunks, coalesce into one chunk
     * sized for the observed peak so the next event fits without
     * allocating; steady state is a pure pointer reset.
     */
    void
    reset()
    {
        if (chunks_.size() > 1) {
            std::size_t total = 0;
            for (const Chunk &c : chunks_)
                total += c.size;
            chunks_.clear();
            chunks_.push_back(
                Chunk{std::make_unique<std::byte[]>(total), total});
        }
        used_ = 0;
        retired_ = 0;
    }

    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.size;
        return total;
    }

    std::size_t usedBytes() const { return totalUsed(); }
    std::size_t peakBytes() const { return peak_; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    std::size_t totalUsed() const { return retired_ + used_; }

    void
    addChunk(std::size_t need)
    {
        retired_ += used_;
        used_ = 0;
        std::size_t next = chunks_.back().size * 2;
        while (next < need)
            next *= 2;
        chunks_.push_back(
            Chunk{std::make_unique<std::byte[]>(next), next});
    }

    std::vector<Chunk> chunks_;
    std::size_t used_ = 0;    //!< bytes bumped in the current chunk
    std::size_t retired_ = 0; //!< bytes consumed in earlier chunks
    std::size_t peak_ = 0;
};

} // namespace espsim

#endif // ESPSIM_COMMON_ARENA_HH
