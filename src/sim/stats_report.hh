/**
 * @file
 * Suite-level harness helpers shared by every benchmark binary: run a
 * set of design points over the seven-app suite (generating each app's
 * workload once), and aggregate results the way the paper does
 * (harmonic mean across applications).
 */

#ifndef ESPSIM_SIM_STATS_REPORT_HH
#define ESPSIM_SIM_STATS_REPORT_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workload/app_profile.hh"

namespace espsim
{

/** All configs' results for one application. */
struct SuiteRow
{
    std::string app;
    std::vector<SimResult> results; //!< index-aligned with configs
};

/** Runs design-point sweeps across an application suite. */
class SuiteRunner
{
  public:
    /** Defaults to the paper's seven web applications. */
    explicit SuiteRunner(
        std::vector<AppProfile> apps = AppProfile::webSuite());

    const std::vector<AppProfile> &apps() const { return apps_; }

    /**
     * Simulate every config on every app. Workloads are generated
     * once per app and shared across configs (and freed before moving
     * to the next app, keeping memory bounded).
     */
    std::vector<SuiteRow> run(const std::vector<SimConfig> &configs,
                              bool announce_progress = false) const;

  private:
    std::vector<AppProfile> apps_;
};

/**
 * Harmonic mean across apps of per-app percent improvement of config
 * @p cfg over config @p ref (both indices into each row's results).
 * The paper's HMean bars are harmonic means of per-app speedups; we
 * aggregate speedups harmonically then convert to percent.
 */
double hmeanImprovementPct(const std::vector<SuiteRow> &rows,
                           std::size_t cfg, std::size_t ref);

/** Harmonic mean across apps of an arbitrary per-result metric. */
double hmeanMetric(const std::vector<SuiteRow> &rows, std::size_t cfg,
                   const std::function<double(const SimResult &)> &get);

/** Arithmetic mean across apps of a per-result metric. */
double meanMetric(const std::vector<SuiteRow> &rows, std::size_t cfg,
                  const std::function<double(const SimResult &)> &get);

} // namespace espsim

#endif // ESPSIM_SIM_STATS_REPORT_HH
