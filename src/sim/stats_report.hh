/**
 * @file
 * Suite-level harness helpers shared by every benchmark binary: run a
 * set of design points over the seven-app suite (generating each app's
 * workload once), and aggregate results the way the paper does
 * (harmonic mean across applications).
 *
 * The sweep is embarrassingly parallel — every simulation is a pure
 * function of (SimConfig, Workload) — so SuiteRunner fans one job per
 * (app, config) point out over a JobPool. Results are written into
 * pre-allocated index slots, so figure tables are byte-identical at
 * any thread count.
 */

#ifndef ESPSIM_SIM_STATS_REPORT_HH
#define ESPSIM_SIM_STATS_REPORT_HH

#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/job_pool.hh"
#include "sim/simulator.hh"
#include "workload/app_profile.hh"

namespace espsim
{

/**
 * A failed (app, config) sweep cell. A throwing simulation no longer
 * aborts the whole suite: the cell degrades to this record (the
 * exception message plus the hash of the config that triggered it)
 * and the run carries on. Tables print error cells as "ERROR!"; the
 * JSON artifact collects them in its `errors` block; `espsim suite`
 * exits non-zero when any cell failed.
 */
struct CellError
{
    std::string message;    //!< what() of the escaped exception
    std::string configHash; //!< configsHash of the failing config
};

/** All configs' results for one application. */
struct SuiteRow
{
    std::string app;
    std::vector<SimResult> results; //!< index-aligned with configs
    /**
     * Index-aligned error cells; empty message = the cell succeeded.
     * Empty vector (the common all-good case) means no cell failed.
     */
    std::vector<CellError> errors;
    /**
     * Index-aligned host wall-clock profiles; only populated when
     * the runner was asked to profile (SuiteRunner::setProfiling).
     */
    std::vector<HostCellProfile> profiles;

    /** Did the cell for config index @p c produce a valid result? */
    bool
    ok(std::size_t c) const
    {
        return errors.empty() || errors[c].message.empty();
    }

    /** Any failed cell in this row? */
    bool
    hasErrors() const
    {
        for (const CellError &e : errors) {
            if (!e.message.empty())
                return true;
        }
        return false;
    }
};

/** Any failed cell anywhere in the sweep? */
bool suiteHasErrors(const std::vector<SuiteRow> &rows);

/** Runs design-point sweeps across an application suite. */
class SuiteRunner
{
  public:
    /** Defaults to the paper's seven web applications. */
    explicit SuiteRunner(
        std::vector<AppProfile> apps = AppProfile::webSuite());

    const std::vector<AppProfile> &apps() const { return apps_; }

    /**
     * Degree of parallelism for run(): one job per (app, config)
     * point. 0 (the default) resolves to JobPool::defaultJobs()
     * (ESPSIM_JOBS env override, else hardware_concurrency); 1 is the
     * old strictly serial behaviour.
     */
    void setJobs(unsigned jobs) { jobs_ = jobs; }
    unsigned jobs() const { return jobs_; }

    /**
     * Record per-cell host wall-clock profiles (generation, warmup,
     * simulation, reporting) into SuiteRow::profiles, and capture the
     * JobPool's utilization counters (lastPoolUsage()). Off by
     * default: profiled stats are wall-clock facts about this machine
     * and must never leak into deterministic artifacts.
     */
    void setProfiling(bool on) { profiling_ = on; }
    bool profiling() const { return profiling_; }

    /**
     * Replay each app through the streaming workload core (bounded
     * sliding window, workload/streaming.hh) instead of materialising
     * it up front. Stats are bit-identical either way — the
     * `streaming-equivalence` fuzz oracle and the diff_streaming_golden
     * ctest hold the two paths to byte-identical artifacts — but peak
     * memory stays flat in the event count.
     */
    void setStreaming(bool on) { streaming_ = on; }
    bool streaming() const { return streaming_; }

    /** Pool utilization of the most recent run() (profiling only). */
    const JobPoolUsage &lastPoolUsage() const { return lastUsage_; }

    /**
     * Simulate every config on every app. Each app's workload is
     * generated once and shared read-only across that app's config
     * jobs (and released as soon as the app's last point completes,
     * keeping memory bounded). Results land in the same index order
     * regardless of thread count.
     *
     * Fault tolerance: a cell whose simulation (or workload
     * generation) throws becomes a CellError in its row instead of
     * taking down the sweep — every other cell still completes.
     * Inspect with SuiteRow::ok() / suiteHasErrors().
     *
     * Fault injection (for tests): when the ESPSIM_FAULT_INJECT
     * environment variable is set to "app:config" (either side may be
     * "*"), the matching cells throw before simulating.
     */
    std::vector<SuiteRow> run(const std::vector<SimConfig> &configs,
                              bool announce_progress = false) const;

  private:
    std::vector<AppProfile> apps_;
    unsigned jobs_ = 0; //!< 0 = JobPool::defaultJobs()
    bool profiling_ = false;
    bool streaming_ = false;
    mutable JobPoolUsage lastUsage_;
};

/**
 * Harmonic mean across apps of per-app percent improvement of config
 * @p cfg over config @p ref (both indices into each row's results).
 * The paper's HMean bars are harmonic means of per-app speedups; we
 * aggregate speedups harmonically then convert to percent. Rows whose
 * cfg or ref cell errored are excluded from the aggregate.
 */
double hmeanImprovementPct(const std::vector<SuiteRow> &rows,
                           std::size_t cfg, std::size_t ref);

/**
 * Harmonic mean across apps of an arbitrary per-result metric.
 * Templated on the getter so per-cell std::function allocation never
 * happens in table-rendering loops. Error cells are excluded.
 */
template <typename Get>
double
hmeanMetric(const std::vector<SuiteRow> &rows, std::size_t cfg,
            Get &&get)
{
    std::vector<double> values;
    values.reserve(rows.size());
    for (const SuiteRow &row : rows) {
        if (row.ok(cfg))
            values.push_back(get(row.results[cfg]));
    }
    return harmonicMean(values);
}

/** Arithmetic mean across apps of a per-result metric (error cells
 *  excluded). */
template <typename Get>
double
meanMetric(const std::vector<SuiteRow> &rows, std::size_t cfg,
           Get &&get)
{
    std::vector<double> values;
    values.reserve(rows.size());
    for (const SuiteRow &row : rows) {
        if (row.ok(cfg))
            values.push_back(get(row.results[cfg]));
    }
    return arithmeticMean(values);
}

} // namespace espsim

#endif // ESPSIM_SIM_STATS_REPORT_HH
