#include "sim/stats_report.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "common/job_pool.hh"
#include "common/logging.hh"
#include "workload/generator.hh"

namespace espsim
{

namespace
{

/**
 * Per-app shared state for one sweep: the workload is generated once
 * (by whichever job gets there first), shared read-only across that
 * app's config jobs, and released when the last of them completes.
 */
struct AppSlot
{
    std::once_flag once;
    std::shared_ptr<const Workload> workload;
    std::atomic<std::size_t> remaining{0};
};

} // namespace

SuiteRunner::SuiteRunner(std::vector<AppProfile> apps)
    : apps_(std::move(apps))
{
    if (apps_.empty())
        fatal("SuiteRunner needs at least one application profile");
}

std::vector<SuiteRow>
SuiteRunner::run(const std::vector<SimConfig> &configs,
                 bool announce_progress) const
{
    const std::size_t n_apps = apps_.size();
    const std::size_t n_cfgs = configs.size();
    const std::size_t points = n_apps * n_cfgs;

    std::vector<SuiteRow> rows(n_apps);
    std::vector<AppSlot> slots(n_apps);
    for (std::size_t a = 0; a < n_apps; ++a) {
        rows[a].app = apps_[a].name;
        rows[a].results.resize(n_cfgs);
        slots[a].remaining.store(n_cfgs, std::memory_order_relaxed);
    }
    if (points == 0)
        return rows;

    // One job per (app, config) point; never more threads than points.
    const unsigned want = jobs_ == 0 ? JobPool::defaultJobs() : jobs_;
    const auto n_jobs = static_cast<unsigned>(
        std::min<std::size_t>(want, points));

    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    JobPool pool(n_jobs);
    for (std::size_t a = 0; a < n_apps; ++a) {
        for (std::size_t c = 0; c < n_cfgs; ++c) {
            pool.submit([&, a, c] {
                AppSlot &slot = slots[a];
                std::call_once(slot.once, [&] {
                    slot.workload =
                        SyntheticGenerator(apps_[a]).generate();
                });
                std::shared_ptr<const Workload> workload =
                    slot.workload;
                rows[a].results[c] =
                    Simulator(configs[c]).run(*workload);
                workload.reset();
                // Last point of this app: free its workload now so a
                // sweep never holds more live workloads than it needs.
                if (slot.remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
                    slot.workload.reset();
                if (announce_progress) {
                    const std::size_t k =
                        done.fetch_add(1, std::memory_order_relaxed) +
                        1;
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    inform("%zu/%zu points done (%s on %s)", k, points,
                           configs[c].name.c_str(),
                           apps_[a].name.c_str());
                }
            });
        }
    }
    pool.wait();
    return rows;
}

double
hmeanImprovementPct(const std::vector<SuiteRow> &rows, std::size_t cfg,
                    std::size_t ref)
{
    std::vector<double> speedups;
    speedups.reserve(rows.size());
    for (const SuiteRow &row : rows)
        speedups.push_back(row.results[cfg].speedupOver(row.results[ref]));
    return (harmonicMean(speedups) - 1.0) * 100.0;
}

} // namespace espsim
