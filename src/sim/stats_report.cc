#include "sim/stats_report.hh"

#include "common/histogram.hh"
#include "common/logging.hh"
#include "workload/generator.hh"

namespace espsim
{

SuiteRunner::SuiteRunner(std::vector<AppProfile> apps)
    : apps_(std::move(apps))
{
    if (apps_.empty())
        fatal("SuiteRunner needs at least one application profile");
}

std::vector<SuiteRow>
SuiteRunner::run(const std::vector<SimConfig> &configs,
                 bool announce_progress) const
{
    std::vector<SuiteRow> rows;
    rows.reserve(apps_.size());
    for (const AppProfile &app : apps_) {
        if (announce_progress)
            inform("simulating %s ...", app.name.c_str());
        SyntheticGenerator gen(app);
        const auto workload = gen.generate();
        SuiteRow row;
        row.app = app.name;
        row.results.reserve(configs.size());
        for (const SimConfig &config : configs)
            row.results.push_back(Simulator(config).run(*workload));
        rows.push_back(std::move(row));
    }
    return rows;
}

double
hmeanImprovementPct(const std::vector<SuiteRow> &rows, std::size_t cfg,
                    std::size_t ref)
{
    std::vector<double> speedups;
    speedups.reserve(rows.size());
    for (const SuiteRow &row : rows)
        speedups.push_back(row.results[cfg].speedupOver(row.results[ref]));
    return (harmonicMean(speedups) - 1.0) * 100.0;
}

double
hmeanMetric(const std::vector<SuiteRow> &rows, std::size_t cfg,
            const std::function<double(const SimResult &)> &get)
{
    std::vector<double> values;
    values.reserve(rows.size());
    for (const SuiteRow &row : rows)
        values.push_back(get(row.results[cfg]));
    return harmonicMean(values);
}

double
meanMetric(const std::vector<SuiteRow> &rows, std::size_t cfg,
           const std::function<double(const SimResult &)> &get)
{
    std::vector<double> values;
    values.reserve(rows.size());
    for (const SuiteRow &row : rows)
        values.push_back(get(row.results[cfg]));
    return arithmeticMean(values);
}

} // namespace espsim
