#include "sim/stats_report.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/job_pool.hh"
#include "common/logging.hh"
#include "report/artifact.hh"
#include "workload/generator.hh"
#include "workload/streaming.hh"

namespace espsim
{

namespace
{

/**
 * Per-app shared state for one sweep: the workload is generated once
 * (by whichever job gets there first), shared read-only across that
 * app's config jobs, and released when the last of them completes.
 */
struct AppSlot
{
    std::once_flag once;
    std::shared_ptr<const Workload> workload;
    std::atomic<std::size_t> remaining{0};
};

/**
 * Test hook: ESPSIM_FAULT_INJECT="app:config" (either side "*") makes
 * the matching cells throw, exercising the ErrorCell degradation path
 * end-to-end without a real model bug.
 */
bool
faultInjected(const std::string &app, const std::string &config)
{
    const char *env = std::getenv("ESPSIM_FAULT_INJECT");
    if (!env || !*env)
        return false;
    const std::string spec(env);
    const std::size_t colon = spec.find(':');
    const std::string want_app = spec.substr(0, colon);
    const std::string want_cfg =
        colon == std::string::npos ? "*" : spec.substr(colon + 1);
    return (want_app == "*" || want_app == app) &&
        (want_cfg == "*" || want_cfg == config);
}

} // namespace

bool
suiteHasErrors(const std::vector<SuiteRow> &rows)
{
    for (const SuiteRow &row : rows) {
        if (row.hasErrors())
            return true;
    }
    return false;
}

SuiteRunner::SuiteRunner(std::vector<AppProfile> apps)
    : apps_(std::move(apps))
{
    if (apps_.empty())
        fatal("SuiteRunner needs at least one application profile");
}

std::vector<SuiteRow>
SuiteRunner::run(const std::vector<SimConfig> &configs,
                 bool announce_progress) const
{
    const std::size_t n_apps = apps_.size();
    const std::size_t n_cfgs = configs.size();
    const std::size_t points = n_apps * n_cfgs;

    std::vector<SuiteRow> rows(n_apps);
    std::vector<AppSlot> slots(n_apps);
    for (std::size_t a = 0; a < n_apps; ++a) {
        rows[a].app = apps_[a].name;
        rows[a].results.resize(n_cfgs);
        rows[a].errors.resize(n_cfgs);
        if (profiling_) {
            rows[a].profiles.resize(n_cfgs);
            for (std::size_t c = 0; c < n_cfgs; ++c) {
                rows[a].profiles[c].app = apps_[a].name;
                rows[a].profiles[c].config = configs[c].name;
            }
        }
        slots[a].remaining.store(n_cfgs, std::memory_order_relaxed);
    }
    if (points == 0)
        return rows;

    // One job per (app, config) point; never more threads than points.
    const unsigned want = jobs_ == 0 ? JobPool::defaultJobs() : jobs_;
    const auto n_jobs = static_cast<unsigned>(
        std::min<std::size_t>(want, points));

    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    JobPool pool(n_jobs);
    for (std::size_t a = 0; a < n_apps; ++a) {
        for (std::size_t c = 0; c < n_cfgs; ++c) {
            pool.submit([&, a, c] {
                AppSlot &slot = slots[a];
                // A throwing cell degrades to a CellError instead of
                // aborting the sweep. (A std::call_once whose callable
                // throws leaves the flag unset, so a later cell of the
                // same app retries workload generation.)
                try {
                    if (faultInjected(apps_[a].name, configs[c].name)) {
                        throw std::runtime_error(
                            "injected fault (ESPSIM_FAULT_INJECT)");
                    }
                    HostCellProfile *prof = profiling_
                        ? &rows[a].profiles[c]
                        : nullptr;
                    {
                        // Generation cost lands on whichever cell ran
                        // the call_once; cells that blocked waiting on
                        // it accrue the wait, which is equally honest.
                        WallClockSpan gen_span(prof ? &prof->genMs
                                                    : nullptr);
                        std::call_once(slot.once, [&] {
                            if (streaming_) {
                                slot.workload = std::make_shared<
                                    StreamingWorkload>(
                                    std::make_unique<GeneratorSource>(
                                        apps_[a]));
                            } else {
                                slot.workload =
                                    SyntheticGenerator(apps_[a])
                                        .generate();
                            }
                        });
                    }
                    std::shared_ptr<const Workload> workload =
                        slot.workload;
                    RunInstrumentation inst;
                    inst.hostProfile = prof;
                    rows[a].results[c] =
                        Simulator(configs[c]).run(*workload, inst);
                    workload.reset();
                } catch (const std::exception &e) {
                    rows[a].errors[c].message = e.what();
                    rows[a].errors[c].configHash =
                        configsHash({configs[c]});
                    warn("suite cell (%s, %s) failed: %s",
                         apps_[a].name.c_str(), configs[c].name.c_str(),
                         e.what());
                } catch (...) {
                    rows[a].errors[c].message = "unknown exception";
                    rows[a].errors[c].configHash =
                        configsHash({configs[c]});
                    warn("suite cell (%s, %s) failed: unknown "
                         "exception",
                         apps_[a].name.c_str(),
                         configs[c].name.c_str());
                }
                // Last point of this app: free its workload now so a
                // sweep never holds more live workloads than it needs.
                if (slot.remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
                    slot.workload.reset();
                if (announce_progress) {
                    const std::size_t k =
                        done.fetch_add(1, std::memory_order_relaxed) +
                        1;
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    inform("%zu/%zu points done (%s on %s)", k, points,
                           configs[c].name.c_str(),
                           apps_[a].name.c_str());
                }
            });
        }
    }
    pool.wait();
    if (profiling_)
        lastUsage_ = pool.usage();
    return rows;
}

double
hmeanImprovementPct(const std::vector<SuiteRow> &rows, std::size_t cfg,
                    std::size_t ref)
{
    std::vector<double> speedups;
    speedups.reserve(rows.size());
    for (const SuiteRow &row : rows) {
        if (row.ok(cfg) && row.ok(ref))
            speedups.push_back(
                row.results[cfg].speedupOver(row.results[ref]));
    }
    return (harmonicMean(speedups) - 1.0) * 100.0;
}

} // namespace espsim
