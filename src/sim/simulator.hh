/**
 * @file
 * The top-level facade: wires a SimConfig into a core + hierarchy +
 * predictor + (optional) speculation engine, runs a workload, and
 * returns every statistic the paper's figures need.
 */

#ifndef ESPSIM_SIM_SIMULATOR_HH
#define ESPSIM_SIM_SIMULATOR_HH

#include <string>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "cpu/ooo_core.hh"
#include "energy/energy_model.hh"
#include "report/host_profile.hh"
#include "report/interval.hh"
#include "report/spans.hh"
#include "report/telemetry.hh"
#include "report/timeline.hh"
#include "sim/sim_config.hh"
#include "trace/workload.hh"

namespace espsim
{

/** Everything measured in one simulation run. */
struct SimResult
{
    std::string configName;
    std::string workloadName;

    CoreStats core;
    EnergyBreakdown energy;
    /**
     * The canonical stats surface: a snapshot of every counter the
     * run's components registered into the StatRegistry ("core.",
     * "mem.", "bp.", "esp." or "runahead.", "energy.", "derived."
     * groups). The headline fields below are views over this snapshot.
     */
    StatGroup stats;

    // Headline derived metrics.
    Cycle cycles = 0;
    double ipc = 0;
    double l1iMpki = 0;        //!< L1-I misses per kilo-instruction
    double l1dMissRate = 0;    //!< fraction of L1-D demand accesses
    double mispredictRate = 0; //!< fraction of executed branches
    double extraInstrFraction = 0; //!< speculative / committed

    /** Working-set samples per ESP depth (Figure 13 runs only). */
    std::vector<SampleStat> instrWorkingSets;
    std::vector<SampleStat> dataWorkingSets;

    /** Speedup of this result over a reference run (same workload). */
    double
    speedupOver(const SimResult &ref) const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(ref.cycles) /
                static_cast<double>(cycles);
    }

    /** Percent performance improvement over @p ref. */
    double
    improvementPctOver(const SimResult &ref) const
    {
        return (speedupOver(ref) - 1.0) * 100.0;
    }
};

/**
 * Optional observers for one run; all fields may be left defaulted
 * (the run then costs nothing extra).
 */
struct RunInstrumentation
{
    /** Per-event timeline recorder (nullptr = off). */
    EventTimeline *timeline = nullptr;
    /** Interval sampling periods; disabled unless a period is set. */
    IntervalConfig interval;
    /** Receives the sampled series when interval.enabled(). */
    IntervalSeries *intervalSeries = nullptr;
    /** Receives warmup/sim/report wall-clock spans (nullptr = off). */
    HostCellProfile *hostProfile = nullptr;
    /** Event arrival discipline + latency probe (nullptr = saturated
     *  looper, the paper's setup). See cpu/pacer.hh. */
    EventPacer *pacer = nullptr;
    /** Per-request span sink (flight recorder / tail blame; nullptr =
     *  off). See report/spans.hh. */
    SpanSink *spans = nullptr;
    /** Live-telemetry pacing; disabled unless a period is set. */
    TelemetryConfig telemetry;
    /** JSONL sink for telemetry snapshots (nullptr = none). */
    TelemetryStream *telemetryStream = nullptr;
    /** Shared plane for /metrics, /healthz and the stall watchdog
     *  (nullptr = none). */
    TelemetryPlane *telemetryPlane = nullptr;
    /** Run identity stamped into telemetry records (config/workload
     *  names default from the run itself when left empty). */
    std::string telemetryConfigHash;
};

/** One-shot simulator: construct with a config, run workloads. */
class Simulator
{
  public:
    explicit Simulator(SimConfig config);

    const SimConfig &config() const { return config_; }

    /** Simulate the workload from a cold machine state. */
    SimResult run(const Workload &workload) const;

    /**
     * Same, recording a per-event timeline into @p timeline (may be
     * nullptr). The recorder receives queue/dispatch/retire cycles and
     * the stall breakdown per event, plus every ESP pre-execution
     * window; export it with EventTimeline::writeChromeTrace().
     */
    SimResult run(const Workload &workload,
                  EventTimeline *timeline) const;

    /** Same, with the full instrumentation surface attached. */
    SimResult run(const Workload &workload,
                  const RunInstrumentation &inst) const;

  private:
    SimConfig config_;
};

} // namespace espsim

#endif // ESPSIM_SIM_SIMULATOR_HH
