#include "sim/sim_config.hh"

namespace espsim
{

SimConfig
SimConfig::baseline()
{
    SimConfig c;
    c.name = "base";
    return c;
}

SimConfig
SimConfig::nextLine()
{
    SimConfig c;
    c.name = "NL";
    c.prefetch.nextLineInstr = true;
    c.prefetch.nextLineData = true;
    return c;
}

SimConfig
SimConfig::nextLineStride()
{
    SimConfig c = nextLine();
    c.name = "NL+S";
    c.prefetch.strideData = true;
    return c;
}

SimConfig
SimConfig::runaheadExec(bool with_nl)
{
    SimConfig c = with_nl ? nextLine() : baseline();
    c.name = with_nl ? "Runahead+NL" : "Runahead";
    c.engine = SpeculationEngine::Runahead;
    return c;
}

SimConfig
SimConfig::espFull(bool with_nl)
{
    SimConfig c = with_nl ? nextLine() : baseline();
    c.name = with_nl ? "ESP+NL" : "ESP";
    c.engine = SpeculationEngine::Esp;
    return c;
}

SimConfig
SimConfig::espNaive(bool with_nl)
{
    SimConfig c = espFull(with_nl);
    c.name = with_nl ? "NaiveESP+NL" : "NaiveESP";
    c.esp.naiveMode = true;
    c.esp.branchPolicy = BranchPolicy::NoExtraHardware;
    return c;
}

SimConfig
SimConfig::espAblation(bool use_i, bool use_b, bool use_d)
{
    SimConfig c = espFull(true);
    std::string suffix;
    if (use_i)
        suffix += "I";
    if (use_b)
        suffix += suffix.empty() ? "B" : ",B";
    if (use_d)
        suffix += suffix.empty() ? "D" : ",D";
    c.name = "ESP-" + suffix + "+NL";
    c.esp.useIList = use_i;
    c.esp.useDList = use_d;
    c.esp.useBList = use_b;
    if (!use_b)
        c.esp.branchPolicy = BranchPolicy::SeparatePir;
    return c;
}

SimConfig
SimConfig::espInstrOnly(bool with_nl_instr, bool ideal)
{
    SimConfig c;
    c.name = std::string(ideal ? "idealESP-I" : "ESP-I") +
        (with_nl_instr ? "+NL-I" : "");
    c.engine = SpeculationEngine::Esp;
    c.prefetch.nextLineInstr = with_nl_instr;
    c.esp.useIList = true;
    c.esp.useDList = false;
    c.esp.useBList = false;
    c.esp.branchPolicy = BranchPolicy::SeparatePir;
    c.esp.ideal = ideal;
    return c;
}

SimConfig
SimConfig::espDataOnly(bool with_nl_data, bool ideal)
{
    SimConfig c;
    c.name = std::string(ideal ? "idealESP-D" : "ESP-D") +
        (with_nl_data ? "+NL-D" : "");
    c.engine = SpeculationEngine::Esp;
    c.prefetch.nextLineData = with_nl_data;
    c.esp.useIList = false;
    c.esp.useDList = true;
    c.esp.useBList = false;
    c.esp.branchPolicy = BranchPolicy::SeparatePir;
    c.esp.ideal = ideal;
    return c;
}

SimConfig
SimConfig::runaheadDataOnly(bool with_nl_data)
{
    SimConfig c;
    c.name = std::string("Runahead-D") + (with_nl_data ? "+NL-D" : "");
    c.engine = SpeculationEngine::Runahead;
    c.prefetch.nextLineData = with_nl_data;
    c.runahead.warmData = true;
    c.runahead.trainBranchPredictor = false;
    c.runahead.warmInstr = false;
    return c;
}

SimConfig
SimConfig::nextLineInstrOnly()
{
    SimConfig c;
    c.name = "NL-I";
    c.prefetch.nextLineInstr = true;
    return c;
}

SimConfig
SimConfig::nextLineDataOnly()
{
    SimConfig c;
    c.name = "NL-D";
    c.prefetch.nextLineData = true;
    return c;
}

SimConfig
SimConfig::espBranchPolicy(BranchPolicy policy)
{
    SimConfig c = espFull(true);
    switch (policy) {
      case BranchPolicy::NoExtraHardware:
        c.name = "no extra H/W";
        break;
      case BranchPolicy::SeparatePir:
        c.name = "separate context";
        break;
      case BranchPolicy::SeparatePirAndTables:
        c.name = "separate context and tables";
        break;
      case BranchPolicy::SeparatePirPlusBList:
        c.name = "separate context + B-list (ESP)";
        break;
    }
    c.esp.branchPolicy = policy;
    c.esp.useBList = policy == BranchPolicy::SeparatePirPlusBList;
    return c;
}

SimConfig
SimConfig::perfect(bool l1d, bool bp, bool l1i)
{
    // The potential study idealises components *of the baseline
    // machine*, which includes its NL + stride prefetchers (Figure 7).
    SimConfig c = nextLineStride();
    c.name = "perfect";
    if (l1d)
        c.name += " L1D";
    if (bp)
        c.name += " BP";
    if (l1i)
        c.name += " L1I";
    if (l1d && bp && l1i)
        c.name = "perfect All";
    c.memory.perfectL1D = l1d;
    c.memory.perfectL1I = l1i;
    c.core.perfectBranch = bp;
    return c;
}

SimConfig
SimConfig::espWorkingSetStudy(unsigned depth)
{
    SimConfig c = espFull(true);
    c.name = "ESP working-set study";
    c.esp.maxDepth = depth;
    c.esp.ideal = true;
    c.esp.trackWorkingSets = true;
    return c;
}

} // namespace espsim
