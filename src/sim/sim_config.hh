/**
 * @file
 * Top-level simulation configuration with named factory presets for
 * every design point the paper evaluates. This is the main entry knob
 * of the public API:
 *
 *     auto result = Simulator(SimConfig::espFull(true)).run(workload);
 */

#ifndef ESPSIM_SIM_SIM_CONFIG_HH
#define ESPSIM_SIM_SIM_CONFIG_HH

#include <string>

#include "branch/pentium_m.hh"
#include "cache/hierarchy.hh"
#include "cpu/ooo_core.hh"
#include "cpu/runahead.hh"
#include "energy/energy_model.hh"
#include "esp/config.hh"

namespace espsim
{

/** Which stall-time speculation engine is attached to the core. */
enum class SpeculationEngine
{
    None,
    Runahead,
    Esp,
};

/** Complete configuration of one simulated design point. */
struct SimConfig
{
    std::string name = "baseline";
    CoreConfig core;
    HierarchyConfig memory;
    BranchPredictorConfig branch;
    PrefetcherConfig prefetch;
    SpeculationEngine engine = SpeculationEngine::None;
    RunaheadConfig runahead;
    EspConfig esp;
    EnergyConfig energy;

    // --- factory presets (names match the paper's figure legends) ---

    /** No prefetching at all (Figure 9's normalisation baseline). */
    static SimConfig baseline();

    /** Next-line instruction + data prefetchers ("NL"). */
    static SimConfig nextLine();

    /** NL plus the 256-entry stride data prefetcher ("NL + S"). */
    static SimConfig nextLineStride();

    /** Runahead execution, optionally with NL ("Runahead [+ NL]"). */
    static SimConfig runaheadExec(bool with_nl);

    /** The full ESP design, optionally with NL ("ESP [+ NL]"). */
    static SimConfig espFull(bool with_nl);

    /** Figure 10's strawman: no cachelets/lists ("Naive ESP [+ NL]"). */
    static SimConfig espNaive(bool with_nl);

    /**
     * Figure 10 ablations: arm only the chosen benefit channels
     * (instruction prefetch, branch pre-training, data prefetch).
     * Always paired with NL, as in the figure.
     */
    static SimConfig espAblation(bool use_i, bool use_b, bool use_d);

    /** Instruction-side-only ESP ("ESP-I [+ NL-I]", Figure 11a). */
    static SimConfig espInstrOnly(bool with_nl_instr, bool ideal);

    /** Data-side-only ESP ("ESP-D [+ NL-D]", Figure 11b). */
    static SimConfig espDataOnly(bool with_nl_data, bool ideal);

    /** Data-side-only runahead ("Runahead-D [+ NL-D]", Figure 11b). */
    static SimConfig runaheadDataOnly(bool with_nl_data);

    /** Next-line on one side only (Figure 11 baselines). */
    static SimConfig nextLineInstrOnly();
    static SimConfig nextLineDataOnly();

    /** Figure 12 branch-policy studies (ESP otherwise full, with NL). */
    static SimConfig espBranchPolicy(BranchPolicy policy);

    /** Figure 3 potential: perfect L1D / BP / L1I / all. */
    static SimConfig perfect(bool l1d, bool bp, bool l1i);

    /** Figure 13 instrumentation: deep jump-ahead working-set study. */
    static SimConfig espWorkingSetStudy(unsigned depth);
};

} // namespace espsim

#endif // ESPSIM_SIM_SIM_CONFIG_HH
