#include "sim/simulator.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/pacer.hh"
#include "cpu/runahead.hh"
#include "esp/controller.hh"
#include "report/artifact.hh"
#include "report/stat_registry.hh"

namespace espsim
{

Simulator::Simulator(SimConfig config) : config_(std::move(config))
{
}

SimResult
Simulator::run(const Workload &workload) const
{
    return run(workload, RunInstrumentation{});
}

SimResult
Simulator::run(const Workload &workload, EventTimeline *timeline) const
{
    RunInstrumentation inst;
    inst.timeline = timeline;
    return run(workload, inst);
}

SimResult
Simulator::run(const Workload &workload,
               const RunInstrumentation &inst) const
{
    EventTimeline *timeline = inst.timeline;
    HostCellProfile *profile = inst.hostProfile;

    MemoryHierarchy mem(config_.memory);
    PentiumMPredictor bp(config_.branch);

    {
        // Pre-warm the LLC with the application's standing image (the
        // paper measures a browser session already in flight).
        WallClockSpan warmup_span(profile ? &profile->warmupMs
                                          : nullptr);
        for (const AddrRange &range : workload.warmSet()) {
            for (Addr a = blockAlign(range.first); a < range.second;
                 a += blockBytes) {
                mem.l2().insert(a);
            }
        }
    }

    std::unique_ptr<EspController> esp;
    std::unique_ptr<RunaheadEngine> runahead;
    CoreHooks no_hooks;
    CoreHooks *hooks = &no_hooks;

    switch (config_.engine) {
      case SpeculationEngine::Esp:
        esp = std::make_unique<EspController>(config_.esp, mem, bp,
                                              workload,
                                              config_.core.width);
        hooks = esp.get();
        break;
      case SpeculationEngine::Runahead:
        runahead = std::make_unique<RunaheadEngine>(
            config_.runahead, mem, bp, workload, config_.core.width);
        hooks = runahead.get();
        break;
      case SpeculationEngine::None:
        break;
    }

    OoOCore core(config_.core, mem, bp, config_.prefetch, *hooks);

    // The canonical stats surface: every component registers its
    // counters once; one snapshot at the end of the run feeds the
    // text dump, the JSON/CSV artifacts, and the SimResult views.
    StatRegistry reg;
    core.registerStats(reg, "core.");
    mem.registerStats(reg, "mem.");
    bp.registerStats(reg, "bp.");
    if (esp)
        esp->registerStats(reg, "esp.");
    if (runahead)
        runahead->registerStats(reg, "runahead.");

    if (timeline) {
        timeline->setRunInfo(config_.name, workload.name());
        core.setTimeline(timeline);
        if (esp)
            esp->setTimeline(timeline);
    }

    // Interval sampling: constructed after every pre-run counter is
    // registered (the sampler freezes the counter name set now; the
    // post-run handler/derived registrations never enter the series).
    std::unique_ptr<IntervalSampler> sampler;
    if (inst.interval.enabled()) {
        sampler = std::make_unique<IntervalSampler>(reg, inst.interval);
        sampler->setTimeline(timeline);
        core.setSampler(sampler.get());
    }

    if (inst.pacer)
        core.setPacer(inst.pacer);
    if (inst.spans)
        core.setSpanSink(inst.spans);

    // Live telemetry: same construction point as the interval sampler
    // (the counter name set freezes here), same retire-boundary
    // observation discipline. Attached whenever a sink or a plane is
    // present — the plane alone still carries liveness progress for
    // the stall watchdog even if no period is configured.
    std::unique_ptr<TelemetrySnapshotter> telemetry;
    if (inst.telemetry.enabled() || inst.telemetryStream != nullptr ||
        inst.telemetryPlane != nullptr) {
        TelemetryRunInfo tinfo;
        tinfo.config = config_.name;
        tinfo.workload = workload.name();
        tinfo.configHash = inst.telemetryConfigHash.empty()
                               ? configsHash({config_})
                               : inst.telemetryConfigHash;
        telemetry = std::make_unique<TelemetrySnapshotter>(
            reg, inst.telemetry, std::move(tinfo),
            inst.telemetryStream, inst.telemetryPlane);
        core.setTelemetry(telemetry.get());
    }

    {
        WallClockSpan sim_span(profile ? &profile->simMs : nullptr);
        core.run(workload);
        // Score still-unused prefetched blocks (useless) before
        // snapshot.
        mem.finalizePrefetchLifecycles();
    }

    if (sampler) {
        // Close the series after the lifecycle finalize so the
        // trailing interval telescopes to the end-of-run aggregates.
        sampler->finalize(core.stats().cycles, core.stats().events);
        if (inst.intervalSeries) {
            IntervalSeries series = sampler->take();
            series.configName = config_.name;
            series.workloadName = workload.name();
            series.configHash = configsHash({config_});
            *inst.intervalSeries = std::move(series);
        }
    }

    if (telemetry) {
        // Final snapshot after the lifecycle finalize so it equals
        // the end-of-run registry counter values exactly.
        telemetry->finalize(core.stats().cycles, core.stats().events);
    }

    WallClockSpan report_span(profile ? &profile->reportMs : nullptr);

    // Per-event-type cycle attribution: register the top handlers by
    // cycles spent (bounded so artifacts stay small), aggregating the
    // tail under "other". Values are copied — the map outlives only
    // this function via these captures.
    {
        const auto &acct = core.stats().handlerAccounting;
        std::vector<std::pair<std::uint32_t, Cycle>> ranked;
        ranked.reserve(acct.size());
        for (const auto &[handler, ha] : acct)
            ranked.emplace_back(handler, ha.cycles());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second
                          ? a.second > b.second
                          : a.first < b.first;
                  });
        constexpr std::size_t maxHandlersReported = 8;
        CycleBucketArray other{};
        std::uint64_t other_events = 0;
        Cycle other_cycles = 0;
        for (std::size_t r = 0; r < ranked.size(); ++r) {
            const HandlerAccounting &ha = acct.at(ranked[r].first);
            if (r < maxHandlersReported) {
                const std::string base = "core.handler." +
                    std::to_string(ranked[r].first) + ".";
                reg.registerDerived(base + "events",
                                    [v = ha.events] {
                                        return static_cast<double>(v);
                                    });
                reg.registerDerived(base + "cycles",
                                    [v = ha.cycles()] {
                                        return static_cast<double>(v);
                                    });
                for (unsigned b = 0; b < numCycleBuckets; ++b) {
                    reg.registerDerived(
                        base + "cycle_bucket." +
                            cycleBucketName(
                                static_cast<CycleBucket>(b)),
                        [v = ha.buckets[b]] {
                            return static_cast<double>(v);
                        });
                }
            } else {
                other_events += ha.events;
                other_cycles += ha.cycles();
                for (unsigned b = 0; b < numCycleBuckets; ++b)
                    other[b] += ha.buckets[b];
            }
        }
        if (ranked.size() > maxHandlersReported) {
            reg.registerDerived("core.handler.other.events",
                                [v = other_events] {
                                    return static_cast<double>(v);
                                });
            reg.registerDerived("core.handler.other.cycles",
                                [v = other_cycles] {
                                    return static_cast<double>(v);
                                });
            for (unsigned b = 0; b < numCycleBuckets; ++b) {
                reg.registerDerived(
                    "core.handler.other.cycle_bucket." +
                        std::string(cycleBucketName(
                            static_cast<CycleBucket>(b))),
                    [v = other[b]] { return static_cast<double>(v); });
            }
        }
    }

    // Pacer-owned stats (per-handler latency quantiles on serve runs)
    // join the registry after the run, like the handler accounting
    // above, so they land in the same snapshot.
    if (inst.pacer)
        inst.pacer->registerStats(reg, "server.");

    SimResult result;
    result.configName = config_.name;
    result.workloadName = workload.name();
    result.core = core.stats();
    if (esp) {
        result.instrWorkingSets = esp->instrWorkingSets();
        result.dataWorkingSets = esp->dataWorkingSets();
    }

    // --- energy ------------------------------------------------------
    const CoreStats &cs = core.stats();
    EnergyInputs ein;
    ein.cycles = cs.cycles;
    ein.instructions = cs.instructions;
    ein.branches = cs.branches;
    ein.mispredicts = cs.mispredicts;
    ein.l1Accesses = mem.l1iAccesses() + mem.l1dAccesses();
    ein.l2Accesses = mem.l1iMisses() + mem.l1dMisses() +
        mem.prefetchesIssued();
    ein.memAccesses = mem.l2Misses();
    if (esp) {
        const EspStats &es = esp->stats();
        ein.speculativeInstrs = es.preExecutedInstrs;
        ein.cacheletAccesses = es.preExecutedInstrs / 2;
        ein.listEntries = es.listPrefetchesInstr +
            es.listPrefetchesData + es.branchesPreTrained;
    }
    if (runahead)
        ein.speculativeInstrs = runahead->stats().instructions;

    EnergyModel energy(config_.energy);
    result.energy = energy.compute(ein);

    // --- derived metrics (registered, then snapshot) -----------------
    const double l1i_mpki = cs.instructions == 0
        ? 0.0
        : static_cast<double>(mem.l1iMisses()) /
            (static_cast<double>(cs.instructions) / 1000.0);
    const double l1d_miss_rate = mem.l1dAccesses() == 0
        ? 0.0
        : static_cast<double>(mem.l1dMisses()) /
            static_cast<double>(mem.l1dAccesses());
    const double mispredict_rate = cs.branches == 0
        ? 0.0
        : static_cast<double>(cs.mispredicts) /
            static_cast<double>(cs.branches);
    const double extra_instr_fraction = cs.instructions == 0
        ? 0.0
        : static_cast<double>(ein.speculativeInstrs) /
            static_cast<double>(cs.instructions);

    reg.registerDerived("energy.static",
                        [v = result.energy.staticEnergy] { return v; });
    reg.registerDerived("energy.mispredict", [v = result.energy
                                                      .mispredictEnergy] {
        return v;
    });
    reg.registerDerived("energy.dynamic",
                        [v = result.energy.restDynamic] { return v; });
    reg.registerDerived("energy.total",
                        [v = result.energy.total()] { return v; });
    reg.registerDerived("derived.l1i_mpki",
                        [l1i_mpki] { return l1i_mpki; });
    reg.registerDerived("derived.l1d_miss_rate",
                        [l1d_miss_rate] { return l1d_miss_rate; });
    reg.registerDerived("derived.mispredict_rate",
                        [mispredict_rate] { return mispredict_rate; });
    reg.registerDerived("derived.ipc",
                        [&cs] { return cs.ipc(); });
    reg.registerDerived("derived.extra_instr_fraction",
                        [extra_instr_fraction] {
                            return extra_instr_fraction;
                        });

    result.stats = reg.snapshot();

    // Headline fields are views over the canonical snapshot.
    result.cycles = static_cast<Cycle>(result.stats.get("core.cycles"));
    result.ipc = result.stats.get("derived.ipc");
    result.l1iMpki = result.stats.get("derived.l1i_mpki");
    result.l1dMissRate = result.stats.get("derived.l1d_miss_rate");
    result.mispredictRate = result.stats.get("derived.mispredict_rate");
    result.extraInstrFraction =
        result.stats.get("derived.extra_instr_fraction");

    return result;
}

} // namespace espsim
