#include "sim/simulator.hh"

#include <memory>

#include "cpu/runahead.hh"
#include "esp/controller.hh"

namespace espsim
{

Simulator::Simulator(SimConfig config) : config_(std::move(config))
{
}

SimResult
Simulator::run(const Workload &workload) const
{
    MemoryHierarchy mem(config_.memory);
    PentiumMPredictor bp(config_.branch);

    // Pre-warm the LLC with the application's standing image (the
    // paper measures a browser session already in flight).
    for (const AddrRange &range : workload.warmSet()) {
        for (Addr a = blockAlign(range.first); a < range.second;
             a += blockBytes) {
            mem.l2().insert(a);
        }
    }

    std::unique_ptr<EspController> esp;
    std::unique_ptr<RunaheadEngine> runahead;
    CoreHooks no_hooks;
    CoreHooks *hooks = &no_hooks;

    switch (config_.engine) {
      case SpeculationEngine::Esp:
        esp = std::make_unique<EspController>(config_.esp, mem, bp,
                                              workload,
                                              config_.core.width);
        hooks = esp.get();
        break;
      case SpeculationEngine::Runahead:
        runahead = std::make_unique<RunaheadEngine>(
            config_.runahead, mem, bp, workload, config_.core.width);
        hooks = runahead.get();
        break;
      case SpeculationEngine::None:
        break;
    }

    OoOCore core(config_.core, mem, bp, config_.prefetch, *hooks);
    core.run(workload);

    SimResult result;
    result.configName = config_.name;
    result.workloadName = workload.name();
    result.core = core.stats();
    result.cycles = result.core.cycles;
    result.ipc = result.core.ipc();

    mem.report(result.stats, "mem.");
    if (esp) {
        esp->report(result.stats, "esp.");
        result.instrWorkingSets = esp->instrWorkingSets();
        result.dataWorkingSets = esp->dataWorkingSets();
    }
    if (runahead)
        runahead->report(result.stats, "runahead.");

    const auto &cs = result.core;
    result.l1iMpki = cs.instructions == 0
        ? 0.0
        : static_cast<double>(mem.l1iMisses()) /
            (static_cast<double>(cs.instructions) / 1000.0);
    result.l1dMissRate = mem.l1dAccesses() == 0
        ? 0.0
        : static_cast<double>(mem.l1dMisses()) /
            static_cast<double>(mem.l1dAccesses());
    result.mispredictRate = cs.branches == 0
        ? 0.0
        : static_cast<double>(cs.mispredicts) /
            static_cast<double>(cs.branches);

    // --- energy ------------------------------------------------------
    EnergyInputs ein;
    ein.cycles = cs.cycles;
    ein.instructions = cs.instructions;
    ein.branches = cs.branches;
    ein.mispredicts = cs.mispredicts;
    ein.l1Accesses = mem.l1iAccesses() + mem.l1dAccesses();
    ein.l2Accesses = mem.l1iMisses() + mem.l1dMisses() +
        mem.prefetchesIssued();
    ein.memAccesses = mem.l2Misses();
    if (esp) {
        const EspStats &es = esp->stats();
        ein.speculativeInstrs = es.preExecutedInstrs;
        ein.cacheletAccesses = es.preExecutedInstrs / 2;
        ein.listEntries = es.listPrefetchesInstr +
            es.listPrefetchesData + es.branchesPreTrained;
    }
    if (runahead)
        ein.speculativeInstrs = runahead->stats().instructions;
    result.extraInstrFraction = cs.instructions == 0
        ? 0.0
        : static_cast<double>(ein.speculativeInstrs) /
            static_cast<double>(cs.instructions);

    EnergyModel energy(config_.energy);
    result.energy = energy.compute(ein);
    result.stats.set("energy.static", result.energy.staticEnergy);
    result.stats.set("energy.mispredict",
                     result.energy.mispredictEnergy);
    result.stats.set("energy.dynamic", result.energy.restDynamic);
    result.stats.set("energy.total", result.energy.total());
    result.stats.set("derived.l1i_mpki", result.l1iMpki);
    result.stats.set("derived.l1d_miss_rate", result.l1dMissRate);
    result.stats.set("derived.mispredict_rate", result.mispredictRate);
    result.stats.set("derived.ipc", result.ipc);
    result.stats.set("derived.extra_instr_fraction",
                     result.extraInstrFraction);

    return result;
}

} // namespace espsim
