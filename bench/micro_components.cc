/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * cache lookups, branch prediction, workload generation, list
 * appends, and end-to-end simulation throughput. These guard the
 * simulator's own performance (the figures above re-run millions of
 * simulated instructions).
 *
 * Like every other bench binary, `--json [path]` / `--csv [path]`
 * export the measured table as a versioned artifact (default
 * BENCH_micro_components.json/.csv); those flags are stripped from
 * argv before google-benchmark sees them (its flag parser rejects
 * anything it does not know).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "branch/pentium_m.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "esp/lists.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

void
BM_CacheLookup(benchmark::State &state)
{
    SetAssocCache cache({"bench", 32 * 1024, 2, 2});
    Rng rng(7);
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 20) * blockBytes;
        if (!cache.lookup(addr))
            cache.insert(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy mem{HierarchyConfig{}};
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.accessData(rng.below(1 << 22) * 8, false, now++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    PentiumMPredictor bp;
    Rng rng(7);
    MicroOp op;
    op.setType(OpType::BranchCond);
    for (auto _ : state) {
        op.pc = 0x1000 + 4 * rng.below(4096);
        op.setTaken(rng.chance(0.7));
        op.setBranchTarget(op.taken() ? op.pc + 16 : 0);
        benchmark::DoNotOptimize(bp.executeBranch(op));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_ListAppend(benchmark::State &state)
{
    Rng rng(7);
    AddressList list(0); // unbounded
    for (auto _ : state) {
        list.append(rng.below(1 << 22) * blockBytes,
                    state.iterations());
        if (list.records().size() > 1 << 16) {
            state.PauseTiming();
            list.clear();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ListAppend);

void
BM_GenerateEvent(benchmark::State &state)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    std::uint64_t id = 0;
    std::size_t ops = 0;
    for (auto _ : state) {
        const EventTrace trace = gen.generateEvent(id++ % 24);
        ops += trace.size();
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_GenerateEvent);

void
BM_SimulateBaseline(benchmark::State &state)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    const auto workload = gen.generate();
    const Simulator sim(SimConfig::nextLineStride());
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const SimResult res = sim.run(*workload);
        insts += res.core.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SimulateBaseline);

void
BM_SimulateEsp(benchmark::State &state)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    const auto workload = gen.generate();
    const Simulator sim(SimConfig::espFull(true));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const SimResult res = sim.run(*workload);
        insts += res.core.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SimulateEsp);

/**
 * Console reporter that also records every per-iteration run into an
 * exportable table: name, wall time per iteration, and the
 * items-per-second throughput counter every benchmark here sets.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CapturingReporter(TextTable &table) : table_(table) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration)
                continue;
            const auto it = run.counters.find("items_per_second");
            const double ips = it == run.counters.end()
                ? 0.0
                : static_cast<double>(it->second);
            table_.row({run.benchmark_name(),
                        TextTable::num(run.GetAdjustedRealTime(), 1),
                        TextTable::num(ips, 0)});
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    TextTable &table_;
};

} // namespace

int
main(int argc, char **argv)
{
    const benchutil::ReportOptions opts = benchutil::reportSetup(
        argc, argv, "micro_components", "micro_components");

    // google-benchmark's Initialize aborts on flags it does not know;
    // drop the artifact/jobs flags (and their path/value operands)
    // before handing argv over.
    std::vector<char *> bench_argv{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const bool takes_value =
            std::strcmp(argv[i], "--json") == 0 ||
            std::strcmp(argv[i], "--csv") == 0 ||
            std::strcmp(argv[i], "--jobs") == 0;
        if (takes_value) {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                ++i;
            continue;
        }
        bench_argv.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data()))
        return 1;

    TextTable table("microbenchmark results");
    table.header({"benchmark", "time_ns", "items_per_s"});
    CapturingReporter reporter(table);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    benchutil::reportFinishTable(opts, table);
    return 0;
}
