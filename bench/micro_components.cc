/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * cache lookups, branch prediction, workload generation, list
 * appends, and end-to-end simulation throughput. These guard the
 * simulator's own performance (the figures above re-run millions of
 * simulated instructions).
 */

#include <benchmark/benchmark.h>

#include "branch/pentium_m.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "esp/lists.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

void
BM_CacheLookup(benchmark::State &state)
{
    SetAssocCache cache({"bench", 32 * 1024, 2, 2});
    Rng rng(7);
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 20) * blockBytes;
        if (!cache.lookup(addr))
            cache.insert(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy mem{HierarchyConfig{}};
    Rng rng(7);
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.accessData(rng.below(1 << 22) * 8, false, now++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    PentiumMPredictor bp;
    Rng rng(7);
    MicroOp op;
    op.type = OpType::BranchCond;
    for (auto _ : state) {
        op.pc = 0x1000 + 4 * rng.below(4096);
        op.taken = rng.chance(0.7);
        op.branchTarget = op.taken ? op.pc + 16 : 0;
        benchmark::DoNotOptimize(bp.executeBranch(op));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_ListAppend(benchmark::State &state)
{
    Rng rng(7);
    AddressList list(0); // unbounded
    for (auto _ : state) {
        list.append(rng.below(1 << 22) * blockBytes,
                    state.iterations());
        if (list.records().size() > 1 << 16) {
            state.PauseTiming();
            list.clear();
            state.ResumeTiming();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ListAppend);

void
BM_GenerateEvent(benchmark::State &state)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    std::uint64_t id = 0;
    std::size_t ops = 0;
    for (auto _ : state) {
        const EventTrace trace = gen.generateEvent(id++ % 24);
        ops += trace.size();
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_GenerateEvent);

void
BM_SimulateBaseline(benchmark::State &state)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    const auto workload = gen.generate();
    const Simulator sim(SimConfig::nextLineStride());
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const SimResult res = sim.run(*workload);
        insts += res.core.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SimulateBaseline);

void
BM_SimulateEsp(benchmark::State &state)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    const auto workload = gen.generate();
    const Simulator sim(SimConfig::espFull(true));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        const SimResult res = sim.run(*workload);
        insts += res.core.instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SimulateEsp);

} // namespace

BENCHMARK_MAIN();
