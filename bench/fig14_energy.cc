/**
 * @file
 * Regenerates the paper's Figure 14: energy of ESP+NL relative to NL,
 * decomposed into static energy, branch-misprediction (wrong-path)
 * energy, and the remaining dynamic energy; plus the percentage of
 * additional instructions ESP executes (the numbers above the paper's
 * bars: 11.7% to 31.5%, average 21.2%).
 *
 * Paper shape: ESP costs ~8% more energy overall — the pre-execution
 * work is partly paid back by shorter runtime (less static energy) and
 * fewer mispredicted (wasted) instructions.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig14_energy", "fig14");
    const std::vector<SimConfig> configs{
        SimConfig::nextLine(),    // reference: NL
        SimConfig::espFull(true), // ESP + NL
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    TextTable table("Figure 14: Energy relative to NL");
    table.header({"app", "NL", "ESP", "ESP static", "ESP mispred",
                  "ESP dynamic", "extra instr %"});

    double sum_rel = 0.0;
    double sum_extra = 0.0;
    for (const SuiteRow &row : rows) {
        const EnergyBreakdown &nl = row.results[0].energy;
        const EnergyBreakdown &esp = row.results[1].energy;
        const double base = nl.total();
        table.row({
            row.app,
            TextTable::num(1.0, 3),
            TextTable::num(esp.total() / base, 3),
            TextTable::num(esp.staticEnergy / base, 3),
            TextTable::num(esp.mispredictEnergy / base, 3),
            TextTable::num(esp.restDynamic / base, 3),
            TextTable::num(100.0 * row.results[1].extraInstrFraction, 1),
        });
        sum_rel += esp.total() / base;
        sum_extra += row.results[1].extraInstrFraction;
    }
    const auto n = static_cast<double>(rows.size());
    table.row({"Mean", TextTable::num(1.0, 3),
               TextTable::num(sum_rel / n, 3), "", "",
               "", TextTable::num(100.0 * sum_extra / n, 1)});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nheadline: ESP energy overhead = %.1f%%  (paper: 8%%)\n",
                100.0 * (sum_rel / n - 1.0));
    std::printf("headline: extra instructions  = %.1f%%  (paper: "
                "21.2%%)\n",
                100.0 * sum_extra / n);
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
