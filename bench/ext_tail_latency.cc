/**
 * @file
 * Extension study: server-side tail latency under load. The paper
 * evaluates ESP on client-side web apps; this figure asks the
 * datacenter question instead — when a memcached-style request stream
 * arrives faster than the core drains it, how much does ESP's
 * stall-shadow pre-execution shave off the p50/p99/p99.9 queue+service
 * latency?
 *
 * Sweeps a Poisson open-loop arrival rate from "mostly idle" to
 * "saturated" and prints base vs ESP+NL tail latency at each load
 * point. Everything streams through the bounded-window workload core,
 * so the sweep's memory footprint is flat in the event count.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "server/serve.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report = benchutil::reportSetup(argc, argv,
                                               "ext_tail_latency",
                                               "ext_tail_latency");
    const ServerProfile profile = ServerProfile::memcached();
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::espFull(true)};

    TextTable table("Extension: memcached tail latency under Poisson "
                    "load — base vs ESP+NL (cycles)");
    table.header({"mean gap", "base p50", "ESP p50", "base p99",
                  "ESP p99", "base p99.9", "ESP p99.9", "p99 cut %"});

    for (const double gap : {4000.0, 2000.0, 1000.0, 500.0, 250.0}) {
        ServeOptions opts;
        opts.events = 2000;
        opts.arrival.kind = ArrivalKind::Poisson;
        opts.arrival.meanGapCycles = gap;
        const ServeReport r = runServe(profile, configs, opts);
        const LatencySummary &base = r.cells[0].total;
        const LatencySummary &esp = r.cells[1].total;
        const double cut = base.p99 > 0.0
            ? 100.0 * (base.p99 - esp.p99) / base.p99
            : 0.0;
        table.row({
            TextTable::num(gap, 0),
            TextTable::num(base.p50, 0),
            TextTable::num(esp.p50, 0),
            TextTable::num(base.p99, 0),
            TextTable::num(esp.p99, 0),
            TextTable::num(base.p999, 0),
            TextTable::num(esp.p999, 0),
            TextTable::num(cut, 1),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nserver check: ESP's stall-shadow pre-execution "
              "shortens per-request service time, which drains queues "
              "faster — the tail (p99/p99.9) improves most near "
              "saturation, where queueing dominates.");

    // Blame decomposition at the near-saturation point: re-run the
    // heaviest load with span tracing on and show where the worst
    // ESP+NL requests actually spend their cycles — queueing behind
    // the loop vs executing, and how much of the execute window the
    // ESP pre-exec shadow covers.
    {
        ServeOptions opts;
        opts.events = 2000;
        opts.arrival.kind = ArrivalKind::Poisson;
        opts.arrival.meanGapCycles = 250.0;
        opts.spans.enabled = true;
        opts.spans.worstK = 5;
        const ServeReport r = runServe(
            profile, {SimConfig::espFull(true)}, opts);

        TextTable blame("Worst ESP+NL requests at mean gap 250 — "
                        "span blame decomposition (cycles)");
        blame.header({"event", "handler", "total", "queue", "service",
                      "esp pre-exec", "timely pf", "late pf"});
        for (const RequestSpan &span : r.cells[0].worstSpans) {
            std::uint64_t timely = 0;
            std::uint64_t late = 0;
            for (const SpanPrefetchDelta &d : span.prefetch) {
                timely += d.timely;
                late += d.late;
            }
            blame.row({
                TextTable::num(static_cast<double>(span.index), 0),
                TextTable::num(static_cast<double>(span.handlerType),
                               0),
                TextTable::num(static_cast<double>(span.totalCycles()),
                               0),
                TextTable::num(static_cast<double>(span.queueCycles()),
                               0),
                TextTable::num(
                    static_cast<double>(span.serviceCycles()), 0),
                TextTable::num(
                    static_cast<double>(span.espPreExecCycles()), 0),
                TextTable::num(static_cast<double>(timely), 0),
                TextTable::num(static_cast<double>(late), 0),
            });
        }
        std::fputs(blame.render().c_str(), stdout);
        std::puts("\nspan check: near saturation the tail is mostly "
                  "queueing — the per-request span deltas separate "
                  "\"slow to execute\" from \"stuck in line\", which "
                  "aggregate percentiles cannot.");
    }
    benchutil::reportFinishTable(report, table);
    return 0;
}
