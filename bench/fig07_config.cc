/**
 * @file
 * Regenerates the paper's Figure 7: the simulated machine
 * configuration, printed from the live config structures so the table
 * can never drift from what the simulator actually models.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/sim_config.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig07_config", "fig07");
    const SimConfig c = SimConfig::nextLineStride();

    TextTable table("Figure 7: Simulator configuration");
    table.header({"component", "setting"});
    char buf[160];

    std::snprintf(buf, sizeof(buf),
                  "%u-wide OoO, %u-entry ROB, %u-entry LSQ",
                  c.core.width, c.core.robSize, c.core.lsqSize);
    table.row({"Core", buf});

    auto cache_row = [&table, &buf](const char *label,
                                    const CacheGeometry &g) {
        std::snprintf(buf, sizeof(buf),
                      "%zu KB, %u-way, 64 B lines, %llu cycle hit",
                      g.sizeBytes / 1024, g.assoc,
                      static_cast<unsigned long long>(g.hitLatency));
        table.row({label, buf});
    };
    cache_row("L1-I cache", c.memory.l1i);
    cache_row("L1-D cache", c.memory.l1d);
    cache_row("L2 cache", c.memory.l2);

    std::snprintf(buf, sizeof(buf), "%llu cycle access latency",
                  static_cast<unsigned long long>(c.memory.memLatency));
    table.row({"Main memory", buf});

    std::snprintf(
        buf, sizeof(buf),
        "Pentium M: %zu global, %zu local, %zu BTB, %zu iBTB, "
        "%zu loop, %u RAS; %llu cycle mispredict",
        c.branch.globalEntries, c.branch.localEntries,
        c.branch.btbEntries, c.branch.ibtbEntries, c.branch.loopEntries,
        c.branch.rasDepth,
        static_cast<unsigned long long>(c.core.mispredictPenalty));
    table.row({"Branch predictor", buf});

    table.row({"Prefetchers",
               "Instruction: next-line; Data: next-line (DCU), "
               "stride (256 entries)"});

    std::fputs(table.render().c_str(), stdout);
    benchutil::reportFinishTable(report, table);
    return 0;
}
