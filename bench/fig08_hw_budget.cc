/**
 * @file
 * Regenerates the paper's Figure 8: the ESP hardware budget per mode.
 * Paper totals: 12.6 KB for ESP-1, 1.2 KB for ESP-2.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "esp/config.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig08_hw_budget", "fig08");
    const EspConfig c;

    TextTable table("Figure 8: ESP hardware configuration (bytes)");
    table.header({"structure", "ESP-1", "ESP-2"});

    const unsigned iw = c.icachelet.assoc;
    const unsigned dw = c.dcachelet.assoc;
    table.row({"L1-I cachelet",
               TextTable::num(c.icachelet.sizeBytes * (iw - 1) / iw, 0),
               TextTable::num(c.icachelet.sizeBytes / iw, 0)});
    table.row({"L1-D cachelet",
               TextTable::num(c.dcachelet.sizeBytes * (dw - 1) / dw, 0),
               TextTable::num(c.dcachelet.sizeBytes / dw, 0)});
    table.row({"I-List", TextTable::num(c.iListBytes[0], 0),
               TextTable::num(c.iListBytes[1], 0)});
    table.row({"D-List", TextTable::num(c.dListBytes[0], 0),
               TextTable::num(c.dListBytes[1], 0)});
    table.row({"B-List-Direction", TextTable::num(c.bListDirBytes[0], 0),
               TextTable::num(c.bListDirBytes[1], 0)});
    table.row({"B-List-Target", TextTable::num(c.bListTgtBytes[0], 0),
               TextTable::num(c.bListTgtBytes[1], 0)});
    table.row({"RRAT", "28", "28"});
    table.row({"HW event queue", "8", "8"});
    table.row({"Special registers", "12", "12"});
    table.row({"Total", TextTable::num(c.hardwareBytes(0), 0),
               TextTable::num(c.hardwareBytes(1), 0)});
    std::fputs(table.render().c_str(), stdout);

    std::printf("\nTotal ESP additions: %.1f KB (paper: 13.8 KB)\n",
                (c.hardwareBytes(0) + c.hardwareBytes(1)) / 1024.0);
    benchutil::reportFinishTable(report, table);
    return 0;
}
