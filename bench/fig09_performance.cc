/**
 * @file
 * Regenerates the paper's Figure 9: performance of next-line (NL),
 * NL + stride (NL+S), runahead, and ESP — alone and combined with NL —
 * normalised to a no-prefetch baseline.
 *
 * Paper shape: NL ~13.8%, NL+S ~13.9% (stride adds ~0.1%), runahead
 * ~12%, runahead+NL ~21%, ESP+NL ~32% (16% over NL+S).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report = benchutil::reportSetup(argc, argv,
                                               "fig09_performance",
                                               "fig09");
    const std::vector<SimConfig> configs{
        SimConfig::baseline(), // reference (hidden)
        SimConfig::nextLine(),
        SimConfig::nextLineStride(),
        SimConfig::runaheadExec(false),
        SimConfig::runaheadExec(true),
        SimConfig::espFull(false),
        SimConfig::espFull(true),
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printImprovementFigure(
        "Figure 9: Performance of ESP, Next-Line and Runahead "
        "(% improvement over no-prefetch baseline)",
        rows, configs, 1);

    // The paper's headline numbers.
    std::printf("headline: ESP+NL over NL+S       = %5.1f%%  "
                "(paper: 16%%)\n",
                hmeanImprovementPct(rows, 6, 2));
    std::printf("headline: Runahead+NL over NL+S  = %5.1f%%  "
                "(paper: 6.4%%)\n",
                hmeanImprovementPct(rows, 4, 2));
    std::printf("headline: stride over NL         = %5.1f%%  "
                "(paper: 0.1%%)\n",
                hmeanImprovementPct(rows, 2, 1));
    std::printf("headline: ESP+NL extra instrs    = %5.1f%%  "
                "(paper: 21.2%%)\n",
                100.0 * meanMetric(rows, 6, [](const SimResult &r) {
                    return r.extraInstrFraction;
                }));
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
