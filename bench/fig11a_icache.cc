/**
 * @file
 * Regenerates the paper's Figure 11a: L1 I-cache misses per
 * kilo-instruction for the baseline, next-line instruction prefetching
 * (NL-I), instruction-side ESP (ESP-I), their combination, and an
 * ideal ESP-I (unbounded cachelet/list, perfectly timely prefetches).
 *
 * Paper shape: base ~23.5 MPKI; ESP-I + NL-I ~11.6; the real design
 * comes close to ideal.
 */

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig11a_icache", "fig11a");
    const std::vector<SimConfig> configs{
        SimConfig::baseline(),
        SimConfig::nextLineInstrOnly(),
        SimConfig::espInstrOnly(false, false),
        SimConfig::espInstrOnly(true, false),
        SimConfig::espInstrOnly(true, true), // ideal
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printFigure(
        "Figure 11a: L1 I-cache MPKI", rows, configs, 0,
        [](const SuiteRow &row, std::size_t c) {
            return row.results[c].l1iMpki;
        },
        2, false, "Mean");
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
