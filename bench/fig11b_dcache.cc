/**
 * @file
 * Regenerates the paper's Figure 11b: L1 D-cache miss rate for the
 * baseline, data next-line prefetching (NL-D), data-only runahead,
 * data-side ESP, combinations, and an ideal ESP-D.
 *
 * Paper shape: base ~4.4%; ESP-D + NL-D ~1.8%; Runahead-D + NL-D does
 * *better* (~0.8%) — runahead warms the D-cache in short, timely
 * bursts — yet loses overall (Figure 9) because it cannot touch the
 * I-cache problem. Ideal ESP-D is comparable to runahead.
 */

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig11b_dcache", "fig11b");
    const std::vector<SimConfig> configs{
        SimConfig::baseline(),
        SimConfig::nextLineDataOnly(),
        SimConfig::runaheadDataOnly(false),
        SimConfig::runaheadDataOnly(true),
        SimConfig::espDataOnly(false, false),
        SimConfig::espDataOnly(true, false),
        SimConfig::espDataOnly(true, true), // ideal
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printFigure(
        "Figure 11b: L1 D-cache miss rate (%)", rows, configs, 0,
        [](const SuiteRow &row, std::size_t c) {
            return 100.0 * row.results[c].l1dMissRate;
        },
        2, false, "Mean");
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
