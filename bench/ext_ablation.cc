/**
 * @file
 * Ablation study of the design decisions DESIGN.md §5 calls out,
 * across the full seven-app suite: jump-ahead depth (the paper's §6.6
 * argument for stopping at 2), re-entrant pre-execution (§3.4),
 * prefetch lead (§3.6's 190 instructions), list capacity (Figure 8's
 * provisioning), and the pre-execution depth bound.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace espsim;

namespace
{

SimConfig
variant(const char *name, void (*tweak)(EspConfig &))
{
    SimConfig cfg = SimConfig::espFull(true);
    cfg.name = name;
    tweak(cfg.esp);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto report = benchutil::reportSetup(argc, argv,
                                               "ext_ablation",
                                               "ext_ablation");
    const std::vector<SimConfig> configs{
        SimConfig::nextLineStride(), // reference (hidden)
        variant("ESP (paper)", [](EspConfig &) {}),
        variant("depth=1", [](EspConfig &c) { c.maxDepth = 1; }),
        variant("depth=4", [](EspConfig &c) { c.maxDepth = 4; }),
        variant("no reentry", [](EspConfig &c) { c.reentrant = false; }),
        variant("lead=60",
                [](EspConfig &c) { c.prefetchLeadInstructions = 60; }),
        variant("lead=1000",
                [](EspConfig &c) { c.prefetchLeadInstructions = 1000; }),
        variant("lists/2",
                [](EspConfig &c) {
                    for (auto *caps :
                         {&c.iListBytes, &c.dListBytes, &c.bListDirBytes,
                          &c.bListTgtBytes}) {
                        (*caps)[0] /= 2;
                        (*caps)[1] /= 2;
                    }
                }),
        variant("lists*2",
                [](EspConfig &c) {
                    for (auto *caps :
                         {&c.iListBytes, &c.dListBytes, &c.bListDirBytes,
                          &c.bListTgtBytes}) {
                        (*caps)[0] *= 2;
                        (*caps)[1] *= 2;
                    }
                }),
        variant("preexec cap/3",
                [](EspConfig &c) { c.maxPreExecPerEvent /= 3; }),
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printImprovementFigure(
        "Ablations: ESP design decisions (% improvement over NL+S, "
        "suite HMean in last row)",
        rows, configs, 1);

    std::puts("expected shape: the paper design sits at the knee — "
              "depth 1~2 close, depth 4 worse (budget thinning + table "
              "pollution), no-reentry much worse, lead robust across "
              "60-1000, halved lists cost performance, doubled lists "
              "gain a little (the paper sized for the knee).");
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
