/**
 * @file
 * Regenerates the paper's Figure 10: where ESP's performance comes
 * from. A naive ESP (no cachelets, no lists — prefetch into L1/L2 and
 * update the predictor during pre-execution) barely helps and hurts
 * some apps; the lists then add benefits in the order instruction
 * prefetch (+9.1%) > branch pre-training (+6%) > data prefetch (+3.3%).
 */

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig10_sources", "fig10");
    const std::vector<SimConfig> configs{
        SimConfig::baseline(), // reference (hidden)
        SimConfig::espNaive(false),
        SimConfig::espNaive(true),
        SimConfig::espAblation(true, false, false),  // ESP-I + NL
        SimConfig::espAblation(true, true, false),   // ESP-I,B + NL
        SimConfig::espAblation(true, true, true),    // ESP-I,B,D + NL
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printImprovementFigure(
        "Figure 10: Sources of performance in ESP "
        "(% improvement over no-prefetch baseline)",
        rows, configs, 1);
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
