/**
 * @file
 * Regenerates the paper's Figure 12: branch misprediction rate under
 * the ESP branch-predictor design alternatives —
 *   - base (no ESP),
 *   - no extra hardware (ESP-mode branches share PIR and tables),
 *   - separate context (a PIR/RAS per ESP mode, shared tables),
 *   - separate context and tables (full predictor replica per mode),
 *   - separate context + B-list (the ESP design).
 *
 * Paper shape: 9.9% base; naive sharing doesn't help; full replication
 * reaches 7.4%; the cheap separate-PIR + B-list design wins at 6.1%.
 */

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig12_branch", "fig12");
    const std::vector<SimConfig> configs{
        SimConfig::nextLine(), // base machine without ESP
        SimConfig::espBranchPolicy(BranchPolicy::NoExtraHardware),
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePir),
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePirAndTables),
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePirPlusBList),
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printFigure(
        "Figure 12: Branch misprediction rate (%)", rows, configs, 0,
        [](const SuiteRow &row, std::size_t c) {
            return 100.0 * row.results[c].mispredictRate;
        },
        2, false, "Mean");
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
