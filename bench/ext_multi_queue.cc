/**
 * @file
 * Extension study (paper §4.5, "ESP for any Asynchronous Program"):
 * multiple event queues multiplexed onto one looper by a runtime that
 * *predicts* the next two dispatches for the ESP hardware queue.
 *
 * Sweeps the rate of unpredicted "synchronous barrier" reorderings and
 * reports how ESP's gain degrades as dispatch prediction worsens —
 * with the incorrect-prediction bit vetoing stale hints, mispredicted
 * dispatches waste pre-execution work but never corrupt execution.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/multi_queue.hh"

using namespace espsim;

namespace
{

InterleavedWorkload
makeSystem(double barrier_rate)
{
    // Three logical queues: UI events, network callbacks, timers —
    // modeled with three differently-seeded mid-size apps.
    std::vector<std::unique_ptr<Workload>> queues;
    unsigned qi = 0;
    for (const char *app : {"amazon", "bing", "cnn"}) {
        AppProfile p = AppProfile::byName(app);
        p.numEvents = 14;
        p.seed += 17 * qi++;
        queues.push_back(SyntheticGenerator(p).generate());
    }
    MultiQueueConfig cfg;
    cfg.seed = 97;
    cfg.barrierRate = barrier_rate;
    return InterleavedWorkload("three-queue looper", std::move(queues),
                               cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto report = benchutil::reportSetup(argc, argv,
                                               "ext_multi_queue",
                                               "ext_multi_queue");
    TextTable table("Extension (paper 4.5): multi-queue looper — ESP "
                    "gain vs dispatch-prediction quality");
    table.header({"barrier rate", "dispatch accuracy %",
                  "ESP+NL gain %", "vetoed promotions",
                  "pre-exec instr %"});

    for (double rate : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
        const InterleavedWorkload w = makeSystem(rate);
        const SimResult base = Simulator(SimConfig::nextLine()).run(w);
        const SimResult esp = Simulator(SimConfig::espFull(true)).run(w);
        table.row({
            TextTable::num(rate, 2),
            TextTable::num(100.0 * w.dispatchPredictionAccuracy(), 1),
            TextTable::num(esp.improvementPctOver(base), 1),
            TextTable::num(esp.stats.get("esp.mispredicted_dispatches"),
                           0),
            TextTable::num(100.0 * esp.extraInstrFraction, 1),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\npaper 4.5 check: the scheme works for most events — "
              "ESP's gain degrades gracefully with barrier rate and the "
              "incorrect-prediction bit keeps wrong hints from being "
              "consumed.");
    benchutil::reportFinishTable(report, table);
    return 0;
}
