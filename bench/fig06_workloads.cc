/**
 * @file
 * Regenerates the paper's Figure 6: the benchmark table — actions
 * performed, number of events executed, and instruction counts, for
 * each web application. Our workloads are scaled down ~an order of
 * magnitude from the paper's traces; the paper's values are printed
 * alongside for reference.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "workload/app_profile.hh"
#include "workload/generator.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig06_workloads", "fig06");
    TextTable table("Figure 6: Benchmark web applications");
    table.header({"app", "events", "inst(K)", "inst/event",
                  "independent%", "paper events", "paper inst(M)"});

    for (const AppProfile &profile : AppProfile::webSuite()) {
        SyntheticGenerator gen(profile);
        const auto workload = gen.generate();
        const double insts =
            static_cast<double>(workload->totalInstructions());
        const double events =
            static_cast<double>(workload->numEvents());
        table.row({
            profile.name,
            TextTable::num(events, 0),
            TextTable::num(insts / 1000.0, 0),
            TextTable::num(insts / events, 0),
            TextTable::num(100.0 * workload->independentEventFraction(),
                           1),
            TextTable::num(profile.paperEvents, 0),
            TextTable::num(profile.paperInstMillions, 0),
        });
    }
    std::fputs(table.render().c_str(), stdout);

    std::puts("\nActions performed:");
    for (const AppProfile &profile : AppProfile::webSuite())
        std::printf("  %-9s %s\n", profile.name.c_str(),
                    profile.description.c_str());
    benchutil::reportFinishTable(report, table);
    return 0;
}
