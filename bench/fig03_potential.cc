/**
 * @file
 * Regenerates the paper's Figure 3: performance potential of the
 * baseline machine (NL + stride prefetchers) with a perfect L1
 * D-cache, a perfect branch predictor, a perfect L1 I-cache, and all
 * three at once.
 *
 * Paper shape: perfect-all nearly doubles performance, and the
 * perfect-L1I bar dominates the other two single-component bars.
 */

#include "bench_util.hh"

using namespace espsim;

int
main(int argc, char **argv)
{
    const auto report =
        benchutil::reportSetup(argc, argv, "fig03_potential", "fig03");
    const std::vector<SimConfig> configs{
        SimConfig::nextLineStride(), // reference (index 0)
        SimConfig::perfect(true, false, false),
        SimConfig::perfect(false, true, false),
        SimConfig::perfect(false, false, true),
        SimConfig::perfect(true, true, true),
    };

    const SuiteRunner runner = benchutil::makeSuiteRunner(argc, argv);
    const auto rows = runner.run(configs);

    benchutil::printImprovementFigure(
        "Figure 3: Performance potential in web applications "
        "(% improvement over baseline NL+S)",
        rows, configs, 1);
    benchutil::reportFinish(report, configs, rows);
    return 0;
}
