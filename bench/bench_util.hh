/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries: run a
 * config sweep over the suite and print one aligned table per figure,
 * with apps as rows and configs as columns — the same rows/series the
 * paper plots.
 *
 * Every figure binary accepts `--jobs N` (and honours the ESPSIM_JOBS
 * environment variable) to pick the sweep's degree of parallelism;
 * the default is hardware_concurrency and `--jobs 1` is the old
 * strictly serial behaviour. Tables are byte-identical either way.
 *
 * Every figure binary also accepts `--version` (print the build
 * manifest and exit), `--json [path]` and `--csv [path]` (export the
 * full per-(app, config) stat dump as a versioned artifact; the
 * default path is BENCH_<fig>.json / .csv). The ASCII tables on
 * stdout are untouched; run chatter (manifest, progress, wall time)
 * goes to stderr. See docs/OBSERVABILITY.md.
 */

#ifndef ESPSIM_BENCH_BENCH_UTIL_HH
#define ESPSIM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/table.hh"
#include "common/version.hh"
#include "report/artifact.hh"
#include "sim/stats_report.hh"

namespace espsim::benchutil
{

/**
 * Degree of parallelism requested on a figure binary's command line:
 * the value of `--jobs N` if present, else 0 (auto — SuiteRunner
 * resolves it to ESPSIM_JOBS or hardware_concurrency).
 */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0)
            continue;
        char *end = nullptr;
        const long v = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0') {
            logLine(LogLevel::Error,
                    "invalid value '%s' for --jobs (expected a "
                    "positive integer)",
                    argv[i + 1]);
            std::exit(2);
        }
        return v >= 1 ? static_cast<unsigned>(v) : 1;
    }
    return 0;
}

/** SuiteRunner over the paper suite, parallelism from the CLI. */
inline SuiteRunner
makeSuiteRunner(int argc, char **argv)
{
    SuiteRunner runner;
    runner.setJobs(jobsFromArgs(argc, argv));
    return runner;
}

/** Artifact-export options a figure binary parsed from its argv. */
struct ReportOptions
{
    std::string source;   //!< producing binary, e.g. "fig09_performance"
    std::string jsonPath; //!< empty = no JSON artifact
    std::string csvPath;  //!< empty = no CSV artifact
    unsigned jobs = 0;    //!< requested parallelism (0 = auto)
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
};

/**
 * Handle the flags every figure binary shares. Exits after printing
 * the build manifest when `--version` is given; otherwise parses
 * `--json [path]` / `--csv [path]` (default `BENCH_<tag>.json|csv`
 * when no path follows the flag) and prints the run manifest — tool
 * version, build type, requested jobs — to stderr. Volatile facts
 * like jobs and wall time stay on stderr so the artifacts themselves
 * are byte-identical at any `--jobs` count.
 */
inline ReportOptions
reportSetup(int argc, char **argv, const std::string &source,
            const std::string &tag)
{
    ReportOptions opts;
    opts.source = source;
    opts.jobs = jobsFromArgs(argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("%s %s (%s build)\n", source.c_str(),
                        versionString(), buildTypeString());
            std::exit(0);
        }
        const bool has_path =
            i + 1 < argc && argv[i + 1][0] != '-';
        if (std::strcmp(argv[i], "--json") == 0)
            opts.jsonPath = has_path ? argv[++i]
                                     : "BENCH_" + tag + ".json";
        else if (std::strcmp(argv[i], "--csv") == 0)
            opts.csvPath = has_path ? argv[++i]
                                    : "BENCH_" + tag + ".csv";
    }
    if (opts.jobs == 0)
        logLine(LogLevel::Info, "# %s %s (%s build), jobs=auto",
                source.c_str(), versionString(), buildTypeString());
    else
        logLine(LogLevel::Info, "# %s %s (%s build), jobs=%u",
                source.c_str(), versionString(), buildTypeString(),
                opts.jobs);
    return opts;
}

/**
 * Write the artifacts requested on the command line (if any) and
 * print the sweep's wall time to stderr. Exits non-zero on I/O
 * failure so scripted sweeps cannot silently lose their artifacts.
 */
inline void
reportFinish(const ReportOptions &opts,
             const std::vector<SimConfig> &configs,
             const std::vector<SuiteRow> &rows)
{
    ArtifactManifest manifest;
    manifest.source = opts.source;
    if (!opts.jsonPath.empty()) {
        if (!writeTextFile(opts.jsonPath, renderSuiteArtifactJson(
                                              manifest, configs, rows))) {
            logLine(LogLevel::Error, "# error: cannot write %s",
                    opts.jsonPath.c_str());
            std::exit(1);
        }
        logLine(LogLevel::Info, "# wrote %s", opts.jsonPath.c_str());
    }
    if (!opts.csvPath.empty()) {
        if (!writeTextFile(opts.csvPath, renderSuiteArtifactCsv(
                                             manifest, configs, rows))) {
            logLine(LogLevel::Error, "# error: cannot write %s",
                    opts.csvPath.c_str());
            std::exit(1);
        }
        logLine(LogLevel::Info, "# wrote %s", opts.csvPath.c_str());
    }
    const auto wall = std::chrono::duration_cast<std::chrono::
        milliseconds>(std::chrono::steady_clock::now() - opts.start);
    logLine(LogLevel::Info, "# %s done in %.2f s", opts.source.c_str(),
            static_cast<double>(wall.count()) / 1000.0);
}

/**
 * Artifact writer for figure binaries that print a descriptive table
 * rather than running a suite sweep (Figures 6-8): exports the table
 * itself with the same manifest header.
 */
inline void
reportFinishTable(const ReportOptions &opts, const TextTable &table)
{
    ArtifactManifest manifest;
    manifest.source = opts.source;
    if (!opts.jsonPath.empty()) {
        if (!writeTextFile(opts.jsonPath,
                           renderTableArtifactJson(manifest, table))) {
            logLine(LogLevel::Error, "# error: cannot write %s",
                    opts.jsonPath.c_str());
            std::exit(1);
        }
        logLine(LogLevel::Info, "# wrote %s", opts.jsonPath.c_str());
    }
    if (!opts.csvPath.empty()) {
        if (!writeTextFile(opts.csvPath,
                           renderTableArtifactCsv(manifest, table))) {
            logLine(LogLevel::Error, "# error: cannot write %s",
                    opts.csvPath.c_str());
            std::exit(1);
        }
        logLine(LogLevel::Info, "# wrote %s", opts.csvPath.c_str());
    }
}

/**
 * Print a figure table: one row per app plus an aggregate row.
 * @p cfg_from skips reference configs that aren't displayed columns.
 * @p hmean aggregates harmonically when true, arithmetically otherwise.
 * @p metric is called as metric(row, cfg) -> double; it is a template
 * parameter (not std::function) so large sweeps render without a heap
 * allocation per cell.
 */
template <typename Metric>
void
printFigure(const std::string &title,
            const std::vector<SuiteRow> &rows,
            const std::vector<SimConfig> &configs, std::size_t cfg_from,
            const Metric &metric, int precision, bool hmean,
            const std::string &aggregate_label = "HMean")
{
    TextTable table(title);
    std::vector<std::string> header{"app"};
    header.reserve(1 + configs.size() - cfg_from);
    for (std::size_t c = cfg_from; c < configs.size(); ++c)
        header.push_back(configs[c].name);
    table.header(header);

    std::vector<std::string> cells;
    cells.reserve(1 + configs.size() - cfg_from);
    for (const SuiteRow &row : rows) {
        cells.clear();
        cells.push_back(row.app);
        for (std::size_t c = cfg_from; c < configs.size(); ++c) {
            cells.push_back(row.ok(c) ? TextTable::num(metric(row, c),
                                                       precision)
                                      : "ERR");
        }
        table.row(cells);
    }

    std::vector<std::string> agg{aggregate_label};
    agg.reserve(1 + configs.size() - cfg_from);
    std::vector<double> values;
    values.reserve(rows.size());
    for (std::size_t c = cfg_from; c < configs.size(); ++c) {
        values.clear();
        for (const SuiteRow &row : rows) {
            if (row.ok(c)) // error cells drop out of the aggregate
                values.push_back(metric(row, c));
        }
        const double m =
            hmean ? harmonicMean(values) : arithmeticMean(values);
        agg.push_back(TextTable::num(m, precision));
    }
    table.row(agg);

    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n", stdout);
}

/** Percent improvement of config @p cfg over config index 0. */
inline double
improvementOverRef(const SuiteRow &row, std::size_t cfg,
                   std::size_t ref = 0)
{
    return row.results[cfg].improvementPctOver(row.results[ref]);
}

/**
 * Print a performance-improvement figure (percent over the reference
 * config @p ref, which is hidden). The aggregate row is the harmonic
 * mean of *speedups* converted to percent, matching the paper's HMean
 * bars (and well-defined even when some apps regress).
 */
inline void
printImprovementFigure(const std::string &title,
                       const std::vector<SuiteRow> &rows,
                       const std::vector<SimConfig> &configs,
                       std::size_t cfg_from, std::size_t ref = 0)
{
    TextTable table(title);
    std::vector<std::string> header{"app"};
    header.reserve(1 + configs.size() - cfg_from);
    for (std::size_t c = cfg_from; c < configs.size(); ++c)
        header.push_back(configs[c].name);
    table.header(header);

    std::vector<std::string> cells;
    cells.reserve(1 + configs.size() - cfg_from);
    for (const SuiteRow &row : rows) {
        cells.clear();
        cells.push_back(row.app);
        for (std::size_t c = cfg_from; c < configs.size(); ++c) {
            cells.push_back(
                row.ok(c) && row.ok(ref)
                    ? TextTable::num(improvementOverRef(row, c, ref), 1)
                    : "ERR");
        }
        table.row(cells);
    }
    std::vector<std::string> agg{"HMean"};
    agg.reserve(1 + configs.size() - cfg_from);
    for (std::size_t c = cfg_from; c < configs.size(); ++c)
        agg.push_back(TextTable::num(hmeanImprovementPct(rows, c, ref), 1));
    table.row(agg);

    std::fputs(table.render().c_str(), stdout);
    std::fputs("\n", stdout);
}

} // namespace espsim::benchutil

#endif // ESPSIM_BENCH_BENCH_UTIL_HH
