/**
 * @file
 * Parallel sweep engine scaling study: run the Figure 9 design-point
 * sweep (7 apps x 7 configs = 49 independent simulations) serially and
 * at increasing thread counts, report wall time and speedup per point,
 * and verify that every parallel run's results are bit-identical to
 * the serial run — the determinism guarantee the figure tables rely
 * on.
 *
 *   sweep_scaling [--jobs N]   N caps the largest thread count tried
 *                              (default hardware_concurrency).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/job_pool.hh"

using namespace espsim;

namespace
{

double
secondsFor(const SuiteRunner &runner,
           const std::vector<SimConfig> &configs,
           std::vector<SuiteRow> &rows_out)
{
    const auto t0 = std::chrono::steady_clock::now();
    rows_out = runner.run(configs);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
identicalResults(const std::vector<SuiteRow> &a,
                 const std::vector<SuiteRow> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t r = 0; r < a.size(); ++r) {
        if (a[r].app != b[r].app ||
            a[r].results.size() != b[r].results.size())
            return false;
        for (std::size_t c = 0; c < a[r].results.size(); ++c) {
            const SimResult &x = a[r].results[c];
            const SimResult &y = b[r].results[c];
            if (x.cycles != y.cycles || x.ipc != y.ipc ||
                x.l1iMpki != y.l1iMpki ||
                x.mispredictRate != y.mispredictRate)
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<SimConfig> configs{
        SimConfig::baseline(),
        SimConfig::nextLine(),
        SimConfig::nextLineStride(),
        SimConfig::runaheadExec(false),
        SimConfig::runaheadExec(true),
        SimConfig::espFull(false),
        SimConfig::espFull(true),
    };

    const auto report = benchutil::reportSetup(argc, argv,
                                               "sweep_scaling",
                                               "sweep_scaling");
    unsigned max_jobs = report.jobs;
    if (max_jobs == 0)
        max_jobs = JobPool::defaultJobs();

    // Progress banner, not a result: keep stdout reserved for tables.
    logLine(LogLevel::Info,
            "sweep: %zu apps x %zu configs = %zu points, up to %u "
            "jobs",
            AppProfile::webSuite().size(), configs.size(),
            AppProfile::webSuite().size() * configs.size(), max_jobs);

    SuiteRunner runner;
    runner.setJobs(1);
    std::vector<SuiteRow> serial_rows;
    const double serial_s = secondsFor(runner, configs, serial_rows);

    TextTable table("Parallel sweep scaling (Figure 9 config set)");
    table.header({"jobs", "seconds", "speedup", "identical"});
    table.row({"1", TextTable::num(serial_s, 2), "1.00", "yes"});

    std::vector<unsigned> job_counts;
    for (unsigned jobs = 2; jobs < max_jobs; jobs *= 2)
        job_counts.push_back(jobs);
    if (max_jobs >= 2)
        job_counts.push_back(max_jobs);

    bool all_identical = true;
    for (unsigned jobs : job_counts) {
        runner.setJobs(jobs);
        std::vector<SuiteRow> rows;
        const double s = secondsFor(runner, configs, rows);
        const bool same = identicalResults(serial_rows, rows);
        all_identical = all_identical && same;
        table.row({std::to_string(jobs), TextTable::num(s, 2),
                   TextTable::num(serial_s / s, 2),
                   same ? "yes" : "NO"});
    }
    std::fputs(table.render().c_str(), stdout);

    if (!all_identical) {
        logLine(LogLevel::Error,
                "FAIL: parallel results differ from serial");
        return 1;
    }
    std::printf("\nall thread counts produced bit-identical results\n");
    benchutil::reportFinishTable(report, table);
    return 0;
}
