/**
 * @file
 * Regenerates the paper's Figure 13: working-set sizes of events
 * pre-executed in each ESP mode, versus the working set of full events
 * in normal execution.
 *
 * The run instruments an 8-deep jump-ahead ESP with unbounded
 * cachelets/lists; for each depth it samples the number of distinct
 * I-cache blocks touched while an event sat in that mode. Paper shape:
 * pre-executed working sets are an order of magnitude smaller than
 * full events; provisioning for ~95% of reuse needs only ~5.5 KB at
 * ESP-1 and ~0.5 KB at ESP-2; and depths beyond 2 see almost no
 * activity.
 */

#include <cstdio>
#include <string>
#include <unordered_set>

#include "bench_util.hh"
#include "common/histogram.hh"
#include "common/table.hh"
#include "sim/simulator.hh"
#include "workload/app_profile.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

constexpr unsigned studyDepth = 8;

} // namespace

int
main(int argc, char **argv)
{
    const auto report = benchutil::reportSetup(argc, argv,
                                               "fig13_cachelet_size",
                                               "fig13");
    const SimConfig config = SimConfig::espWorkingSetStudy(studyDepth);

    // Aggregate samples across the whole suite, like the paper.
    SampleStat normal;
    std::vector<SampleStat> per_depth(studyDepth);

    for (const AppProfile &profile : AppProfile::webSuite()) {
        SyntheticGenerator gen(profile);
        const auto workload = gen.generate();

        // Normal-mode working set: distinct I-blocks per full event.
        for (std::size_t i = 0; i < workload->numEvents(); ++i) {
            std::unordered_set<Addr> set;
            for (const MicroOp &op : workload->event(i).ops)
                set.insert(blockAlign(op.pc));
            normal.record(static_cast<double>(set.size()));
        }

        const SimResult res = Simulator(config).run(*workload);
        for (unsigned d = 0;
             d < studyDepth && d < res.instrWorkingSets.size(); ++d) {
            const SampleStat &s = res.instrWorkingSets[d];
            // Merge per-app distributions by carrying their summary
            // quantiles into the suite-level accumulator.
            if (!s.empty()) {
                per_depth[d].record(s.max());
                per_depth[d].record(s.percentile(95));
                per_depth[d].record(s.percentile(85));
                per_depth[d].record(s.percentile(75));
            }
        }
    }

    TextTable table(
        "Figure 13: I-cachelet working set (64 B blocks touched while "
        "in each mode)");
    table.header(
        {"mode", "samples", "max", "p95", "p85", "p75", "p95 as KB"});

    auto emit = [&table](const std::string &label, const SampleStat &s) {
        table.row({label, TextTable::num(static_cast<double>(s.count()), 0),
                   TextTable::num(s.max(), 0),
                   TextTable::num(s.percentile(95), 0),
                   TextTable::num(s.percentile(85), 0),
                   TextTable::num(s.percentile(75), 0),
                   TextTable::num(s.percentile(95) * blockBytes / 1024.0,
                                  2)});
    };

    emit("Normal", normal);
    for (unsigned d = 0; d < studyDepth; ++d)
        emit("ESP" + std::to_string(d + 1), per_depth[d]);

    std::fputs(table.render().c_str(), stdout);
    std::puts("\npaper conclusion check: ESP-1 p95 ~ 5.5 KB, ESP-2 p95 "
              "~ 0.5 KB, negligible activity beyond ESP-2.");
    benchutil::reportFinishTable(report, table);
    return 0;
}
