# Flight-recorder overhead gate: the always-on span tracer must stay
# cheap. Run the same serve workload with the recorder off and on
# (best wall time of 3 runs each, read from the "# serve wall" line
# the CLI prints to stderr) and fail if the recorder-on time exceeds
# the recorder-off time by more than 10% plus a fixed 40 ms allowance
# for small-number timing noise. Invoked as:
#   cmake -DESPSIM_CLI=<path> -DWORK_DIR=<dir> -P this-file

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_serve tag extra_args out_var)
    set(best_ms 0)
    foreach(attempt RANGE 1 3)
        execute_process(
            COMMAND ${ESPSIM_CLI} serve --profile memcached
                --configs base --events 120000 ${extra_args}
            RESULT_VARIABLE rc
            ERROR_VARIABLE err
            OUTPUT_QUIET
            WORKING_DIRECTORY ${WORK_DIR})
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "espsim serve (${tag}) failed (${rc}): ${err}")
        endif()
        string(REGEX MATCH "# serve wall ([0-9]+) ms" _ "${err}")
        if(CMAKE_MATCH_1 STREQUAL "")
            message(FATAL_ERROR
                "no wall-time line in serve stderr (${tag})")
        endif()
        if(best_ms EQUAL 0 OR CMAKE_MATCH_1 LESS best_ms)
            set(best_ms ${CMAKE_MATCH_1})
        endif()
    endforeach()
    set(${out_var} ${best_ms} PARENT_SCOPE)
endfunction()

run_serve(recorder-off "" off_ms)
run_serve(recorder-on "--trace-spans;overhead_spans.json" on_ms)

message(STATUS
    "serve wall: recorder off ${off_ms} ms, recorder on ${on_ms} ms")

# on <= off * 1.10 + 40 ms, in integer milliseconds.
math(EXPR bound "${off_ms} + ${off_ms} / 10 + 40")
if(on_ms GREATER bound)
    message(FATAL_ERROR
        "span tracing is not cheap: recorder-on wall ${on_ms} ms "
        "exceeds recorder-off bound ${bound} ms")
endif()
