# Self-test of the bench regression gate (tools/compare_bench.py):
#   - an artifact compared against itself must pass (exit 0),
#   - a copy with every throughput metric halved must be rejected
#     (exit 1) — proving the gate actually bites.
# Invoked as:
#   cmake -DPYTHON=<python3> -DCOMPARE=<compare_bench.py>
#       -DBENCH=<bench.json> -DWORK_DIR=<dir> -P this-file

execute_process(
    COMMAND ${PYTHON} ${COMPARE} ${BENCH} ${BENCH} --min-wall-ms 0
    RESULT_VARIABLE self_rc
    OUTPUT_QUIET ERROR_QUIET)
if(NOT self_rc EQUAL 0)
    message(FATAL_ERROR
        "self-compare must exit 0, got '${self_rc}'")
endif()

set(PERTURBED ${WORK_DIR}/bench_perturbed.json)
execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
doc = json.load(open(sys.argv[1]))
for cell in doc['cells']:
    cell['wall_ms'] *= 2.0
    cell['cycles_per_sec'] /= 2.0
    cell['events_per_sec'] /= 2.0
doc['suite_wall_ms'] *= 2.0
json.dump(doc, open(sys.argv[2], 'w'))
" ${BENCH} ${PERTURBED}
    RESULT_VARIABLE perturb_rc)
if(NOT perturb_rc EQUAL 0)
    message(FATAL_ERROR "perturbing the artifact failed")
endif()

execute_process(
    COMMAND ${PYTHON} ${COMPARE} ${BENCH} ${PERTURBED} --min-wall-ms 0
    RESULT_VARIABLE slow_rc
    OUTPUT_QUIET ERROR_QUIET)
if(NOT slow_rc EQUAL 1)
    message(FATAL_ERROR
        "a 2x slowdown must exit 1, got '${slow_rc}'")
endif()
