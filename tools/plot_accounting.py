#!/usr/bin/env python3
"""Render the cycle-accounting breakdown from a suite artifact.

Reads an `espsim-suite-artifact` JSON file (espsim suite --json) and
prints, for each app and config, the core's top-down cycle breakdown:
what fraction of total cycles went to retiring work, frontend bubbles,
I-cache misses, D-cache misses, LSQ pressure, mispredict redirects,
end-of-event drain, looper overhead, and the two speculation engines
(ESP pre-execution, runahead). This is the textual equivalent of the
paper's stacked per-app breakdown figures (Figs. 4-5): the bars that
show *where* the event-loop time goes and which component a technique
actually shrank.

Standard library only, so it runs anywhere the repo builds.

Usage:
    plot_accounting.py SUITE.json [--config NAME] [--app NAME]

Exit code 0 on success, 1 on a malformed artifact or when the stats
carry no `core.cycle_bucket.*` entries (artifact predates cycle
accounting).
"""

import argparse
import json
import sys

BUCKET_PREFIX = "core.cycle_bucket."

# Print order: useful work first, then stall causes, then overheads
# and speculation engines (mirrors the attributor's enum order).
BUCKET_ORDER = [
    "retiring",
    "frontend_bubble",
    "icache_miss",
    "dcache_miss",
    "lsq_full",
    "mispredict_redirect",
    "drain",
    "looper_overhead",
    "esp_pre_exec",
    "runahead",
]

BAR_WIDTH = 40


def load_results(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "espsim-suite-artifact":
        raise ValueError(f"{path}: not an espsim-suite-artifact")
    results = doc.get("results")
    if not isinstance(results, list):
        raise ValueError(f"{path}: missing results array")
    return results


def buckets_of(stats):
    out = {}
    for name, value in stats.items():
        if name.startswith(BUCKET_PREFIX) and isinstance(
                value, (int, float)):
            out[name[len(BUCKET_PREFIX):]] = float(value)
    return out


def ordered(buckets):
    """Known buckets in canonical order, then unknowns alphabetically."""
    names = [b for b in BUCKET_ORDER if b in buckets]
    names += sorted(b for b in buckets if b not in BUCKET_ORDER)
    return names


def render_point(app, config, stats):
    buckets = buckets_of(stats)
    if not buckets:
        return False
    total = stats.get("core.cycles", 0.0) or sum(buckets.values())
    print(f"{app} / {config}: {int(total)} cycles")
    for name in ordered(buckets):
        cycles = buckets[name]
        frac = cycles / total if total else 0.0
        bar = "#" * round(frac * BAR_WIDTH)
        print(f"  {name:<20} {cycles:>12.0f}  {100 * frac:6.2f}%  {bar}")
    residue = total - sum(buckets.values())
    if abs(residue) > 0.5:
        # The simulator asserts this never happens; seeing it here
        # means the artifact was edited or mixed across versions.
        print(f"  (unaccounted residue: {residue:+.0f} cycles)")
    print()
    return True


def main(argv):
    parser = argparse.ArgumentParser(
        description="cycle-accounting breakdown from a suite artifact")
    parser.add_argument("artifact")
    parser.add_argument("--config", help="only this config column")
    parser.add_argument("--app", help="only this app row")
    args = parser.parse_args(argv)

    try:
        results = load_results(args.artifact)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    plotted = 0
    for entry in results:
        app = entry.get("app", "?")
        config = entry.get("config", "?")
        if args.config and config != args.config:
            continue
        if args.app and app != args.app:
            continue
        if render_point(app, config, entry.get("stats", {})):
            plotted += 1

    if plotted == 0:
        print("error: no core.cycle_bucket.* stats found "
              "(artifact predates cycle accounting, or filters "
              "matched nothing)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
