# Produce the artifacts the artifact_validate ctest checks: a reduced
# suite sweep (one app, two configs) and a per-event timeline, both via
# the espsim CLI. Invoked as:
#   cmake -DESPSIM_CLI=<path> -DARTIFACT_DIR=<dir> -P this-file

file(MAKE_DIRECTORY ${ARTIFACT_DIR})

execute_process(
    COMMAND ${ESPSIM_CLI} suite --apps amazon --configs base,NL
        --jobs 2 --json ${ARTIFACT_DIR}/suite.json
    RESULT_VARIABLE suite_rc)
if(NOT suite_rc EQUAL 0)
    message(FATAL_ERROR "espsim suite failed (${suite_rc})")
endif()

execute_process(
    COMMAND ${ESPSIM_CLI} run --app amazon --config ESP+NL
        --timeline ${ARTIFACT_DIR}/timeline.trace.json
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "espsim run --timeline failed (${run_rc})")
endif()
