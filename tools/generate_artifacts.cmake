# Produce the artifacts the artifact_validate / diff ctests check: a
# reduced suite sweep (one app, two configs), a per-event timeline,
# the same sweep at --jobs 1 and --jobs 8 (the determinism gate diffs
# them), and the golden-gate candidate sweep, all via the espsim CLI.
# Invoked as:
#   cmake -DESPSIM_CLI=<path> -DARTIFACT_DIR=<dir> -P this-file

file(MAKE_DIRECTORY ${ARTIFACT_DIR})

execute_process(
    COMMAND ${ESPSIM_CLI} suite --apps amazon --configs base,NL
        --jobs 2 --json ${ARTIFACT_DIR}/suite.json
    RESULT_VARIABLE suite_rc)
if(NOT suite_rc EQUAL 0)
    message(FATAL_ERROR "espsim suite failed (${suite_rc})")
endif()

# The thread-pool sweep promises artifacts byte-identical at any
# --jobs count; espsim diff (exact tolerance) enforces it.
execute_process(
    COMMAND ${ESPSIM_CLI} suite --apps amazon,bing --configs base,ESP+NL
        --jobs 1 --json ${ARTIFACT_DIR}/suite_jobs1.json
    RESULT_VARIABLE jobs1_rc)
if(NOT jobs1_rc EQUAL 0)
    message(FATAL_ERROR "espsim suite --jobs 1 failed (${jobs1_rc})")
endif()

execute_process(
    COMMAND ${ESPSIM_CLI} suite --apps amazon,bing --configs base,ESP+NL
        --jobs 8 --json ${ARTIFACT_DIR}/suite_jobs8.json
    RESULT_VARIABLE jobs8_rc)
if(NOT jobs8_rc EQUAL 0)
    message(FATAL_ERROR "espsim suite --jobs 8 failed (${jobs8_rc})")
endif()

execute_process(
    COMMAND ${ESPSIM_CLI} run --app amazon --config ESP+NL
        --timeline ${ARTIFACT_DIR}/timeline.trace.json
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "espsim run --timeline failed (${run_rc})")
endif()

# Time-resolved counter series; the validator checks the exact
# baseline + Σ deltas == final closure, not just the schema.
execute_process(
    COMMAND ${ESPSIM_CLI} run --app amazon --config ESP+NL
        --sample-cycles 50000 --sample-events 4
        --json ${ARTIFACT_DIR}/intervals.json
    RESULT_VARIABLE intervals_rc)
if(NOT intervals_rc EQUAL 0)
    message(FATAL_ERROR
        "espsim run --sample-cycles failed (${intervals_rc})")
endif()

# The same golden-gate matrix replayed through the streaming workload
# core; diff_streaming_golden holds it to the committed golden, so the
# bounded-window path can never drift from the materialised one.
execute_process(
    COMMAND ${ESPSIM_CLI} suite --streaming --apps amazon,bing
        --configs base,ESP+NL --jobs 2
        --json ${ARTIFACT_DIR}/suite_streaming.json
    RESULT_VARIABLE streaming_rc)
if(NOT streaming_rc EQUAL 0)
    message(FATAL_ERROR "espsim suite --streaming failed (${streaming_rc})")
endif()
