# Degraded-sweep contract check: inject a fault into one sweep cell
# via the env-gated injector and assert that `espsim suite`
#   - exits 1 (error cells must fail scripted sweeps),
#   - still renders the table with the failed cell marked,
#   - writes an artifact whose `errors` block names the cell.
# Invoked as:
#   cmake -DESPSIM_CLI=<path> -DOUT_JSON=<file> -P this-file

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "ESPSIM_FAULT_INJECT=amazon:NL"
        ${ESPSIM_CLI} suite --apps amazon,bing --configs base,NL
        --jobs 4 --json ${OUT_JSON}
    RESULT_VARIABLE suite_rc
    OUTPUT_VARIABLE suite_out)
if(NOT suite_rc EQUAL 1)
    message(FATAL_ERROR
        "degraded suite must exit 1, got '${suite_rc}'")
endif()
string(FIND "${suite_out}" "ERROR!" table_marker)
if(table_marker EQUAL -1)
    message(FATAL_ERROR "table does not mark the failed cell")
endif()

file(READ ${OUT_JSON} artifact)
string(FIND "${artifact}" "\"errors\"" errors_block)
if(errors_block EQUAL -1)
    message(FATAL_ERROR "artifact is missing its errors block")
endif()
string(FIND "${artifact}" "injected fault (ESPSIM_FAULT_INJECT)"
    errors_message)
if(errors_message EQUAL -1)
    message(FATAL_ERROR "errors block lost the cell's message")
endif()

# The same matrix with no injection must stay clean and exit 0.
execute_process(
    COMMAND ${ESPSIM_CLI} suite --apps amazon,bing --configs base,NL
        --jobs 4
    RESULT_VARIABLE clean_rc
    OUTPUT_QUIET ERROR_QUIET)
if(NOT clean_rc EQUAL 0)
    message(FATAL_ERROR "clean suite should exit 0, got '${clean_rc}'")
endif()
