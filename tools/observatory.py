#!/usr/bin/env python3
"""Cross-run observatory with git-ancestry ordering.

The in-tree ``espsim report`` orders comparable runs by file mtime
(dependency-free, works offline).  This sibling layers git on top:
each artifact's ``manifest.tool_version`` is a ``git describe`` of the
commit it was built from, so runs within a (schema, config_hash) group
can be ordered by *commit ancestry* — the trajectory then reads as
"how this metric moved across the repo's history", immune to file
copies and touched mtimes.

Usage:
    tools/observatory.py DIR [DIR ...] [--repo PATH]
        [--tolerance F] [--json OUT.json] [--md OUT.md]

Ingests every ``*.json`` directly inside the given directories
(typically a results directory plus ``bench/baselines``).  Artifacts
whose version is unknown to the repo (foreign clones, ``-dirty``
builds whose base commit is gone) fall back to mtime ordering after
all commit-ordered runs.

Exit codes: 0 clean, 1 when any trend regressed beyond tolerance,
2 when nothing could be ingested.  Stdlib-only, like every espsim
tool.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

KNOWN_SCHEMAS = (
    "espsim-suite-artifact",
    "espsim-latency-artifact",
    "espsim-bench-artifact",
)

# Direction convention shared with src/report/observatory.cc:
# throughput-flavoured metrics go up when things improve.
HIGHER_IS_BETTER_PREFIXES = ("ipc.", "mcps.")


def higher_is_better(metric):
    return metric.startswith(HIGHER_IS_BETTER_PREFIXES)


def git_commit_depth(repo, version):
    """Ancestry depth of the commit named by an artifact version.

    Returns the number of commits reachable from ``version`` (larger =
    newer along a linear history), or None when the name does not
    resolve in ``repo``.  A trailing ``-dirty`` marker is stripped:
    the run was built from that commit plus local edits, which is
    still the best ordering anchor available.
    """
    name = version.removesuffix("-dirty")
    if not name:
        return None
    try:
        out = subprocess.run(
            ["git", "-C", str(repo), "rev-list", "--count", name],
            capture_output=True, text=True, timeout=30, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    try:
        return int(out.stdout.strip())
    except ValueError:
        return None


def workload_fingerprint(doc):
    """The part of a run's identity config_hash does not cover
    (mirrors observatory.cc): app set for suites and bench sweeps,
    profile + event count + arrival kind for latency runs. Runs only
    trend within the same fingerprint — raw cycle counts across
    workload scales are not comparable."""
    schema = doc.get("schema")
    manifest = doc.get("manifest", {})
    if schema == "espsim-suite-artifact":
        return "apps=" + ",".join(manifest.get("apps", []))
    if schema == "espsim-latency-artifact":
        return (f"{manifest.get('profile', '')}"
                f":{manifest.get('events', 0):.0f} ev "
                f"{manifest.get('arrival', {}).get('kind', '')}")
    apps = sorted({cell.get("app") for cell in doc.get("cells", [])
                   if cell.get("app")})
    return f"apps={','.join(apps)} x{manifest.get('repeat', 1):.0f}"


def extract_metrics(doc):
    """Headline metrics per schema (mirrors observatory.cc)."""
    schema = doc.get("schema")
    metrics = {}
    if schema == "espsim-suite-artifact":
        sums, counts = {}, {}
        for row in doc.get("results", []):
            config = row.get("config")
            stats = row.get("stats", {})
            if not config or not isinstance(stats, dict):
                continue
            ipc, cyc = sums.setdefault(config, [0.0, 0.0])
            sums[config] = [ipc + stats.get("derived.ipc", 0.0),
                            cyc + stats.get("core.cycles", 0.0)]
            counts[config] = counts.get(config, 0) + 1
        for config, (ipc, cyc) in sorted(sums.items()):
            n = counts[config]
            metrics[f"ipc.{config}"] = ipc / n
            metrics[f"cycles.{config}"] = cyc / n
    elif schema == "espsim-latency-artifact":
        for cell in doc.get("results", []):
            config = cell.get("config")
            if not config:
                continue
            total = cell.get("latency", {}).get("total", {})
            metrics[f"p50.{config}"] = total.get("p50", 0.0)
            metrics[f"p99.{config}"] = total.get("p99", 0.0)
            metrics[f"cycles.{config}"] = cell.get("cycles", 0.0)
            metrics[f"ipc.{config}"] = cell.get("ipc", 0.0)
    elif schema == "espsim-bench-artifact":
        metrics["suite_wall_ms"] = doc.get("suite_wall_ms", 0.0)
        for cell in doc.get("cells", []):
            app, config = cell.get("app"), cell.get("config")
            if not app or not config:
                continue
            metrics[f"mcps.{app}.{config}"] = \
                cell.get("cycles_per_sec", 0.0) / 1e6
    return metrics


def ingest(dirs, repo):
    runs, skipped = [], []
    for d in dirs:
        path = Path(d)
        if not path.is_dir():
            skipped.append(f"{d} (not a directory)")
            continue
        for f in sorted(path.glob("*.json")):
            try:
                doc = json.loads(f.read_text())
            except (OSError, json.JSONDecodeError):
                skipped.append(f"{f} (unreadable)")
                continue
            schema = doc.get("schema") if isinstance(doc, dict) else None
            if schema not in KNOWN_SCHEMAS:
                skipped.append(f"{f} (schema {schema or 'none'})")
                continue
            manifest = doc.get("manifest", {})
            version = manifest.get("tool_version", "")
            health = manifest.get("health", {})
            runs.append({
                "path": str(f),
                "schema": schema,
                "config_hash": manifest.get("config_hash", ""),
                "workload": workload_fingerprint(doc),
                "tool_version": version,
                "build_type": manifest.get("build_type", ""),
                "degraded": health.get("status") == "degraded",
                "commit_depth": git_commit_depth(repo, version),
                "mtime": f.stat().st_mtime,
                "metrics": extract_metrics(doc),
            })
    return runs, skipped


def order_key(run):
    # Commit-ordered runs first (by ancestry depth), then runs whose
    # version the repo cannot resolve (by mtime), path as tiebreak.
    depth = run["commit_depth"]
    return (0, depth, run["path"]) if depth is not None \
        else (1, run["mtime"], run["path"])


def build_report(runs, tolerance):
    groups, regressions = [], 0
    keys = sorted({(r["schema"], r["config_hash"], r["workload"])
                   for r in runs})
    for schema, config_hash, workload in keys:
        members = sorted(
            (r for r in runs
             if (r["schema"], r["config_hash"], r["workload"])
             == (schema, config_hash, workload)),
            key=order_key)
        trends = []
        if len(members) >= 2:
            first, last = members[0], members[-1]
            for metric, first_value in first["metrics"].items():
                if metric not in last["metrics"]:
                    continue
                last_value = last["metrics"][metric]
                rel = (0.0 if first_value == 0
                       else (last_value - first_value) / first_value)
                good_up = higher_is_better(metric)
                regressed = (-rel if good_up else rel) > tolerance
                regressions += regressed
                trends.append({
                    "metric": metric,
                    "first": first_value,
                    "last": last_value,
                    "rel_change": rel,
                    "higher_is_better": good_up,
                    "regressed": regressed,
                })
        groups.append({
            "schema": schema,
            "config_hash": config_hash,
            "workload": workload,
            "runs": [r["path"] for r in members],
            "trends": trends,
        })
    return groups, regressions


def render_markdown(runs, groups, skipped, tolerance, regressions):
    lines = ["# espsim observatory (git-ordered)", ""]
    lines.append(f"- runs ingested: {len(runs)}")
    lines.append(f"- comparable groups: {len(groups)}")
    lines.append(f"- tolerance: {tolerance * 100:g}%")
    lines.append(f"- regressions flagged: {regressions}")
    if skipped:
        lines.append(f"- skipped: {len(skipped)} file(s)")
    by_path = {r["path"]: r for r in runs}
    for group in groups:
        hash_label = group["config_hash"] or "<no-hash>"
        if group["workload"]:
            hash_label += f" ({group['workload']})"
        lines += ["", f"## {group['schema']} @ {hash_label}", ""]
        lines.append("| run | version | depth | build | degraded |")
        lines.append("|---|---|---|---|---|")
        for path in group["runs"]:
            r = by_path[path]
            depth = (str(r["commit_depth"])
                     if r["commit_depth"] is not None else "mtime")
            degraded = "**yes**" if r["degraded"] else "no"
            lines.append(
                f"| {Path(path).name} | {r['tool_version']} "
                f"| {depth} | {r['build_type']} | {degraded} |")
        if not group["trends"]:
            lines += ["", "(single run — no trend)"]
            continue
        lines += ["", "| metric | first | last | change | flag |",
                  "|---|---|---|---|---|"]
        for t in group["trends"]:
            flag = ("REGRESSED" if t["regressed"]
                    else ("↑ good" if t["higher_is_better"]
                          else "↓ good"))
            lines.append(
                f"| {t['metric']} | {t['first']:g} | {t['last']:g} "
                f"| {t['rel_change'] * 100:+.1f}% | {flag} |")
    return "\n".join(lines) + "\n"


def main(argv):
    parser = argparse.ArgumentParser(
        description="cross-run espsim observatory, git-ordered")
    parser.add_argument("dirs", nargs="+",
                        help="directories of espsim artifacts")
    parser.add_argument("--repo", default=".",
                        help="git repository for ancestry ordering")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative regression tolerance")
    parser.add_argument("--json", help="write the JSON report here")
    parser.add_argument("--md", help="write the markdown report here")
    args = parser.parse_args(argv)

    runs, skipped = ingest(args.dirs, args.repo)
    if not runs:
        print("observatory: no espsim artifacts found",
              file=sys.stderr)
        for reason in skipped:
            print(f"  skipped {reason}", file=sys.stderr)
        return 2
    groups, regressions = build_report(runs, args.tolerance)
    markdown = render_markdown(runs, groups, skipped, args.tolerance,
                               regressions)
    if args.md:
        Path(args.md).write_text(markdown)
    else:
        sys.stdout.write(markdown)
    if args.json:
        report = {
            "schema": "espsim-observatory-report",
            "format_version": 1,
            "manifest": {
                "source": "tools/observatory.py",
                "tolerance": args.tolerance,
            },
            "runs": [{k: v for k, v in r.items() if k != "mtime"}
                     for r in runs],
            "groups": groups,
            "skipped": skipped,
            "regressions": regressions,
        }
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=False) + "\n")
    if regressions:
        print(f"observatory: {regressions} trend(s) regressed beyond "
              f"{args.tolerance * 100:g}% tolerance", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
