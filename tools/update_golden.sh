#!/bin/sh
# Regenerate the committed golden suite artifact the diff_golden ctest
# gates on. Run after an *intentional* model change, review the
# `espsim diff` output against the old golden, and commit the result:
#
#   tools/update_golden.sh [build-dir]
#
# The sweep matrix here must stay in sync with the suite_jobs1.json
# command in tools/generate_artifacts.cmake — the gate diffs the two.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-${repo_root}/build}
espsim=${build_dir}/tools/espsim
golden=${repo_root}/tests/golden/suite_small.json

if [ ! -x "${espsim}" ]; then
    echo "error: ${espsim} not built (cmake --build ${build_dir})" >&2
    exit 1
fi

tmp=$(mktemp)
trap 'rm -f "${tmp}"' EXIT
"${espsim}" suite --apps amazon,bing --configs base,ESP+NL \
    --jobs 1 --json "${tmp}"

if [ -f "${golden}" ]; then
    echo "# drift against the old golden:"
    "${espsim}" diff "${golden}" "${tmp}" || true
fi

mkdir -p "$(dirname "${golden}")"
cp "${tmp}" "${golden}"
echo "# wrote ${golden}"
