#!/usr/bin/env python3
"""Validate an espsim observability artifact.

Checks the schema of the JSON artifacts the simulator's binaries
write — suite artifacts (espsim suite / figure binaries --json), table
artifacts (descriptive figures --json), Chrome-trace timelines
(espsim run --timeline), interval series (espsim run --sample-cycles
--json), and bench artifacts (espsim bench). Standard library only,
so it runs anywhere the repo builds.

Interval series are checked semantically, not just structurally: for
every counter, baseline + sum(interval deltas) must equal the final
snapshot exactly (the deltas telescope; see src/report/interval.hh).

Files ending in ``.jsonl`` are treated as telemetry streams
(``espsim run/serve --telemetry``): one header line per run block
followed by absolute counter snapshots.  The semantic checks mirror
the stream's contract (src/report/telemetry.hh): contiguous 1-based
seq, monotone cycle/events/counter values within a block, and exactly
one ``"final": true`` line closing each block.

Usage:
    validate_artifact.py ARTIFACT.json [ARTIFACT2.jsonl ...]

Exit code 0 when every file validates, 1 otherwise; problems are
printed one per line as `file: message`.
"""

import json
import sys

SUITE_SCHEMA = "espsim-suite-artifact"
TABLE_SCHEMA = "espsim-table-artifact"
INTERVAL_SCHEMA = "espsim-interval-series"
BENCH_SCHEMA = "espsim-bench-artifact"
LATENCY_SCHEMA = "espsim-latency-artifact"
SPAN_SCHEMA = "espsim-span-artifact"
TELEMETRY_SCHEMA = "espsim-telemetry-stream"
OBSERVATORY_SCHEMA = "espsim-observatory-report"
SUPPORTED_FORMAT_VERSIONS = {1}


def _fail(problems, message):
    problems.append(message)
    return problems


def _check_manifest(doc, problems, *, want_hash):
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        return _fail(problems, "missing manifest object")
    for key in ("source", "tool_version", "build_type"):
        if not isinstance(manifest.get(key), str) or not manifest[key]:
            _fail(problems, f"manifest.{key} missing or empty")
    if want_hash:
        config_hash = manifest.get("config_hash")
        if (not isinstance(config_hash, str) or len(config_hash) != 16
                or any(c not in "0123456789abcdef"
                       for c in config_hash)):
            _fail(problems, "manifest.config_hash is not a 16-digit "
                            "lowercase hex string")
    # The health block is opt-in: serve artifacts carry it only when
    # the run degraded (watchdog fired), so healthy runs stay
    # byte-identical with telemetry off. Validate it when present.
    health = manifest.get("health")
    if health is not None:
        if not isinstance(health, dict):
            _fail(problems, "manifest.health is not an object")
        else:
            if health.get("status") != "degraded":
                _fail(problems,
                      "manifest.health.status != 'degraded' (healthy "
                      "runs omit the block entirely)")
            reason = health.get("reason")
            if not isinstance(reason, str) or not reason:
                _fail(problems,
                      "manifest.health.reason missing or empty")
            fires = health.get("watchdog_fires")
            if not isinstance(fires, int) or fires < 0:
                _fail(problems, "manifest.health.watchdog_fires is "
                                "not a non-negative integer")
    return problems


def validate_suite(doc, problems):
    _check_manifest(doc, problems, want_hash=True)
    manifest = doc.get("manifest", {})
    apps = manifest.get("apps")
    configs = manifest.get("configs")
    if not isinstance(apps, list) or not apps:
        _fail(problems, "manifest.apps missing or empty")
    if not isinstance(configs, list) or not configs:
        _fail(problems, "manifest.configs missing or empty")
    results = doc.get("results")
    if not isinstance(results, list):
        return _fail(problems, "results missing")
    errors = doc.get("errors", [])
    if not isinstance(errors, list):
        _fail(problems, "errors is not a list")
        errors = []
    if not results and not errors:
        return _fail(problems, "results missing or empty")
    if (isinstance(apps, list) and isinstance(configs, list)
            and manifest.get("points") != len(apps) * len(configs)):
        _fail(problems, "manifest.points != apps x configs")
    # Failed cells land in the errors block instead of results; the
    # two together must still cover the whole (app, config) matrix.
    if (isinstance(apps, list) and isinstance(configs, list)
            and len(results) + len(errors) != len(apps) * len(configs)):
        _fail(problems, "results + errors length != apps x configs")
    for i, entry in enumerate(errors):
        where = f"errors[{i}]"
        if not isinstance(entry, dict):
            _fail(problems, f"{where} is not an object")
            continue
        if isinstance(apps, list) and entry.get("app") not in apps:
            _fail(problems, f"{where}.app not listed in manifest.apps")
        if (isinstance(configs, list)
                and entry.get("config") not in configs):
            _fail(problems,
                  f"{where}.config not listed in manifest.configs")
        message = entry.get("message")
        if not isinstance(message, str) or not message:
            _fail(problems, f"{where}.message missing or empty")
        config_hash = entry.get("config_hash")
        if (not isinstance(config_hash, str) or len(config_hash) != 16
                or any(c not in "0123456789abcdef"
                       for c in config_hash)):
            _fail(problems, f"{where}.config_hash is not a 16-digit "
                            "lowercase hex string")
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            _fail(problems, f"{where} is not an object")
            continue
        if isinstance(apps, list) and entry.get("app") not in apps:
            _fail(problems, f"{where}.app not listed in manifest.apps")
        if (isinstance(configs, list)
                and entry.get("config") not in configs):
            _fail(problems,
                  f"{where}.config not listed in manifest.configs")
        stats = entry.get("stats")
        if not isinstance(stats, dict) or not stats:
            _fail(problems, f"{where}.stats missing or empty")
            continue
        for name, value in stats.items():
            # Non-finite values serialize as null by policy.
            if value is not None and not isinstance(value, (int, float)):
                _fail(problems, f"{where}.stats[{name!r}] is not a "
                                "number or null")
        for required in ("core.cycles", "derived.ipc"):
            if required not in stats:
                _fail(problems, f"{where}.stats lacks {required!r}")
    return problems


def validate_table(doc, problems):
    _check_manifest(doc, problems, want_hash=False)
    if not isinstance(doc.get("title"), str) or not doc["title"]:
        _fail(problems, "title missing or empty")
    header = doc.get("header")
    if not isinstance(header, list) or not header:
        return _fail(problems, "header missing or empty")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        return _fail(problems, "rows missing")
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(header):
            _fail(problems, f"rows[{i}] width != header width")
    return problems


def _check_snapshot(doc, key, n_names, problems):
    """Validate a {cycle, events, values} snapshot block."""
    snap = doc.get(key)
    if not isinstance(snap, dict):
        _fail(problems, f"{key} missing or not an object")
        return None
    for field in ("cycle", "events"):
        value = snap.get(field)
        if not isinstance(value, int) or value < 0:
            _fail(problems,
                  f"{key}.{field} is not a non-negative integer")
    values = snap.get("values")
    if not isinstance(values, list) or len(values) != n_names:
        _fail(problems, f"{key}.values length != names length")
        return None
    if not all(isinstance(v, (int, float)) for v in values):
        _fail(problems, f"{key}.values not all numeric")
        return None
    return snap


def validate_interval_series(doc, problems):
    _check_manifest(doc, problems, want_hash=True)
    manifest = doc.get("manifest", {})
    for key in ("config", "workload"):
        if (not isinstance(manifest.get(key), str)
                or not manifest[key]):
            _fail(problems, f"manifest.{key} missing or empty")
    periods = []
    for key in ("sample_cycles", "sample_events"):
        value = manifest.get(key)
        if not isinstance(value, int) or value < 0:
            _fail(problems,
                  f"manifest.{key} is not a non-negative integer")
        else:
            periods.append(value)
    if periods and not any(periods):
        _fail(problems, "neither sampling period is enabled")

    names = doc.get("names")
    if not isinstance(names, list) or not names:
        return _fail(problems, "names missing or empty")
    if sorted(names) != names:
        _fail(problems, "names are not sorted")

    baseline = _check_snapshot(doc, "baseline", len(names), problems)
    final = _check_snapshot(doc, "final", len(names), problems)

    intervals = doc.get("intervals")
    if not isinstance(intervals, list):
        return _fail(problems, "intervals missing")
    prev_cycle = baseline["cycle"] if baseline else 0
    prev_events = baseline["events"] if baseline else 0
    acc = list(baseline["values"]) if baseline else None
    for i, interval in enumerate(intervals):
        where = f"intervals[{i}]"
        if not isinstance(interval, dict):
            _fail(problems, f"{where} is not an object")
            acc = None
            continue
        end_cycle = interval.get("end_cycle")
        end_events = interval.get("end_events")
        if not isinstance(end_cycle, int) or end_cycle < prev_cycle:
            _fail(problems, f"{where}.end_cycle is not monotone")
        else:
            prev_cycle = end_cycle
        if not isinstance(end_events, int) or end_events < prev_events:
            _fail(problems, f"{where}.end_events is not monotone")
        else:
            prev_events = end_events
        deltas = interval.get("deltas")
        if (not isinstance(deltas, list)
                or len(deltas) != len(names)
                or not all(isinstance(v, (int, float))
                           for v in deltas)):
            _fail(problems,
                  f"{where}.deltas not numeric or wrong length")
            acc = None
            continue
        if acc is not None:
            acc = [a + d for a, d in zip(acc, deltas)]
    # The telescoping invariant: deltas must sum to the final
    # snapshot *exactly* — counters are uint64-backed and < 2^53.
    if acc is not None and final is not None:
        for name, got, want in zip(names, acc, final["values"]):
            if got != want:
                _fail(problems,
                      f"delta closure violated for {name!r}: "
                      f"baseline+deltas={got}, final={want}")
    if final is not None and intervals and acc is not None:
        last = intervals[-1]
        if (isinstance(last, dict)
                and last.get("end_cycle") != final["cycle"]):
            _fail(problems,
                  "last interval end_cycle != final.cycle")
    return problems


def validate_bench(doc, problems):
    _check_manifest(doc, problems, want_hash=True)
    manifest = doc.get("manifest", {})
    for key in ("jobs", "repeat"):
        value = manifest.get(key)
        if not isinstance(value, int) or value < 1:
            _fail(problems,
                  f"manifest.{key} is not a positive integer")
    for key in ("suite_wall_ms", "peak_rss_mb"):
        value = doc.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            _fail(problems, f"{key} is not a non-negative number")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        return _fail(problems, "cells missing or empty")
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        if not isinstance(cell, dict):
            _fail(problems, f"{where} is not an object")
            continue
        for key in ("app", "config"):
            if not isinstance(cell.get(key), str) or not cell[key]:
                _fail(problems, f"{where}.{key} missing or empty")
        for key in ("sim_cycles", "sim_events", "instructions"):
            value = cell.get(key)
            if not isinstance(value, int) or value < 0:
                _fail(problems,
                      f"{where}.{key} is not a non-negative integer")
        for key in ("wall_ms", "cycles_per_sec", "events_per_sec"):
            value = cell.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                _fail(problems,
                      f"{where}.{key} is not a non-negative number")
    return problems


def _check_latency_summary(summary, where, problems):
    if not isinstance(summary, dict):
        _fail(problems, f"{where} is not an object")
        return None
    count = summary.get("count")
    if not isinstance(count, int) or count < 0:
        _fail(problems, f"{where}.count is not a non-negative integer")
    for key in ("mean", "max", "p50", "p95", "p99", "p999"):
        value = summary.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            _fail(problems,
                  f"{where}.{key} is not a non-negative number")
            return None
    # Quantiles of one sample set are necessarily monotone; a
    # violation means the reservoir or summariser is broken.
    chain = ("p50", "p95", "p99", "p999", "max")
    for lo, hi in zip(chain, chain[1:]):
        if summary[lo] > summary[hi]:
            _fail(problems, f"{where}.{lo} > {where}.{hi}")
    return summary


def validate_latency(doc, problems):
    """`espsim serve` tail-latency artifact."""
    _check_manifest(doc, problems, want_hash=True)
    manifest = doc.get("manifest", {})
    if not isinstance(manifest.get("profile"), str) \
            or not manifest.get("profile"):
        _fail(problems, "manifest.profile missing or empty")
    for key in ("events", "window", "reservoir_capacity"):
        value = manifest.get(key)
        if not isinstance(value, int) or value < 0:
            _fail(problems,
                  f"manifest.{key} is not a non-negative integer")
    configs = manifest.get("configs")
    if not isinstance(configs, list) or not configs:
        _fail(problems, "manifest.configs missing or empty")
    arrival = manifest.get("arrival")
    if not isinstance(arrival, dict):
        _fail(problems, "manifest.arrival missing or not an object")
    elif arrival.get("kind") not in ("poisson", "bursty", "closed"):
        _fail(problems, "manifest.arrival.kind is not a known "
                        "discipline")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return _fail(problems, "results missing or empty")
    if isinstance(configs, list) and len(results) != len(configs):
        _fail(problems, "results length != manifest.configs length")
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            _fail(problems, f"{where} is not an object")
            continue
        if (isinstance(configs, list)
                and entry.get("config") not in configs):
            _fail(problems,
                  f"{where}.config not listed in manifest.configs")
        for key in ("cycles", "idle_cycles", "events"):
            value = entry.get(key)
            if not isinstance(value, int) or value < 0:
                _fail(problems,
                      f"{where}.{key} is not a non-negative integer")
        ipc = entry.get("ipc")
        if not isinstance(ipc, (int, float)) or ipc < 0:
            _fail(problems, f"{where}.ipc is not a non-negative number")
        latency = entry.get("latency")
        if not isinstance(latency, dict):
            _fail(problems, f"{where}.latency missing")
            continue
        total = None
        for klass in ("queue", "service", "total"):
            summary = _check_latency_summary(
                latency.get(klass), f"{where}.latency.{klass}",
                problems)
            if klass == "total":
                total = summary
        handlers = entry.get("handlers")
        if not isinstance(handlers, list):
            _fail(problems, f"{where}.handlers missing or not a list")
        else:
            handler_events = 0
            for j, row in enumerate(handlers):
                hw = f"{where}.handlers[{j}]"
                if not isinstance(row, dict):
                    _fail(problems, f"{hw} is not an object")
                    continue
                for key in ("handler", "events"):
                    value = row.get(key)
                    if not isinstance(value, int) or value < 0:
                        _fail(problems, f"{hw}.{key} is not a "
                                        "non-negative integer")
                if isinstance(row.get("events"), int):
                    handler_events += row["events"]
                for klass in ("queue", "service"):
                    _check_latency_summary(row.get(klass),
                                           f"{hw}.{klass}", problems)
            # Every served request belongs to exactly one handler.
            if (handlers and isinstance(entry.get("events"), int)
                    and handler_events != entry["events"]):
                _fail(problems, f"{where}.handlers events sum != "
                                f"{where}.events")
        histogram = entry.get("histogram")
        if not isinstance(histogram, dict):
            _fail(problems, f"{where}.histogram missing")
            continue
        if histogram.get("scale") != "pow2_cycles":
            _fail(problems, f"{where}.histogram.scale != 'pow2_cycles'")
        buckets = histogram.get("buckets")
        if (not isinstance(buckets, list)
                or not all(isinstance(b, int) and b >= 0
                           for b in buckets)):
            _fail(problems, f"{where}.histogram.buckets not a list of "
                            "non-negative integers")
        elif total is not None and isinstance(total.get("count"), int) \
                and sum(buckets) != total["count"]:
            _fail(problems, f"{where}.histogram buckets sum != "
                            "latency.total.count")
    return problems


CYCLE_BUCKETS = (
    "retiring", "frontend_bubble", "icache_miss", "dcache_miss",
    "lsq_full", "mispredict_redirect", "drain", "looper_overhead",
    "esp_pre_exec", "runahead", "idle",
)

PREFETCH_SOURCES = (
    "esp_ilist", "esp_dlist", "next_line_instr", "next_line_data",
    "stride_data", "other",
)


def _check_span(span, where, problems):
    """One RequestSpan record: field shape plus closure invariants."""
    if not isinstance(span, dict):
        _fail(problems, f"{where} is not an object")
        return None
    for key in ("event", "handler", "arrival", "dispatch", "retire",
                "queue_cycles", "service_cycles", "total_cycles",
                "span_cycles", "instructions"):
        value = span.get(key)
        if not isinstance(value, int) or value < 0:
            _fail(problems,
                  f"{where}.{key} is not a non-negative integer")
            return None
    if span["queue_cycles"] + span["service_cycles"] \
            != span["total_cycles"]:
        _fail(problems, f"{where}: queue + service != total")
    buckets = span.get("buckets")
    if (not isinstance(buckets, dict)
            or sorted(buckets) != sorted(CYCLE_BUCKETS)
            or not all(isinstance(v, int) and v >= 0
                       for v in buckets.values())):
        _fail(problems, f"{where}.buckets is not the full cycle-bucket "
                        "set of non-negative integers")
        return None
    # The span window closure invariant: the bucket deltas captured
    # over the span must tile it exactly (see src/report/spans.hh).
    if sum(buckets.values()) != span["span_cycles"]:
        _fail(problems, f"{where}: bucket sum != span_cycles")
    esp = span.get("esp")
    if not isinstance(esp, dict):
        _fail(problems, f"{where}.esp missing")
        return span
    pre_exec = esp.get("pre_exec_cycles")
    if not isinstance(pre_exec, int) or pre_exec < 0:
        _fail(problems,
              f"{where}.esp.pre_exec_cycles is not a non-negative "
              "integer")
    elif pre_exec != buckets["esp_pre_exec"]:
        _fail(problems,
              f"{where}.esp.pre_exec_cycles != buckets.esp_pre_exec")
    prefetch = esp.get("prefetch")
    if (not isinstance(prefetch, dict)
            or sorted(prefetch) != sorted(PREFETCH_SOURCES)):
        _fail(problems, f"{where}.esp.prefetch is not the full "
                        "prefetch-source set")
        return span
    for source, stats in prefetch.items():
        sw = f"{where}.esp.prefetch.{source}"
        if not isinstance(stats, dict):
            _fail(problems, f"{sw} is not an object")
            continue
        for key in ("issued", "timely", "late", "harmful"):
            value = stats.get(key)
            if not isinstance(value, int) or value < 0:
                _fail(problems,
                      f"{sw}.{key} is not a non-negative integer")
    return span


def validate_span(doc, problems):
    """`espsim serve --trace-spans` blame-decomposition artifact."""
    _check_manifest(doc, problems, want_hash=True)
    manifest = doc.get("manifest", {})
    if not isinstance(manifest.get("profile"), str) \
            or not manifest.get("profile"):
        _fail(problems, "manifest.profile missing or empty")
    for key in ("events", "flight_recorder", "worst_k",
                "anomaly_min_samples"):
        value = manifest.get(key)
        if not isinstance(value, int) or value < 0:
            _fail(problems,
                  f"manifest.{key} is not a non-negative integer")
    threshold = manifest.get("anomaly_threshold")
    if not isinstance(threshold, (int, float)) or threshold <= 0:
        _fail(problems,
              "manifest.anomaly_threshold is not a positive number")
    configs = manifest.get("configs")
    if not isinstance(configs, list) or not configs:
        _fail(problems, "manifest.configs missing or empty")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return _fail(problems, "results missing or empty")
    if isinstance(configs, list) and len(results) != len(configs):
        _fail(problems, "results length != manifest.configs length")
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            _fail(problems, f"{where} is not an object")
            continue
        if (isinstance(configs, list)
                and entry.get("config") not in configs):
            _fail(problems,
                  f"{where}.config not listed in manifest.configs")
        for key in ("cycles", "events", "spans_recorded",
                    "anomaly_overflow"):
            value = entry.get(key)
            if not isinstance(value, int) or value < 0:
                _fail(problems,
                      f"{where}.{key} is not a non-negative integer")
        p99 = entry.get("running_p99")
        if not isinstance(p99, (int, float)) or p99 < 0:
            _fail(problems,
                  f"{where}.running_p99 is not a non-negative number")
        dump = entry.get("dump")
        if not isinstance(dump, dict) \
                or not isinstance(dump.get("triggered"), bool):
            _fail(problems, f"{where}.dump.triggered missing")
        elif dump["triggered"] and not isinstance(dump.get("event"),
                                                  int):
            _fail(problems,
                  f"{where}.dump.event missing on a triggered dump")
        worst = entry.get("worst")
        if not isinstance(worst, list):
            _fail(problems, f"{where}.worst missing or not a list")
            worst = []
        prev_total = None
        for j, span in enumerate(worst):
            checked = _check_span(span, f"{where}.worst[{j}]", problems)
            if checked is None:
                continue
            total = checked["total_cycles"]
            if prev_total is not None and total > prev_total:
                _fail(problems,
                      f"{where}.worst not sorted by total_cycles "
                      "descending")
            prev_total = total
        anomalies = entry.get("anomalies")
        if not isinstance(anomalies, list):
            _fail(problems, f"{where}.anomalies missing or not a list")
            anomalies = []
        for j, record in enumerate(anomalies):
            aw = f"{where}.anomalies[{j}]"
            if not isinstance(record, dict):
                _fail(problems, f"{aw} is not an object")
                continue
            ref = record.get("running_p99")
            if not isinstance(ref, (int, float)) or ref < 0:
                _fail(problems,
                      f"{aw}.running_p99 is not a non-negative number")
            span = _check_span(record.get("span"), f"{aw}.span",
                               problems)
            # The detector's defining inequality, replayed offline.
            if (span is not None and isinstance(threshold, (int, float))
                    and isinstance(ref, (int, float))
                    and span["total_cycles"] <= threshold * ref):
                _fail(problems,
                      f"{aw}: span total does not exceed threshold x "
                      "running_p99")
    return problems


def _check_telemetry_header(doc, where, problems):
    """One telemetry block header line; returns names or None."""
    if doc.get("schema") != TELEMETRY_SCHEMA:
        _fail(problems, f"{where}: expected a block header with "
                        f"schema {TELEMETRY_SCHEMA!r}")
        return None
    if doc.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        _fail(problems, f"{where}: unsupported format_version")
    for key in ("config", "workload"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            _fail(problems, f"{where}: {key} missing or empty")
    config_hash = doc.get("config_hash")
    if (not isinstance(config_hash, str) or len(config_hash) != 16
            or any(c not in "0123456789abcdef" for c in config_hash)):
        _fail(problems, f"{where}: config_hash is not a 16-digit "
                        "lowercase hex string")
    for key in ("period_cycles", "wall_ms"):
        value = doc.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            _fail(problems,
                  f"{where}: {key} is not a non-negative number")
    names = doc.get("names")
    if not isinstance(names, list) or not names \
            or not all(isinstance(n, str) and n for n in names):
        _fail(problems, f"{where}: names missing or not a list of "
                        "non-empty strings")
        return None
    if sorted(names) != names:
        _fail(problems, f"{where}: names are not sorted")
    return names


def validate_telemetry_stream(path):
    """A .jsonl telemetry stream: header + snapshot lines per block.

    Semantic contract (src/report/telemetry.hh): within a block, seq
    is contiguous from 1, cycle/events never decrease, every counter
    value is monotone non-decreasing (they are absolute readouts of
    monotone counters), and the block closes with exactly one
    `"final": true` line. A stream may carry several blocks (a serve
    sweep writes one per config).
    """
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        return [str(exc)]
    if not lines:
        return _fail(problems, "empty telemetry stream")

    names = None          # current block's frozen name set
    prev = None           # previous snapshot line of the block
    block_closed = True   # no block open yet
    block = 0
    for i, raw in enumerate(lines):
        where = f"line {i + 1}"
        if not raw.strip():
            _fail(problems, f"{where}: blank line")
            continue
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            _fail(problems, f"{where}: {exc}")
            continue
        if not isinstance(doc, dict):
            _fail(problems, f"{where}: not an object")
            continue
        if "schema" in doc:
            # A new block header. The previous block (if any) must
            # have been closed by a final snapshot.
            if not block_closed:
                _fail(problems, f"{where}: block {block} not closed "
                                "by a final snapshot")
            block += 1
            names = _check_telemetry_header(doc, where, problems)
            prev = None
            block_closed = False
            continue
        if names is None:
            _fail(problems, f"{where}: snapshot before any valid "
                            "block header")
            continue
        if block_closed:
            _fail(problems, f"{where}: snapshot after the final "
                            f"snapshot of block {block}")
            continue
        seq = doc.get("seq")
        want_seq = 1 if prev is None else prev["seq"] + 1
        if not isinstance(seq, int) or seq != want_seq:
            _fail(problems,
                  f"{where}: seq is {seq!r}, expected {want_seq} "
                  "(contiguous, 1-based)")
        for key in ("cycle", "events"):
            value = doc.get(key)
            if not isinstance(value, int) or value < 0:
                _fail(problems,
                      f"{where}: {key} is not a non-negative integer")
            elif prev is not None and value < prev[key]:
                _fail(problems, f"{where}: {key} decreased "
                                f"({prev[key]} -> {value})")
        values = doc.get("values")
        if (not isinstance(values, list) or len(values) != len(names)
                or not all(isinstance(v, (int, float))
                           for v in values)):
            _fail(problems, f"{where}: values not numeric or length "
                            "!= header names length")
            values = None
        elif prev is not None and prev["values"] is not None:
            for name, before, now in zip(names, prev["values"],
                                         values):
                if now < before:
                    _fail(problems,
                          f"{where}: counter {name!r} decreased "
                          f"({before} -> {now})")
        final = doc.get("final", False)
        if final is True:
            block_closed = True
        elif final is not False:
            _fail(problems, f"{where}: final is not a boolean")
        if isinstance(seq, int) and isinstance(doc.get("cycle"), int) \
                and isinstance(doc.get("events"), int):
            prev = {"seq": seq, "cycle": doc["cycle"],
                    "events": doc["events"], "values": values}
    if block == 0:
        _fail(problems, "no block header found")
    elif not block_closed:
        _fail(problems, f"block {block} not closed by a final "
                        "snapshot")
    return problems


def validate_observatory(doc, problems):
    """`espsim report` / tools/observatory.py cross-run report."""
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        return _fail(problems, "missing manifest object")
    if not isinstance(manifest.get("source"), str) \
            or not manifest.get("source"):
        _fail(problems, "manifest.source missing or empty")
    tolerance = manifest.get("tolerance")
    if not isinstance(tolerance, (int, float)) or tolerance < 0:
        _fail(problems,
              "manifest.tolerance is not a non-negative number")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return _fail(problems, "runs missing or empty")
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            _fail(problems, f"{where} is not an object")
            continue
        for key in ("path", "schema"):
            if not isinstance(run.get(key), str) or not run[key]:
                _fail(problems, f"{where}.{key} missing or empty")
        if not isinstance(run.get("degraded"), bool):
            _fail(problems, f"{where}.degraded is not a boolean")
        metrics = run.get("metrics")
        if not isinstance(metrics, dict):
            _fail(problems, f"{where}.metrics missing")
        elif not all(isinstance(v, (int, float))
                     for v in metrics.values()):
            _fail(problems, f"{where}.metrics not all numeric")
    paths = {run.get("path") for run in runs
             if isinstance(run, dict)}
    groups = doc.get("groups")
    if not isinstance(groups, list):
        return _fail(problems, "groups missing")
    flagged = 0
    for i, group in enumerate(groups):
        where = f"groups[{i}]"
        if not isinstance(group, dict):
            _fail(problems, f"{where} is not an object")
            continue
        if not isinstance(group.get("schema"), str):
            _fail(problems, f"{where}.schema missing")
        member_paths = group.get("runs")
        if not isinstance(member_paths, list) or not member_paths:
            _fail(problems, f"{where}.runs missing or empty")
            member_paths = []
        for ref in member_paths:
            # espsim report references members by runs[] index;
            # tools/observatory.py by path. Both must resolve.
            if isinstance(ref, int):
                if not 0 <= ref < len(runs):
                    _fail(problems, f"{where}.runs index {ref} out "
                                    "of range")
            elif ref not in paths:
                _fail(problems,
                      f"{where}.runs references unknown run {ref!r}")
        trends = group.get("trends")
        if not isinstance(trends, list):
            _fail(problems, f"{where}.trends missing or not a list")
            trends = []
        if len(member_paths) < 2 and trends:
            _fail(problems,
                  f"{where}: trends present with fewer than 2 runs")
        for j, trend in enumerate(trends):
            tw = f"{where}.trends[{j}]"
            if not isinstance(trend, dict):
                _fail(problems, f"{tw} is not an object")
                continue
            if not isinstance(trend.get("metric"), str) \
                    or not trend.get("metric"):
                _fail(problems, f"{tw}.metric missing or empty")
            for key in ("first", "last", "rel_change"):
                if not isinstance(trend.get(key), (int, float)):
                    _fail(problems, f"{tw}.{key} is not a number")
            for key in ("higher_is_better", "regressed"):
                if not isinstance(trend.get(key), bool):
                    _fail(problems, f"{tw}.{key} is not a boolean")
            flagged += trend.get("regressed") is True
            # Replay the regression rule offline: the flag must
            # follow from rel_change, direction and tolerance.
            rel = trend.get("rel_change")
            if (isinstance(rel, (int, float))
                    and isinstance(tolerance, (int, float))
                    and isinstance(trend.get("higher_is_better"),
                                   bool)
                    and isinstance(trend.get("regressed"), bool)):
                bad = -rel if trend["higher_is_better"] else rel
                if trend["regressed"] != (bad > tolerance):
                    _fail(problems,
                          f"{tw}.regressed inconsistent with "
                          "rel_change and tolerance")
    regressions = doc.get("regressions")
    if not isinstance(regressions, int) or regressions < 0:
        _fail(problems,
              "regressions is not a non-negative integer")
    elif regressions != flagged:
        _fail(problems, f"regressions is {regressions} but "
                        f"{flagged} trend(s) are flagged")
    if not isinstance(doc.get("skipped"), list):
        _fail(problems, "skipped missing or not a list")
    return problems


def validate_timeline(doc, problems):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return _fail(problems, "traceEvents missing or empty")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("tool") != "espsim":
        _fail(problems, "otherData.tool != 'espsim'")
    elif (other.get("timeline_format_version")
          not in SUPPORTED_FORMAT_VERSIONS):
        _fail(problems, "unsupported otherData.timeline_format_version")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            _fail(problems, f"{where} is not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase == "C":
            # Counter sample (cycle-accounting track): numeric series
            # in args, no duration.
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                _fail(problems, f"{where} counter lacks args")
            elif not all(isinstance(v, (int, float))
                         for v in args.values()):
                _fail(problems, f"{where} counter args not numeric")
            for key in ("name", "ts", "pid", "tid"):
                if key not in event:
                    _fail(problems, f"{where} lacks {key!r}")
            continue
        if phase != "X":
            _fail(problems,
                  f"{where}.ph is {phase!r}, expected X, C or M")
            continue
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                _fail(problems, f"{where} lacks {key!r}")
        if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
            _fail(problems, f"{where}.ts is negative")
    return problems


def validate(path):
    if path.endswith(".jsonl"):
        return validate_telemetry_stream(path)
    problems = []
    try:
        with open(path, "rb") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    if not isinstance(doc, dict):
        return ["top-level value is not an object"]

    if "traceEvents" in doc:
        return validate_timeline(doc, problems)

    schema = doc.get("schema")
    handlers = {
        SUITE_SCHEMA: validate_suite,
        TABLE_SCHEMA: validate_table,
        INTERVAL_SCHEMA: validate_interval_series,
        BENCH_SCHEMA: validate_bench,
        LATENCY_SCHEMA: validate_latency,
        SPAN_SCHEMA: validate_span,
        OBSERVATORY_SCHEMA: validate_observatory,
    }
    if schema not in handlers:
        return _fail(problems, f"unknown schema {schema!r}")
    if doc.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        _fail(problems, "unsupported format_version")
    return handlers[schema](doc, problems)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    status = 0
    for path in argv[1:]:
        problems = validate(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
