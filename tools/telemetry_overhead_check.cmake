# Telemetry-overhead gate: the live telemetry plane must be invisible
# at serve throughput. Run the same serve workload with the full plane
# off and on — JSONL stream, default cycle pacing, metrics endpoint
# (unscraped) and a watchdog that never fires — taking the best wall
# time of 3 runs each from the "# serve wall" stderr line, and fail if
# the plane costs more than 10% plus a fixed 40 ms allowance for
# small-number timing noise. Mirrors serve_overhead_check.cmake.
# Invoked as:
#   cmake -DESPSIM_CLI=<path> -DWORK_DIR=<dir> -P this-file

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_serve tag extra_args out_var)
    set(best_ms 0)
    foreach(attempt RANGE 1 3)
        execute_process(
            COMMAND ${ESPSIM_CLI} serve --profile memcached
                --configs base --events 120000 ${extra_args}
            RESULT_VARIABLE rc
            ERROR_VARIABLE err
            OUTPUT_QUIET
            WORKING_DIRECTORY ${WORK_DIR})
        if(NOT rc EQUAL 0)
            message(FATAL_ERROR
                "espsim serve (${tag}) failed (${rc}): ${err}")
        endif()
        string(REGEX MATCH "# serve wall ([0-9]+) ms" _ "${err}")
        if(CMAKE_MATCH_1 STREQUAL "")
            message(FATAL_ERROR
                "no wall-time line in serve stderr (${tag})")
        endif()
        if(best_ms EQUAL 0 OR CMAKE_MATCH_1 LESS best_ms)
            set(best_ms ${CMAKE_MATCH_1})
        endif()
    endforeach()
    set(${out_var} ${best_ms} PARENT_SCOPE)
endfunction()

run_serve(telemetry-off "" off_ms)
run_serve(telemetry-on
    "--telemetry;overhead_telemetry.jsonl;--metrics-port;0;--watchdog-ms;60000"
    on_ms)

message(STATUS
    "serve wall: telemetry off ${off_ms} ms, telemetry on ${on_ms} ms")

# on <= off * 1.10 + 40 ms, in integer milliseconds.
math(EXPR bound "${off_ms} + ${off_ms} / 10 + 40")
if(on_ms GREATER bound)
    message(FATAL_ERROR
        "telemetry is not cheap: telemetry-on wall ${on_ms} ms "
        "exceeds telemetry-off bound ${bound} ms")
endif()
