/**
 * @file
 * `espsim` — the command-line driver an OSS release ships:
 *
 *   espsim run   --app amazon --config ESP+NL [--stats]
 *   espsim run   --trace file.espw --config NL+S
 *   espsim run   --app bing --timeline out.trace.json
 *                [--timeline-limit N]
 *   espsim run   --app bing --sample-cycles N [--sample-events K]
 *                [--json [path]]
 *   espsim suite --configs base,NL,ESP+NL [--jobs N] [--apps a,b]
 *                [--json [path]] [--csv [path]] [--profile]
 *                [--streaming]
 *   espsim serve --profile memcached --events 1000000
 *                [--configs base,ESP+NL] [--arrival poisson]
 *                [--json [path]] [--trace-spans [path]]
 *                [--flight-recorder N] [--anomaly-threshold K]
 *                [--flight-dump PREFIX] [--spike-event N]
 *   espsim bench [--out path] [--apps a,b] [--configs a,b]
 *                [--repeat N] [--events N]
 *   espsim gen   --app gmaps --out gmaps.espw [--events N]
 *   espsim diff  baseline.json candidate.json [--rel-tol F]
 *                [--abs-tol F] [--headline a,b] [--max-rows N]
 *                [--ignore-config-hash]
 *   espsim fuzz  [--runs N] [--seed S] [--verbose]
 *   espsim list  (apps and configs)
 *   espsim --version
 *
 * Every subcommand accepts --log-level error|warn|info|debug (also
 * the ESPSIM_LOG environment variable); run chatter is gated at info.
 *
 * Tables and results print to stdout; run chatter (manifest, artifact
 * notes) goes to stderr. Exit code 0 on success, 1 on usage errors,
 * 2 on malformed option values (all numeric options are parsed by one
 * checked helper that rejects trailing garbage).
 * `espsim diff` exits 0 when the artifacts agree within tolerance,
 * 1 on a headline regression or config mismatch, 2 on load failure.
 * `espsim suite` exits 1 when any sweep cell failed (its artifact
 * then carries an `errors` block; see docs/ROBUSTNESS.md).
 * `espsim fuzz` runs the src/check/ property harness and exits 1 on
 * the first oracle violation, printing a shrunken repro.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <chrono>

#include "check/fuzz.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "common/version.hh"
#include "report/artifact.hh"
#include "report/diff.hh"
#include "report/host_profile.hh"
#include "report/interval.hh"
#include "report/observatory.hh"
#include "report/telemetry.hh"
#include "report/timeline.hh"
#include "server/serve.hh"
#include "sim/stats_report.hh"
#include "trace/trace_io.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** All named design points the CLI can run. */
const std::map<std::string, std::function<SimConfig()>> &
configRegistry()
{
    static const std::map<std::string, std::function<SimConfig()>> reg{
        {"base", [] { return SimConfig::baseline(); }},
        {"NL", [] { return SimConfig::nextLine(); }},
        {"NL+S", [] { return SimConfig::nextLineStride(); }},
        {"Runahead", [] { return SimConfig::runaheadExec(false); }},
        {"Runahead+NL", [] { return SimConfig::runaheadExec(true); }},
        {"ESP", [] { return SimConfig::espFull(false); }},
        {"ESP+NL", [] { return SimConfig::espFull(true); }},
        {"NaiveESP+NL", [] { return SimConfig::espNaive(true); }},
        {"perfect", [] { return SimConfig::perfect(true, true, true); }},
    };
    return reg;
}

int
usage()
{
    std::puts(
        "usage:\n"
        "  espsim run   --app <name>|--trace <file> --config <name> "
        "[--stats] [--timeline <file>]\n"
        "               [--timeline-limit N] [--sample-cycles N] "
        "[--sample-events K] [--json [path]]\n"
        "               [--telemetry [path]] [--telemetry-period N] "
        "[--telemetry-wall-ms M]\n"
        "  espsim suite [--configs a,b,c] [--apps a,b] [--jobs N] "
        "[--json [path]] [--csv [path]] [--profile] [--streaming]\n"
        "  espsim serve [--profile memcached|http|testsrv] "
        "[--configs a,b] [--events N] [--window N]\n"
        "               [--reservoir N] "
        "[--arrival poisson|bursty|closed] [--gap CYCLES]\n"
        "               [--concurrency N] [--think CYCLES] [--seed S] "
        "[--json [path]]\n"
        "               [--trace-spans [path]] [--flight-recorder N] "
        "[--anomaly-threshold K]\n"
        "               [--worst N] [--anomaly-min N] "
        "[--flight-dump PREFIX]\n"
        "               [--spike-event N] [--spike-scale S]\n"
        "               [--telemetry [path]] [--telemetry-period N] "
        "[--telemetry-wall-ms M]\n"
        "               [--metrics-port P] [--watchdog-ms M] "
        "[--watchdog-dump PREFIX]\n"
        "  espsim bench [--out <path>] [--apps a,b] [--configs a,b] "
        "[--repeat N] [--events N]\n"
        "  espsim report [--dir DIR] [--bench DIR] [--tolerance F] "
        "[--json [path]] [--md [path]]\n"
        "  espsim gen   --app <name> --out <file> [--events N]\n"
        "  espsim diff  <baseline.json> <candidate.json> "
        "[--rel-tol F] [--abs-tol F]\n"
        "               [--headline a,b,c] [--max-rows N] "
        "[--ignore-config-hash]\n"
        "  espsim fuzz  [--runs N] [--seed S] [--verbose]\n"
        "  espsim list\n"
        "  espsim --version\n"
        "global: --log-level error|warn|info|debug (or ESPSIM_LOG)");
    return 1;
}

/**
 * Checked numeric option parsing: every numeric flag goes through one
 * of these instead of raw std::stoul / strtod, so `--events abc` (or
 * `--rel-tol 0.1x`) prints the usage text and exits 2 instead of
 * aborting on an uncaught std::invalid_argument or silently reading
 * a half-parsed value. Trailing garbage is rejected.
 */
unsigned long
parseUnsignedOption(const std::string &value, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE || value[0] == '-') {
        logLine(LogLevel::Error,
                "invalid value '%s' for --%s (expected a "
                "non-negative integer)",
                value.c_str(), flag);
        usage();
        std::exit(2);
    }
    return v;
}

double
parseDoubleOption(const std::string &value, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE) {
        logLine(LogLevel::Error,
                "invalid value '%s' for --%s (expected a number)",
                value.c_str(), flag);
        usage();
        std::exit(2);
    }
    return v;
}

/** Build/run manifest on stderr; artifacts stay free of such facts. */
void
printRunManifest()
{
    logLine(LogLevel::Info, "# espsim %s (%s build)", versionString(),
            buildTypeString());
}

/** Minimal flag parser: --key value pairs after the subcommand. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int from)
{
    std::map<std::string, std::string> flags;
    for (int i = from; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        const std::string key = arg.substr(2);
        if (i + 1 < argc && argv[i + 1][0] != '-')
            flags[key] = argv[++i];
        else
            flags[key] = "1";
    }
    return flags;
}

std::optional<SimConfig>
lookupConfig(const std::string &name)
{
    const auto &reg = configRegistry();
    auto it = reg.find(name);
    if (it == reg.end()) {
        logLine(LogLevel::Error,
                "unknown config '%s' (try: espsim list)", name.c_str());
        return std::nullopt;
    }
    return it->second();
}

int
cmdList()
{
    std::puts("applications:");
    for (const AppProfile &p : AppProfile::webSuite())
        std::printf("  %-9s %s\n", p.name.c_str(),
                    p.description.c_str());
    std::puts("configs:");
    for (const auto &[name, make] : configRegistry()) {
        (void)make;
        std::printf("  %s\n", name.c_str());
    }
    return 0;
}

int
cmdRun(const std::map<std::string, std::string> &flags)
{
    const auto cfg_it = flags.find("config");
    const std::string cfg_name =
        cfg_it == flags.end() ? "ESP+NL" : cfg_it->second;
    const auto config = lookupConfig(cfg_name);
    if (!config)
        return 1;

    std::unique_ptr<InMemoryWorkload> workload;
    if (auto it = flags.find("trace"); it != flags.end()) {
        workload = loadWorkload(it->second);
        if (!workload) {
            logLine(LogLevel::Error, "malformed trace file '%s'",
                    it->second.c_str());
            return 1;
        }
    } else {
        const auto app_it = flags.find("app");
        const std::string app =
            app_it == flags.end() ? "amazon" : app_it->second;
        workload = SyntheticGenerator(AppProfile::byName(app)).generate();
    }

    printRunManifest();
    EventTimeline timeline;
    const auto tl_it = flags.find("timeline");
    const bool want_timeline = tl_it != flags.end();
    if (auto it = flags.find("timeline-limit"); it != flags.end()) {
        timeline.setEventLimit(static_cast<std::size_t>(
            parseUnsignedOption(it->second, "timeline-limit")));
    }
    // Timelines stream to disk record-by-record so a long run never
    // buffers its whole trace; the bytes match buffered rendering.
    if (want_timeline && !timeline.streamTo(tl_it->second)) {
        logLine(LogLevel::Error, "cannot write timeline '%s'",
                tl_it->second.c_str());
        return 1;
    }

    RunInstrumentation inst;
    inst.timeline = want_timeline ? &timeline : nullptr;
    if (auto it = flags.find("sample-cycles"); it != flags.end()) {
        inst.interval.sampleCycles =
            parseUnsignedOption(it->second, "sample-cycles");
    }
    if (auto it = flags.find("sample-events"); it != flags.end()) {
        inst.interval.sampleEvents =
            parseUnsignedOption(it->second, "sample-events");
    }
    const auto json_it = flags.find("json");
    if (json_it != flags.end() && !inst.interval.enabled()) {
        logLine(LogLevel::Error,
                "--json needs --sample-cycles and/or "
                "--sample-events");
        return 1;
    }
    IntervalSeries series;
    if (inst.interval.enabled())
        inst.intervalSeries = &series;

    // Live telemetry stream (single-run form of the serve plane).
    TelemetryStream telemetry_stream;
    if (auto it = flags.find("telemetry"); it != flags.end()) {
        const std::string path =
            it->second == "1" ? "espsim_telemetry.jsonl" : it->second;
        if (!telemetry_stream.openFile(path)) {
            logLine(LogLevel::Error,
                    "cannot open telemetry stream '%s'", path.c_str());
            return 1;
        }
        inst.telemetryStream = &telemetry_stream;
    }
    if (auto it = flags.find("telemetry-period"); it != flags.end())
        inst.telemetry.periodCycles =
            parseUnsignedOption(it->second, "telemetry-period");
    if (auto it = flags.find("telemetry-wall-ms"); it != flags.end())
        inst.telemetry.wallMs =
            parseDoubleOption(it->second, "telemetry-wall-ms");
    if (inst.telemetryStream != nullptr && !inst.telemetry.enabled())
        inst.telemetry.periodCycles = 1'000'000;

    const SimResult r = Simulator(*config).run(*workload, inst);
    if (inst.telemetryStream != nullptr) {
        if (!telemetry_stream.close()) {
            logLine(LogLevel::Error, "telemetry stream: write failed");
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %llu telemetry lines",
                static_cast<unsigned long long>(
                    telemetry_stream.linesWritten()));
    }
    std::printf("%s on %s: %llu cycles, IPC %.3f, L1I-MPKI %.2f, "
                "L1D-miss %.2f%%, BP-miss %.2f%%\n",
                r.configName.c_str(), r.workloadName.c_str(),
                static_cast<unsigned long long>(r.cycles), r.ipc,
                r.l1iMpki, 100.0 * r.l1dMissRate,
                100.0 * r.mispredictRate);
    if (flags.count("stats"))
        std::fputs(r.stats.dump("  ").c_str(), stdout);
    if (want_timeline) {
        if (!timeline.closeStream()) {
            logLine(LogLevel::Error, "cannot write timeline '%s'",
                    tl_it->second.c_str());
            return 1;
        }
        logLine(LogLevel::Info,
                "# wrote %s (%zu events, %zu stalls, %zu ESP "
                "windows) — load it in ui.perfetto.dev or "
                "chrome://tracing",
                tl_it->second.c_str(), timeline.numEvents(),
                timeline.numStalls(), timeline.numEspWindows());
    }
    if (json_it != flags.end()) {
        const std::string path = json_it->second == "1"
            ? "espsim_intervals.json"
            : json_it->second;
        ArtifactManifest manifest;
        manifest.source = "espsim run";
        if (!writeTextFile(path,
                           renderIntervalSeriesJson(manifest, series))) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info,
                "# wrote %s (%zu intervals over %zu counters)",
                path.c_str(), series.intervals.size(),
                series.names.size());
    }
    return 0;
}

int
cmdSuite(const std::map<std::string, std::string> &flags)
{
    std::vector<std::string> names{"base", "NL+S", "Runahead+NL",
                                   "ESP+NL"};
    if (auto it = flags.find("configs"); it != flags.end()) {
        names.clear();
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ','))
            names.push_back(token);
    }
    std::vector<SimConfig> configs;
    for (const std::string &name : names) {
        const auto cfg = lookupConfig(name);
        if (!cfg)
            return 1;
        configs.push_back(*cfg);
    }

    std::vector<AppProfile> apps = AppProfile::webSuite();
    if (auto it = flags.find("apps"); it != flags.end()) {
        std::vector<AppProfile> picked;
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ',')) {
            bool found = false;
            for (const AppProfile &p : apps) {
                if (p.name == token) {
                    picked.push_back(p);
                    found = true;
                    break;
                }
            }
            if (!found) {
                logLine(LogLevel::Error,
                        "unknown app '%s' (try: espsim list)",
                        token.c_str());
                return 1;
            }
        }
        apps = std::move(picked);
    }

    printRunManifest();
    SuiteRunner runner(apps);
    if (auto it = flags.find("jobs"); it != flags.end()) {
        const unsigned long jobs =
            parseUnsignedOption(it->second, "jobs");
        runner.setJobs(jobs >= 1 ? static_cast<unsigned>(jobs) : 1);
    }
    const bool profile = flags.count("profile") != 0;
    runner.setProfiling(profile);
    runner.setStreaming(flags.count("streaming") != 0);
    auto rows = runner.run(configs, true);
    if (profile) {
        for (SuiteRow &row : rows) {
            for (std::size_t c = 0; c < configs.size(); ++c) {
                if (!row.ok(c))
                    continue;
                const HostCellProfile &p = row.profiles[c];
                mergeHostStats(row.results[c].stats, p);
                logLine(LogLevel::Info,
                        "# profile %s/%s: gen %.1f ms, warmup %.1f "
                        "ms, sim %.1f ms, report %.1f ms (total %.1f "
                        "ms)",
                        row.app.c_str(), configs[c].name.c_str(),
                        p.genMs, p.warmupMs, p.simMs, p.reportMs,
                        p.totalMs());
            }
        }
        const JobPoolUsage &u = runner.lastPoolUsage();
        logLine(LogLevel::Info,
                "# pool: %zu jobs on %u threads, queue HWM %zu, busy "
                "%.1f%%, %.1f jobs/s, wall %.0f ms, peak RSS %.1f MiB",
                u.jobsCompleted, u.threads, u.queueDepthHighWater,
                100.0 * u.busyFraction(), u.jobsPerSec(), u.wallMs,
                peakRssMb());
    }
    TextTable table("suite results (cycles; % improvement over first "
                    "config)");
    std::vector<std::string> header{"app"};
    for (const auto &cfg : configs)
        header.push_back(cfg.name);
    table.header(header);
    for (const SuiteRow &row : rows) {
        std::vector<std::string> cells{row.app};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            if (!row.ok(c) || (c != 0 && !row.ok(0))) {
                cells.push_back("ERROR!");
            } else if (c == 0) {
                cells.push_back(TextTable::num(
                    static_cast<double>(row.results[0].cycles), 0));
            } else {
                cells.push_back(
                    TextTable::num(row.results[c].improvementPctOver(
                                       row.results[0]),
                                   1) +
                    "%");
            }
        }
        table.row(cells);
    }
    std::fputs(table.render().c_str(), stdout);
    for (const SuiteRow &row : rows) {
        for (std::size_t c = 0;
             c < configs.size() && c < row.errors.size(); ++c) {
            if (!row.ok(c)) {
                logLine(LogLevel::Error, "error cell (%s, %s): %s",
                        row.app.c_str(), configs[c].name.c_str(),
                        row.errors[c].message.c_str());
            }
        }
    }

    // "--json"/"--csv" with no following path get parseFlags' "1"
    // placeholder; map that to the default artifact name.
    ArtifactManifest manifest;
    manifest.source = "espsim suite";
    auto artifactPath = [&flags](const char *key,
                                 const char *def) -> std::string {
        auto it = flags.find(key);
        if (it == flags.end())
            return "";
        return it->second == "1" ? def : it->second;
    };
    if (const std::string path =
            artifactPath("json", "espsim_suite.json");
        !path.empty()) {
        // The host block rides along only under --profile; clean
        // artifacts stay byte-identical to the deterministic baseline.
        if (!writeTextFile(
                path,
                renderSuiteArtifactJson(
                    manifest, configs, rows,
                    profile ? &runner.lastPoolUsage() : nullptr))) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %s", path.c_str());
    }
    if (const std::string path = artifactPath("csv", "espsim_suite.csv");
        !path.empty()) {
        if (!writeTextFile(path, renderSuiteArtifactCsv(
                                     manifest, configs, rows))) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %s", path.c_str());
    }
    // Degraded sweeps exit non-zero so CI notices, even though every
    // healthy cell completed and the artifacts were still written.
    return suiteHasErrors(rows) ? 1 : 0;
}

/**
 * `espsim serve` — server-scale tail-latency runs. Streams a
 * request-serving profile (memcached-style KV or HTTP router) through
 * every requested config under one arrival discipline, prints a
 * tail-latency table, and writes the versioned espsim-latency-artifact
 * (see docs/WORKLOADS.md). Peak RSS is logged to stderr so the
 * serve_1m ctest can assert flat memory between 100k and 1M runs.
 */
int
cmdServe(const std::map<std::string, std::string> &flags)
{
    const auto prof_it = flags.find("profile");
    const std::string prof_name =
        prof_it == flags.end() ? "memcached" : prof_it->second;
    const ServerProfile profile = ServerProfile::byName(prof_name);

    std::vector<std::string> names{"base", "ESP+NL"};
    if (auto it = flags.find("configs"); it != flags.end()) {
        names.clear();
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ','))
            names.push_back(token);
    }
    std::vector<SimConfig> configs;
    for (const std::string &name : names) {
        const auto cfg = lookupConfig(name);
        if (!cfg)
            return 1;
        configs.push_back(*cfg);
    }

    ServeOptions opts;
    if (auto it = flags.find("events"); it != flags.end())
        opts.events = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "events"));
    if (auto it = flags.find("window"); it != flags.end())
        opts.window = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "window"));
    if (auto it = flags.find("reservoir"); it != flags.end())
        opts.reservoirCapacity = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "reservoir"));
    if (auto it = flags.find("arrival"); it != flags.end()) {
        if (!parseArrivalKind(it->second, opts.arrival.kind)) {
            logLine(LogLevel::Error,
                    "invalid value '%s' for --arrival (expected "
                    "poisson|bursty|closed)",
                    it->second.c_str());
            usage();
            return 2;
        }
    }
    if (auto it = flags.find("gap"); it != flags.end())
        opts.arrival.meanGapCycles =
            parseDoubleOption(it->second, "gap");
    if (auto it = flags.find("concurrency"); it != flags.end()) {
        const unsigned long n =
            parseUnsignedOption(it->second, "concurrency");
        opts.arrival.concurrency =
            n >= 1 ? static_cast<unsigned>(n) : 1;
    }
    if (auto it = flags.find("think"); it != flags.end())
        opts.arrival.thinkCycles =
            parseUnsignedOption(it->second, "think");
    if (auto it = flags.find("seed"); it != flags.end())
        opts.arrival.seed = parseUnsignedOption(it->second, "seed");

    // --- span tracing / flight recorder ------------------------------
    const bool spans_on = flags.count("trace-spans") > 0;
    opts.spans.enabled = spans_on;
    if (auto it = flags.find("flight-recorder"); it != flags.end()) {
        opts.spans.enabled = true;
        opts.spans.flightRecorder = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "flight-recorder"));
    }
    if (auto it = flags.find("anomaly-threshold"); it != flags.end()) {
        opts.spans.enabled = true;
        opts.spans.anomalyThreshold =
            parseDoubleOption(it->second, "anomaly-threshold");
    }
    if (auto it = flags.find("worst"); it != flags.end())
        opts.spans.worstK = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "worst"));
    if (auto it = flags.find("anomaly-min"); it != flags.end())
        opts.spans.anomalyMinSamples =
            parseUnsignedOption(it->second, "anomaly-min");
    if (auto it = flags.find("flight-dump"); it != flags.end() &&
        it->second != "1") {
        opts.spans.enabled = true;
        opts.spans.dumpPrefix = it->second;
    }
    if (auto it = flags.find("spike-event"); it != flags.end())
        opts.spans.spikeEvent =
            parseUnsignedOption(it->second, "spike-event");
    if (auto it = flags.find("spike-scale"); it != flags.end()) {
        const unsigned long s =
            parseUnsignedOption(it->second, "spike-scale");
        opts.spans.spikeScale = s >= 2 ? static_cast<unsigned>(s) : 2;
    }

    // --- live telemetry / metrics endpoint / stall watchdog ---------
    if (auto it = flags.find("telemetry"); it != flags.end()) {
        opts.telemetry.jsonlPath = it->second == "1"
            ? "espsim_telemetry.jsonl"
            : it->second;
    }
    if (auto it = flags.find("telemetry-period"); it != flags.end())
        opts.telemetry.period.periodCycles =
            parseUnsignedOption(it->second, "telemetry-period");
    if (auto it = flags.find("telemetry-wall-ms"); it != flags.end())
        opts.telemetry.period.wallMs =
            parseDoubleOption(it->second, "telemetry-wall-ms");
    if (auto it = flags.find("metrics-port"); it != flags.end()) {
        opts.telemetry.metricsEnabled = true;
        opts.telemetry.metricsPort = static_cast<std::uint16_t>(
            parseUnsignedOption(it->second, "metrics-port"));
    }
    if (auto it = flags.find("watchdog-ms"); it != flags.end())
        opts.telemetry.watchdogBudgetMs =
            parseDoubleOption(it->second, "watchdog-ms");
    if (auto it = flags.find("watchdog-dump"); it != flags.end() &&
        it->second != "1")
        opts.telemetry.watchdogDumpPrefix = it->second;
    // A sink without a pace would never snapshot; default to a cycle
    // grid coarse enough to be invisible in the overhead gate.
    if ((!opts.telemetry.jsonlPath.empty() ||
         opts.telemetry.metricsEnabled) &&
        !opts.telemetry.period.enabled())
        opts.telemetry.period.periodCycles = 1'000'000;

    printRunManifest();
    const auto wall_start = std::chrono::steady_clock::now();
    const ServeReport report = runServe(profile, configs, opts);
    const auto wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    // Always on stderr (not just under --profile): the serve_1m RSS
    // gate parses this line from two separate process runs.
    logLine(LogLevel::Info, "# serve peak RSS %.1f MiB", peakRssMb());
    // Parsed by the serve_trace_overhead gate (recorder-on vs -off).
    logLine(LogLevel::Info, "# serve wall %lld ms",
            static_cast<long long>(wall_ms));
    if (opts.telemetry.any()) {
        logLine(LogLevel::Info,
                "# telemetry: %llu snapshots, %llu watchdog fires",
                static_cast<unsigned long long>(
                    report.telemetrySnapshots),
                static_cast<unsigned long long>(report.watchdogFires));
        if (report.degraded)
            logLine(LogLevel::Warn, "# serve run degraded: %s",
                    report.degradedReason.c_str());
    }

    TextTable table("serve tail latency (cycles, '" + report.profile +
                    "', " + arrivalKindName(report.arrival.kind) +
                    " arrivals)");
    table.header({"config", "cycles", "idle", "p50", "p95", "p99",
                  "p99.9", "max"});
    for (const ServeCell &cell : report.cells) {
        table.row({cell.config,
                   TextTable::num(static_cast<double>(cell.cycles), 0),
                   TextTable::num(static_cast<double>(cell.idleCycles),
                                  0),
                   TextTable::num(cell.total.p50, 0),
                   TextTable::num(cell.total.p95, 0),
                   TextTable::num(cell.total.p99, 0),
                   TextTable::num(cell.total.p999, 0),
                   TextTable::num(cell.total.max, 0)});
    }
    std::fputs(table.render().c_str(), stdout);

    ArtifactManifest manifest;
    manifest.source = "espsim serve";
    auto artifactPath = [&flags](const char *key,
                                 const char *def) -> std::string {
        auto it = flags.find(key);
        if (it == flags.end())
            return "";
        return it->second == "1" ? def : it->second;
    };
    if (const std::string path =
            artifactPath("json", "espsim_latency.json");
        !path.empty()) {
        if (!writeTextFile(path, renderLatencyArtifactJson(manifest,
                                                           report))) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %s", path.c_str());
    }
    if (opts.spans.enabled) {
        const auto it = flags.find("trace-spans");
        const std::string path =
            it != flags.end() && it->second != "1" ? it->second
                                                   : "espsim_spans.json";
        if (!writeTextFile(path,
                           renderSpanArtifactJson(manifest, report))) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %s", path.c_str());
    }
    return 0;
}

/**
 * `espsim bench` — simulator-throughput micro-suite. Runs a pinned
 * (config, app) grid strictly serially (one cell at a time, so cells
 * never steal each other's CPU), records the best-of---repeat wall
 * time per cell, and writes a BENCH_<git-describe>.json artifact
 * that tools/compare_bench.py can diff across commits.
 */
int
cmdBench(const std::map<std::string, std::string> &flags)
{
    // Pinned defaults: the slowest and the most instrumented design
    // points bound the simulator's throughput envelope.
    std::vector<std::string> names{"base", "ESP+NL"};
    if (auto it = flags.find("configs"); it != flags.end()) {
        names.clear();
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ','))
            names.push_back(token);
    }
    std::vector<SimConfig> configs;
    for (const std::string &name : names) {
        const auto cfg = lookupConfig(name);
        if (!cfg)
            return 1;
        configs.push_back(*cfg);
    }

    std::vector<AppProfile> apps = AppProfile::webSuite();
    if (auto it = flags.find("apps"); it != flags.end()) {
        std::vector<AppProfile> picked;
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ',')) {
            bool found = false;
            for (const AppProfile &p : apps) {
                if (p.name == token) {
                    picked.push_back(p);
                    found = true;
                    break;
                }
            }
            if (!found) {
                logLine(LogLevel::Error,
                        "unknown app '%s' (try: espsim list)",
                        token.c_str());
                return 1;
            }
        }
        apps = std::move(picked);
    }

    unsigned long repeat = 1;
    if (auto it = flags.find("repeat"); it != flags.end())
        repeat = parseUnsignedOption(it->second, "repeat");
    if (repeat == 0)
        repeat = 1;
    unsigned long events_override = 0;
    if (auto it = flags.find("events"); it != flags.end())
        events_override = parseUnsignedOption(it->second, "events");

    printRunManifest();
    using Clock = std::chrono::steady_clock;
    const auto suite_start = Clock::now();

    BenchReport report;
    report.configHash = configsHash(configs);
    report.jobs = 1; // serial by design: cells must not contend
    report.repeat = static_cast<unsigned>(repeat);
    for (AppProfile profile : apps) {
        if (events_override > 0)
            profile.numEvents = events_override;
        const auto workload = SyntheticGenerator(profile).generate();
        for (const SimConfig &cfg : configs) {
            BenchCell cell;
            cell.app = profile.name;
            cell.config = cfg.name;
            cell.simEvents = workload->numEvents();
            cell.instructions = workload->totalInstructions();
            for (unsigned long rep = 0; rep < repeat; ++rep) {
                const auto t0 = Clock::now();
                const SimResult r = Simulator(cfg).run(*workload);
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
                cell.simCycles = r.cycles;
                // Best-of-N: the minimum is the least noisy estimate
                // of the machine's actual throughput.
                if (rep == 0 || wall_ms < cell.wallMs)
                    cell.wallMs = wall_ms;
            }
            logLine(LogLevel::Info,
                    "# bench %s/%s: %.1f ms, %.2f Mcycles/s, %.1f "
                    "kevents/s",
                    cell.app.c_str(), cell.config.c_str(), cell.wallMs,
                    cell.cyclesPerSec() / 1e6,
                    cell.eventsPerSec() / 1e3);
            report.cells.push_back(std::move(cell));
        }
    }
    report.suiteWallMs = std::chrono::duration<double, std::milli>(
                             Clock::now() - suite_start)
                             .count();
    report.peakRssMb = peakRssMb();

    std::string path = std::string("BENCH_") + versionString() + ".json";
    if (auto it = flags.find("out"); it != flags.end())
        path = it->second;
    ArtifactManifest manifest;
    manifest.source = "espsim bench";
    if (!writeTextFile(path, renderBenchArtifactJson(manifest, report))) {
        logLine(LogLevel::Error, "cannot write '%s'", path.c_str());
        return 1;
    }
    logLine(LogLevel::Info,
            "# wrote %s (%zu cells, suite wall %.0f ms, peak RSS %.1f "
            "MiB)",
            path.c_str(), report.cells.size(), report.suiteWallMs,
            report.peakRssMb);
    return 0;
}

int
cmdGen(const std::map<std::string, std::string> &flags)
{
    const auto app_it = flags.find("app");
    const auto out_it = flags.find("out");
    if (app_it == flags.end() || out_it == flags.end())
        return usage();
    AppProfile profile = AppProfile::byName(app_it->second);
    if (auto it = flags.find("events"); it != flags.end())
        profile.numEvents = parseUnsignedOption(it->second, "events");
    const auto workload = SyntheticGenerator(profile).generate();
    if (!saveWorkload(out_it->second, *workload)) {
        logLine(LogLevel::Error, "write failed");
        return 1;
    }
    std::printf("wrote %zu events (%llu instructions) to %s\n",
                workload->numEvents(),
                static_cast<unsigned long long>(
                    workload->totalInstructions()),
                out_it->second.c_str());
    return 0;
}

/**
 * `espsim diff` parses argv itself: the shared parseFlags drops
 * positional arguments, and the two artifact paths are positional.
 */
int
cmdDiff(int argc, char **argv)
{
    DiffOptions opts;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            paths.push_back(arg);
            continue;
        }
        auto value = [&i, argc, argv]() -> std::string {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--rel-tol") {
            opts.relTol = parseDoubleOption(value(), "rel-tol");
        } else if (arg == "--abs-tol") {
            opts.absTol = parseDoubleOption(value(), "abs-tol");
        } else if (arg == "--headline-rel-tol") {
            opts.headlineRelTol =
                parseDoubleOption(value(), "headline-rel-tol");
        } else if (arg == "--max-rows") {
            opts.maxRows = static_cast<std::size_t>(
                parseUnsignedOption(value(), "max-rows"));
        } else if (arg == "--headline") {
            opts.headlineStats.clear();
            std::stringstream ss(value());
            std::string token;
            while (std::getline(ss, token, ','))
                opts.headlineStats.push_back(token);
        } else if (arg == "--ignore-config-hash") {
            opts.ignoreConfigHash = true;
        } else if (arg == "--log-level") {
            value(); // consumed by main()'s pre-scan
        } else {
            logLine(LogLevel::Error, "unknown diff flag '%s'",
                    arg.c_str());
            return usage();
        }
    }
    if (paths.size() != 2)
        return usage();

    const DiffResult res =
        diffSuiteArtifactFiles(paths[0], paths[1], opts);
    const std::string report = renderDiffReport(res, opts);
    std::fputs(report.c_str(),
               res.exitCode() == 2 ? stderr : stdout);
    return res.exitCode();
}

int
cmdFuzz(const std::map<std::string, std::string> &flags)
{
    FuzzOptions opts;
    if (auto it = flags.find("runs"); it != flags.end())
        opts.runs = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "runs"));
    if (auto it = flags.find("seed"); it != flags.end())
        opts.seed = parseUnsignedOption(it->second, "seed");
    opts.verbose = flags.count("verbose") != 0;
    printRunManifest();
    return runFuzz(opts);
}

/**
 * `espsim report` — the cross-run observatory. Ingests a directory of
 * espsim artifacts (plus, optionally, the committed bench baselines),
 * joins them by config hash, and prints the perf trajectory with
 * regression flags. Exit 0 when clean, 1 when any trend regressed
 * beyond tolerance. tools/observatory.py is the git-aware sibling.
 */
int
cmdReport(const std::map<std::string, std::string> &flags)
{
    std::vector<std::string> dirs;
    if (auto it = flags.find("dir"); it != flags.end() &&
        it->second != "1")
        dirs.push_back(it->second);
    else
        dirs.push_back(".");
    if (auto it = flags.find("bench"); it != flags.end() &&
        it->second != "1")
        dirs.push_back(it->second);
    double tolerance = 0.10;
    if (auto it = flags.find("tolerance"); it != flags.end())
        tolerance = parseDoubleOption(it->second, "tolerance");

    const ObservatoryReport report =
        buildObservatoryReport(dirs, tolerance);
    const std::string markdown = renderObservatoryMarkdown(report);

    auto artifactPath = [&flags](const char *key,
                                 const char *def) -> std::string {
        auto it = flags.find(key);
        if (it == flags.end())
            return "";
        return it->second == "1" ? def : it->second;
    };
    if (const std::string path =
            artifactPath("md", "espsim_observatory.md");
        !path.empty()) {
        if (!writeTextFile(path, markdown)) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %s", path.c_str());
    } else {
        std::fputs(markdown.c_str(), stdout);
    }
    if (const std::string path =
            artifactPath("json", "espsim_observatory.json");
        !path.empty()) {
        if (!writeTextFile(path, renderObservatoryJson(report))) {
            logLine(LogLevel::Error, "cannot write '%s'",
                    path.c_str());
            return 1;
        }
        logLine(LogLevel::Info, "# wrote %s", path.c_str());
    }
    if (report.regressions > 0) {
        logLine(LogLevel::Warn,
                "# observatory: %zu trend(s) regressed beyond "
                "%.0f%% tolerance",
                report.regressions, tolerance * 100);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    // --log-level applies to every subcommand, so resolve it before
    // dispatch; the per-command flag parsers see it as a no-op pair.
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--log-level") == 0) {
            LogLevel level;
            if (!parseLogLevel(argv[i + 1], level)) {
                logLine(LogLevel::Error,
                        "invalid value '%s' for --log-level "
                        "(expected error|warn|info|debug)",
                        argv[i + 1]);
                usage();
                return 2;
            }
            setLogLevel(level);
        }
    }
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::printf("espsim %s (%s build)\n", versionString(),
                    buildTypeString());
        return 0;
    }
    if (cmd == "diff")
        return cmdDiff(argc, argv);
    const auto flags = parseFlags(argc, argv, 2);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(flags);
    if (cmd == "suite")
        return cmdSuite(flags);
    if (cmd == "serve")
        return cmdServe(flags);
    if (cmd == "bench")
        return cmdBench(flags);
    if (cmd == "report")
        return cmdReport(flags);
    if (cmd == "gen")
        return cmdGen(flags);
    if (cmd == "fuzz")
        return cmdFuzz(flags);
    return usage();
}
