/**
 * @file
 * `espsim` — the command-line driver an OSS release ships:
 *
 *   espsim run   --app amazon --config ESP+NL [--stats]
 *   espsim run   --trace file.espw --config NL+S
 *   espsim run   --app bing --timeline out.trace.json
 *   espsim suite --configs base,NL,ESP+NL [--jobs N] [--apps a,b]
 *                [--json [path]] [--csv [path]]
 *   espsim gen   --app gmaps --out gmaps.espw [--events N]
 *   espsim diff  baseline.json candidate.json [--rel-tol F]
 *                [--abs-tol F] [--headline a,b] [--max-rows N]
 *                [--ignore-config-hash]
 *   espsim fuzz  [--runs N] [--seed S] [--verbose]
 *   espsim list  (apps and configs)
 *   espsim --version
 *
 * Tables and results print to stdout; run chatter (manifest, artifact
 * notes) goes to stderr. Exit code 0 on success, 1 on usage errors,
 * 2 on malformed option values (all numeric options are parsed by one
 * checked helper that rejects trailing garbage).
 * `espsim diff` exits 0 when the artifacts agree within tolerance,
 * 1 on a headline regression or config mismatch, 2 on load failure.
 * `espsim suite` exits 1 when any sweep cell failed (its artifact
 * then carries an `errors` block; see docs/ROBUSTNESS.md).
 * `espsim fuzz` runs the src/check/ property harness and exits 1 on
 * the first oracle violation, printing a shrunken repro.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hh"
#include "common/table.hh"
#include "common/version.hh"
#include "report/artifact.hh"
#include "report/diff.hh"
#include "report/timeline.hh"
#include "sim/stats_report.hh"
#include "trace/trace_io.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** All named design points the CLI can run. */
const std::map<std::string, std::function<SimConfig()>> &
configRegistry()
{
    static const std::map<std::string, std::function<SimConfig()>> reg{
        {"base", [] { return SimConfig::baseline(); }},
        {"NL", [] { return SimConfig::nextLine(); }},
        {"NL+S", [] { return SimConfig::nextLineStride(); }},
        {"Runahead", [] { return SimConfig::runaheadExec(false); }},
        {"Runahead+NL", [] { return SimConfig::runaheadExec(true); }},
        {"ESP", [] { return SimConfig::espFull(false); }},
        {"ESP+NL", [] { return SimConfig::espFull(true); }},
        {"NaiveESP+NL", [] { return SimConfig::espNaive(true); }},
        {"perfect", [] { return SimConfig::perfect(true, true, true); }},
    };
    return reg;
}

int
usage()
{
    std::puts(
        "usage:\n"
        "  espsim run   --app <name>|--trace <file> --config <name> "
        "[--stats] [--timeline <file>]\n"
        "  espsim suite [--configs a,b,c] [--apps a,b] [--jobs N] "
        "[--json [path]] [--csv [path]]\n"
        "  espsim gen   --app <name> --out <file> [--events N]\n"
        "  espsim diff  <baseline.json> <candidate.json> "
        "[--rel-tol F] [--abs-tol F]\n"
        "               [--headline a,b,c] [--max-rows N] "
        "[--ignore-config-hash]\n"
        "  espsim fuzz  [--runs N] [--seed S] [--verbose]\n"
        "  espsim list\n"
        "  espsim --version");
    return 1;
}

/**
 * Checked numeric option parsing: every numeric flag goes through one
 * of these instead of raw std::stoul / strtod, so `--events abc` (or
 * `--rel-tol 0.1x`) prints the usage text and exits 2 instead of
 * aborting on an uncaught std::invalid_argument or silently reading
 * a half-parsed value. Trailing garbage is rejected.
 */
unsigned long
parseUnsignedOption(const std::string &value, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE || value[0] == '-') {
        std::fprintf(stderr,
                     "invalid value '%s' for --%s (expected a "
                     "non-negative integer)\n",
                     value.c_str(), flag);
        usage();
        std::exit(2);
    }
    return v;
}

double
parseDoubleOption(const std::string &value, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE) {
        std::fprintf(stderr,
                     "invalid value '%s' for --%s (expected a "
                     "number)\n",
                     value.c_str(), flag);
        usage();
        std::exit(2);
    }
    return v;
}

/** Build/run manifest on stderr; artifacts stay free of such facts. */
void
printRunManifest()
{
    std::fprintf(stderr, "# espsim %s (%s build)\n", versionString(),
                 buildTypeString());
}

/** Minimal flag parser: --key value pairs after the subcommand. */
std::map<std::string, std::string>
parseFlags(int argc, char **argv, int from)
{
    std::map<std::string, std::string> flags;
    for (int i = from; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        const std::string key = arg.substr(2);
        if (i + 1 < argc && argv[i + 1][0] != '-')
            flags[key] = argv[++i];
        else
            flags[key] = "1";
    }
    return flags;
}

std::optional<SimConfig>
lookupConfig(const std::string &name)
{
    const auto &reg = configRegistry();
    auto it = reg.find(name);
    if (it == reg.end()) {
        std::fprintf(stderr, "unknown config '%s' (try: espsim list)\n",
                     name.c_str());
        return std::nullopt;
    }
    return it->second();
}

int
cmdList()
{
    std::puts("applications:");
    for (const AppProfile &p : AppProfile::webSuite())
        std::printf("  %-9s %s\n", p.name.c_str(),
                    p.description.c_str());
    std::puts("configs:");
    for (const auto &[name, make] : configRegistry()) {
        (void)make;
        std::printf("  %s\n", name.c_str());
    }
    return 0;
}

int
cmdRun(const std::map<std::string, std::string> &flags)
{
    const auto cfg_it = flags.find("config");
    const std::string cfg_name =
        cfg_it == flags.end() ? "ESP+NL" : cfg_it->second;
    const auto config = lookupConfig(cfg_name);
    if (!config)
        return 1;

    std::unique_ptr<InMemoryWorkload> workload;
    if (auto it = flags.find("trace"); it != flags.end()) {
        workload = loadWorkload(it->second);
        if (!workload) {
            std::fprintf(stderr, "malformed trace file '%s'\n",
                         it->second.c_str());
            return 1;
        }
    } else {
        const auto app_it = flags.find("app");
        const std::string app =
            app_it == flags.end() ? "amazon" : app_it->second;
        workload = SyntheticGenerator(AppProfile::byName(app)).generate();
    }

    printRunManifest();
    EventTimeline timeline;
    const auto tl_it = flags.find("timeline");
    const bool want_timeline = tl_it != flags.end();
    const SimResult r = Simulator(*config).run(
        *workload, want_timeline ? &timeline : nullptr);
    std::printf("%s on %s: %llu cycles, IPC %.3f, L1I-MPKI %.2f, "
                "L1D-miss %.2f%%, BP-miss %.2f%%\n",
                r.configName.c_str(), r.workloadName.c_str(),
                static_cast<unsigned long long>(r.cycles), r.ipc,
                r.l1iMpki, 100.0 * r.l1dMissRate,
                100.0 * r.mispredictRate);
    if (flags.count("stats"))
        std::fputs(r.stats.dump("  ").c_str(), stdout);
    if (want_timeline) {
        if (!timeline.writeChromeTrace(tl_it->second)) {
            std::fprintf(stderr, "cannot write timeline '%s'\n",
                         tl_it->second.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "# wrote %s (%zu events, %zu stalls, %zu ESP "
                     "windows) — load it in ui.perfetto.dev or "
                     "chrome://tracing\n",
                     tl_it->second.c_str(), timeline.numEvents(),
                     timeline.numStalls(), timeline.numEspWindows());
    }
    return 0;
}

int
cmdSuite(const std::map<std::string, std::string> &flags)
{
    std::vector<std::string> names{"base", "NL+S", "Runahead+NL",
                                   "ESP+NL"};
    if (auto it = flags.find("configs"); it != flags.end()) {
        names.clear();
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ','))
            names.push_back(token);
    }
    std::vector<SimConfig> configs;
    for (const std::string &name : names) {
        const auto cfg = lookupConfig(name);
        if (!cfg)
            return 1;
        configs.push_back(*cfg);
    }

    std::vector<AppProfile> apps = AppProfile::webSuite();
    if (auto it = flags.find("apps"); it != flags.end()) {
        std::vector<AppProfile> picked;
        std::stringstream ss(it->second);
        std::string token;
        while (std::getline(ss, token, ',')) {
            bool found = false;
            for (const AppProfile &p : apps) {
                if (p.name == token) {
                    picked.push_back(p);
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr,
                             "unknown app '%s' (try: espsim list)\n",
                             token.c_str());
                return 1;
            }
        }
        apps = std::move(picked);
    }

    printRunManifest();
    SuiteRunner runner(apps);
    if (auto it = flags.find("jobs"); it != flags.end()) {
        const unsigned long jobs =
            parseUnsignedOption(it->second, "jobs");
        runner.setJobs(jobs >= 1 ? static_cast<unsigned>(jobs) : 1);
    }
    const auto rows = runner.run(configs, true);
    TextTable table("suite results (cycles; % improvement over first "
                    "config)");
    std::vector<std::string> header{"app"};
    for (const auto &cfg : configs)
        header.push_back(cfg.name);
    table.header(header);
    for (const SuiteRow &row : rows) {
        std::vector<std::string> cells{row.app};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            if (!row.ok(c) || (c != 0 && !row.ok(0))) {
                cells.push_back("ERROR!");
            } else if (c == 0) {
                cells.push_back(TextTable::num(
                    static_cast<double>(row.results[0].cycles), 0));
            } else {
                cells.push_back(
                    TextTable::num(row.results[c].improvementPctOver(
                                       row.results[0]),
                                   1) +
                    "%");
            }
        }
        table.row(cells);
    }
    std::fputs(table.render().c_str(), stdout);
    for (const SuiteRow &row : rows) {
        for (std::size_t c = 0;
             c < configs.size() && c < row.errors.size(); ++c) {
            if (!row.ok(c)) {
                std::fprintf(stderr, "error cell (%s, %s): %s\n",
                             row.app.c_str(), configs[c].name.c_str(),
                             row.errors[c].message.c_str());
            }
        }
    }

    // "--json"/"--csv" with no following path get parseFlags' "1"
    // placeholder; map that to the default artifact name.
    ArtifactManifest manifest;
    manifest.source = "espsim suite";
    auto artifactPath = [&flags](const char *key,
                                 const char *def) -> std::string {
        auto it = flags.find(key);
        if (it == flags.end())
            return "";
        return it->second == "1" ? def : it->second;
    };
    if (const std::string path =
            artifactPath("json", "espsim_suite.json");
        !path.empty()) {
        if (!writeTextFile(path, renderSuiteArtifactJson(
                                     manifest, configs, rows))) {
            std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
            return 1;
        }
        std::fprintf(stderr, "# wrote %s\n", path.c_str());
    }
    if (const std::string path = artifactPath("csv", "espsim_suite.csv");
        !path.empty()) {
        if (!writeTextFile(path, renderSuiteArtifactCsv(
                                     manifest, configs, rows))) {
            std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
            return 1;
        }
        std::fprintf(stderr, "# wrote %s\n", path.c_str());
    }
    // Degraded sweeps exit non-zero so CI notices, even though every
    // healthy cell completed and the artifacts were still written.
    return suiteHasErrors(rows) ? 1 : 0;
}

int
cmdGen(const std::map<std::string, std::string> &flags)
{
    const auto app_it = flags.find("app");
    const auto out_it = flags.find("out");
    if (app_it == flags.end() || out_it == flags.end())
        return usage();
    AppProfile profile = AppProfile::byName(app_it->second);
    if (auto it = flags.find("events"); it != flags.end())
        profile.numEvents = parseUnsignedOption(it->second, "events");
    const auto workload = SyntheticGenerator(profile).generate();
    if (!saveWorkload(out_it->second, *workload)) {
        std::fprintf(stderr, "write failed\n");
        return 1;
    }
    std::printf("wrote %zu events (%llu instructions) to %s\n",
                workload->numEvents(),
                static_cast<unsigned long long>(
                    workload->totalInstructions()),
                out_it->second.c_str());
    return 0;
}

/**
 * `espsim diff` parses argv itself: the shared parseFlags drops
 * positional arguments, and the two artifact paths are positional.
 */
int
cmdDiff(int argc, char **argv)
{
    DiffOptions opts;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            paths.push_back(arg);
            continue;
        }
        auto value = [&i, argc, argv]() -> std::string {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--rel-tol") {
            opts.relTol = parseDoubleOption(value(), "rel-tol");
        } else if (arg == "--abs-tol") {
            opts.absTol = parseDoubleOption(value(), "abs-tol");
        } else if (arg == "--headline-rel-tol") {
            opts.headlineRelTol =
                parseDoubleOption(value(), "headline-rel-tol");
        } else if (arg == "--max-rows") {
            opts.maxRows = static_cast<std::size_t>(
                parseUnsignedOption(value(), "max-rows"));
        } else if (arg == "--headline") {
            opts.headlineStats.clear();
            std::stringstream ss(value());
            std::string token;
            while (std::getline(ss, token, ','))
                opts.headlineStats.push_back(token);
        } else if (arg == "--ignore-config-hash") {
            opts.ignoreConfigHash = true;
        } else {
            std::fprintf(stderr, "unknown diff flag '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (paths.size() != 2)
        return usage();

    const DiffResult res =
        diffSuiteArtifactFiles(paths[0], paths[1], opts);
    const std::string report = renderDiffReport(res, opts);
    std::fputs(report.c_str(),
               res.exitCode() == 2 ? stderr : stdout);
    return res.exitCode();
}

int
cmdFuzz(const std::map<std::string, std::string> &flags)
{
    FuzzOptions opts;
    if (auto it = flags.find("runs"); it != flags.end())
        opts.runs = static_cast<std::size_t>(
            parseUnsignedOption(it->second, "runs"));
    if (auto it = flags.find("seed"); it != flags.end())
        opts.seed = parseUnsignedOption(it->second, "seed");
    opts.verbose = flags.count("verbose") != 0;
    printRunManifest();
    return runFuzz(opts);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
        std::printf("espsim %s (%s build)\n", versionString(),
                    buildTypeString());
        return 0;
    }
    if (cmd == "diff")
        return cmdDiff(argc, argv);
    const auto flags = parseFlags(argc, argv, 2);
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(flags);
    if (cmd == "suite")
        return cmdSuite(flags);
    if (cmd == "gen")
        return cmdGen(flags);
    if (cmd == "fuzz")
        return cmdFuzz(flags);
    return usage();
}
