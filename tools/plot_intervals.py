#!/usr/bin/env python3
"""Render phase plots from an interval-series artifact.

Reads an `espsim-interval-series` JSON file (espsim run
--sample-cycles N --json) and prints an ASCII time series of derived
per-interval metrics: how IPC, the L1-I MPKI, the L1-D miss rate and
ESP pre-execution occupancy evolve over the run. End-of-run aggregates
(the paper's figures) hide phase behaviour — a warmup transient, a
pointer-chasing stretch, an ESP window that only pays off mid-run;
this is the tool that shows it.

All metrics are computed here from the raw counter deltas — the
artifact stores only monotone counters (see src/report/interval.hh),
never rates, so any consumer can derive exactly the ratio it wants.

Standard library only, so it runs anywhere the repo builds.

Usage:
    plot_intervals.py SERIES.json [--metric NAME] [--width N]

Exit code 0 on success, 1 on a malformed artifact or an unknown
metric name.
"""

import argparse
import json
import sys

BAR_WIDTH = 50


def _ratio(deltas, num, den, scale=1.0):
    d = deltas.get(den, 0.0)
    return scale * deltas.get(num, 0.0) / d if d else 0.0


# name -> (description, fn(deltas) -> value)
METRICS = {
    "ipc": ("instructions per cycle",
            lambda d: _ratio(d, "core.instructions", "core.cycles")),
    "l1i_mpki": ("L1-I misses per kilo-instruction",
                 lambda d: _ratio(d, "mem.l1i.misses",
                                  "core.instructions", 1000.0)),
    "l1d_miss_rate": ("L1-D miss fraction",
                      lambda d: _ratio(d, "mem.l1d.misses",
                                       "mem.l1d.accesses")),
    "esp_occupancy": ("ESP pre-execution cycles per cycle",
                      lambda d: _ratio(d, "core.cycle_bucket.esp_pre_exec",
                                       "core.cycles")),
    "events_per_interval": ("events retired in the interval",
                            lambda d: d.get("core.events", 0.0)),
}


def load_series(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "espsim-interval-series":
        raise ValueError(f"{path}: not an espsim-interval-series")
    names = doc.get("names")
    intervals = doc.get("intervals")
    if not isinstance(names, list) or not isinstance(intervals, list):
        raise ValueError(f"{path}: missing names/intervals")
    return doc, names, intervals


def plot_metric(name, doc, names, intervals, width):
    description, fn = METRICS[name]
    rows = []
    for interval in intervals:
        deltas = dict(zip(names, interval["deltas"]))
        rows.append((interval["end_cycle"], fn(deltas)))
    peak = max((value for _, value in rows), default=0.0)
    manifest = doc.get("manifest", {})
    print(f"{name} ({description}) — {manifest.get('config', '?')} on "
          f"{manifest.get('workload', '?')}, {len(rows)} intervals")
    for end_cycle, value in rows:
        frac = value / peak if peak else 0.0
        bar = "#" * round(frac * width)
        print(f"  @{end_cycle:>12} {value:>10.4f}  {bar}")
    print()


def main(argv):
    parser = argparse.ArgumentParser(
        description="phase plots from an interval-series artifact")
    parser.add_argument("artifact")
    parser.add_argument("--metric", action="append",
                        help="metric to plot (default: all); one of "
                             + ", ".join(sorted(METRICS)))
    parser.add_argument("--width", type=int, default=BAR_WIDTH,
                        help="bar width in characters")
    args = parser.parse_args(argv)

    wanted = args.metric or sorted(METRICS)
    for name in wanted:
        if name not in METRICS:
            print(f"error: unknown metric {name!r} (choose from "
                  f"{', '.join(sorted(METRICS))})", file=sys.stderr)
            return 1

    try:
        doc, names, intervals = load_series(args.artifact)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if not intervals:
        print("error: artifact has no intervals (run long enough for "
              "at least one sample period)", file=sys.stderr)
        return 1

    for name in wanted:
        plot_metric(name, doc, names, intervals, args.width)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
