# Flat-memory gate for the streaming serve path: run the memcached
# profile at 100k and at 1M events in two separate processes and
# compare the "# serve peak RSS" figures each prints to stderr. The
# streaming window bounds resident traces and the latency reservoirs
# bound sample memory, so the 10x-longer run must not grow peak RSS
# beyond tolerance (10% + a fixed 4 MiB allowance for small-number
# noise). Invoked as:
#   cmake -DESPSIM_CLI=<path> -DWORK_DIR=<dir> -P this-file

file(MAKE_DIRECTORY ${WORK_DIR})

function(run_serve events out_var)
    execute_process(
        COMMAND ${ESPSIM_CLI} serve --profile memcached
            --configs base --events ${events}
            --json ${WORK_DIR}/serve_rss_${events}.json
        RESULT_VARIABLE rc
        ERROR_VARIABLE err
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "espsim serve --events ${events} failed (${rc}): ${err}")
    endif()
    string(REGEX MATCH "# serve peak RSS ([0-9.]+) MiB" _ "${err}")
    if(NOT CMAKE_MATCH_1)
        message(FATAL_ERROR
            "no peak-RSS line in serve stderr for ${events} events")
    endif()
    # Integer KiB so CMake's integer comparisons apply.
    math(EXPR kib "0")
    string(REGEX REPLACE "\\..*" "" whole "${CMAKE_MATCH_1}")
    math(EXPR kib "${whole} * 1024")
    set(${out_var} ${kib} PARENT_SCOPE)
endfunction()

run_serve(100000 small_kib)
run_serve(1000000 large_kib)

message(STATUS
    "serve peak RSS: 100k events ${small_kib} KiB, "
    "1M events ${large_kib} KiB")

# large <= small * 1.10 + 4 MiB, in integer KiB.
math(EXPR bound "${small_kib} + ${small_kib} / 10 + 4096")
if(large_kib GREATER bound)
    message(FATAL_ERROR
        "streaming serve is not flat-memory: 1M-event peak RSS "
        "${large_kib} KiB exceeds 100k-event bound ${bound} KiB")
endif()
