# Live-telemetry end-to-end gate. Three contracts, each checked from
# outside the process the way a real operator would see them:
#
#   1. Byte-identity: a telemetry-on serve run must write a latency
#      artifact byte-identical to the telemetry-off run (telemetry
#      only *reads* counters; the health block is opt-in).
#   2. Streaming: the telemetry-on run must report a positive snapshot
#      count on stderr and leave a JSONL stream behind (validated
#      separately by the telemetry_validate test).
#   3. Watchdog: an ESPSIM_STALL_INJECT-wedged run must fire the stall
#      watchdog exactly once, come back degraded on stderr, carry the
#      health block in its artifact, and (with spans armed) drop a
#      flight-recorder stall dump.
#
# Invoked as:
#   cmake -DESPSIM_CLI=<path> -DWORK_DIR=<dir> -P this-file

file(MAKE_DIRECTORY ${WORK_DIR})

# --- 1 + 2: byte-identity and streaming ------------------------------

execute_process(
    COMMAND ${ESPSIM_CLI} serve --profile testsrv --events 400
        --configs base,ESP+NL
        --telemetry telemetry_smoke.jsonl --telemetry-period 20000
        --json telemetry_on.json
    RESULT_VARIABLE rc
    ERROR_VARIABLE err
    OUTPUT_QUIET
    WORKING_DIRECTORY ${WORK_DIR})
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "telemetry-on serve failed (${rc}): ${err}")
endif()
string(REGEX MATCH "# telemetry: ([0-9]+) snapshots" _ "${err}")
if(CMAKE_MATCH_1 STREQUAL "" OR CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR
        "telemetry-on serve streamed no snapshots: ${err}")
endif()

execute_process(
    COMMAND ${ESPSIM_CLI} serve --profile testsrv --events 400
        --configs base,ESP+NL
        --json telemetry_off.json
    RESULT_VARIABLE rc
    ERROR_VARIABLE err
    OUTPUT_QUIET
    WORKING_DIRECTORY ${WORK_DIR})
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "telemetry-off serve failed (${rc}): ${err}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/telemetry_on.json ${WORK_DIR}/telemetry_off.json
    RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR
        "latency artifact is not byte-identical with telemetry on")
endif()

# --- 3: injected stall fires the watchdog exactly once ---------------

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ESPSIM_STALL_INJECT=150:600
        ${ESPSIM_CLI} serve --profile testsrv --events 300
        --configs base
        --telemetry telemetry_stall.jsonl --telemetry-period 20000
        --watchdog-ms 100 --watchdog-dump stallflight
        --trace-spans telemetry_stall_spans.json
        --flight-recorder 64 --anomaly-threshold 1000
        --json telemetry_stall.json
    RESULT_VARIABLE rc
    ERROR_VARIABLE err
    OUTPUT_QUIET
    WORKING_DIRECTORY ${WORK_DIR})
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stalled serve failed (${rc}): ${err}")
endif()
if(NOT err MATCHES "stall watchdog: no retire progress")
    message(FATAL_ERROR "watchdog never fired under injected stall")
endif()
if(NOT err MATCHES "# telemetry: [0-9]+ snapshots, 1 watchdog fires")
    message(FATAL_ERROR
        "watchdog did not fire exactly once: ${err}")
endif()
if(NOT err MATCHES "# serve run degraded:")
    message(FATAL_ERROR "degraded state not reported on stderr")
endif()
if(NOT EXISTS ${WORK_DIR}/stallflight.base.stall.trace.json)
    message(FATAL_ERROR "watchdog flight-recorder dump missing")
endif()

file(READ ${WORK_DIR}/telemetry_stall.json stall_artifact)
if(NOT stall_artifact MATCHES "\"health\"")
    message(FATAL_ERROR "degraded artifact lacks the health block")
endif()
if(NOT stall_artifact MATCHES "\"status\":\"degraded\"")
    message(FATAL_ERROR "health block does not say degraded")
endif()
if(NOT stall_artifact MATCHES "\"watchdog_fires\":1")
    message(FATAL_ERROR "health block does not record exactly 1 fire")
endif()

message(STATUS "telemetry gate: byte-identity, streaming and "
    "watchdog contracts all hold")
