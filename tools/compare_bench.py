#!/usr/bin/env python3
"""Compare two espsim bench artifacts for throughput regressions.

Reads two `espsim-bench-artifact` JSON files (espsim bench) — a
baseline and a candidate — and compares the simulator's throughput on
every (app, config) cell they share: simulated cycles/sec, events/sec,
and the overall suite wall time. A cell counts as a regression when
the candidate is slower than the baseline by more than --rel-tol.

Wall-clock numbers are noisy, so the gate is deliberately loose by
default (25%) and cells faster than --min-wall-ms are skipped
entirely: a 3 ms cell's throughput is dominated by scheduler jitter,
and a gate that cries wolf gets deleted. Pin --repeat on the producing
`espsim bench` run to tighten the numbers before tightening the
tolerance.

Standard library only, so it runs anywhere the repo builds.

Usage:
    compare_bench.py BASELINE.json CANDIDATE.json [--rel-tol F]
        [--min-wall-ms MS] [--ignore-config-hash]
    compare_bench.py BASELINES_DIR/ CANDIDATE.json [...]
        [--repo PATH] [--print-baseline]

When BASELINE is a *directory* (typically bench/baselines/), the
baseline is auto-selected from its BENCH_*.json files: each
artifact's manifest.tool_version names the commit it was built from,
and the nearest ancestor of the current HEAD wins (fewest commits
between them).  Versions the repo cannot resolve — foreign clones,
`-dirty` builds whose base commit is gone — fall back to newest
file mtime.  --print-baseline prints the chosen path and exits 0,
so CI logs record which baseline gated the run.

Exit code 0 when no shared cell regressed, 1 on a regression or a
config-hash mismatch, 2 when either artifact cannot be loaded (or an
empty baselines directory).
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def load_bench(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "espsim-bench-artifact":
        raise ValueError(f"{path}: not an espsim-bench-artifact")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError(f"{path}: cells missing or empty")
    return doc


def commit_distance(repo, version, head="HEAD"):
    """Commits between the version's commit and HEAD, or None.

    Only *ancestors* of HEAD qualify (a baseline from a side branch
    would gate against work HEAD never contained).  A trailing
    ``-dirty`` marker is stripped: the artifact was built from that
    commit plus local edits, still the best anchor available.
    """
    name = version.removesuffix("-dirty")
    if not name:
        return None

    def git(*args):
        try:
            out = subprocess.run(["git", "-C", str(repo), *args],
                                 capture_output=True, text=True,
                                 timeout=30, check=False)
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    if git("merge-base", "--is-ancestor", name, head) is None:
        return None
    count = git("rev-list", "--count", f"{name}..{head}")
    try:
        return int(count)
    except (TypeError, ValueError):
        return None


def select_baseline(directory, repo):
    """Pick the nearest-ancestor BENCH_*.json in ``directory``.

    Returns (path, reason).  Raises ValueError when the directory has
    no loadable bench artifact.
    """
    candidates = []
    for f in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            doc = load_bench(f)
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        version = doc.get("manifest", {}).get("tool_version", "")
        candidates.append(
            (f, version, commit_distance(repo, version),
             f.stat().st_mtime))
    if not candidates:
        raise ValueError(
            f"{directory}: no loadable BENCH_*.json baseline")
    ancestors = [c for c in candidates if c[2] is not None]
    if ancestors:
        path, version, distance, _ = min(
            ancestors, key=lambda c: (c[2], c[0].name))
        return path, (f"nearest ancestor {version} "
                      f"({distance} commit(s) behind HEAD)")
    # No version resolves in this repo: the newest file is the best
    # guess (fresh checkouts of release tarballs land here).
    path, version, _, _ = max(candidates,
                              key=lambda c: (c[3], c[0].name))
    return path, f"newest by mtime ({version or 'no version'})"


def slowdown(base, cand):
    """Fractional slowdown of candidate vs baseline (+ = slower)."""
    return 0.0 if base <= 0 else (base - cand) / base


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two espsim bench artifacts")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--rel-tol", type=float, default=0.25,
                        help="allowed fractional slowdown per metric "
                             "(default 0.25)")
    parser.add_argument("--min-wall-ms", type=float, default=20.0,
                        help="skip cells faster than this in either "
                             "artifact (default 20 ms)")
    parser.add_argument("--ignore-config-hash", action="store_true",
                        help="compare despite different config sets")
    parser.add_argument("--repo", default=".",
                        help="git repository used to rank a baselines "
                             "directory by commit ancestry")
    parser.add_argument("--print-baseline", action="store_true",
                        help="print the selected baseline path and "
                             "exit (directory mode dry run)")
    args = parser.parse_args(argv)

    baseline = args.baseline
    if Path(baseline).is_dir():
        try:
            baseline, reason = select_baseline(baseline, args.repo)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        print(f"baseline: {baseline} ({reason})", file=sys.stderr)
    if args.print_baseline:
        print(baseline)
        return 0

    try:
        base_doc = load_bench(baseline)
        cand_doc = load_bench(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    base_hash = base_doc.get("manifest", {}).get("config_hash")
    cand_hash = cand_doc.get("manifest", {}).get("config_hash")
    if base_hash != cand_hash and not args.ignore_config_hash:
        print(f"config hash mismatch: baseline {base_hash}, "
              f"candidate {cand_hash} (different design points; "
              "rerun espsim bench or pass --ignore-config-hash)",
              file=sys.stderr)
        return 1

    base_cells = {(c["app"], c["config"]): c
                  for c in base_doc["cells"]}
    cand_cells = {(c["app"], c["config"]): c
                  for c in cand_doc["cells"]}
    shared = sorted(base_cells.keys() & cand_cells.keys())
    if not shared:
        print("error: the artifacts share no (app, config) cells",
              file=sys.stderr)
        return 2

    regressions = 0
    compared = 0
    skipped = 0
    for key in shared:
        base, cand = base_cells[key], cand_cells[key]
        name = f"{key[0]}/{key[1]}"
        if (base["wall_ms"] < args.min_wall_ms
                or cand["wall_ms"] < args.min_wall_ms):
            skipped += 1
            continue
        compared += 1
        for metric in ("cycles_per_sec", "events_per_sec"):
            slow = slowdown(base[metric], cand[metric])
            marker = ""
            if slow > args.rel_tol:
                regressions += 1
                marker = "  REGRESSION"
            print(f"{name:<24} {metric:<16} "
                  f"{base[metric]:>14.0f} -> {cand[metric]:>14.0f} "
                  f"({-100 * slow:+.1f}%){marker}")

    # Suite wall regresses when the *candidate* takes longer.
    base_wall = base_doc.get("suite_wall_ms", 0.0)
    cand_wall = cand_doc.get("suite_wall_ms", 0.0)
    wall_slow = (cand_wall - base_wall) / base_wall if base_wall else 0.0
    marker = ""
    if wall_slow > args.rel_tol:
        regressions += 1
        marker = "  REGRESSION"
    print(f"{'suite':<24} {'wall_ms':<16} "
          f"{base_doc.get('suite_wall_ms', 0):>14.0f} -> "
          f"{cand_doc.get('suite_wall_ms', 0):>14.0f}{marker}")

    print(f"compared {compared} cells ({skipped} below "
          f"--min-wall-ms), {regressions} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
