#!/usr/bin/env python3
"""Compare two espsim bench artifacts for throughput regressions.

Reads two `espsim-bench-artifact` JSON files (espsim bench) — a
baseline and a candidate — and compares the simulator's throughput on
every (app, config) cell they share: simulated cycles/sec, events/sec,
and the overall suite wall time. A cell counts as a regression when
the candidate is slower than the baseline by more than --rel-tol.

Wall-clock numbers are noisy, so the gate is deliberately loose by
default (25%) and cells faster than --min-wall-ms are skipped
entirely: a 3 ms cell's throughput is dominated by scheduler jitter,
and a gate that cries wolf gets deleted. Pin --repeat on the producing
`espsim bench` run to tighten the numbers before tightening the
tolerance.

Standard library only, so it runs anywhere the repo builds.

Usage:
    compare_bench.py BASELINE.json CANDIDATE.json [--rel-tol F]
        [--min-wall-ms MS] [--ignore-config-hash]

Exit code 0 when no shared cell regressed, 1 on a regression or a
config-hash mismatch, 2 when either artifact cannot be loaded.
"""

import argparse
import json
import sys


def load_bench(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "espsim-bench-artifact":
        raise ValueError(f"{path}: not an espsim-bench-artifact")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError(f"{path}: cells missing or empty")
    return doc


def slowdown(base, cand):
    """Fractional slowdown of candidate vs baseline (+ = slower)."""
    return 0.0 if base <= 0 else (base - cand) / base


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two espsim bench artifacts")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--rel-tol", type=float, default=0.25,
                        help="allowed fractional slowdown per metric "
                             "(default 0.25)")
    parser.add_argument("--min-wall-ms", type=float, default=20.0,
                        help="skip cells faster than this in either "
                             "artifact (default 20 ms)")
    parser.add_argument("--ignore-config-hash", action="store_true",
                        help="compare despite different config sets")
    args = parser.parse_args(argv)

    try:
        base_doc = load_bench(args.baseline)
        cand_doc = load_bench(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    base_hash = base_doc.get("manifest", {}).get("config_hash")
    cand_hash = cand_doc.get("manifest", {}).get("config_hash")
    if base_hash != cand_hash and not args.ignore_config_hash:
        print(f"config hash mismatch: baseline {base_hash}, "
              f"candidate {cand_hash} (different design points; "
              "rerun espsim bench or pass --ignore-config-hash)",
              file=sys.stderr)
        return 1

    base_cells = {(c["app"], c["config"]): c
                  for c in base_doc["cells"]}
    cand_cells = {(c["app"], c["config"]): c
                  for c in cand_doc["cells"]}
    shared = sorted(base_cells.keys() & cand_cells.keys())
    if not shared:
        print("error: the artifacts share no (app, config) cells",
              file=sys.stderr)
        return 2

    regressions = 0
    compared = 0
    skipped = 0
    for key in shared:
        base, cand = base_cells[key], cand_cells[key]
        name = f"{key[0]}/{key[1]}"
        if (base["wall_ms"] < args.min_wall_ms
                or cand["wall_ms"] < args.min_wall_ms):
            skipped += 1
            continue
        compared += 1
        for metric in ("cycles_per_sec", "events_per_sec"):
            slow = slowdown(base[metric], cand[metric])
            marker = ""
            if slow > args.rel_tol:
                regressions += 1
                marker = "  REGRESSION"
            print(f"{name:<24} {metric:<16} "
                  f"{base[metric]:>14.0f} -> {cand[metric]:>14.0f} "
                  f"({-100 * slow:+.1f}%){marker}")

    # Suite wall regresses when the *candidate* takes longer.
    base_wall = base_doc.get("suite_wall_ms", 0.0)
    cand_wall = cand_doc.get("suite_wall_ms", 0.0)
    wall_slow = (cand_wall - base_wall) / base_wall if base_wall else 0.0
    marker = ""
    if wall_slow > args.rel_tol:
        regressions += 1
        marker = "  REGRESSION"
    print(f"{'suite':<24} {'wall_ms':<16} "
          f"{base_doc.get('suite_wall_ms', 0):>14.0f} -> "
          f"{cand_doc.get('suite_wall_ms', 0):>14.0f}{marker}")

    print(f"compared {compared} cells ({skipped} below "
          f"--min-wall-ms), {regressions} regression(s)")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
