/**
 * @file
 * Tests for the synthetic workload generator: bit-exact determinism,
 * structural properties of generated traces (instruction mix, PC
 * consistency of the static program, call/return pairing), the
 * inter-event dependence model, and the warm set.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "workload/app_profile.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.pc == b.pc && a.memAddr == b.memAddr &&
        a.branchTarget() == b.branchTarget() && a.type() == b.type() &&
        a.taken() == b.taken() && a.srcA == b.srcA && a.srcB == b.srcB &&
        a.dest == b.dest;
}

} // namespace

TEST(Generator, EventRegeneratesBitIdentically)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    for (std::uint64_t id : {0u, 1u, 7u, 23u}) {
        const EventTrace a = gen.generateEvent(id);
        const EventTrace b = gen.generateEvent(id);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_TRUE(sameOp(a.ops[i], b.ops[i])) << "op " << i;
        ASSERT_EQ(a.divergencePoint, b.divergencePoint);
        ASSERT_EQ(a.divergedTail.size(), b.divergedTail.size());
    }
}

TEST(Generator, DifferentSeedsProduceDifferentTraces)
{
    AppProfile p1 = AppProfile::testProfile();
    AppProfile p2 = p1;
    p2.seed = p1.seed + 1;
    const EventTrace a = SyntheticGenerator(p1).generateEvent(0);
    const EventTrace b = SyntheticGenerator(p2).generateEvent(0);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = !sameOp(a.ops[i], b.ops[i]);
    EXPECT_TRUE(differs);
}

TEST(Generator, RespectsEventCountAndMinLength)
{
    const AppProfile p = AppProfile::testProfile();
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    EXPECT_EQ(w->numEvents(), p.numEvents);
    for (std::size_t i = 0; i < w->numEvents(); ++i)
        EXPECT_GE(w->event(i).size(), p.minEventLen);
}

TEST(Generator, AverageLengthInRange)
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 200;
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    const double avg = static_cast<double>(w->totalInstructions()) /
        static_cast<double>(w->numEvents());
    // Exponential-ish distribution around avgEventLen with a floor.
    EXPECT_GT(avg, 0.5 * p.avgEventLen);
    EXPECT_LT(avg, 2.5 * p.avgEventLen);
}

TEST(Generator, InstructionMixNearProfile)
{
    AppProfile p = AppProfile::testProfile();
    p.avgEventLen = 5000;
    p.numEvents = 8;
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    std::map<OpType, std::size_t> counts;
    std::size_t total = 0;
    for (std::size_t e = 0; e < w->numEvents(); ++e) {
        for (const MicroOp &op : w->event(e).ops) {
            ++counts[op.type()];
            ++total;
        }
    }
    const double loads =
        static_cast<double>(counts[OpType::Load]) / total;
    const double stores =
        static_cast<double>(counts[OpType::Store]) / total;
    std::size_t branches = 0;
    for (auto type : {OpType::BranchCond, OpType::BranchDirect,
                      OpType::BranchIndirect, OpType::Call,
                      OpType::Return}) {
        branches += counts[type];
    }
    // The plain-op fractions exclude terminators; allow slack.
    EXPECT_NEAR(loads, p.loadFrac * 0.87, 0.05);
    EXPECT_NEAR(stores, p.storeFrac * 0.87, 0.04);
    EXPECT_GT(static_cast<double>(branches) / total, 0.08);
    EXPECT_LT(static_cast<double>(branches) / total, 0.30);
}

TEST(Generator, StaticProgramIsConsistent)
{
    // The instruction at a PC must decode identically everywhere it is
    // executed: same type, and for calls the same target.
    AppProfile p = AppProfile::testProfile();
    p.avgEventLen = 3000;
    p.numEvents = 6;
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    std::unordered_map<Addr, OpType> type_at;
    std::unordered_map<Addr, Addr> call_target_at;
    for (std::size_t e = 0; e < w->numEvents(); ++e) {
        for (const MicroOp &op : w->event(e).ops) {
            auto [it, inserted] = type_at.emplace(op.pc, op.type());
            if (!inserted)
                ASSERT_EQ(it->second, op.type()) << std::hex << op.pc;
            if (op.type() == OpType::Call) {
                auto [ct, cins] =
                    call_target_at.emplace(op.pc, op.branchTarget());
                if (!cins)
                    ASSERT_EQ(ct->second, op.branchTarget());
            }
        }
    }
    EXPECT_GT(type_at.size(), 100u);
}

TEST(Generator, CallsAndReturnsPairUp)
{
    const AppProfile p = AppProfile::testProfile();
    SyntheticGenerator gen(p);
    const EventTrace t = gen.generateEvent(3);
    std::vector<Addr> stack;
    for (const MicroOp &op : t.ops) {
        if (op.type() == OpType::Call) {
            // The generator drops the oldest frame at the depth bound.
            if (stack.size() >= p.maxCallDepth)
                stack.erase(stack.begin());
            stack.push_back(op.pc + 4);
        } else if (op.type() == OpType::Return) {
            if (stack.empty())
                continue; // dispatcher return: free target
            ASSERT_EQ(op.branchTarget(), stack.back());
            stack.pop_back();
        }
    }
}

TEST(Generator, TakenBranchesRedirectThePc)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    const EventTrace t = gen.generateEvent(5);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        const MicroOp &op = t.ops[i];
        if (op.isBranchOp() && op.taken())
            ASSERT_EQ(t.ops[i + 1].pc, op.branchTarget());
        else if (!op.isBranchOp() || !op.taken())
            ASSERT_EQ(t.ops[i + 1].pc, op.pc + 4);
    }
}

TEST(Generator, DependencyRateApproximatesProfile)
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 600;
    p.avgEventLen = 220;
    p.minEventLen = 60;
    p.dependencyRate = 0.10;
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    const double indep = w->independentEventFraction();
    EXPECT_NEAR(indep, 0.90, 0.035);
}

TEST(Generator, DependentEventsHaveDivergedTails)
{
    AppProfile p = AppProfile::testProfile();
    p.dependencyRate = 1.0; // every event (but the first) depends
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    EXPECT_TRUE(w->event(0).independent());
    for (std::size_t i = 1; i < w->numEvents(); ++i) {
        const EventTrace &t = w->event(i);
        ASSERT_FALSE(t.independent());
        ASSERT_LT(t.divergencePoint, t.size());
        ASSERT_FALSE(t.divergedTail.empty());
        // The diverged tail starts at the divergence PC.
        EXPECT_EQ(t.divergedTail[0].pc, t.ops[t.divergencePoint].pc);
        EXPECT_LT(t.speculativeMatchFraction(), 1.0);
    }
}

TEST(Generator, SpeculationAccuracyMatchesPaperAtDefaultRate)
{
    // With the default ~2% dependence rate, the average speculative
    // match fraction across events is > 98% (paper: >99% match and
    // ~98% of forked pre-executions run to completion).
    SyntheticGenerator gen(AppProfile::byName("amazon"));
    double sum = 0;
    const std::size_t n = 40;
    for (std::size_t i = 0; i < n; ++i)
        sum += gen.generateEvent(i).speculativeMatchFraction();
    EXPECT_GT(sum / static_cast<double>(n), 0.98);
}

TEST(Generator, WarmSetCoversSharedAndAppCode)
{
    const AppProfile p = AppProfile::testProfile();
    SyntheticGenerator gen(p);
    const auto ranges = gen.warmSet();
    ASSERT_GE(ranges.size(), 3u);
    // Shared code range.
    EXPECT_EQ(ranges[0].first, layout::sharedCodeBase);
    // All hot-pool code PCs of a generated event fall inside some
    // warm range; cold-region PCs do not have to.
    const auto w = gen.generate();
    const Addr pool_end = layout::appCodeBase +
        Addr{p.codeRegionPool} * p.blocksPerRegion * blockBytes;
    std::size_t in_warm = 0, total = 0;
    for (const MicroOp &op : w->event(0).ops) {
        ++total;
        if (op.pc >= layout::sharedCodeBase && op.pc < pool_end)
            ++in_warm;
    }
    EXPECT_GT(static_cast<double>(in_warm) / total, 0.8);
}

TEST(Generator, ArgObjectsDistinctPerEvent)
{
    SyntheticGenerator gen(AppProfile::testProfile());
    const EventTrace a = gen.generateEvent(0);
    const EventTrace b = gen.generateEvent(1);
    EXPECT_NE(a.argObjectAddr, b.argObjectAddr);
}

TEST(Generator, SuiteProfilesAreWellFormed)
{
    const auto suite = AppProfile::webSuite();
    ASSERT_EQ(suite.size(), 7u);
    std::unordered_set<std::string> names;
    for (const AppProfile &p : suite) {
        names.insert(p.name);
        EXPECT_GT(p.numEvents, 0u);
        EXPECT_GT(p.avgEventLen, 1000.0);
        EXPECT_GT(p.paperEvents, 0.0);
        EXPECT_GT(p.paperInstMillions, 0.0);
        EXPECT_LE(p.loadFrac + p.storeFrac, 1.0);
        EXPECT_LE(p.argFrac + p.sharedHeapFrac + p.allocFrac +
                      p.coldDataFrac,
                  1.0);
    }
    EXPECT_EQ(names.size(), 7u);
    EXPECT_TRUE(names.count("amazon"));
    EXPECT_TRUE(names.count("pixlr"));
}

TEST(GeneratorDeathTest, UnknownProfileNameFatals)
{
    EXPECT_DEATH((void)AppProfile::byName("netscape"), "unknown");
}

TEST(GeneratorDeathTest, ZeroEventsFatal)
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 0;
    EXPECT_DEATH(SyntheticGenerator{p}, "zero events");
}
