/**
 * @file
 * Tests of the data-oriented hot-path structures introduced by the
 * raw-speed engine pass: the FixedRing pipeline queues, the per-event
 * EventArena, the open-addressed AddrMap, the BlockRunSet, and the
 * end-to-end guarantees they must preserve — byte-identical suite
 * artifacts across repeated runs and (in ESPSIM_ALLOC_COUNTER builds)
 * the zero-allocation steady state.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/addr_map.hh"
#include "common/alloc_counter.hh"
#include "common/arena.hh"
#include "common/block_run_set.hh"
#include "common/ring_buffer.hh"
#include "report/artifact.hh"
#include "sim/simulator.hh"
#include "sim/stats_report.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Tiny app so end-to-end checks run in milliseconds. */
AppProfile
tinyProfile()
{
    AppProfile p = AppProfile::byName("amazon");
    p.name = "amazon-tiny";
    p.numEvents = 6;
    p.avgEventLen = 3000;
    return p;
}

} // namespace

// --------------------------------------------------------------------
// FixedRing (ROB / LSQ replacement)
// --------------------------------------------------------------------

TEST(FixedRing, CapacityRoundsUpToPowerOfTwo)
{
    FixedRing<int> ring(96);
    EXPECT_EQ(ring.capacity(), 128u);
    FixedRing<int> exact(16);
    EXPECT_EQ(exact.capacity(), 16u);
}

TEST(FixedRing, FifoOrderSurvivesManyWrapArounds)
{
    FixedRing<int> ring(4); // capacity 4; indices wrap every 4 pushes
    int next_in = 0, next_out = 0;
    // Keep occupancy at 3 while the head/tail counters cross the
    // wrap boundary hundreds of times.
    for (int i = 0; i < 1000; ++i) {
        ring.push_back(next_in++);
        if (ring.size() == 3) {
            EXPECT_EQ(ring.front(), next_out);
            ring.pop_front();
            ++next_out;
        }
    }
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.front(), next_out);
}

TEST(FixedRing, AtIndexesFromFrontAcrossWrap)
{
    FixedRing<int> ring(4);
    // Move head near the wrap point, then fill.
    ring.push_back(0);
    ring.push_back(1);
    ring.pop_front();
    ring.pop_front();
    for (int v = 10; v < 14; ++v)
        ring.push_back(v); // physically wraps around the store
    ASSERT_EQ(ring.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i), 10 + static_cast<int>(i));
}

TEST(FixedRing, ClearEmptiesWithoutReallocating)
{
    FixedRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        ring.push_back(i);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 8u);
    ring.push_back(42);
    EXPECT_EQ(ring.front(), 42);
}

// --------------------------------------------------------------------
// EventArena (per-event transient state)
// --------------------------------------------------------------------

TEST(EventArena, SpansStayValidUntilReset)
{
    EventArena arena(64); // force overflow chunks early
    std::vector<std::uint64_t *> spans;
    for (int s = 0; s < 8; ++s) {
        std::uint64_t *p = arena.allocate<std::uint64_t>(16);
        for (int i = 0; i < 16; ++i)
            p[i] = static_cast<std::uint64_t>(s * 100 + i);
        spans.push_back(p);
    }
    // Every earlier span must still hold its values even though later
    // allocations overflowed into new chunks.
    for (int s = 0; s < 8; ++s) {
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(spans[s][i], static_cast<std::uint64_t>(s * 100 + i));
    }
}

TEST(EventArena, CapacityStabilizesAfterWarmup)
{
    EventArena arena(64);
    const auto one_event = [&arena] {
        (void)arena.allocate<std::uint64_t>(50);
        (void)arena.allocate<std::uint32_t>(70);
        arena.reset();
    };
    one_event(); // warmup: grows and coalesces
    one_event(); // second pass may still right-size
    const std::size_t settled = arena.capacityBytes();
    for (int i = 0; i < 100; ++i)
        one_event();
    EXPECT_EQ(arena.capacityBytes(), settled)
        << "arena kept growing across identical events";
}

TEST(EventArena, CopyRoundTripsAndResetReclaims)
{
    EventArena arena;
    const std::uint32_t src[4] = {1, 2, 3, 4};
    const std::uint32_t *dup = arena.copy(src, 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dup[i], src[i]);
    EXPECT_GT(arena.usedBytes(), 0u);
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
}

// --------------------------------------------------------------------
// AddrMap (inflight-prefetch table replacement)
// --------------------------------------------------------------------

TEST(AddrMap, InsertFindEraseAcrossCollisions)
{
    AddrMap<std::uint64_t> map(8);
    // Dense keys stress the backward-shift deletion path.
    for (Addr a = 0; a < 200; ++a)
        map.insertOrAssign(a * 64, a);
    EXPECT_EQ(map.size(), 200u);
    for (Addr a = 0; a < 200; a += 2)
        EXPECT_TRUE(map.erase(a * 64));
    EXPECT_EQ(map.size(), 100u);
    for (Addr a = 0; a < 200; ++a) {
        const std::uint64_t *v = map.find(a * 64);
        if (a % 2 == 0) {
            EXPECT_EQ(v, nullptr);
        } else {
            ASSERT_NE(v, nullptr);
            EXPECT_EQ(*v, a);
        }
    }
}

TEST(AddrMap, ClearRetainsCapacityAndReuses)
{
    AddrMap<int> map(8);
    for (Addr a = 0; a < 50; ++a)
        map.insertOrAssign(a << 6, 1);
    map.clear();
    EXPECT_TRUE(map.empty());
    map.insertOrAssign(0x1000, 7);
    ASSERT_NE(map.find(0x1000), nullptr);
    EXPECT_EQ(*map.find(0x1000), 7);
}

// --------------------------------------------------------------------
// BlockRunSet (speculative footprint sets)
// --------------------------------------------------------------------

TEST(BlockRunSet, InsertReportsNewVsSeenAndCoalescesRuns)
{
    BlockRunSet set;
    EXPECT_TRUE(set.insert(0x1000));  // new
    EXPECT_FALSE(set.insert(0x1000)); // already present
    EXPECT_TRUE(set.insert(0x1040));  // extends the run right
    EXPECT_TRUE(set.insert(0x0fc0));  // left-extends
    EXPECT_TRUE(set.insert(0x2000));  // separate run
    EXPECT_EQ(set.size(), 4u);
    EXPECT_EQ(set.runCount(), 2u);
    EXPECT_TRUE(set.contains(0x0fc0));
    EXPECT_TRUE(set.contains(0x1040));
    EXPECT_FALSE(set.contains(0x1080));
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(0x1000));
}

// --------------------------------------------------------------------
// End-to-end guarantees
// --------------------------------------------------------------------

TEST(HotPath, SuiteArtifactsAreByteIdenticalAcrossRuns)
{
    const std::vector<SimConfig> configs{SimConfig::baseline(),
                                         SimConfig::espFull(true)};
    ArtifactManifest manifest;
    manifest.source = "test_hotpath";
    manifest.toolVersion = "test";
    manifest.buildType = "test";

    const auto render = [&] {
        SuiteRunner runner({tinyProfile()});
        runner.setJobs(1);
        const auto rows = runner.run(configs);
        return renderSuiteArtifactJson(manifest, configs, rows);
    };
    const std::string first = render();
    const std::string second = render();
    EXPECT_EQ(first, second)
        << "suite artifact is not deterministic across identical runs";
}

TEST(HotPath, RepeatedSimulationsYieldIdenticalStats)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    const SimResult a = Simulator(SimConfig::espFull(true)).run(*workload);
    const SimResult b = Simulator(SimConfig::espFull(true)).run(*workload);
    ASSERT_EQ(a.stats.values().size(), b.stats.values().size());
    for (const auto &[name, value] : a.stats.values())
        EXPECT_EQ(value, b.stats.get(name)) << "stat diverged: " << name;
}

TEST(HotPath, SteadyStateLoopAllocatesNothing)
{
    if (!allocCounterActive())
        GTEST_SKIP() << "needs -DESPSIM_ALLOC_COUNTER=ON";
    // Warm one run so every pool/arena/ring reaches its settled
    // capacity, then require the second, identical run to stay off
    // the heap modulo the per-run setup (machine construction) —
    // measured by differencing against a third run.
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    const SimConfig config = SimConfig::espFull(true);
    (void)Simulator(config).run(*workload);
    const std::uint64_t before_second = allocCount();
    (void)Simulator(config).run(*workload);
    const std::uint64_t second = allocCount() - before_second;
    const std::uint64_t before_third = allocCount();
    (void)Simulator(config).run(*workload);
    const std::uint64_t third = allocCount() - before_third;
    // Identical warmed runs must allocate identically: any steady-
    // state leak into the hot loop shows up as run-to-run drift.
    EXPECT_EQ(second, third)
        << "allocation count drifts between identical warmed runs";
}
