/**
 * @file
 * Unit and property tests for ESP's compressed prediction lists:
 * record/round-trip fidelity, run-length merging, large-offset escape
 * cost, byte-capacity enforcement, and the B-list's periodic
 * instruction-count entries.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "esp/lists.hh"

using namespace espsim;

TEST(AddressList, AppendAndReadBack)
{
    AddressList list(499);
    EXPECT_TRUE(list.append(0x1000, 10));
    EXPECT_TRUE(list.append(0x2000, 20));
    ASSERT_EQ(list.records().size(), 2u);
    EXPECT_EQ(list.records()[0].blockAddr, 0x1000u);
    EXPECT_EQ(list.records()[0].instCount, 10u);
    EXPECT_EQ(list.records()[1].blockAddr, 0x2000u);
}

TEST(AddressList, ContiguousBlocksMergeIntoRuns)
{
    AddressList list(499);
    for (int i = 0; i < 5; ++i)
        list.append(0x1000 + i * blockBytes, 10 + i);
    ASSERT_EQ(list.records().size(), 1u);
    EXPECT_EQ(list.records()[0].runLength, 4u);
    // A run costs no extra bits beyond the base entry (+first-entry
    // full address).
    EXPECT_EQ(list.bitsUsed(), AddressList::entryBits * 3);
}

TEST(AddressList, RunLengthFieldSaturatesAtSeven)
{
    AddressList list(499);
    for (int i = 0; i < 12; ++i)
        list.append(0x1000 + i * blockBytes, i);
    ASSERT_EQ(list.records().size(), 2u);
    EXPECT_EQ(list.records()[0].runLength, 7u);
    EXPECT_EQ(list.records()[1].blockAddr, 0x1000u + 8 * blockBytes);
}

TEST(AddressList, RetouchOfSameBlockFree)
{
    AddressList list(499);
    list.append(0x1000, 1);
    const auto bits = list.bitsUsed();
    list.append(0x1008, 2); // same block
    EXPECT_EQ(list.bitsUsed(), bits);
    EXPECT_EQ(list.records().size(), 1u);
}

TEST(AddressList, NearbyOffsetCheaperThanFarEscape)
{
    AddressList near_list(499), far_list(499);
    near_list.append(0x10000, 1);
    near_list.append(0x10000 + 4 * blockBytes, 2); // fits 8-bit delta
    far_list.append(0x10000, 1);
    far_list.append(0x90000, 2); // escape: full address entries
    EXPECT_LT(near_list.bitsUsed(), far_list.bitsUsed());
    EXPECT_EQ(far_list.bitsUsed() - AddressList::entryBits * 3,
              AddressList::entryBits * 3);
}

TEST(AddressList, CapacityStopsRecording)
{
    AddressList list(16); // 128 bits: very small
    std::size_t accepted = 0;
    for (int i = 0; i < 100; ++i)
        accepted += list.append(0x1000 + 2 * i * blockBytes, i);
    EXPECT_LT(accepted, 100u);
    EXPECT_TRUE(list.full());
    EXPECT_LE(list.bitsUsed(), 16u * 8u);
    // Once full, everything is rejected.
    EXPECT_FALSE(list.append(0xffff000, 101));
}

TEST(AddressList, UnboundedNeverFills)
{
    AddressList list(0);
    EXPECT_TRUE(list.unbounded());
    for (int i = 0; i < 10000; ++i)
        ASSERT_TRUE(list.append(0x1000 + 3 * i * blockBytes, i));
    EXPECT_FALSE(list.full());
}

TEST(AddressList, ClearResets)
{
    AddressList list(64);
    list.append(0x1000, 1);
    list.clear();
    EXPECT_EQ(list.records().size(), 0u);
    EXPECT_EQ(list.bitsUsed(), 0u);
    EXPECT_FALSE(list.full());
}

TEST(AddressList, LargeInstGapChargesPadding)
{
    AddressList a(499), b(499);
    a.append(0x1000, 1);
    a.append(0x1000 + blockBytes * 9, 5); // small gap
    b.append(0x1000, 1);
    b.append(0x1000 + blockBytes * 9, 5000); // 5000-instruction gap
    EXPECT_LT(a.bitsUsed(), b.bitsUsed());
}

/** Property: capacity accounting is conserved under random streams. */
class AddressListFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressListFuzz, NeverExceedsCapacityAndKeepsOrder)
{
    Rng rng(GetParam());
    AddressList list(499);
    Addr pc = 0x100000;
    InstCount count = 0;
    while (!list.full()) {
        count += rng.below(30);
        if (rng.chance(0.7))
            pc += blockBytes * rng.range(0, 3);
        else
            pc = 0x100000 + blockBytes * rng.below(1 << 16);
        if (!list.append(pc, count))
            break;
    }
    EXPECT_LE(list.bitsUsed(), 499u * 8u);
    // Records' instruction counts must be non-decreasing.
    InstCount prev = 0;
    for (const AddressRecord &rec : list.records()) {
        EXPECT_GE(rec.instCount, prev);
        prev = rec.instCount;
        EXPECT_EQ(rec.blockAddr % blockBytes, 0u);
        EXPECT_LE(rec.runLength, 7u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressListFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- BranchList ------------------------------------------------------

namespace
{

BranchRecord
rec(Addr pc, bool taken, bool indirect = false, Addr target = 0)
{
    BranchRecord r;
    r.pc = pc;
    r.taken = taken;
    r.indirect = indirect;
    r.target = target;
    r.type = indirect ? OpType::BranchIndirect : OpType::BranchCond;
    return r;
}

} // namespace

TEST(BranchList, AppendAndReadBack)
{
    BranchList list(566, 41);
    EXPECT_TRUE(list.append(rec(0x1000, true)));
    EXPECT_TRUE(list.append(rec(0x1010, false)));
    ASSERT_EQ(list.records().size(), 2u);
    EXPECT_TRUE(list.records()[0].taken);
    EXPECT_FALSE(list.records()[1].taken);
}

TEST(BranchList, DirectionCapacityBounds)
{
    BranchList list(30, 41); // tiny direction queue
    std::size_t accepted = 0;
    for (int i = 0; i < 200; ++i)
        accepted += list.append(rec(0x1000 + 4 * i, true));
    EXPECT_LT(accepted, 200u);
    EXPECT_TRUE(list.full());
    EXPECT_LE(list.dirBitsUsed(), 30u * 8u);
}

TEST(BranchList, TargetCapacityOnlyChargedForTakenIndirect)
{
    BranchList list(566, 5); // tiny target queue
    // Conditional branches never touch the target list.
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(list.append(rec(0x1000 + 4 * i, true)));
    EXPECT_EQ(list.tgtBitsUsed(), 0u);
    // Taken indirect branches do.
    list.append(rec(0x2000, true, true, 0x2200));
    EXPECT_GT(list.tgtBitsUsed(), 0u);
}

TEST(BranchList, FarIndirectTargetEscapes)
{
    BranchList a(566, 410), b(566, 410);
    a.append(rec(0x1000, true, true, 0x1800));       // 16-bit offset
    b.append(rec(0x1000, true, true, 0x99990000)); // escapes
    EXPECT_LT(a.tgtBitsUsed(), b.tgtBitsUsed());
}

TEST(BranchList, PeriodicInstCountEntriesCharged)
{
    // The first entries of every block of 30 carry instruction counts;
    // appending exactly 30 sequential branches costs 30 entries + 2*2
    // overhead entries (one pair per period boundary crossed).
    BranchList list(566, 41);
    for (int i = 0; i < 30; ++i)
        list.append(rec(0x1000 + 4 * i, false));
    EXPECT_EQ(list.dirBitsUsed(),
              BranchList::dirEntryBits * (30 + 2));
}

TEST(BranchList, ClearResets)
{
    BranchList list(64, 8);
    list.append(rec(0x1000, true));
    list.clear();
    EXPECT_TRUE(list.records().empty());
    EXPECT_EQ(list.dirBitsUsed(), 0u);
    EXPECT_FALSE(list.full());
}

TEST(ListCursor, ExhaustionTracking)
{
    ListCursor cur;
    std::vector<AddressRecord> recs(3);
    EXPECT_FALSE(cur.exhausted(recs));
    cur.next = 3;
    EXPECT_TRUE(cur.exhausted(recs));
    cur.reset();
    EXPECT_EQ(cur.next, 0u);
}
