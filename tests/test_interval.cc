/**
 * @file
 * Tests of the interval sampling engine: exact delta closure against
 * the end-of-run aggregates, byte-identical series regardless of
 * concurrent sibling runs, the rendered artifact, the host profiler's
 * span accounting, and SampleStat percentile edge cases.
 */

#include <gtest/gtest.h>

#include <thread>

#include "common/histogram.hh"
#include "report/artifact.hh"
#include "report/host_profile.hh"
#include "report/interval.hh"
#include "report/json_reader.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Tiny app so interval tests run in milliseconds. */
AppProfile
tinyProfile()
{
    AppProfile p = AppProfile::byName("amazon");
    p.name = "amazon-tiny";
    p.numEvents = 8;
    p.avgEventLen = 3000;
    return p;
}

IntervalSeries
runSampled(const Workload &workload, IntervalConfig period)
{
    RunInstrumentation inst;
    inst.interval = period;
    IntervalSeries series;
    inst.intervalSeries = &series;
    (void)Simulator(SimConfig::espFull(true)).run(workload, inst);
    return series;
}

} // namespace

// --------------------------------------------------------------------
// Delta closure
// --------------------------------------------------------------------

TEST(IntervalSampler, DeltasTelescopeToFinalSnapshotExactly)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    IntervalConfig period;
    period.sampleCycles = 5'000;
    const IntervalSeries series = runSampled(*workload, period);

    ASSERT_FALSE(series.names.empty());
    ASSERT_EQ(series.names.size(), series.baseline.size());
    ASSERT_EQ(series.names.size(), series.finalValues.size());
    ASSERT_FALSE(series.intervals.empty());

    std::vector<double> acc = series.baseline;
    Cycle prev = series.baselineCycle;
    for (const IntervalPoint &point : series.intervals) {
        ASSERT_EQ(point.deltas.size(), acc.size());
        EXPECT_GE(point.endCycle, prev);
        prev = point.endCycle;
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += point.deltas[i];
    }
    // Exact, not approximate: counters are uint64-backed and well
    // below 2^53, so the telescoped doubles must match bit-for-bit.
    for (std::size_t i = 0; i < acc.size(); ++i)
        EXPECT_EQ(acc[i], series.finalValues[i]) << series.names[i];
    EXPECT_EQ(series.intervals.back().endCycle, series.finalCycle);
}

TEST(IntervalSampler, EventPeriodSamplesEveryRetire)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    IntervalConfig period;
    period.sampleEvents = 1;
    const IntervalSeries series = runSampled(*workload, period);

    // One sample per retired event; the trailing partial interval (if
    // any counter moved after the last grid point) may add one more.
    ASSERT_FALSE(series.intervals.empty());
    EXPECT_GE(series.intervals.size(), workload->numEvents());
    EXPECT_LE(series.intervals.size(), workload->numEvents() + 1);
    std::uint64_t prev = series.baselineEvents;
    for (const IntervalPoint &point : series.intervals) {
        EXPECT_GE(point.endEvents, prev);
        prev = point.endEvents;
    }
    EXPECT_EQ(series.finalEvents, workload->numEvents());
}

TEST(IntervalSampler, DisabledSamplingLeavesSeriesUntouched)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    const IntervalSeries series = runSampled(*workload, {});
    EXPECT_TRUE(series.names.empty());
    EXPECT_TRUE(series.intervals.empty());
}

// --------------------------------------------------------------------
// Determinism
// --------------------------------------------------------------------

TEST(IntervalSampler, SeriesBytesIdenticalUnderConcurrentRuns)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    IntervalConfig period;
    period.sampleCycles = 7'000;

    // Serial reference series (the "--jobs 1" world).
    const IntervalSeries solo = runSampled(*workload, period);
    ArtifactManifest manifest;
    manifest.source = "test";
    manifest.toolVersion = "test";
    manifest.buildType = "test";
    const std::string solo_json =
        renderIntervalSeriesJson(manifest, solo);

    // Four concurrent samplers over the same immutable workload (the
    // "--jobs 4" world): every rendered artifact must be
    // byte-identical to the serial one.
    std::vector<std::string> rendered(4);
    std::vector<std::thread> threads;
    for (std::string &out : rendered) {
        threads.emplace_back([&workload, &period, &manifest, &out] {
            const IntervalSeries series =
                runSampled(*workload, period);
            out = renderIntervalSeriesJson(manifest, series);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (const std::string &json : rendered)
        EXPECT_EQ(json, solo_json);
}

// --------------------------------------------------------------------
// Artifact rendering
// --------------------------------------------------------------------

TEST(IntervalSeriesArtifact, CarriesSchemaManifestAndAlignedArrays)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    IntervalConfig period;
    period.sampleCycles = 5'000;
    period.sampleEvents = 3;
    const IntervalSeries series = runSampled(*workload, period);

    ArtifactManifest manifest;
    manifest.source = "test-interval";
    const std::string json =
        renderIntervalSeriesJson(manifest, series);

    std::string err;
    const auto doc = parseJson(json, &err);
    ASSERT_TRUE(doc) << err;
    const JsonValue *schema = doc->find("schema");
    ASSERT_TRUE(schema);
    EXPECT_EQ(schema->string, "espsim-interval-series");
    const JsonValue *mf = doc->find("manifest");
    ASSERT_TRUE(mf);
    EXPECT_EQ(mf->find("source")->string, "test-interval");
    EXPECT_EQ(mf->find("sample_cycles")->number, 5'000.0);
    EXPECT_EQ(mf->find("sample_events")->number, 3.0);

    const JsonValue *names = doc->find("names");
    const JsonValue *intervals = doc->find("intervals");
    ASSERT_TRUE(names && names->isArray());
    ASSERT_TRUE(intervals && intervals->isArray());
    EXPECT_EQ(names->array.size(), series.names.size());
    EXPECT_EQ(intervals->array.size(), series.intervals.size());
    for (const JsonValue &point : intervals->array) {
        const JsonValue *deltas = point.find("deltas");
        ASSERT_TRUE(deltas && deltas->isArray());
        EXPECT_EQ(deltas->array.size(), series.names.size());
    }
}

// --------------------------------------------------------------------
// Host profiler
// --------------------------------------------------------------------

TEST(HostProfile, WallClockSpansAccumulateAndMergeAsHostStats)
{
    HostCellProfile profile;
    {
        WallClockSpan span(&profile.simMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    { WallClockSpan free_span(nullptr); } // must be a no-op
    EXPECT_GT(profile.simMs, 0.0);
    EXPECT_EQ(profile.genMs, 0.0);

    StatGroup stats;
    mergeHostStats(stats, profile);
    EXPECT_EQ(stats.get("host.sim_ms"), profile.simMs);
    EXPECT_EQ(stats.get("host.total_ms"), profile.totalMs());
    EXPECT_GE(stats.get("host.peak_rss_mb"), 0.0);
}

TEST(HostProfile, ProfiledRunFillsEveryPhaseSpan)
{
    const auto workload = SyntheticGenerator(tinyProfile()).generate();
    HostCellProfile profile;
    RunInstrumentation inst;
    inst.hostProfile = &profile;
    (void)Simulator(SimConfig::espFull(true)).run(*workload, inst);
    // Simulation always takes measurable time; warmup and reporting
    // may round to ~0 but must never be negative.
    EXPECT_GT(profile.simMs, 0.0);
    EXPECT_GE(profile.warmupMs, 0.0);
    EXPECT_GE(profile.reportMs, 0.0);
    EXPECT_GT(profile.totalMs(), 0.0);
}

// --------------------------------------------------------------------
// SampleStat percentile edge cases
// --------------------------------------------------------------------

TEST(SampleStat, PercentileOfEmptyIsZero)
{
    const SampleStat s;
    EXPECT_EQ(s.percentile(95.0), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleStat, PercentileOfSingleElementIsThatElement)
{
    SampleStat s;
    s.record(42.0);
    EXPECT_EQ(s.percentile(0.0), 42.0);
    EXPECT_EQ(s.percentile(50.0), 42.0);
    EXPECT_EQ(s.percentile(95.0), 42.0);
    EXPECT_EQ(s.percentile(100.0), 42.0);
}

TEST(SampleStat, PercentileOfTwoElementsPicksByNearestRank)
{
    SampleStat s;
    s.record(10.0);
    s.record(20.0);
    EXPECT_EQ(s.percentile(0.0), 10.0);
    EXPECT_EQ(s.percentile(100.0), 20.0);
    EXPECT_EQ(s.percentile(95.0), 20.0);
    EXPECT_EQ(s.max(), 20.0);
    EXPECT_EQ(s.mean(), 15.0);
}
