/**
 * @file
 * Tests for the streaming workload core: EventSource equivalence with
 * a fully-materialised trace, bounded residency, free-list recycling,
 * and (in ESPSIM_ALLOC_COUNTER builds) the amortised-O(1) allocation
 * guarantee — steady-state streaming allocates only at window-advance
 * boundaries.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/alloc_counter.hh"
#include "sim/simulator.hh"
#include "workload/lazy.hh"
#include "workload/streaming.hh"

using namespace espsim;

namespace
{

AppProfile
smallProfile()
{
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 40;
    return p;
}

StreamingWorkload
makeStreaming(std::size_t window = 8)
{
    return StreamingWorkload(
        std::make_unique<GeneratorSource>(smallProfile()), window);
}

} // namespace

TEST(Streaming, MatchesMaterializedTrace)
{
    const AppProfile p = smallProfile();
    StreamingWorkload streamed(std::make_unique<GeneratorSource>(p));
    const auto eager = SyntheticGenerator(p).generate();
    ASSERT_EQ(streamed.numEvents(), eager->numEvents());
    EXPECT_EQ(streamed.name(), eager->name());
    for (std::size_t i = 0; i < streamed.numEvents(); ++i) {
        const EventTrace &a = streamed.event(i);
        const EventTrace &b = eager->event(i);
        ASSERT_EQ(a.size(), b.size()) << i;
        ASSERT_EQ(a.handlerPc, b.handlerPc) << i;
        for (std::size_t k = 0; k < a.size(); ++k) {
            ASSERT_EQ(a.ops[k].pc, b.ops[k].pc);
            ASSERT_EQ(a.ops[k].memAddr, b.ops[k].memAddr);
        }
    }
    EXPECT_EQ(streamed.warmSet().size(), eager->warmSet().size());
}

TEST(Streaming, ResidencyStaysBoundedOverFullPass)
{
    StreamingWorkload w = makeStreaming(4);
    for (std::size_t i = 0; i < w.numEvents(); ++i) {
        (void)w.event(i);
        if (i + 2 < w.numEvents()) {
            (void)w.event(i + 1); // the ESP lookahead pattern
            (void)w.event(i + 2);
        }
        // One reader: window-many pins plus the freshly-admitted
        // lookahead entries.
        EXPECT_LE(w.residentTraces(), 8u) << "at event " << i;
    }
}

TEST(Streaming, SequentialPassRecyclesRetiredTraces)
{
    StreamingWorkload w = makeStreaming(4);
    for (std::size_t i = 0; i < w.numEvents(); ++i)
        (void)w.event(i);
    // Every event was generated exactly once...
    EXPECT_EQ(w.generations(), w.numEvents());
    // ...and once the window filled, retired traces fed generation.
    EXPECT_GT(w.recycled(), 0u);
    EXPECT_LT(w.recycled(), w.generations());
}

TEST(Streaming, LookaheadReferenceSurvivesContractWindow)
{
    StreamingWorkload w = makeStreaming(6);
    const EventTrace &current = w.event(5);
    const Addr pc = current.ops[0].pc;
    const std::size_t len = current.size();
    (void)w.event(6);
    (void)w.event(7);
    (void)w.event(8); // the contract's idx + 3
    EXPECT_EQ(current.ops[0].pc, pc);
    EXPECT_EQ(current.size(), len);
}

TEST(Streaming, LazyWorkloadIsAThinAdapter)
{
    const AppProfile p = smallProfile();
    LazyWorkload lazy(p, 6);
    StreamingWorkload streamed(std::make_unique<GeneratorSource>(p), 6);
    // The adapter must be the streaming core, not a parallel
    // implementation: same type, same behaviour.
    static_assert(std::is_base_of_v<StreamingWorkload, LazyWorkload>);
    ASSERT_EQ(lazy.numEvents(), streamed.numEvents());
    for (std::size_t i = 0; i < lazy.numEvents(); ++i)
        ASSERT_EQ(lazy.event(i).size(), streamed.event(i).size()) << i;
}

TEST(Streaming, SimulatesIdenticallyToMaterialized)
{
    const AppProfile p = smallProfile();
    StreamingWorkload streamed(std::make_unique<GeneratorSource>(p));
    const auto eager = SyntheticGenerator(p).generate();
    const SimResult a =
        Simulator(SimConfig::espFull(true)).run(streamed);
    const SimResult b =
        Simulator(SimConfig::espFull(true)).run(*eager);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_DOUBLE_EQ(a.l1iMpki, b.l1iMpki);
}

TEST(StreamingDeathTest, OutOfRangePanics)
{
    StreamingWorkload w = makeStreaming();
    EXPECT_DEATH((void)w.event(999), "out of range");
}

// --------------------------------------------------------------------
// Zero-alloc invariant (only meaningful in ESPSIM_ALLOC_COUNTER builds)
// --------------------------------------------------------------------

TEST(Streaming, SteadyStateReRequestDoesNotAllocate)
{
    if (!allocCounterActive())
        GTEST_SKIP() << "build without ESPSIM_ALLOC_COUNTER";
    StreamingWorkload w = makeStreaming(8);
    for (std::size_t i = 0; i <= 30; ++i)
        (void)w.event(i);
    // Cache hits inside the pinned window are pure lookups.
    const std::uint64_t before = allocCount();
    (void)w.event(28);
    (void)w.event(29);
    (void)w.event(30);
    EXPECT_EQ(allocCount(), before);
}

TEST(Streaming, AllocationsPerEventStayFlat)
{
    if (!allocCounterActive())
        GTEST_SKIP() << "build without ESPSIM_ALLOC_COUNTER";
    AppProfile p = AppProfile::testProfile();
    p.numEvents = 240;
    StreamingWorkload w(std::make_unique<GeneratorSource>(p), 8);
    // Warm past the first window so the free list is populated.
    for (std::size_t i = 0; i < 40; ++i)
        (void)w.event(i);
    const std::uint64_t c0 = allocCount();
    for (std::size_t i = 40; i < 140; ++i)
        (void)w.event(i);
    const std::uint64_t first = allocCount() - c0;
    const std::uint64_t c1 = allocCount();
    for (std::size_t i = 140; i < 240; ++i)
        (void)w.event(i);
    const std::uint64_t second = allocCount() - c1;
    // Amortised O(1)/event: a later window of 100 events must not
    // allocate meaningfully more than an earlier one (no growth with
    // stream position). Slack covers variance in trace sizes.
    EXPECT_LE(second, first * 2 + 64);
}
