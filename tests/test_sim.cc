/**
 * @file
 * Integration tests of the Simulator facade and config presets: full
 * runs on a small synthetic app, cross-config invariants (the paper's
 * qualitative orderings), determinism, and derived-metric sanity.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "sim/stats_report.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Small-but-realistic app for integration runs (~150k insts). */
AppProfile
integrationProfile()
{
    AppProfile p = AppProfile::byName("amazon");
    p.name = "amazon-small";
    p.numEvents = 12;
    p.avgEventLen = 12000;
    return p;
}

const InMemoryWorkload &
sharedWorkload()
{
    static auto w = SyntheticGenerator(integrationProfile()).generate();
    return *w;
}

SimResult
run(const SimConfig &cfg)
{
    return Simulator(cfg).run(sharedWorkload());
}

} // namespace

TEST(Sim, DeterministicAcrossRuns)
{
    const SimResult a = run(SimConfig::espFull(true));
    const SimResult b = run(SimConfig::espFull(true));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_DOUBLE_EQ(a.l1iMpki, b.l1iMpki);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(Sim, InstructionCountInvariantAcrossConfigs)
{
    // Every config executes the same committed instruction stream.
    const auto base = run(SimConfig::baseline());
    for (const SimConfig &cfg :
         {SimConfig::nextLine(), SimConfig::nextLineStride(),
          SimConfig::runaheadExec(true), SimConfig::espFull(true),
          SimConfig::espNaive(true)}) {
        EXPECT_EQ(run(cfg).core.instructions, base.core.instructions)
            << cfg.name;
    }
}

TEST(Sim, PrefetchersNeverSlowTheBaselineDown)
{
    const auto base = run(SimConfig::baseline());
    const auto nl = run(SimConfig::nextLine());
    EXPECT_LT(nl.cycles, base.cycles);
    EXPECT_LT(nl.l1iMpki, base.l1iMpki);
}

TEST(Sim, EspBeatsNextLineAlone)
{
    const auto nl = run(SimConfig::nextLine());
    const auto esp = run(SimConfig::espFull(true));
    EXPECT_LT(esp.cycles, nl.cycles);
    EXPECT_LT(esp.l1iMpki, nl.l1iMpki);
    EXPECT_LE(esp.mispredictRate, nl.mispredictRate);
}

TEST(Sim, EspAloneBeatsBaseline)
{
    const auto base = run(SimConfig::baseline());
    const auto esp = run(SimConfig::espFull(false));
    EXPECT_LT(esp.cycles, base.cycles);
}

TEST(Sim, PerfectAllDominatesEverything)
{
    const auto perfect = run(SimConfig::perfect(true, true, true));
    for (const SimConfig &cfg :
         {SimConfig::baseline(), SimConfig::nextLineStride(),
          SimConfig::espFull(true)}) {
        EXPECT_LT(perfect.cycles, run(cfg).cycles) << cfg.name;
    }
    EXPECT_EQ(perfect.core.mispredicts, 0u);
    EXPECT_DOUBLE_EQ(perfect.l1iMpki, 0.0);
}

TEST(Sim, PerfectComponentsZeroTheirMetric)
{
    const auto pl1i = run(SimConfig::perfect(false, false, true));
    EXPECT_DOUBLE_EQ(pl1i.l1iMpki, 0.0);
    const auto pl1d = run(SimConfig::perfect(true, false, false));
    EXPECT_DOUBLE_EQ(pl1d.l1dMissRate, 0.0);
    const auto pbp = run(SimConfig::perfect(false, true, false));
    EXPECT_DOUBLE_EQ(pbp.mispredictRate, 0.0);
}

TEST(Sim, IdealEspAtLeastAsGoodAsReal)
{
    const auto real = run(SimConfig::espInstrOnly(true, false));
    const auto ideal = run(SimConfig::espInstrOnly(true, true));
    EXPECT_LE(ideal.l1iMpki, real.l1iMpki * 1.02);
}

TEST(Sim, EspSpeculationAccuracyMatchesPaperClaim)
{
    const auto esp = run(SimConfig::espFull(true));
    // Paper: pre-executions match their normal counterparts > 99%,
    // with ~2% dependent events; our independence-weighted match
    // fraction must be at least 97%.
    EXPECT_GT(esp.stats.get("esp.spec_match_fraction"), 0.97);
}

TEST(Sim, EspExtraInstructionsReasonable)
{
    const auto esp = run(SimConfig::espFull(true));
    EXPECT_GT(esp.extraInstrFraction, 0.02);
    EXPECT_LT(esp.extraInstrFraction, 0.8);
}

TEST(Sim, EspEnergyOverheadIsModest)
{
    const auto nl = run(SimConfig::nextLine());
    const auto esp = run(SimConfig::espFull(true));
    const double rel = esp.energy.total() / nl.energy.total();
    EXPECT_GT(rel, 0.95);
    EXPECT_LT(rel, 1.30);
}

TEST(Sim, RunaheadReducesDataMissRate)
{
    const auto base = run(SimConfig::baseline());
    const auto ra = run(SimConfig::runaheadDataOnly(false));
    EXPECT_LT(ra.l1dMissRate, base.l1dMissRate);
    // Runahead-D must not touch branch behaviour.
    EXPECT_EQ(ra.core.mispredicts, base.core.mispredicts);
}

TEST(Sim, SpeedupHelpersConsistent)
{
    const auto base = run(SimConfig::baseline());
    const auto esp = run(SimConfig::espFull(true));
    const double speedup = esp.speedupOver(base);
    EXPECT_GT(speedup, 1.0);
    EXPECT_NEAR(esp.improvementPctOver(base), (speedup - 1) * 100,
                1e-9);
}

TEST(Sim, StatsExportHeadlineMetrics)
{
    const auto r = run(SimConfig::espFull(true));
    EXPECT_GT(r.stats.get("derived.ipc"), 0.0);
    EXPECT_GT(r.stats.get("mem.l1i.accesses"), 0.0);
    EXPECT_GT(r.stats.get("energy.total"), 0.0);
    EXPECT_GT(r.stats.get("esp.jumps"), 0.0);
}

TEST(Sim, ConfigPresetNamesAreStable)
{
    EXPECT_EQ(SimConfig::baseline().name, "base");
    EXPECT_EQ(SimConfig::nextLine().name, "NL");
    EXPECT_EQ(SimConfig::nextLineStride().name, "NL+S");
    EXPECT_EQ(SimConfig::runaheadExec(true).name, "Runahead+NL");
    EXPECT_EQ(SimConfig::espFull(true).name, "ESP+NL");
    EXPECT_EQ(SimConfig::espNaive(false).name, "NaiveESP");
    EXPECT_EQ(SimConfig::espAblation(true, true, false).name,
              "ESP-I,B+NL");
    EXPECT_EQ(SimConfig::perfect(true, true, true).name, "perfect All");
}

TEST(Sim, BranchPolicyPresetsConfigureEsp)
{
    const auto cfg =
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePirAndTables);
    EXPECT_EQ(cfg.esp.branchPolicy, BranchPolicy::SeparatePirAndTables);
    EXPECT_FALSE(cfg.esp.useBList);
    const auto esp_cfg =
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePirPlusBList);
    EXPECT_TRUE(esp_cfg.esp.useBList);
}

TEST(Sim, WorkingSetStudyProducesDepthSamples)
{
    auto cfg = SimConfig::espWorkingSetStudy(4);
    const auto r = Simulator(cfg).run(sharedWorkload());
    ASSERT_EQ(r.instrWorkingSets.size(), 4u);
    EXPECT_GT(r.instrWorkingSets[0].count(), 0u);
    // Deeper contexts see monotonically less activity.
    EXPECT_GE(r.instrWorkingSets[0].count(),
              r.instrWorkingSets[2].count());
}

TEST(SuiteRunnerTest, RunsConfigsAcrossApps)
{
    AppProfile tiny = AppProfile::testProfile();
    tiny.numEvents = 10;
    AppProfile tiny2 = tiny;
    tiny2.name = "test2";
    tiny2.seed = 777;
    SuiteRunner runner({tiny, tiny2});
    const auto rows = runner.run(
        {SimConfig::baseline(), SimConfig::espFull(true)});
    ASSERT_EQ(rows.size(), 2u);
    ASSERT_EQ(rows[0].results.size(), 2u);
    EXPECT_EQ(rows[0].app, "test");
    EXPECT_EQ(rows[1].app, "test2");
    const double imp = hmeanImprovementPct(rows, 1, 0);
    EXPECT_GT(imp, -50.0);
    EXPECT_LT(imp, 200.0);
    const double mpki = hmeanMetric(rows, 0, [](const SimResult &r) {
        return r.l1iMpki + 0.001;
    });
    EXPECT_GT(mpki, 0.0);
}
