/**
 * @file
 * Parameterized property sweeps across the whole application suite and
 * the whole configuration registry — the invariants that must hold for
 * *every* workload/design-point combination, not just the ones other
 * test files probe individually.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

using namespace espsim;

namespace
{

/** Shrink a suite profile for fast sweeps (~60-120k instructions). */
AppProfile
shrunk(const std::string &name)
{
    AppProfile p = AppProfile::byName(name);
    p.numEvents = 8;
    p.avgEventLen = std::min(p.avgEventLen, 9000.0);
    return p;
}

const InMemoryWorkload &
cachedWorkload(const std::string &name)
{
    static std::unordered_map<std::string,
                              std::unique_ptr<InMemoryWorkload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name,
                          SyntheticGenerator(shrunk(name)).generate())
                 .first;
    }
    return *it->second;
}

} // namespace

// --- per-application sweep ------------------------------------------

class AppSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppSweep, TraceIsWellFormed)
{
    const InMemoryWorkload &w = cachedWorkload(GetParam());
    ASSERT_EQ(w.numEvents(), 8u);
    for (std::size_t e = 0; e < w.numEvents(); ++e) {
        const EventTrace &ev = w.event(e);
        ASSERT_GT(ev.size(), 0u);
        for (const MicroOp &op : ev.ops) {
            // Memory ops carry addresses; branches carry outcomes.
            if (op.isMemoryOp())
                ASSERT_NE(op.memAddr, 0u);
            if (op.isBranchOp() && op.taken())
                ASSERT_NE(op.branchTarget(), 0u);
            if (!op.isBranchOp())
                ASSERT_FALSE(op.taken());
        }
    }
}

TEST_P(AppSweep, ControlFlowIsContiguous)
{
    const InMemoryWorkload &w = cachedWorkload(GetParam());
    for (std::size_t e = 0; e < w.numEvents(); ++e) {
        const EventTrace &ev = w.event(e);
        for (std::size_t i = 0; i + 1 < ev.size(); ++i) {
            const MicroOp &op = ev.ops[i];
            const Addr next =
                op.taken() ? op.branchTarget() : op.pc + 4;
            ASSERT_EQ(ev.ops[i + 1].pc, next)
                << GetParam() << " event " << e << " op " << i;
        }
    }
}

TEST_P(AppSweep, EspNeverChangesCommittedWork)
{
    const InMemoryWorkload &w = cachedWorkload(GetParam());
    const SimResult base = Simulator(SimConfig::baseline()).run(w);
    const SimResult esp = Simulator(SimConfig::espFull(true)).run(w);
    EXPECT_EQ(base.core.instructions, esp.core.instructions);
    EXPECT_EQ(base.core.branches, esp.core.branches);
    EXPECT_EQ(base.core.loads, esp.core.loads);
    EXPECT_EQ(base.core.stores, esp.core.stores);
    EXPECT_EQ(base.core.events, esp.core.events);
}

TEST_P(AppSweep, EspImprovesOrMatchesEveryApp)
{
    const InMemoryWorkload &w = cachedWorkload(GetParam());
    const SimResult nl = Simulator(SimConfig::nextLine()).run(w);
    const SimResult esp = Simulator(SimConfig::espFull(true)).run(w);
    // Small shrunken workloads are noisy; allow a 2% regression band.
    EXPECT_LT(esp.cycles, nl.cycles * 1.02) << GetParam();
    EXPECT_LE(esp.l1iMpki, nl.l1iMpki * 1.02) << GetParam();
}

TEST_P(AppSweep, StallWindowsExistAndAreConsumed)
{
    const InMemoryWorkload &w = cachedWorkload(GetParam());
    const SimResult esp = Simulator(SimConfig::espFull(true)).run(w);
    EXPECT_GT(esp.core.stallWindows, 0u);
    EXPECT_GT(esp.stats.get("esp.jumps"), 0.0);
    EXPECT_GT(esp.stats.get("esp.pre_executed_instrs"), 0.0);
}

TEST_P(AppSweep, EnergyDecompositionConsistent)
{
    const InMemoryWorkload &w = cachedWorkload(GetParam());
    const SimResult r = Simulator(SimConfig::espFull(true)).run(w);
    EXPECT_NEAR(r.energy.total(),
                r.stats.get("energy.static") +
                    r.stats.get("energy.mispredict") +
                    r.stats.get("energy.dynamic"),
                1e-6 * r.energy.total());
    EXPECT_GT(r.energy.staticEnergy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Suite, AppSweep,
                         ::testing::Values("amazon", "bing", "cnn",
                                           "facebook", "gmaps", "gdocs",
                                           "pixlr"));

// --- per-configuration sweep ----------------------------------------

namespace
{

std::vector<SimConfig>
allConfigs()
{
    return {
        SimConfig::baseline(),
        SimConfig::nextLine(),
        SimConfig::nextLineStride(),
        SimConfig::nextLineInstrOnly(),
        SimConfig::nextLineDataOnly(),
        SimConfig::runaheadExec(false),
        SimConfig::runaheadExec(true),
        SimConfig::runaheadDataOnly(true),
        SimConfig::espFull(false),
        SimConfig::espFull(true),
        SimConfig::espNaive(true),
        SimConfig::espAblation(true, false, false),
        SimConfig::espAblation(true, true, false),
        SimConfig::espAblation(true, true, true),
        SimConfig::espInstrOnly(true, false),
        SimConfig::espInstrOnly(true, true),
        SimConfig::espDataOnly(true, false),
        SimConfig::espBranchPolicy(BranchPolicy::NoExtraHardware),
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePir),
        SimConfig::espBranchPolicy(BranchPolicy::SeparatePirAndTables),
        SimConfig::perfect(true, false, false),
        SimConfig::perfect(false, true, false),
        SimConfig::perfect(false, false, true),
        SimConfig::perfect(true, true, true),
        SimConfig::espWorkingSetStudy(4),
    };
}

} // namespace

class ConfigSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ConfigSweep, RunsToCompletionAndIsDeterministic)
{
    const SimConfig cfg = allConfigs()[GetParam()];
    const InMemoryWorkload &w = cachedWorkload("amazon");
    const SimResult a = Simulator(cfg).run(w);
    const SimResult b = Simulator(cfg).run(w);
    EXPECT_GT(a.cycles, 0u) << cfg.name;
    EXPECT_EQ(a.cycles, b.cycles) << cfg.name;
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts) << cfg.name;
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total()) << cfg.name;
    // The committed stream is the same as the plain baseline's.
    EXPECT_EQ(a.core.instructions,
              Simulator(SimConfig::baseline()).run(w).core.instructions)
        << cfg.name;
    // Sanity on derived metrics.
    EXPECT_GE(a.mispredictRate, 0.0);
    EXPECT_LE(a.mispredictRate, 1.0);
    EXPECT_GE(a.l1dMissRate, 0.0);
    EXPECT_LE(a.l1dMissRate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Registry, ConfigSweep,
                         ::testing::Range<std::size_t>(0, 25));

// --- randomized cross-checks ----------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, GeneratorDeterminismUnderRandomProfiles)
{
    Rng rng(GetParam());
    AppProfile p = AppProfile::testProfile();
    p.seed = rng.next();
    p.numEvents = 4 + rng.below(8);
    p.avgEventLen = 300 + rng.below(3000);
    p.numHandlerTypes = 2 + rng.below(30);
    p.windowsPerEvent = 1 + rng.below(8);
    p.hotRegionsPerHandler = 2 + rng.below(16);
    p.codeRegionPool = 64 + rng.below(1024);
    p.dependencyRate = rng.real() * 0.3;

    SyntheticGenerator gen(p);
    const auto a = gen.generate();
    const auto b = gen.generate();
    ASSERT_EQ(a->numEvents(), b->numEvents());
    ASSERT_EQ(a->totalInstructions(), b->totalInstructions());
    // And the full machine is deterministic on it.
    const SimResult ra = Simulator(SimConfig::espFull(true)).run(*a);
    const SimResult rb = Simulator(SimConfig::espFull(true)).run(*b);
    EXPECT_EQ(ra.cycles, rb.cycles);
}

TEST_P(SeedSweep, SpeculativeViewNeverIndexesOutOfRange)
{
    Rng rng(GetParam() ^ 0xabcdef);
    AppProfile p = AppProfile::testProfile();
    p.seed = rng.next();
    p.dependencyRate = 0.5;
    SyntheticGenerator gen(p);
    const auto w = gen.generate();
    for (std::size_t e = 0; e < w->numEvents(); ++e) {
        const EventTrace &ev = w->event(e);
        for (std::size_t i = 0; i < ev.speculativeSize(); ++i)
            (void)ev.speculativeOp(i); // panics on bad indexing
        ASSERT_GE(ev.speculativeMatchFraction(), 0.0);
        ASSERT_LE(ev.speculativeMatchFraction(), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
