/**
 * @file
 * Tests for the energy model: decomposition arithmetic, monotonicity
 * in each activity, and the speculative-work accounting.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace espsim;

namespace
{

EnergyInputs
baseInputs()
{
    EnergyInputs in;
    in.cycles = 100000;
    in.instructions = 80000;
    in.branches = 12000;
    in.mispredicts = 1200;
    in.l1Accesses = 100000;
    in.l2Accesses = 2000;
    in.memAccesses = 150;
    return in;
}

} // namespace

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyModel model;
    const EnergyBreakdown e = model.compute(baseInputs());
    EXPECT_DOUBLE_EQ(e.total(),
                     e.staticEnergy + e.mispredictEnergy +
                         e.restDynamic);
    EXPECT_GT(e.staticEnergy, 0.0);
    EXPECT_GT(e.mispredictEnergy, 0.0);
    EXPECT_GT(e.restDynamic, 0.0);
}

TEST(Energy, StaticScalesWithCycles)
{
    EnergyModel model;
    EnergyInputs in = baseInputs();
    const double s1 = model.compute(in).staticEnergy;
    in.cycles *= 2;
    const double s2 = model.compute(in).staticEnergy;
    EXPECT_DOUBLE_EQ(s2, 2 * s1);
}

TEST(Energy, MispredictEnergyScalesWithMispredicts)
{
    EnergyModel model;
    EnergyInputs in = baseInputs();
    const double m1 = model.compute(in).mispredictEnergy;
    in.mispredicts = 0;
    EXPECT_DOUBLE_EQ(model.compute(in).mispredictEnergy, 0.0);
    in.mispredicts = 2400;
    EXPECT_DOUBLE_EQ(model.compute(in).mispredictEnergy, 2 * m1);
}

TEST(Energy, SpeculativeWorkAddsDynamicEnergy)
{
    EnergyModel model;
    EnergyInputs in = baseInputs();
    const double d1 = model.compute(in).restDynamic;
    in.speculativeInstrs = 20000;
    in.cacheletAccesses = 10000;
    in.listEntries = 2000;
    const double d2 = model.compute(in).restDynamic;
    EXPECT_GT(d2, d1);
}

TEST(Energy, MemoryAccessesDominatePerEvent)
{
    const EnergyConfig cfg;
    EXPECT_GT(cfg.memAccess, cfg.l2Access);
    EXPECT_GT(cfg.l2Access, cfg.l1Access);
    EXPECT_GT(cfg.l1Access, cfg.cacheletAccess);
}

TEST(Energy, EspTradeoffShapeMatchesPaper)
{
    // An ESP run versus its NL baseline: ~20% extra (cheap) spec
    // instructions, fewer cycles and mispredicts. Net energy overhead
    // must be positive but modest (paper: ~8%).
    EnergyModel model;
    EnergyInputs nl = baseInputs();
    EnergyInputs esp = nl;
    esp.cycles = static_cast<Cycle>(nl.cycles * 0.90);
    esp.mispredicts = static_cast<std::uint64_t>(nl.mispredicts * 0.7);
    esp.speculativeInstrs = nl.instructions / 5;
    esp.cacheletAccesses = esp.speculativeInstrs / 2;
    esp.listEntries = 3000;
    const double overhead = model.compute(esp).total() /
        model.compute(nl).total();
    EXPECT_GT(overhead, 1.0);
    EXPECT_LT(overhead, 1.25);
}
