/**
 * @file
 * Tests for the §4.5 multi-queue extension: interleaving, dispatch
 * prediction, barrier-induced mispredictions, the ESP controller's
 * incorrect-prediction veto, and end-to-end behaviour.
 */

#include <gtest/gtest.h>

#include "esp/controller.hh"
#include "sim/simulator.hh"
#include "workload/builder.hh"
#include "workload/generator.hh"
#include "workload/multi_queue.hh"

using namespace espsim;

namespace
{

std::unique_ptr<InMemoryWorkload>
simpleQueue(unsigned tag, std::size_t events)
{
    WorkloadBuilder b;
    for (std::size_t e = 0; e < events; ++e) {
        const Addr code = 0x100000 * (tag + 1) + 0x10000 * e;
        b.beginEvent(code);
        for (int i = 0; i < 30; ++i) {
            b.aluBlock(code + 128 * i, 5);
            b.load(code + 128 * i + 20,
                   0x8000000 + 0x100000 * tag + 512 * i, 1);
        }
    }
    return b.build("q" + std::to_string(tag));
}

std::unique_ptr<InterleavedWorkload>
makeInterleaved(double barrier_rate, std::uint64_t seed = 7)
{
    std::vector<std::unique_ptr<Workload>> queues;
    queues.push_back(simpleQueue(0, 12));
    queues.push_back(simpleQueue(1, 12));
    queues.push_back(simpleQueue(2, 12));
    MultiQueueConfig cfg;
    cfg.seed = seed;
    cfg.barrierRate = barrier_rate;
    return std::make_unique<InterleavedWorkload>("mq", std::move(queues),
                                                 cfg);
}

} // namespace

TEST(MultiQueue, MergePreservesAllEvents)
{
    auto w = makeInterleaved(0.0);
    EXPECT_EQ(w->numEvents(), 36u);
    // Per-queue order must be preserved and complete.
    std::vector<std::size_t> next(3, 0);
    for (std::size_t i = 0; i < w->numEvents(); ++i) {
        const unsigned q = w->queueOf(i);
        ASSERT_LT(q, 3u);
        ++next[q];
    }
    EXPECT_EQ(next[0], 12u);
    EXPECT_EQ(next[1], 12u);
    EXPECT_EQ(next[2], 12u);
}

TEST(MultiQueue, PerQueueEventOrderPreserved)
{
    auto w = makeInterleaved(0.0);
    // Events of one queue appear in increasing handlerPc order (the
    // builder assigned increasing code bases per event).
    Addr last[3] = {0, 0, 0};
    for (std::size_t i = 0; i < w->numEvents(); ++i) {
        const unsigned q = w->queueOf(i);
        EXPECT_GT(w->event(i).handlerPc, last[q]);
        last[q] = w->event(i).handlerPc;
    }
}

TEST(MultiQueue, InterleavesFineGrained)
{
    auto w = makeInterleaved(0.0);
    // The looper must actually alternate between queues, not run one
    // queue to completion first.
    unsigned switches = 0;
    for (std::size_t i = 1; i < w->numEvents(); ++i)
        switches += w->queueOf(i) != w->queueOf(i - 1);
    EXPECT_GT(switches, 10u);
}

TEST(MultiQueue, NoBarriersMeansPerfectPrediction)
{
    auto w = makeInterleaved(0.0);
    EXPECT_DOUBLE_EQ(w->dispatchPredictionAccuracy(), 1.0);
    for (std::size_t i = 0; i + 2 < w->numEvents(); ++i) {
        EXPECT_EQ(w->predictedNext(i, 1), i + 1);
        EXPECT_EQ(w->predictedNext(i, 2), i + 2);
    }
}

TEST(MultiQueue, BarriersDegradePredictionAccuracy)
{
    auto none = makeInterleaved(0.0);
    auto some = makeInterleaved(0.15);
    EXPECT_LT(some->dispatchPredictionAccuracy(),
              none->dispatchPredictionAccuracy());
    EXPECT_GT(some->dispatchPredictionAccuracy(), 0.5);
}

TEST(MultiQueue, DeterministicForSameSeed)
{
    auto a = makeInterleaved(0.1, 42);
    auto b = makeInterleaved(0.1, 42);
    ASSERT_EQ(a->numEvents(), b->numEvents());
    for (std::size_t i = 0; i < a->numEvents(); ++i) {
        ASSERT_EQ(a->queueOf(i), b->queueOf(i));
        ASSERT_EQ(a->predictedNext(i, 1), b->predictedNext(i, 1));
    }
}

TEST(MultiQueue, WarmSetIsUnionOfQueues)
{
    std::vector<std::unique_ptr<Workload>> queues;
    auto q0 = simpleQueue(0, 2);
    q0->setWarmSet({{0x1000, 0x2000}});
    auto q1 = simpleQueue(1, 2);
    q1->setWarmSet({{0x5000, 0x6000}});
    queues.push_back(std::move(q0));
    queues.push_back(std::move(q1));
    InterleavedWorkload w("mq", std::move(queues), MultiQueueConfig{});
    EXPECT_EQ(w.warmSet().size(), 2u);
}

TEST(MultiQueue, ControllerVetoesMispredictedDispatch)
{
    // Force a guaranteed barrier right after event 0: the controller
    // pre-executes the *predicted* next event; at promotion the actual
    // next differs, so the hints are discarded and counted.
    auto w = makeInterleaved(1.0, 3);
    ASSERT_LT(w->dispatchPredictionAccuracy(), 1.0);

    MemoryHierarchy mem{HierarchyConfig{}};
    PentiumMPredictor bp;
    EspConfig cfg;
    EspController esp(cfg, mem, bp, *w, 4);

    esp.onEventStart(0, 0);
    StallContext ctx;
    ctx.kind = StallKind::DataLlcMiss;
    ctx.idleCycles = 4000;
    for (int k = 0; k < 4; ++k)
        esp.onStall(ctx);
    ASSERT_GT(esp.stats().preExecutedInstrs, 0u);
    // The pre-executed event is the *predicted* one.
    EXPECT_EQ(esp.eventQueue().entry(0).eventIdx,
              w->predictedNext(0, 1));

    esp.onEventEnd(0, 9000);
    if (w->predictedNext(0, 1) != 1) {
        EXPECT_EQ(esp.stats().mispredictedDispatches, 1u);
        // With the hints vetoed, no list prefetches fire for event 1.
        esp.onEventStart(1, 9100);
        EXPECT_EQ(esp.stats().listPrefetchesInstr, 0u);
    }
}

TEST(MultiQueue, EndToEndEspStillHelps)
{
    std::vector<std::unique_ptr<Workload>> queues;
    for (unsigned q = 0; q < 3; ++q) {
        AppProfile p = AppProfile::testProfile();
        p.seed = 100 + q;
        p.numEvents = 10;
        p.avgEventLen = 4000;
        queues.push_back(SyntheticGenerator(p).generate());
    }
    MultiQueueConfig mq;
    mq.barrierRate = 0.05;
    InterleavedWorkload w("mq3", std::move(queues), mq);

    const SimResult base = Simulator(SimConfig::nextLine()).run(w);
    const SimResult esp = Simulator(SimConfig::espFull(true)).run(w);
    EXPECT_LT(esp.cycles, base.cycles);
}

TEST(MultiQueue, HigherBarrierRateWeakensEsp)
{
    auto run = [](double rate) {
        std::vector<std::unique_ptr<Workload>> queues;
        for (unsigned q = 0; q < 2; ++q) {
            AppProfile p = AppProfile::testProfile();
            p.seed = 50 + q;
            p.numEvents = 12;
            p.avgEventLen = 5000;
            queues.push_back(SyntheticGenerator(p).generate());
        }
        MultiQueueConfig mq;
        mq.barrierRate = rate;
        InterleavedWorkload w("mq", std::move(queues), mq);
        const SimResult base =
            Simulator(SimConfig::nextLine()).run(w);
        const SimResult esp = Simulator(SimConfig::espFull(true)).run(w);
        return esp.speedupOver(base);
    };
    // Frequent dispatch mispredictions waste pre-execution work.
    EXPECT_GT(run(0.0), run(0.8) - 0.02);
}

TEST(MultiQueueDeathTest, EmptyQueueListFatals)
{
    std::vector<std::unique_ptr<Workload>> queues;
    EXPECT_DEATH(
        InterleavedWorkload("x", std::move(queues), MultiQueueConfig{}),
        "at least one queue");
}
