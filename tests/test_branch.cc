/**
 * @file
 * Unit tests for the Pentium M branch predictor stack: PIR folding,
 * loop predictor, local/global direction prediction, BTB/iBTB targets,
 * RAS, context switching, B-list-style pre-training, and the
 * speculative-execution rules (stat gating, loop-predictor gating).
 */

#include <gtest/gtest.h>

#include "branch/loop_predictor.hh"
#include "branch/pentium_m.hh"
#include "branch/pir.hh"

using namespace espsim;

namespace
{

MicroOp
condBranch(Addr pc, bool taken, Addr target = 0)
{
    MicroOp op;
    op.pc = pc;
    op.setType(OpType::BranchCond);
    op.setTaken(taken);
    op.setBranchTarget(taken ? (target ? target : pc + 64) : 0);
    return op;
}

MicroOp
callOp(Addr pc, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.setType(OpType::Call);
    op.setTaken(true);
    op.setBranchTarget(target);
    return op;
}

MicroOp
returnOp(Addr pc, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.setType(OpType::Return);
    op.setTaken(true);
    op.setBranchTarget(target);
    return op;
}

MicroOp
indirectOp(Addr pc, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.setType(OpType::BranchIndirect);
    op.setTaken(true);
    op.setBranchTarget(target);
    return op;
}

} // namespace

TEST(Pir, UpdateChangesValueWithinMask)
{
    Pir pir;
    EXPECT_EQ(pir.value(), 0u);
    pir.update(0x1000, 0x2000);
    EXPECT_LE(pir.value(), Pir::mask);
    const auto v1 = pir.value();
    pir.update(0x3000, 0x4000);
    EXPECT_NE(pir.value(), v1);
    pir.reset();
    EXPECT_EQ(pir.value(), 0u);
}

TEST(Pir, PathDependent)
{
    Pir a, b;
    a.update(0x1000, 0x2000);
    a.update(0x3000, 0x4000);
    b.update(0x3000, 0x4000);
    b.update(0x1000, 0x2000);
    EXPECT_NE(a.value(), b.value());
}

TEST(Pir, ConvergesAfterSamePathSuffix)
{
    // After enough shared taken branches, histories converge (the
    // register only holds ~8 branches of path) — this is what makes
    // B-list training align with normal-mode lookups.
    Pir a, b;
    a.update(0x9999, 0x8888); // different prefix
    for (int i = 0; i < 12; ++i) {
        a.update(0x1000 + 16 * i, 0x2000 + 16 * i);
        b.update(0x1000 + 16 * i, 0x2000 + 16 * i);
    }
    EXPECT_EQ(a.value(), b.value());
}

TEST(LoopPred, LearnsConstantTripCount)
{
    LoopPredictor lp(256);
    const Addr pc = 0x1000;
    // Trip count 4: T T T N, repeated.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 3; ++i)
            lp.update(pc, true);
        lp.update(pc, false);
    }
    // Now confident: predicts T, T, T, then N.
    for (int i = 0; i < 3; ++i) {
        auto p = lp.predict(pc);
        ASSERT_TRUE(p.has_value());
        EXPECT_TRUE(*p);
        lp.update(pc, true);
    }
    auto exit_pred = lp.predict(pc);
    ASSERT_TRUE(exit_pred.has_value());
    EXPECT_FALSE(*exit_pred);
}

TEST(LoopPred, NoConfidenceNoPrediction)
{
    LoopPredictor lp(256);
    lp.update(0x1000, true);
    EXPECT_FALSE(lp.predict(0x1000).has_value());
}

TEST(LoopPred, ChangingTripCountResetsConfidence)
{
    LoopPredictor lp(256);
    const Addr pc = 0x2000;
    auto run = [&](int trips) {
        for (int i = 0; i < trips - 1; ++i)
            lp.update(pc, true);
        lp.update(pc, false);
    };
    run(4);
    run(4);
    run(4);
    run(4);
    EXPECT_TRUE(lp.predict(pc).has_value());
    run(7); // trip change
    EXPECT_FALSE(lp.predict(pc).has_value());
}

TEST(Predictor, LearnsBiasedBranch)
{
    PentiumMPredictor bp;
    const MicroOp t = condBranch(0x1000, true);
    // Warm up.
    for (int i = 0; i < 8; ++i)
        bp.executeBranch(t);
    bp.clearStats();
    for (int i = 0; i < 100; ++i)
        bp.executeBranch(t);
    EXPECT_EQ(bp.mispredicts(), 0u);
    EXPECT_EQ(bp.branches(), 100u);
}

TEST(Predictor, ColdTakenBranchMispredicts)
{
    PentiumMPredictor bp;
    // Local counters initialise weakly-not-taken; a first-seen taken
    // branch is a mispredict.
    EXPECT_EQ(bp.executeBranch(condBranch(0x5000, true)),
              BranchResult::Mispredict);
}

TEST(Predictor, BtbMissIsNotAFullMispredict)
{
    PentiumMPredictor bp;
    const Addr pc = 0x1000;
    // Train direction taken but with target A; then change target.
    for (int i = 0; i < 8; ++i)
        bp.executeBranch(condBranch(pc, true, 0x2000));
    const BranchResult r = bp.executeBranch(condBranch(pc, true, 0x3000));
    EXPECT_EQ(r, BranchResult::BtbMiss);
}

TEST(Predictor, RasPredictsReturns)
{
    PentiumMPredictor bp;
    bp.executeBranch(callOp(0x1000, 0x8000));
    bp.clearStats();
    const BranchResult r = bp.executeBranch(returnOp(0x8010, 0x1004));
    EXPECT_EQ(r, BranchResult::Correct);
}

TEST(Predictor, RasMispredictsAfterClear)
{
    PentiumMPredictor bp;
    bp.executeBranch(callOp(0x1000, 0x8000));
    bp.clearRas();
    EXPECT_EQ(bp.executeBranch(returnOp(0x8010, 0x1004)),
              BranchResult::Mispredict);
}

TEST(Predictor, NestedCallsReturnInOrder)
{
    PentiumMPredictor bp;
    bp.executeBranch(callOp(0x1000, 0x2000));
    bp.executeBranch(callOp(0x2000, 0x3000));
    EXPECT_EQ(bp.executeBranch(returnOp(0x3010, 0x2004)),
              BranchResult::Correct);
    EXPECT_EQ(bp.executeBranch(returnOp(0x2010, 0x1004)),
              BranchResult::Correct);
}

TEST(Predictor, IndirectTargetLearnedPerPath)
{
    PentiumMPredictor bp;
    const Addr pc = 0x4000;
    // First encounter mispredicts; afterwards the iBTB knows it.
    EXPECT_EQ(bp.executeBranch(indirectOp(pc, 0x9000)),
              BranchResult::Mispredict);
    EXPECT_EQ(bp.executeBranch(indirectOp(pc, 0x9000)),
              BranchResult::Correct);
}

TEST(Predictor, StatGatingForSpeculativeBranches)
{
    PentiumMPredictor bp;
    bp.executeBranch(condBranch(0x1000, true), false);
    EXPECT_EQ(bp.branches(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(Predictor, SpeculativeExecutionSkipsLoopPredictor)
{
    PentiumMPredictor bp;
    const Addr pc = 0x6000;
    auto loop_round = [&](bool spec) {
        for (int i = 0; i < 3; ++i)
            bp.executeBranch(condBranch(pc, true), !spec);
        bp.executeBranch(condBranch(pc, false), !spec);
    };
    // Train architecturally until confident.
    for (int i = 0; i < 4; ++i)
        loop_round(false);
    // A speculative pass over the same loop must not advance the trip
    // counter (otherwise the architectural re-execution mispredicts).
    loop_round(true);
    bp.clearStats();
    loop_round(false);
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(Predictor, ContextSwapIsolatesPirAndRas)
{
    PentiumMPredictor bp;
    bp.executeBranch(callOp(0x1000, 0x8000)); // push onto RAS
    const auto pir_before = bp.context().pir.value();

    BpContext spec; // fresh context for pre-execution
    BpContext saved = bp.swapContext(std::move(spec));
    EXPECT_EQ(bp.context().pir.value(), 0u);
    EXPECT_TRUE(bp.context().ras.empty());
    bp.executeBranch(condBranch(0x2000, true), false);

    bp.swapContext(std::move(saved));
    EXPECT_EQ(bp.context().pir.value(), pir_before);
    ASSERT_EQ(bp.context().ras.size(), 1u);
    EXPECT_EQ(bp.context().ras.back(), 0x1004u);
}

TEST(Predictor, TrainingImprovesColdAccuracy)
{
    // Pre-train 64 distinct taken branches via the B-list path, then
    // execute them: the predictor must do much better than cold.
    PentiumMPredictor cold, trained;
    BpContext train_ctx;
    for (int i = 0; i < 64; ++i) {
        const Addr pc = 0x10000 + 256 * i;
        trained.train(train_ctx, pc, OpType::BranchCond, true, pc + 64);
    }
    int cold_miss = 0, trained_miss = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr pc = 0x10000 + 256 * i;
        cold_miss += cold.executeBranch(condBranch(pc, true)) ==
            BranchResult::Mispredict;
        trained_miss += trained.executeBranch(condBranch(pc, true)) ==
            BranchResult::Mispredict;
    }
    EXPECT_EQ(cold_miss, 64);
    EXPECT_LT(trained_miss, 8);
}

TEST(Predictor, CloneAndCopyTables)
{
    PentiumMPredictor a;
    for (int i = 0; i < 8; ++i)
        a.executeBranch(condBranch(0x1000, true));
    PentiumMPredictor replica = a.clone();
    // Train the replica on a new branch.
    for (int i = 0; i < 8; ++i)
        replica.executeBranch(condBranch(0x2000, true), false);
    PentiumMPredictor b;
    b.copyTablesFrom(replica);
    b.clearStats();
    EXPECT_EQ(b.executeBranch(condBranch(0x2000, true)),
              BranchResult::Correct);
}

TEST(Predictor, MispredictRateAccessor)
{
    PentiumMPredictor bp;
    bp.executeBranch(condBranch(0x7000, true));  // cold: mispredict
    bp.executeBranch(condBranch(0x7000, false)); // counter now weak
    EXPECT_GT(bp.mispredictRate(), 0.0);
    EXPECT_LE(bp.mispredictRate(), 1.0);
}

TEST(PredictorDeathTest, NonBranchOpPanics)
{
    PentiumMPredictor bp;
    MicroOp op;
    op.setType(OpType::IntAlu);
    EXPECT_DEATH(bp.executeBranch(op), "non-branch");
}
